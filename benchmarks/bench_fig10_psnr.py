"""Figure 10 — PSNR versus retrieved bitrate.

Paper claim: although IPComp optimizes the L∞ error, its PSNR under a given
retrieval bitrate is competitive with or better than the baselines on most
datasets (Density, Pressure, VelocityX, CH4 are shown in the paper).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, skip_scale_tuned_asserts, write_csv
from repro.analysis import psnr
from repro.baselines import make_compressor

COMPRESSORS = ("ipcomp", "sz3-r", "pmgard")
FIELDS = ("density", "pressure", "velocityx", "ch4")
BITRATES = (1.0, 2.0, 4.0, 8.0)
BOUND = 1e-6


def _run(bench_datasets):
    rows = []
    for name in FIELDS:
        field = bench_datasets[name]
        compressors = {}
        blobs = {}
        for comp_name in COMPRESSORS:
            comp = make_compressor(comp_name, error_bound=BOUND, relative=True)
            compressors[comp_name] = comp
            blobs[comp_name] = comp.compress(field)
        for bitrate in BITRATES:
            row = [name, bitrate]
            for comp_name in COMPRESSORS:
                try:
                    outcome = compressors[comp_name].retrieve(
                        blobs[comp_name], bitrate=bitrate
                    )
                    row.append(f"{psnr(field, outcome.data):.2f}")
                except Exception:
                    row.append("n/a")
            rows.append(row)
    return rows


@pytest.mark.benchmark(group="fig10")
def test_fig10_psnr_vs_bitrate(benchmark, bench_datasets, results_dir):
    rows = benchmark.pedantic(_run, args=(bench_datasets,), rounds=1, iterations=1)
    header = ["dataset", "bitrate"] + [f"{c} PSNR" for c in COMPRESSORS]
    print_table("Figure 10: PSNR under a bitrate budget", header, rows)
    write_csv(results_dir / "fig10_psnr.csv", header, rows)

    # Shape check: IPComp's PSNR grows with the budget on every dataset.
    # "n/a" marks budgets below the compressor's minimum loadable unit —
    # on tiny fields the header+anchor overhead alone can exceed the small
    # budgets, which is a property of the scale, not of the codec.
    idx = header.index("ipcomp PSNR")
    per_dataset = {name: [] for name in FIELDS}  # keep all-"n/a" datasets visible
    for row in rows:
        if row[idx] != "n/a":
            per_dataset[row[0]].append(float(row[idx]))
    if any(len(series) < 2 for series in per_dataset.values()):
        skip_scale_tuned_asserts(
            "tiny fields leave < 2 satisfiable bitrate budgets per dataset"
        )
    assert all(len(s) >= 2 for s in per_dataset.values())
    for series in per_dataset.values():
        assert series[-1] > series[0]
