"""Figure 11 — post-analysis (curl / Laplacian) quality vs. retrieved fraction.

The paper visualises curl and Laplacian computed from reconstructions that
load 0.1 %, 0.3 % and 1 % of the compressed data, observing that the curl is
usable at 0.3 % while the Laplacian needs 1 % — i.e. different analyses need
different fidelity, which is the whole motivation for progressive retrieval.

Without a rendering pipeline the harness reports the quantitative counterpart:
the normalized error of each derived quantity at each retrieved fraction.  The
curl is evaluated on a synthetic velocity vector field (the paper's Miranda
archive has the three velocity components; our registry generates them all),
the Laplacian on the Density field itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table, write_csv
from repro import IPComp, ProgressiveRetriever
from repro.analysis.derived import curl_magnitude, laplacian
from repro.datasets import load_dataset
from repro.datasets.synthetic import turbulence_field

#: Retrieved fractions of the compressed stream.  The paper uses 0.1 %–1 % on
#: ~0.5 GB fields; at this harness's scaled-down sizes those fractions would
#: not even cover the stream header, so the sweep is shifted upward while
#: keeping the qualitative question identical (how much of the stream does
#: each derived analysis need?).
FRACTIONS = (0.02, 0.05, 0.12, 0.30)
BOUND = 1e-9


def _normalized_error(reference: np.ndarray, candidate: np.ndarray) -> float:
    scale = float(np.abs(reference).max()) or 1.0
    return float(np.abs(reference - candidate).max()) / scale


def _run(bench_datasets):
    density = bench_datasets["density"]
    shape = density.shape
    velocity = [
        turbulence_field(shape, kind=kind) for kind in ("velocityx", "velocityy", "velocityz")
    ]
    comp = IPComp(error_bound=BOUND, relative=True)
    density_blob = comp.compress(density)
    velocity_blobs = [comp.compress(component) for component in velocity]

    reference_curl = curl_magnitude(velocity)
    reference_laplacian = laplacian(density)

    rows = []
    minimum_budget = 4096
    for fraction in FRACTIONS:
        density_budget = max(int(len(density_blob) * fraction), minimum_budget)
        partial_density = ProgressiveRetriever(density_blob).retrieve(
            byte_budget=density_budget
        )
        partial_velocity = [
            ProgressiveRetriever(blob).retrieve(
                byte_budget=max(int(len(blob) * fraction), minimum_budget)
            )
            for blob in velocity_blobs
        ]
        curl_error = _normalized_error(
            reference_curl, curl_magnitude([r.data for r in partial_velocity])
        )
        laplacian_error = _normalized_error(
            reference_laplacian, laplacian(partial_density.data)
        )
        raw_error = _normalized_error(density, partial_density.data)
        rows.append(
            [
                f"{fraction * 100:.1f}%",
                f"{raw_error:.4f}",
                f"{curl_error:.4f}",
                f"{laplacian_error:.4f}",
            ]
        )
    return rows


@pytest.mark.benchmark(group="fig11")
def test_fig11_postanalysis_quality(benchmark, bench_datasets, results_dir):
    rows = benchmark.pedantic(_run, args=(bench_datasets,), rounds=1, iterations=1)
    header = ["retrieved fraction", "raw rel.err", "curl rel.err", "laplacian rel.err"]
    print_table("Figure 11: derived-quantity error vs. retrieved fraction", header, rows)
    write_csv(results_dir / "fig11_postanalysis.csv", header, rows)

    # Shape checks: every metric improves as more data is retrieved, and the
    # derived quantities (curl, Laplacian) are harder to reconstruct than the
    # raw field at every fidelity — i.e. derivative-based analyses need a
    # larger retrieved fraction than visual inspection of the raw values,
    # which is Figure 11's motivation for progressive retrieval.
    raw_errors = [float(r[1]) for r in rows]
    curl_errors = [float(r[2]) for r in rows]
    laplacian_errors = [float(r[3]) for r in rows]
    assert raw_errors[-1] < raw_errors[0]
    assert curl_errors[-1] < curl_errors[0]
    assert laplacian_errors[-1] < laplacian_errors[0]
    for raw, curl_err, laplacian_err in zip(raw_errors, curl_errors, laplacian_errors):
        assert curl_err >= raw * 0.99
        assert laplacian_err >= raw * 0.99
