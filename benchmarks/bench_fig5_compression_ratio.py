"""Figure 5 — compression ratios of IPComp vs. the progressive baselines.

Paper claim: IPComp has the highest compression ratio among progressive
compressors (20 %–500 % advantage) on both the high-precision (eb = 1e−9) and
high-ratio (eb = 1e−6) settings, and even beats non-progressive SZ3 in
high-precision settings (§6.2.1).

The harness compresses every dataset with every compressor at both bounds and
prints the CR matrix; the non-progressive SZ3 column is included for the
§6.2.1 comparison.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, write_csv
from repro.analysis import compression_ratio
from repro.baselines import make_compressor

COMPRESSORS = ("ipcomp", "sz3", "sz3-m", "sz3-r", "zfp-r", "pmgard")
BOUNDS = {"high-precision (1e-9)": 1e-9, "high-ratio (1e-6)": 1e-6}


def _run(bench_datasets):
    rows = []
    for bound_label, bound in BOUNDS.items():
        for name, field in bench_datasets.items():
            row = [bound_label, name]
            for comp_name in COMPRESSORS:
                comp = make_compressor(comp_name, error_bound=bound, relative=True)
                blob = comp.compress(field)
                row.append(f"{compression_ratio(field, blob):.3f}")
            rows.append(row)
    return rows


@pytest.mark.benchmark(group="fig5")
def test_fig5_compression_ratio(benchmark, bench_datasets, results_dir):
    rows = benchmark.pedantic(_run, args=(bench_datasets,), rounds=1, iterations=1)
    header = ["setting", "dataset"] + list(COMPRESSORS)
    print_table("Figure 5: compression ratio by compressor", header, rows)
    write_csv(results_dir / "fig5_compression_ratio.csv", header, rows)

    # Shape check: IPComp leads (or ties) the *progressive* baselines on the
    # majority of dataset × bound combinations.
    progressive = ["sz3-m", "sz3-r", "zfp-r", "pmgard"]
    idx = {name: header.index(name) for name in COMPRESSORS}
    wins = 0
    for row in rows:
        ipcomp_cr = float(row[idx["ipcomp"]])
        best_prog = max(float(row[idx[c]]) for c in progressive)
        if ipcomp_cr >= best_prog * 0.95:
            wins += 1
    assert wins >= len(rows) * 0.6
