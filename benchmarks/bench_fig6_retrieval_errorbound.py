"""Figure 6 — retrieval volume (bitrate) needed to reach a target L∞ error.

Paper claim: IPComp needs the smallest data volume to reconstruct to a given
error bound (up to 83 % less than the baselines), supports *arbitrary* bounds,
and needs a single decompression pass, whereas SZ3-R/ZFP-R only offer a
staircase of pre-defined bounds with one pass per rung.

The harness compresses every dataset at eb = 1e−6·range, sweeps retrieval
bounds from 2^14·eb down to eb, and records bits/value loaded plus the number
of decompression passes for IPComp, SZ3-R, ZFP-R and PMGARD.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, skip_scale_tuned_asserts, write_csv
from repro.analysis import max_error
from repro.baselines import make_compressor

COMPRESSORS = ("ipcomp", "sz3-r", "zfp-r", "pmgard")
BASE_BOUND = 1e-6
TARGET_MULTIPLIERS = (2**14, 2**12, 2**10, 2**8, 2**6, 2**4, 2**2, 1)


def _run(bench_datasets):
    rows = []
    for name, field in bench_datasets.items():
        compressors = {}
        blobs = {}
        for comp_name in COMPRESSORS:
            comp = make_compressor(comp_name, error_bound=BASE_BOUND, relative=True)
            compressors[comp_name] = comp
            blobs[comp_name] = comp.compress(field)
        eb = compressors["ipcomp"].absolute_bound(field)
        for multiplier in TARGET_MULTIPLIERS:
            target = eb * multiplier
            row = [name, multiplier]
            for comp_name in COMPRESSORS:
                outcome = compressors[comp_name].retrieve(
                    blobs[comp_name], error_bound=target
                )
                achieved = max_error(field, outcome.data)
                bitrate = outcome.bytes_loaded * 8.0 / field.size
                row.extend([f"{bitrate:.3f}", outcome.passes, f"{achieved / eb:.2f}"])
                assert achieved <= target * (1 + 1e-9), (comp_name, multiplier)
            rows.append(row)
    return rows


@pytest.mark.benchmark(group="fig6")
def test_fig6_retrieval_under_error_bounds(benchmark, bench_datasets, results_dir):
    rows = benchmark.pedantic(_run, args=(bench_datasets,), rounds=1, iterations=1)
    header = ["dataset", "target (×eb)"]
    for comp_name in COMPRESSORS:
        header += [f"{comp_name} bpp", f"{comp_name} passes", f"{comp_name} err/eb"]
    print_table("Figure 6: bitrate needed per retrieval error bound", header, rows)
    write_csv(results_dir / "fig6_retrieval_errorbound.csv", header, rows)

    # Shape checks: IPComp always needs a single pass; residual baselines need
    # progressively more passes at tighter targets; at the tightest target
    # IPComp's retrieval volume beats the residual ladders.
    idx_ip_bpp = header.index("ipcomp bpp")
    idx_ip_passes = header.index("ipcomp passes")
    idx_sz3r_bpp = header.index("sz3-r bpp")
    idx_sz3r_passes = header.index("sz3-r passes")
    assert all(int(row[idx_ip_passes]) == 1 for row in rows)
    # The volume comparison against the residual ladder (and the ladder's
    # pass count) holds once per-stream overheads are amortised over
    # enough payload; tiny fields measure mostly headers.
    skip_scale_tuned_asserts(
        "retrieval-volume ordering vs sz3-r emerges above header overheads"
    )
    tight = [row for row in rows if row[1] == 1]
    assert all(
        float(row[idx_ip_bpp]) <= float(row[idx_sz3r_bpp]) * 1.05 for row in tight
    )
    assert all(int(row[idx_sz3r_passes]) >= 3 for row in tight)
