"""Figure 6 (I/O companion) — ROI-progressive retrieval from a file-backed store.

Paper claim: progressive retrieval pays off because the storage layer can
fetch *parts* of a compressed object.  This harness stores every Table 3
field as a sharded :class:`repro.io.ChunkedDataset` container and measures
the bytes actually read off the file for

* a full-field retrieval at a relaxed bound,
* a region-of-interest retrieval (≤ 1/4 of the volume) at the same bound —
  which must touch **less than 50 %** of the full-field volume, and
* a stateful coarse → tight ``refine()`` pair — whose second request must
  load only *new* plane blocks, re-reading **zero** of the byte ranges the
  first request already fetched (Algorithm 2 per shard).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, write_csv
from repro.analysis import max_error
from repro.io import ChunkedDataset

BASE_BOUND = 1e-6
N_BLOCKS = 4
READ_MULTIPLIER = 64      # relaxed bound of the full/ROI comparison
COARSE_MULTIPLIER = 1024  # first refine() rung
TIGHT_MULTIPLIER = 16     # second refine() rung


def _run(bench_datasets, tmp_dir):
    rows = []
    for name, field in bench_datasets.items():
        path = tmp_dir / f"{name}.rprc"
        manifest = ChunkedDataset.write(
            path, field, error_bound=BASE_BOUND, relative=True,
            n_blocks=N_BLOCKS, workers=0,
        )
        eb = manifest["error_bound"]
        target = eb * READ_MULTIPLIER

        with ChunkedDataset(path) as dataset:
            full = dataset.read(error_bound=target)
        assert max_error(field, full.data) <= target * (1 + 1e-9), name

        # A leading slab of <= 1/4 of the volume: quarter of axis 0.
        roi = (slice(0, max(1, field.shape[0] // N_BLOCKS)),)
        with ChunkedDataset(path) as dataset:
            part = dataset.read(error_bound=target, roi=roi)
            n_shards = dataset.n_shards
        assert part.data.size <= field.size / N_BLOCKS + field.size // field.shape[0]
        assert max_error(field[part.roi], part.data) <= target * (1 + 1e-9), name

        # Stateful refinement: coarse then tight, no byte range read twice.
        with ChunkedDataset(path) as dataset:
            coarse = dataset.refine(error_bound=eb * COARSE_MULTIPLIER)
            tight = dataset.refine(error_bound=eb * TIGHT_MULTIPLIER)
        reread = len(set(coarse.ranges) & set(tight.ranges))
        assert max_error(field, tight.data) <= eb * TIGHT_MULTIPLIER * (1 + 1e-9)

        rows.append(
            [
                name,
                f"{len(part.shards)}/{n_shards}",
                full.bytes_loaded,
                part.bytes_loaded,
                f"{part.bytes_loaded / full.bytes_loaded:.3f}",
                coarse.bytes_loaded,
                tight.bytes_loaded,
                reread,
            ]
        )
    return rows


@pytest.mark.benchmark(group="fig6")
def test_fig6_roi_io(benchmark, bench_datasets, results_dir, tmp_path):
    rows = benchmark.pedantic(
        _run, args=(bench_datasets, tmp_path), rounds=1, iterations=1
    )
    header = [
        "dataset",
        "roi shards",
        "full B",
        "roi B",
        "roi/full",
        "coarse B",
        "refine B",
        "reread ranges",
    ]
    print_table("Figure 6 companion: ROI bytes touched vs full-field reads", header, rows)
    write_csv(results_dir / "fig6_roi_io.csv", header, rows)

    # Partial retrieval must be *demonstrably* partial: a <= 1/4-volume ROI
    # touches < 50 % of the full-field read at the same bound, and Algorithm-2
    # refinement re-reads zero previously loaded plane-block ranges while
    # still loading something new.
    assert all(float(row[4]) < 0.5 for row in rows)
    assert all(int(row[6]) > 0 for row in rows)
    assert all(int(row[7]) == 0 for row in rows)
