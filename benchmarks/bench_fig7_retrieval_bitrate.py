"""Figure 7 — reconstruction error under a fixed retrieval bitrate budget.

Paper claim: under the same bitrate budget IPComp reconstructs with the lowest
L∞ error (up to 99 % lower), because its optimizer picks the most valuable
bitplanes for the budget, while the residual ladders can only jump between
pre-defined rungs (staircase behaviour) and PMGARD spends bits on a less
efficient decomposition.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, skip_scale_tuned_asserts, write_csv
from repro.analysis import max_error
from repro.baselines import make_compressor

COMPRESSORS = ("ipcomp", "sz3-r", "zfp-r", "pmgard")
BASE_BOUND = 1e-6
BITRATES = (0.5, 1.0, 2.0, 4.0, 8.0)


def _run(bench_datasets):
    rows = []
    for name, field in bench_datasets.items():
        compressors = {}
        blobs = {}
        for comp_name in COMPRESSORS:
            comp = make_compressor(comp_name, error_bound=BASE_BOUND, relative=True)
            compressors[comp_name] = comp
            blobs[comp_name] = comp.compress(field)
        value_range = float(field.max() - field.min())
        for bitrate in BITRATES:
            row = [name, bitrate]
            for comp_name in COMPRESSORS:
                try:
                    outcome = compressors[comp_name].retrieve(
                        blobs[comp_name], bitrate=bitrate
                    )
                    relative_error = max_error(field, outcome.data) / value_range
                    guaranteed = (
                        outcome.achieved_bound / value_range
                        if outcome.achieved_bound is not None
                        else float("nan")
                    )
                    used = outcome.bytes_loaded * 8.0 / field.size
                    if used > bitrate * 1.05:
                        # Residual ladders cannot go below their coarsest rung:
                        # the request is *not* satisfiable within the budget
                        # (the paper's "limited pre-defined bounds" drawback).
                        row.extend(["over", "over", f"{used:.3f}"])
                    else:
                        row.extend(
                            [f"{relative_error:.3e}", f"{guaranteed:.3e}", f"{used:.3f}"]
                        )
                except Exception:
                    # A budget below the compressor's minimum loadable unit.
                    row.extend(["n/a", "n/a", "n/a"])
            rows.append(row)
    return rows


@pytest.mark.benchmark(group="fig7")
def test_fig7_error_under_bitrate_budget(benchmark, bench_datasets, results_dir):
    rows = benchmark.pedantic(_run, args=(bench_datasets,), rounds=1, iterations=1)
    header = ["dataset", "bitrate budget"]
    for comp_name in COMPRESSORS:
        header += [
            f"{comp_name} rel.err",
            f"{comp_name} bound",
            f"{comp_name} bpp used",
        ]
    print_table("Figure 7: error under a bitrate budget", header, rows)
    write_csv(results_dir / "fig7_retrieval_bitrate.csv", header, rows)

    # Shape checks:
    #  (a) IPComp satisfies *every* budget (never "over"/"n/a"), its
    #      *guaranteed* bound decreases monotonically with the budget, and
    #      the measured error never exceeds the guarantee.  The measured
    #      error itself may wobble non-monotonically: the optimizer
    #      minimises the δ-table bound, and a bigger budget can pick a
    #      plane allocation whose realised error lands differently under
    #      its (tighter) bound.
    #  (b) the residual ladders cannot honour the small budgets at all
    #      (their coarsest rung is already larger — the staircase drawback);
    #  (c) see EXPERIMENTS.md for the quantitative comparison against the
    #      rungs that do fit a budget — that part only partially reproduces
    #      with the DEFLATE backend, so it is reported rather than asserted.
    idx_ip = header.index("ipcomp rel.err")
    idx_ip_bound = header.index("ipcomp bound")
    per_dataset = {}
    for row in rows:
        per_dataset.setdefault(row[0], []).append(row)
    if any(
        r[idx_ip] in ("over", "n/a") for drs in per_dataset.values() for r in drs
    ):
        # On tiny fields the fixed header+anchor overhead exceeds the small
        # bitrate budgets, so even IPComp cannot satisfy them — claim (a)
        # is about fields where payload dominates overhead.
        skip_scale_tuned_asserts(
            "tiny fields make sub-overhead budgets unsatisfiable for ipcomp too"
        )
    for dataset_rows in per_dataset.values():
        bounds = [float(r[idx_ip_bound]) for r in dataset_rows]
        assert all(b <= a * 1.001 for a, b in zip(bounds, bounds[1:]))
        for r in dataset_rows:
            assert float(r[idx_ip]) <= float(r[idx_ip_bound]) * (1 + 1e-9)
        smallest_budget = dataset_rows[0]
        for ladder in ("sz3-r rel.err", "zfp-r rel.err"):
            assert smallest_budget[header.index(ladder)] in ("over", "n/a")
