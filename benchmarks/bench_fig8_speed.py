"""Figure 8 — compression and decompression throughput.

Paper claim: IPComp is the fastest progressive compressor in both directions
(up to ~300 % faster), except against SZ3-M which is multi-fidelity but not
progressive; SPERR-R is far slower than everything else, which is why the
paper drops it from the full evaluation.

Absolute MB/s numbers of this pure-Python reproduction are of course far below
the paper's C++ implementation — the comparison of interest is the relative
ordering, in particular IPComp vs. the residual ladders which must run many
compression/decompression passes.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import print_table, write_csv
from repro.baselines import make_compressor

COMPRESSORS = ("ipcomp", "sz3-m", "sz3-r", "zfp-r", "pmgard", "sperr-r")
#: The paper uses eb = 1e−9·range for the speed study.
BOUND = 1e-9
#: The speed study uses a subset of fields to keep the harness short.
SPEED_FIELDS = ("density", "wave", "ch4")


def _run(bench_datasets):
    rows = []
    for name in SPEED_FIELDS:
        field = bench_datasets[name]
        mb = field.nbytes / 1e6
        for comp_name in COMPRESSORS:
            comp = make_compressor(comp_name, error_bound=BOUND, relative=True)
            start = time.perf_counter()
            blob = comp.compress(field)
            compress_seconds = time.perf_counter() - start
            start = time.perf_counter()
            comp.decompress(blob)
            decompress_seconds = time.perf_counter() - start
            rows.append(
                [
                    name,
                    comp_name,
                    f"{mb / compress_seconds:.3f}",
                    f"{mb / decompress_seconds:.3f}",
                    f"{compress_seconds:.3f}",
                    f"{decompress_seconds:.3f}",
                ]
            )
    return rows


@pytest.mark.benchmark(group="fig8")
def test_fig8_compression_decompression_speed(benchmark, bench_datasets, results_dir):
    rows = benchmark.pedantic(_run, args=(bench_datasets,), rounds=1, iterations=1)
    header = [
        "dataset", "compressor",
        "compress MB/s", "decompress MB/s", "compress s", "decompress s",
    ]
    print_table("Figure 8: compression / decompression speed", header, rows)
    write_csv(results_dir / "fig8_speed.csv", header, rows)

    # Shape check: IPComp decompression is faster than the residual ladders
    # (which decompress every rung) on every field measured.
    by_key = {(r[0], r[1]): r for r in rows}
    for name in SPEED_FIELDS:
        ip = float(by_key[(name, "ipcomp")][3])
        for ladder in ("sz3-r", "sperr-r"):
            assert ip >= float(by_key[(name, ladder)][3]) * 0.8
