"""Figure 8 — compression and decompression throughput.

Paper claim: IPComp is the fastest progressive compressor in both directions
(up to ~300 % faster), except against SZ3-M which is multi-fidelity but not
progressive; SPERR-R is far slower than everything else, which is why the
paper drops it from the full evaluation.

Absolute MB/s numbers of this pure-Python reproduction are of course far below
the paper's C++ implementation — the comparison of interest is the relative
ordering, in particular IPComp vs. the residual ladders which must run many
compression/decompression passes.

``test_fig8_kernel_speed`` additionally isolates the bit-level kernel stage
(negabinary → bitplane transpose → XOR prediction → bit packing, and its
inverse) and reports the throughput of the ``"reference"`` loop kernel
against the ``"vectorized"`` NumPy kernel on the Figure 8 workload, asserting
that both produce byte-identical plane blocks and that the vectorized path is
at least 5× faster in each direction.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from benchmarks.conftest import print_table, skip_scale_tuned_asserts, write_csv
from repro.baselines import make_compressor
from repro.core.bitplane import DEFAULT_PREFIX_BITS
from repro.core.compressor import IPComp
from repro.core.kernels import get_kernel
from repro.core.negabinary import required_bits
from repro.core.quantizer import LinearQuantizer, relative_to_absolute

COMPRESSORS = ("ipcomp", "sz3-m", "sz3-r", "zfp-r", "pmgard", "sperr-r")
#: The paper uses eb = 1e−9·range for the speed study.
BOUND = 1e-9
#: The speed study uses a subset of fields to keep the harness short.
SPEED_FIELDS = ("density", "wave", "ch4")
#: Values fed to the kernel microbenchmark (capped so the per-bit Python
#: loops of the reference kernel finish in seconds, not minutes).
KERNEL_BENCH_VALUES = 1 << 15
#: Acceptance floor for the vectorized kernel (encode and decode).
KERNEL_SPEEDUP_FLOOR = 5.0


def _run(bench_datasets):
    rows = []
    for name in SPEED_FIELDS:
        field = bench_datasets[name]
        mb = field.nbytes / 1e6
        for comp_name in COMPRESSORS:
            comp = make_compressor(comp_name, error_bound=BOUND, relative=True)
            start = time.perf_counter()
            blob = comp.compress(field)
            compress_seconds = time.perf_counter() - start
            start = time.perf_counter()
            comp.decompress(blob)
            decompress_seconds = time.perf_counter() - start
            rows.append(
                [
                    name,
                    comp_name,
                    f"{mb / compress_seconds:.3f}",
                    f"{mb / decompress_seconds:.3f}",
                    f"{compress_seconds:.3f}",
                    f"{decompress_seconds:.3f}",
                ]
            )
    return rows


@pytest.mark.benchmark(group="fig8")
def test_fig8_compression_decompression_speed(benchmark, bench_datasets, results_dir):
    rows = benchmark.pedantic(_run, args=(bench_datasets,), rounds=1, iterations=1)
    header = [
        "dataset", "compressor",
        "compress MB/s", "decompress MB/s", "compress s", "decompress s",
    ]
    print_table("Figure 8: compression / decompression speed", header, rows)
    write_csv(results_dir / "fig8_speed.csv", header, rows)

    # Shape check: IPComp decompression is faster than the residual ladders
    # (which decompress every rung) on every field measured.  The ordering
    # needs fields big enough that per-rung fixed costs — not the payload
    # work this figure is about — stop deciding the ranking.
    skip_scale_tuned_asserts(
        "decompression-speed ordering vs residual ladders needs ≥ default fields"
    )
    by_key = {(r[0], r[1]): r for r in rows}
    for name in SPEED_FIELDS:
        ip = float(by_key[(name, "ipcomp")][3])
        for ladder in ("sz3-r", "sperr-r"):
            assert ip >= float(by_key[(name, ladder)][3]) * 0.8


def _run_kernels(bench_datasets):
    """Time one plane-coding round trip per kernel on a Fig. 8 field.

    The timed region contains *only* kernel calls — negabinary conversion,
    bitplane transpose, XOR prediction, and per-plane bit (un)packing — so
    the comparison is free of the lossless backend and of ``encode_level``'s
    kernel-independent δ-table bookkeeping.  Byte identity is asserted
    untimed, both on the packed planes and on whole IPComp streams.
    """
    field = bench_datasets["density"].ravel()[:KERNEL_BENCH_VALUES]
    eb = relative_to_absolute(BOUND, field)
    codes = LinearQuantizer(eb).quantize(field)
    nbits = required_bits(codes)
    rows = []
    timings = {}
    planes_by_kernel = {}
    for kernel_name in ("reference", "vectorized"):
        kernel = get_kernel(kernel_name)

        start = time.perf_counter()
        negabinary = kernel.to_negabinary(codes)
        planes = kernel.extract_bitplanes(negabinary, nbits)
        predicted = kernel.predictive_encode(planes, DEFAULT_PREFIX_BITS)
        packed = [kernel.pack_bits(plane) for plane in predicted]
        encode_seconds = time.perf_counter() - start

        start = time.perf_counter()
        unpacked = np.empty((nbits, codes.size), dtype=np.uint8)
        for row, block in enumerate(packed):
            unpacked[row] = kernel.unpack_bits(block, codes.size)
        decoded_planes = kernel.predictive_decode(unpacked, DEFAULT_PREFIX_BITS)
        decoded = kernel.from_negabinary(
            kernel.assemble_bitplanes(decoded_planes, nbits)
        )
        decode_seconds = time.perf_counter() - start

        assert np.array_equal(decoded, codes)
        planes_by_kernel[kernel_name] = packed
        timings[kernel_name] = (encode_seconds, decode_seconds)
        mb = field.nbytes / 1e6
        rows.append(
            [
                kernel_name,
                field.size,
                nbits,
                f"{mb / encode_seconds:.3f}",
                f"{mb / decode_seconds:.3f}",
                f"{encode_seconds:.4f}",
                f"{decode_seconds:.4f}",
            ]
        )
    encode_speedup = timings["reference"][0] / timings["vectorized"][0]
    decode_speedup = timings["reference"][1] / timings["vectorized"][1]
    identical = planes_by_kernel["reference"] == planes_by_kernel["vectorized"]

    # End-to-end stream identity on a small slab (untimed; the full field
    # would make the reference kernel's Python loops dominate the harness).
    slab = bench_datasets["density"][:16, :16, :16]
    streams = {
        name: IPComp(error_bound=BOUND, relative=True, kernel=name).compress(slab)
        for name in ("reference", "vectorized")
    }
    identical = identical and streams["reference"] == streams["vectorized"]
    return rows, encode_speedup, decode_speedup, identical


@pytest.mark.benchmark(group="fig8")
def test_fig8_kernel_speed(benchmark, bench_datasets, results_dir):
    rows, encode_speedup, decode_speedup, identical = benchmark.pedantic(
        _run_kernels, args=(bench_datasets,), rounds=1, iterations=1
    )
    header = [
        "kernel", "values", "planes",
        "encode MB/s", "decode MB/s", "encode s", "decode s",
    ]
    print_table("Figure 8 (kernels): reference vs. vectorized", header, rows)
    print(
        f"vectorized speedup: encode {encode_speedup:.1f}x, "
        f"decode {decode_speedup:.1f}x, byte-identical blocks: {identical}"
    )
    write_csv(results_dir / "fig8_kernel_speed.csv", header, rows)
    with open(results_dir / "fig8_kernel_speed.json", "w") as handle:
        json.dump(
            {
                "rows": [dict(zip(header, row)) for row in rows],
                "encode_speedup": encode_speedup,
                "decode_speedup": decode_speedup,
                "byte_identical_blocks": identical,
            },
            handle,
            indent=2,
        )

    assert identical, "reference and vectorized kernels must emit identical blocks"
    assert encode_speedup >= KERNEL_SPEEDUP_FLOOR
    assert decode_speedup >= KERNEL_SPEEDUP_FLOOR
