"""Figure 9 — residual-ladder speed versus the number of residual levels.

Paper claim: the more pre-defined error bounds a residual-based compressor
offers (i.e. the more retrieval flexibility), the slower its compression and
decompression become, because every additional rung is another full
compression/decompression pass; the curve bends (each extra rung is cheaper
than the last because looser bounds quantize to smaller integers) but the
total keeps growing.  IPComp's single-pass cost is flat by construction and
shown as the reference line.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import print_table, skip_scale_tuned_asserts, write_csv
from repro.baselines import make_compressor

RUNG_COUNTS = (2, 3, 4, 5, 6, 7, 8)
BOUND = 1e-6
FIELD = "density"


def _run(bench_datasets):
    field = bench_datasets[FIELD]
    mb = field.nbytes / 1e6
    rows = []

    ipcomp = make_compressor("ipcomp", error_bound=BOUND, relative=True)
    start = time.perf_counter()
    blob = ipcomp.compress(field)
    ip_compress = time.perf_counter() - start
    start = time.perf_counter()
    ipcomp.decompress(blob)
    ip_decompress = time.perf_counter() - start
    rows.append(["ipcomp", "-", f"{mb / ip_compress:.3f}", f"{mb / ip_decompress:.3f}"])

    for ladder_name in ("sz3-r", "zfp-r"):
        for rungs in RUNG_COUNTS:
            comp = make_compressor(
                ladder_name, error_bound=BOUND, relative=True, rungs=rungs
            )
            start = time.perf_counter()
            blob = comp.compress(field)
            compress_seconds = time.perf_counter() - start
            start = time.perf_counter()
            comp.decompress(blob)
            decompress_seconds = time.perf_counter() - start
            rows.append(
                [
                    ladder_name,
                    rungs,
                    f"{mb / compress_seconds:.3f}",
                    f"{mb / decompress_seconds:.3f}",
                ]
            )
    return rows


@pytest.mark.benchmark(group="fig9")
def test_fig9_residual_count_scaling(benchmark, bench_datasets, results_dir):
    rows = benchmark.pedantic(_run, args=(bench_datasets,), rounds=1, iterations=1)
    header = ["compressor", "residual levels", "compress MB/s", "decompress MB/s"]
    print_table("Figure 9: residual-ladder speed vs. rung count", header, rows)
    write_csv(results_dir / "fig9_residual_scaling.csv", header, rows)

    # Shape check: decompression throughput with many rungs is clearly below
    # the few-rung case (every extra rung is another mandatory decompression
    # pass); compression throughput may only degrade within noise for SZ3-R
    # because its first (tightest) rung dominates the cost, so it gets a
    # tolerance instead of a strict inequality.  On tiny fields per-rung
    # work shrinks below timer noise and per-call fixed costs, so the
    # ordering is measurement noise, not a property of the ladders.
    skip_scale_tuned_asserts(
        "per-rung timing ordering needs ≥ default fields to rise above noise"
    )
    for ladder_name in ("sz3-r", "zfp-r"):
        ladder_rows = [r for r in rows if r[0] == ladder_name]
        few_decompress = float(ladder_rows[0][3])
        many_decompress = float(ladder_rows[-1][3])
        assert many_decompress < few_decompress
        few_compress = float(ladder_rows[0][2])
        many_compress = float(ladder_rows[-1][2])
        assert many_compress < few_compress * 1.15
