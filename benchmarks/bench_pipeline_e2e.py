"""End-to-end pipeline throughput: kernels × negotiation × pool workers.

This is the harness behind ``BENCH_pipeline.json`` (repo root): the one
artefact tracking whether the compression pipeline keeps the paper's
headline property — throughput that keeps pace with I/O — as the codebase
grows.  It measures four things:

1. **Kernel × negotiation matrix** — encode/decode MB/s of the full IPComp
   pipeline for every registered bit-level kernel (``reference``,
   ``vectorized``, ``fused``, plus ``compiled`` when numba is installed)
   under full and sampled backend negotiation on the wide candidate set,
   with stream byte-identity across kernels asserted on the side.
2. **Kernel stage in isolation** — ``encode_planes``/``decode_planes``
   throughput of the vectorized vs. the fused kernel (the fused kernel's
   whole reason to exist); asserts fused ≥ vectorized in both directions.
   On numba-equipped boxes the compiled kernel joins the stage with its
   one-off JIT warmup timed separately (``numba.jit_warmup_s``) so the
   ``compiled_vs_fused_min`` floor gates steady-state throughput only.
3. **Negotiation policies head-to-head** — fixed vs. full vs. sampled
   encode time on a field large enough that planes dwarf the probe, the
   regime sampled negotiation targets; asserts sampled ≥ 2× faster than
   full on the wide candidate set.
4. **Pool scaling** — ``BlockParallelCompressor`` throughput over worker
   counts (recorded, not asserted: single-core CI boxes cannot scale).

A checked-in floor (``benchmarks/perf_floor.json``) turns the bench into a
regression gate: when the floor file's scale matches the active
``REPRO_BENCH_SCALE``, encode throughput more than 30 % below the floor
fails the run.  Floors are deliberately conservative (≈ a quarter of the
measurement machine's numbers) so only real regressions — not CI jitter —
trip them.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SCALE, REPO_ROOT, print_table, write_csv
from repro.core.compressor import IPComp
from repro.core.kernels import get_kernel
from repro.core.kernels_compiled import numba_available, numba_version, threading_layer
from repro.core.profile import CodecProfile
from repro.core.progressive import ProgressiveRetriever
from repro.parallel.executor import BlockParallelCompressor

BENCH_JSON = REPO_ROOT / "BENCH_pipeline.json"
FLOOR_FILE = REPO_ROOT / "benchmarks" / "perf_floor.json"

_HAVE_COMPILED = numba_available()
KERNELS = ("reference", "vectorized", "fused") + (
    ("compiled",) if _HAVE_COMPILED else ()
)
#: Wide candidate set: the cheap C-backed coders plus every from-scratch
#: Python coder, i.e. the configuration where negotiation cost hurts most.
WIDE_CODERS = ("zlib", "huffman", "rle", "lz77", "raw")
BOUND = 1e-5

#: Matrix field shapes per scale (the reference kernel runs Python loops
#: per bit, so the matrix field stays modest even at full scale).
_MATRIX_SHAPES = {
    "tiny": (20, 24, 28),
    "default": (32, 36, 40),
    "full": (44, 48, 56),
    "paper": (44, 48, 56),
}

#: The negotiation head-to-head runs on a fixed large field regardless of
#: scale: sampled negotiation's ≥ 2× claim is about the plane ≫ probe
#: regime, which small fields simply do not contain.
_NEGOTIATION_SHAPE = (96, 104, 112)
_NEGOTIATION_SAMPLE = 2048

_POOL_SHAPE = (96, 96, 96)
_POOL_WORKERS = (0, 2, 4)


def _synthetic_field(shape) -> np.ndarray:
    rng = np.random.default_rng(314159)  # local; never the shared fixture rng
    grids = np.meshgrid(*(np.linspace(0, 1, s) for s in shape), indexing="ij")
    smooth = sum(np.sin((3 + i) * g) for i, g in enumerate(grids))
    return (smooth + 0.05 * rng.normal(size=shape)).astype(np.float64)


def _best_seconds(fn, reps: int) -> float:
    best = None
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None or elapsed < best else best
    return best


def _profile(kernel: str, negotiation: str) -> CodecProfile:
    return CodecProfile(
        error_bound=BOUND,
        relative=True,
        kernel=kernel,
        plane_coders=WIDE_CODERS,
        negotiation=negotiation,
        negotiation_sample=_NEGOTIATION_SAMPLE,
    )


def _run_numba_info():
    """JIT backend provenance + one-off warmup cost, measured while cold.

    Must run before anything touches the compiled kernel: ``warmup()`` on a
    cold process captures the real compile (or on-disk cache load) cost,
    which is exactly the number the steady-state floors must *not* absorb.
    With ``NUMBA_CACHE_DIR`` persisted across CI runs this drops from
    seconds to milliseconds — recording it is how that stays visible.
    """
    info = {
        "available": _HAVE_COMPILED,
        "numba_version": numba_version(),
        "threading_layer": None,
        "jit_warmup_s": None,
    }
    if _HAVE_COMPILED:
        from repro.core.kernels_compiled import CompiledKernel

        info["jit_warmup_s"] = round(CompiledKernel().warmup(), 4)
        info["threading_layer"] = threading_layer()
    return info


def _run_matrix(field):
    mb = field.nbytes / 1e6
    cells = {}
    streams = {}
    for negotiation_label, negotiation in (("full", "smallest"), ("sampled", "sampled")):
        for kernel in KERNELS:
            comp = IPComp(profile=_profile(kernel, negotiation))
            reps = 1 if kernel == "reference" else 3
            blob = comp.compress(field)
            encode_s = _best_seconds(lambda: comp.compress(field), reps)
            decode_s = _best_seconds(lambda: comp.decompress(blob), reps)
            cells[f"{kernel}/{negotiation_label}"] = {
                "encode_mbps": round(mb / encode_s, 3),
                "decode_mbps": round(mb / decode_s, 3),
                "encode_s": round(encode_s, 4),
                "decode_s": round(decode_s, 4),
                "stream_bytes": len(blob),
            }
            streams.setdefault(negotiation_label, {})[kernel] = blob
    return cells, streams


#: Values fed to the kernel-stage microbenchmark.  Fixed regardless of the
#: scale preset: the fused kernel's buffer-arena advantage is a function of
#: level size, and the regime that matters is the paper's (≳10⁵ values per
#: level) — tiny fields would only measure dispatch overhead.
_KERNEL_STAGE_VALUES = 400_000


def _run_kernel_stage(field):
    """encode_planes/decode_planes throughput, vectorized vs. fused.

    Quantized at the paper's speed-study bound (eb = 1e−9 · range, the
    Figure 8 setting) so levels are ~30 planes deep — the regime where the
    per-plane overheads the fused kernel removes actually accumulate.
    """
    from repro.core.quantizer import LinearQuantizer, relative_to_absolute

    rng = np.random.default_rng(27182)
    values = np.repeat(field.ravel(), _KERNEL_STAGE_VALUES // field.size + 1)
    values = values[:_KERNEL_STAGE_VALUES] + 0.01 * rng.normal(
        size=_KERNEL_STAGE_VALUES
    )
    quantizer = LinearQuantizer(relative_to_absolute(1e-9, values))
    codes = quantizer.quantize(values)
    mb = codes.size * 8 / 1e6
    stage_names = ("vectorized", "fused") + (
        ("compiled",) if _HAVE_COMPILED else ()
    )
    kernels = {name: get_kernel(name) for name in stage_names}
    nbits, blocks = kernels["vectorized"].encode_planes(codes, 2)
    for kernel in kernels.values():  # warm arenas / caches before timing
        kernel.encode_planes(codes, 2)
        kernel.decode_planes(blocks, codes.size, nbits, 2)
    # Interleave the per-kernel measurements so slow drift on a shared box
    # (the usual CI noise mode) hits both kernels alike.
    best = {name: {"encode": None, "decode": None} for name in kernels}
    for _ in range(7):
        for name, kernel in kernels.items():
            for op, fn in (
                ("encode", lambda k=kernel: k.encode_planes(codes, 2)),
                ("decode", lambda k=kernel: k.decode_planes(blocks, codes.size, nbits, 2)),
            ):
                start = time.perf_counter()
                fn()
                elapsed = time.perf_counter() - start
                if best[name][op] is None or elapsed < best[name][op]:
                    best[name][op] = elapsed
    stage = {
        name: {
            "values": codes.size,
            "encode_mbps": round(mb / best[name]["encode"], 3),
            "decode_mbps": round(mb / best[name]["decode"], 3),
        }
        for name in kernels
    }
    stage["speedup_encode"] = round(
        stage["fused"]["encode_mbps"] / stage["vectorized"]["encode_mbps"], 3
    )
    stage["speedup_decode"] = round(
        stage["fused"]["decode_mbps"] / stage["vectorized"]["decode_mbps"], 3
    )
    if "compiled" in stage:
        # Steady-state only: the warmup loop above already absorbed the JIT
        # compile, and _run_numba_info() reports that cost separately.
        stage["compiled_vs_fused_encode"] = round(
            stage["compiled"]["encode_mbps"] / stage["fused"]["encode_mbps"], 3
        )
        stage["compiled_vs_fused_decode"] = round(
            stage["compiled"]["decode_mbps"] / stage["fused"]["decode_mbps"], 3
        )
    return stage


def _run_negotiation(field):
    mb = field.nbytes / 1e6
    timings = {}
    captured = {}
    for label, negotiation in (
        ("fixed", "fixed"),
        ("full", "smallest"),
        ("sampled", "sampled"),
    ):
        comp = IPComp(profile=_profile("fused", negotiation))
        reps = 2 if label != "full" else 1

        def run(label=label, comp=comp):
            captured[label] = comp.compress(field)

        timings[label] = _best_seconds(run, reps)
    overhead_full = (timings["full"] - timings["fixed"]) / timings["full"]
    overhead_sampled = (timings["sampled"] - timings["fixed"]) / timings["sampled"]
    # Per-plane coder agreement between the sampled (autotuned-probe) and
    # full policies, straight from the two headers — the ≥90 % pin of the
    # sampled-negotiation contract lives in this gate.
    header_full = ProgressiveRetriever(captured["full"]).header
    header_sampled = ProgressiveRetriever(captured["sampled"]).header
    total = agree = 0
    for enc_full, enc_sampled in zip(header_full.levels, header_sampled.levels):
        for a, b in zip(enc_full.plane_coders, enc_sampled.plane_coders):
            total += 1
            agree += a == b
    return {
        "shape": list(field.shape),
        "candidates": list(WIDE_CODERS),
        "sample_bytes": _NEGOTIATION_SAMPLE,
        "fixed_s": round(timings["fixed"], 3),
        "full_s": round(timings["full"], 3),
        "sampled_s": round(timings["sampled"], 3),
        "fixed_mbps": round(mb / timings["fixed"], 3),
        "full_mbps": round(mb / timings["full"], 3),
        "sampled_mbps": round(mb / timings["sampled"], 3),
        "speedup_sampled_over_full": round(timings["full"] / timings["sampled"], 3),
        "negotiation_overhead_full": round(overhead_full, 3),
        "negotiation_overhead_sampled": round(overhead_sampled, 3),
        "sampled_coder_agreement": round(agree / max(total, 1), 4),
        "sampled_stream_bytes": len(captured["sampled"]),
        "full_stream_bytes": len(captured["full"]),
    }


def _run_pool(field):
    mb = field.nbytes / 1e6
    scaling = {}
    for workers in _POOL_WORKERS:
        comp = BlockParallelCompressor(
            error_bound=BOUND, relative=True, n_blocks=8, workers=workers
        )
        seconds = _best_seconds(lambda: comp.compress(field), 2)
        scaling[str(workers)] = {
            "encode_mbps": round(mb / seconds, 3),
            "encode_s": round(seconds, 3),
        }
    return {"shape": list(field.shape), "cpu_count": os.cpu_count(), **scaling}


def _check_floor(payload) -> list:
    """Regression gate against the checked-in floor (>30 % drop fails)."""
    if not FLOOR_FILE.exists():
        return []
    floor = json.loads(FLOOR_FILE.read_text())
    if floor.get("scale") != BENCH_SCALE:
        return []  # floors are calibrated per scale; no cross-scale gating
    failures = []
    for cell, minimum in floor.get("encode_mbps", {}).items():
        measured = payload["matrix"].get(cell, {}).get("encode_mbps")
        if measured is not None and measured < minimum * 0.7:
            failures.append(
                f"{cell}: encode {measured} MB/s < 70% of floor {minimum} MB/s"
            )
    # The compiled-vs-fused ratio floor arms itself only on numba-equipped
    # runs: without numba the kernel stage has no compiled rows and the
    # lookup below finds nothing to gate.
    ratio_floor = floor.get("compiled_vs_fused_min")
    if ratio_floor is not None:
        for key in ("compiled_vs_fused_encode", "compiled_vs_fused_decode"):
            measured = payload["kernel_stage"].get(key)
            if measured is not None and measured < ratio_floor:
                failures.append(f"{key}: {measured} < floor {ratio_floor}")
    return failures


def _run(_bench_datasets_unused=None):
    numba_info = _run_numba_info()  # first: warmup must see a cold JIT
    matrix_field = _synthetic_field(_MATRIX_SHAPES.get(BENCH_SCALE, (32, 36, 40)))
    matrix, streams = _run_matrix(matrix_field)
    kernel_stage = _run_kernel_stage(matrix_field)
    negotiation = _run_negotiation(_synthetic_field(_NEGOTIATION_SHAPE))
    pool = _run_pool(_synthetic_field(_POOL_SHAPE))
    identical = all(
        len({streams[mode][k] for k in KERNELS}) == 1 for mode in streams
    )
    sampled_decodes = True
    retriever = ProgressiveRetriever(streams["sampled"]["fused"])
    out = retriever.retrieve(error_bound=retriever.header.error_bound).data
    sampled_decodes = bool(
        np.abs(out - matrix_field).max()
        <= _profile("fused", "sampled").absolute_bound(matrix_field) * (1 + 1e-9)
    )
    payload = {
        "schema": "bench-pipeline-e2e/v1",
        "scale": BENCH_SCALE,
        "matrix_shape": list(matrix_field.shape),
        "matrix_field_mb": round(matrix_field.nbytes / 1e6, 3),
        "candidates": list(WIDE_CODERS),
        "matrix": matrix,
        "kernel_stage": kernel_stage,
        "numba": numba_info,
        "negotiation": negotiation,
        "pool": pool,
        "streams_byte_identical_across_kernels": identical,
        "sampled_stream_decodes_within_bound": sampled_decodes,
    }
    return payload


@pytest.mark.benchmark(group="pipeline")
def test_pipeline_e2e(benchmark, results_dir):
    payload = benchmark.pedantic(_run, rounds=1, iterations=1)

    header = ["cell", "encode MB/s", "decode MB/s", "stream bytes"]
    rows = [
        [cell, c["encode_mbps"], c["decode_mbps"], c["stream_bytes"]]
        for cell, c in payload["matrix"].items()
    ]
    print_table("Pipeline e2e: kernel × negotiation", header, rows)
    write_csv(results_dir / "pipeline_e2e.csv", header, rows)
    negotiation = payload["negotiation"]
    print(
        f"kernel stage: fused {payload['kernel_stage']['speedup_encode']}x encode, "
        f"{payload['kernel_stage']['speedup_decode']}x decode vs vectorized\n"
        f"negotiation: sampled {negotiation['speedup_sampled_over_full']}x faster "
        f"than full (overhead {negotiation['negotiation_overhead_full']} → "
        f"{negotiation['negotiation_overhead_sampled']})"
    )
    numba_info = payload["numba"]
    if numba_info["available"]:
        print(
            f"compiled kernel (numba {numba_info['numba_version']}, "
            f"{numba_info['threading_layer']} threading): "
            f"{payload['kernel_stage']['compiled_vs_fused_encode']}x encode, "
            f"{payload['kernel_stage']['compiled_vs_fused_decode']}x decode "
            f"vs fused; JIT warmup {numba_info['jit_warmup_s']}s (not gated)"
        )
    else:
        print("compiled kernel: numba not installed; compiled column skipped")
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    # Correctness gates: identity across kernels, decodable sampled streams.
    assert payload["streams_byte_identical_across_kernels"]
    assert payload["sampled_stream_decodes_within_bound"]

    # Perf gates.  The kernel-stage comparison is the stable signal for
    # "fused ≥ vectorized" (the e2e matrix shares the cells' negotiation
    # cost, so it gets a noise allowance instead of a hard bound).  The
    # decode gate carries a small allowance too: on single-core shared
    # boxes the *vectorized* baseline's timing jitters by ~10 %, and a
    # lucky baseline run must not read as a fused regression.
    stage = payload["kernel_stage"]
    assert stage["speedup_encode"] >= 1.0, stage
    assert stage["speedup_decode"] >= 0.9, stage
    for mode in ("full", "sampled"):
        # The matrix cells are dominated by the (kernel-independent)
        # negotiation trials — at tiny scale ~85 % of encode time — so the
        # fused/vectorized ratio here hovers at 1.0 ± timer noise.  The
        # hard inequality lives in the kernel-stage gate above; this one
        # only catches a fused-path *pessimisation* large enough to show
        # through the shared negotiation cost.
        fused = payload["matrix"][f"fused/{mode}"]["encode_mbps"]
        vectorized = payload["matrix"][f"vectorized/{mode}"]["encode_mbps"]
        assert fused >= vectorized * 0.85, (mode, fused, vectorized)
        if _HAVE_COMPILED:
            compiled = payload["matrix"][f"compiled/{mode}"]["encode_mbps"]
            assert compiled >= vectorized * 0.85, (mode, compiled, vectorized)
    assert negotiation["speedup_sampled_over_full"] >= 2.0, negotiation
    # Sampled negotiation (with the per-plane autotuned probe) must agree
    # with the full trials on ≥ 90 % of planes and cost ≤ 5 % stream size.
    assert negotiation["sampled_coder_agreement"] >= 0.9, negotiation
    assert negotiation["sampled_stream_bytes"] <= (
        negotiation["full_stream_bytes"] * 1.05
    ), negotiation

    floor_failures = _check_floor(payload)
    assert not floor_failures, "\n".join(floor_failures)
