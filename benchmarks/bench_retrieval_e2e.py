"""End-to-end retrieval throughput: sync vs prefetch vs pool decode.

The decode-side companion of ``bench_pipeline_e2e``: it measures the
retrieval engine's three execution paths over a file-backed chunked dataset
and emits **`BENCH_retrieval.json`** at the repo root:

1. **Full-field read** — output MB/s for the synchronous path, the
   prefetching path (range reads overlapped with decode), and the pool
   decode stage per worker count (recorded with the box's ``cpu_count``;
   a 1-core CI box cannot scale, so pool floors only apply on ≥ 2 cores).
2. **ROI reads** — bytes-touched fraction for a ≤ 1/4-volume region
   (the Figure 6 headline), identical across execution paths.
3. **Refinement ladder** — a 4-rung ``refine()`` ladder under prefetch
   with speculation: zero re-read ranges and byte counts identical to the
   synchronous ladder (hard-gated; this is the accounting contract).
4. **Single-stream decode** — the bare ``.ipc`` file path through
   ``open_stream_source`` with and without prefetch.
5. **Loopback HTTP** — the same container served by
   :class:`repro.io.rangeserver.RangeServer` and read through the
   resilient remote stack, one leg per I/O backend (``threads`` vs the
   multiplexed ``async`` event loop) × server condition (clean vs a
   20 ms/read latency plan): MB/s per leg is recorded with its
   ``io_backend`` and ``latency_plan``; byte identity on every leg, a
   retry-free clean run, and **async ≥ 2× the single-connection thread
   path under latency** are hard-gated (the latency legs are
   network-bound, so the speedup gate is valid even on one core).

Correctness is hard-gated (bitwise identity across every path); speed is
recorded and gated only where the hardware can honour it: the checked-in
floor (``benchmarks/perf_floor.json``, ``retrieval_mbps`` section) applies
when the scale matches, and the pool-over-sync floor is asserted only when
``os.cpu_count() ≥ 2``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SCALE, REPO_ROOT, print_table, write_csv
from repro import ChunkedDataset, CodecProfile, IPComp, ProgressiveRetriever
from repro.core.kernels_compiled import numba_available
from repro.io.aio import open_async_source
from repro.io.faults import FaultPlan
from repro.io.rangeserver import RangeServer
from repro.io.remote import open_remote_source
from repro.retrieval.engine import open_stream_source

BENCH_JSON = REPO_ROOT / "BENCH_retrieval.json"
FLOOR_FILE = REPO_ROOT / "benchmarks" / "perf_floor.json"

BOUND = 1e-5
N_BLOCKS = 8
_POOL_WORKERS = (0, 2, 4)
_PREFETCH_DEPTH = 4
#: Server-side injected latency per ranged read for the latency legs.
_REMOTE_LATENCY_S = 0.02
#: Hard gate: async multiplexing must beat the single-connection thread
#: path by at least this factor when reads cost _REMOTE_LATENCY_S each.
_ASYNC_LATENCY_SPEEDUP_MIN = 2.0

_SHAPES = {
    "tiny": (24, 28, 32),
    "default": (48, 56, 64),
    "full": (64, 80, 96),
    "paper": (64, 80, 96),
}


def _synthetic_field(shape) -> np.ndarray:
    rng = np.random.default_rng(271828)  # local; never the shared fixture rng
    grids = np.meshgrid(*(np.linspace(0, 1, s) for s in shape), indexing="ij")
    smooth = sum(np.sin((2 + i) * g) for i, g in enumerate(grids))
    return (smooth + 0.05 * rng.normal(size=shape)).astype(np.float64)


def _best_seconds(fn, reps: int) -> float:
    best = None
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None or elapsed < best else best
    return best


def _read_once(path, **knobs):
    with ChunkedDataset(path, **knobs) as dataset:
        return dataset.read()


def _run_full_reads(path, field):
    mb = field.nbytes / 1e6
    reference = _read_once(path)
    modes = {}
    sync_s = _best_seconds(lambda: _read_once(path), 3)
    modes["sync"] = {"mbps": round(mb / sync_s, 3), "seconds": round(sync_s, 4)}
    prefetch_s = _best_seconds(
        lambda: _read_once(path, prefetch=_PREFETCH_DEPTH), 3
    )
    modes["prefetch"] = {
        "mbps": round(mb / prefetch_s, 3), "seconds": round(prefetch_s, 4)
    }
    identical = True
    for knobs in ({"prefetch": _PREFETCH_DEPTH}, {"workers": 2}):
        identical &= (
            _read_once(path, **knobs).data.tobytes() == reference.data.tobytes()
        )
    pool = {}
    for workers in _POOL_WORKERS:
        seconds = _best_seconds(lambda: _read_once(path, workers=workers), 2)
        pool[str(workers)] = {
            "mbps": round(mb / seconds, 3), "seconds": round(seconds, 4)
        }
    best_pool = max(cell["mbps"] for cell in pool.values())
    best_pipeline = max(best_pool, modes["prefetch"]["mbps"])
    return {
        "modes": modes,
        "pool": pool,
        "cpu_count": os.cpu_count(),
        "speedup_prefetch_over_sync": round(
            modes["prefetch"]["mbps"] / modes["sync"]["mbps"], 3
        ),
        "speedup_best_pipeline_over_sync": round(
            best_pipeline / modes["sync"]["mbps"], 3
        ),
        "paths_byte_identical": bool(identical),
    }


def _run_compiled_kernel(path, field):
    """Compiled-kernel decode leg (numba boxes only): same file, same bytes.

    Kernels are a runtime choice, never a stream property, so the JIT
    backend must read the identical chunked file to the identical output —
    including its MB/s, recorded alongside the sync path's for comparison.
    """
    if not numba_available():
        return {"available": False}
    mb = field.nbytes / 1e6
    baseline = _read_once(path)
    profile = CodecProfile(kernel="compiled")
    compiled = _read_once(path, profile=profile)  # warm the JIT before timing
    seconds = _best_seconds(lambda: _read_once(path, profile=profile), 3)
    return {
        "available": True,
        "mbps": round(mb / seconds, 3),
        "identical": compiled.data.tobytes() == baseline.data.tobytes(),
    }


def _run_roi(path, field):
    # Quarter of the sharded (leading) axis, half of the rest: 1/16 of the
    # volume, intersecting ~1/4 of the shards.
    roi = (slice(0, max(1, field.shape[0] // 4)),) + tuple(
        slice(0, max(1, s // 2)) for s in field.shape[1:]
    )
    results = {}
    for label, knobs in (
        ("sync", {}), ("prefetch", {"prefetch": _PREFETCH_DEPTH}),
        ("pool", {"workers": 2}),
    ):
        with ChunkedDataset(path, **knobs) as dataset:
            full = dataset.read()
            with ChunkedDataset(path, **knobs) as fresh:
                part = fresh.read(roi=roi)
            results[label] = (part, full)
    sync_part, sync_full = results["sync"]
    identical = all(
        part.data.tobytes() == sync_part.data.tobytes()
        and part.bytes_loaded == sync_part.bytes_loaded
        for part, _ in results.values()
    )
    return {
        "roi": [[s.start, s.stop] for s in sync_part.roi],
        "roi_volume_fraction": round(sync_part.data.size / field.size, 4),
        "roi_bytes": sync_part.bytes_loaded,
        "full_bytes": sync_full.bytes_loaded,
        "bytes_fraction": round(sync_part.bytes_loaded / sync_full.bytes_loaded, 4),
        "paths_byte_identical": bool(identical),
    }


def _run_refine_ladder(path):
    with ChunkedDataset(path) as dataset:
        eb = dataset.absolute_bound
        ladder = [eb * k for k in (1024, 64, 8, 1)]
        sync = [dataset.refine(error_bound=target) for target in ladder]
    with ChunkedDataset(path, prefetch=_PREFETCH_DEPTH) as dataset:
        spec = [dataset.refine(error_bound=target) for target in ladder]
    seen = set()
    re_read = 0
    for step in spec:
        re_read += len(seen & set(step.ranges))
        seen |= set(step.ranges)
    return {
        "rungs": len(ladder),
        "bytes_per_rung": [step.bytes_loaded for step in sync],
        "re_read_ranges": re_read,
        "bytes_identical_to_sync": all(
            s.bytes_loaded == p.bytes_loaded and s.ranges == p.ranges
            for s, p in zip(sync, spec)
        ),
        "data_identical_to_sync": all(
            s.data.tobytes() == p.data.tobytes() for s, p in zip(sync, spec)
        ),
    }


def _run_stream(tmp_path, field):
    mb = field.nbytes / 1e6
    path = tmp_path / "stream.ipc"
    path.write_bytes(IPComp(error_bound=BOUND, relative=True).compress(field))

    def read(prefetch):
        source = open_stream_source(path, prefetch=prefetch)
        try:
            retriever = ProgressiveRetriever(source)
            return retriever.retrieve(error_bound=retriever.header.error_bound)
        finally:
            source.close()

    sync_s = _best_seconds(lambda: read(0), 3)
    prefetch_s = _best_seconds(lambda: read(_PREFETCH_DEPTH), 3)
    return {
        "sync_mbps": round(mb / sync_s, 3),
        "prefetch_mbps": round(mb / prefetch_s, 3),
        "identical": read(0).data.tobytes() == read(_PREFETCH_DEPTH).data.tobytes(),
    }


def _run_remote(path, field, sync_seconds):
    """Loopback-HTTP legs: backend × server condition through the stack.

    Clean legs are the stack's fixed-overhead measurement: bytes identical
    to the local read (hard gate elsewhere), zero retries (ditto), and the
    remote/local latency ratio is the per-request cost of HTTP framing —
    recorded, never gated, since it is pure hardware/loopback noise.  The
    20 ms/read latency legs isolate request concurrency: the thread path
    serialises on its single connection while the async backend multiplexes
    a connection pool, so its speedup there is network-bound and gated
    even on a 1-core box.
    """
    mb = field.nbytes / 1e6
    local = _read_once(path)

    def leg(backend, plan):
        with RangeServer(path.parent, plan=plan) as server:
            url = server.url_for(path.name)

            def read():
                stack = (
                    open_async_source(url)
                    if backend == "async"
                    else open_remote_source(url)
                )
                with ChunkedDataset(
                    url, source=stack, io_backend=backend,
                    prefetch=_PREFETCH_DEPTH,
                ) as dataset:
                    return dataset.read(), stack.stats()

            result, stats = read()  # identity + accounting pass (untimed)
            seconds = _best_seconds(lambda: read(), 2 if plan else 3)
        return {
            "io_backend": backend,
            "latency_plan": (
                {"kind": "latency", "seconds": _REMOTE_LATENCY_S}
                if plan is not None
                else None
            ),
            "mbps": round(mb / seconds, 3),
            "seconds": round(seconds, 4),
            "requests": stats.get("requests", 0),
            "egress_bytes": stats.get("egress_bytes", 0),
            "retries": stats.get("retries", 0),
            "crc_verified": stats.get("crc_verified", 0),
            "inflight_max": stats.get("inflight_max", 0),
            "identical": result.data.tobytes() == local.data.tobytes()
            and result.bytes_loaded == local.bytes_loaded,
        }

    latency_plan = FaultPlan.always("latency", seconds=_REMOTE_LATENCY_S)
    legs = {}
    for backend in ("threads", "async"):
        legs[f"{backend}/clean"] = leg(backend, None)
        legs[f"{backend}/latency"] = leg(backend, latency_plan)
    return {
        "latency_seconds_per_read": _REMOTE_LATENCY_S,
        "legs": legs,
        "latency_ratio_vs_sync": round(
            legs["threads/clean"]["seconds"] / sync_seconds, 3
        ),
        "async_latency_speedup": round(
            legs["threads/latency"]["seconds"]
            / legs["async/latency"]["seconds"],
            3,
        ),
    }


def _check_floor(payload) -> list:
    """Regression gate against the checked-in floor (>30 % drop fails)."""
    if not FLOOR_FILE.exists():
        return []
    floor = json.loads(FLOOR_FILE.read_text())
    if floor.get("scale") != BENCH_SCALE:
        return []
    failures = []
    for mode, minimum in floor.get("retrieval_mbps", {}).items():
        measured = payload["full_read"]["modes"].get(mode, {}).get("mbps")
        if measured is not None and measured < minimum * 0.7:
            failures.append(
                f"retrieval {mode}: {measured} MB/s < 70% of floor {minimum} MB/s"
            )
    # Remote floors arm per leg (io_backend × condition): a regression in
    # one backend cannot hide behind the other's healthy number.
    for leg_label, minimum in floor.get("remote_mbps", {}).items():
        measured = (
            payload["remote_http"]["legs"].get(leg_label, {}).get("mbps")
        )
        if measured is not None and measured < minimum * 0.7:
            failures.append(
                f"remote {leg_label}: {measured} MB/s < 70% of floor "
                f"{minimum} MB/s"
            )
    # Pool scaling only means anything with ≥ 2 cores under the pool.
    pool_floor = floor.get("retrieval_pool_speedup_min")
    cores = os.cpu_count() or 1
    if pool_floor is not None and cores >= 2:
        measured = payload["full_read"]["speedup_best_pipeline_over_sync"]
        if measured < pool_floor:
            failures.append(
                f"pool/prefetch speedup {measured} < floor {pool_floor} "
                f"on a {cores}-core box"
            )
    return failures


@pytest.mark.benchmark(group="retrieval")
def test_retrieval_e2e(benchmark, results_dir, tmp_path):
    shape = _SHAPES.get(BENCH_SCALE, _SHAPES["default"])
    field = _synthetic_field(shape)
    path = tmp_path / "field.rprc"
    ChunkedDataset.write(
        path, field, error_bound=BOUND, relative=True, n_blocks=N_BLOCKS, workers=0
    )

    def _run():
        full_read = _run_full_reads(path, field)
        return {
            "schema": "bench-retrieval-e2e/v2",
            "scale": BENCH_SCALE,
            "shape": list(shape),
            "field_mb": round(field.nbytes / 1e6, 3),
            "n_blocks": N_BLOCKS,
            "prefetch_depth": _PREFETCH_DEPTH,
            "full_read": full_read,
            "compiled_kernel": _run_compiled_kernel(path, field),
            "roi": _run_roi(path, field),
            "refine_ladder": _run_refine_ladder(path),
            "single_stream": _run_stream(tmp_path, field),
            "remote_http": _run_remote(
                path, field, full_read["modes"]["sync"]["seconds"]
            ),
        }

    payload = benchmark.pedantic(_run, rounds=1, iterations=1)

    header = ["path", "MB/s"]
    rows = [
        ["sync", payload["full_read"]["modes"]["sync"]["mbps"]],
        ["prefetch", payload["full_read"]["modes"]["prefetch"]["mbps"]],
    ] + [
        [f"pool/workers={w}", cell["mbps"]]
        for w, cell in payload["full_read"]["pool"].items()
    ] + [
        [f"http/{label}", leg["mbps"]]
        for label, leg in payload["remote_http"]["legs"].items()
    ]
    print_table("Retrieval e2e: full-field read", header, rows)
    write_csv(results_dir / "retrieval_e2e.csv", header, rows)
    remote = payload["remote_http"]
    clean = remote["legs"]["threads/clean"]
    print(
        f"loopback http (threads/clean): {clean['mbps']} MB/s over "
        f"{clean['requests']} ranged GETs "
        f"({remote['latency_ratio_vs_sync']}x local sync latency); "
        f"async beats the thread path "
        f"{remote['async_latency_speedup']}x under "
        f"{int(remote['latency_seconds_per_read'] * 1000)} ms/read latency"
    )
    print(
        f"roi: {payload['roi']['roi_volume_fraction']:.3f} of the volume → "
        f"{payload['roi']['bytes_fraction']:.3f} of the bytes; "
        f"pipeline speedup {payload['full_read']['speedup_best_pipeline_over_sync']}x "
        f"over sync on {payload['full_read']['cpu_count']} core(s)"
    )
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    # Correctness gates (hardware-independent, always asserted).
    assert payload["full_read"]["paths_byte_identical"]
    if payload["compiled_kernel"]["available"]:
        assert payload["compiled_kernel"]["identical"], payload["compiled_kernel"]
    assert payload["roi"]["paths_byte_identical"]
    assert payload["single_stream"]["identical"]
    ladder = payload["refine_ladder"]
    assert ladder["re_read_ranges"] == 0, ladder
    assert ladder["bytes_identical_to_sync"], ladder
    assert ladder["data_identical_to_sync"], ladder
    # A ≤ 1/4-volume ROI must touch well under half the full-read bytes.
    assert payload["roi"]["roi_volume_fraction"] <= 0.25
    assert payload["roi"]["bytes_fraction"] < 0.5, payload["roi"]
    # Loopback HTTP: identical bytes on every backend × condition leg,
    # clean runs never retry, and the async backend genuinely multiplexes
    # (window > 1 on the wire) and beats the single-connection thread path
    # by ≥ 2x when each read costs 20 ms — network-bound, so valid on any
    # core count.
    for label, leg in payload["remote_http"]["legs"].items():
        assert leg["identical"], (label, leg)
        if leg["latency_plan"] is None:
            assert leg["retries"] == 0, (label, leg)
    assert payload["remote_http"]["legs"]["async/latency"]["inflight_max"] > 1
    assert (
        payload["remote_http"]["async_latency_speedup"]
        >= _ASYNC_LATENCY_SPEEDUP_MIN
    ), payload["remote_http"]

    # Perf gates: floor-file driven; pool floors only on multi-core boxes.
    floor_failures = _check_floor(payload)
    assert not floor_failures, "\n".join(floor_failures)
