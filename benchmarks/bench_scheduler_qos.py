"""QoS scheduler: admission overhead, fair share, shed-then-refine latency.

The serving-layer companion of ``bench_retrieval_e2e``: it measures what the
byte-budget request scheduler costs and buys on top of a bare
:class:`~repro.service.RetrievalService` and emits **`BENCH_scheduler.json`**
at the repo root:

1. **Uncontended overhead** — the scheduler's per-request tax (costing +
   admission + executor handoff, isolated as a warm-median difference)
   relative to the cold request a user actually waits on.  The scheduler
   must be nearly free when there is nothing to arbitrate: < 5 % added
   latency (scale-tuned; skipped at ``tiny`` where the base request is
   too short for the ratio to mean anything).
2. **Fair share under contention** — four tenants with equal byte budgets
   and identical workloads on private container copies race through a
   window smaller than the offered load.  Hard-gated: every request is
   granted, per-tenant debited bytes are exactly equal, token buckets
   never go negative, and every final answer is bitwise-identical to the
   serial oracle.
3. **Shed-then-refine latency** — with a coarse rung resident and a budget
   too small to grant the fine request immediately, the degraded first
   answer must arrive ahead of the background-refined final (hard-gated),
   and well ahead at ≥ default scale.  The refined bytes are hard-gated
   bitwise against the serial oracle — degradation never changes what the
   caller ultimately gets.

Correctness is hard-gated on every path; latency ratios are recorded and
asserted only at scales where they are meaningful.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from benchmarks.conftest import (
    BENCH_SCALE,
    REPO_ROOT,
    print_table,
    skip_scale_tuned_asserts,
    write_csv,
)
from repro import ChunkedDataset
from repro.service import RequestScheduler, RetrievalService

BENCH_JSON = REPO_ROOT / "BENCH_scheduler.json"

BOUND = 1e-5
N_BLOCKS = 4
_TENANTS = 4
_WINDOW = 2

_SHAPES = {
    "tiny": (20, 24, 16),
    "default": (40, 48, 32),
    "full": (56, 64, 48),
    "paper": (56, 64, 48),
}


def _synthetic_field(shape) -> np.ndarray:
    rng = np.random.default_rng(424243)  # local; never the shared fixture rng
    grids = np.meshgrid(*(np.linspace(0, 1, s) for s in shape), indexing="ij")
    smooth = sum(np.sin((2 + i) * g) for i, g in enumerate(grids))
    return (smooth + 0.05 * rng.normal(size=shape)).astype(np.float64)


def _write_container(path, field) -> None:
    ChunkedDataset.write(
        path, field, error_bound=BOUND, relative=True, n_blocks=N_BLOCKS,
        workers=0,
    )


def _serial(path, error_bound=None, roi=None):
    with ChunkedDataset(path) as dataset:
        return dataset.read(error_bound, roi=roi)


def _stored_bound(path) -> float:
    with ChunkedDataset(path) as dataset:
        return dataset.absolute_bound


def _best_seconds(fn, reps: int) -> float:
    best = None
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None or elapsed < best else best
    return best


# ------------------------------------------------------------------ sections


def _run_overhead(workdir, field, cold_reps=5, warm_reps=30):
    """Uncontended scheduler tax on a single request.

    Two measurements, combined:

    * the **per-request tax** — costing, admission, executor handoff — as
      the difference of *warm* medians (direct vs scheduled on a resident
      request).  Warm serves are sub-ms and repeatable, so 30-rep medians
      isolate the milliseconds-scale tax that cold-vs-cold wall clocks
      bury in I/O jitter;
    * the **cold base** — best-of over private container copies (each a
      genuinely cold session) through the bare service.

    ``overhead_fraction = warm tax / cold base``: what scheduling adds to
    the request a user actually waits on.  Infrastructure (service,
    scheduler, worker threads) is built once, outside every timed region.
    """
    big = np.concatenate([field, field], axis=0)  # ~2x the work per request
    path = workdir / "overhead.rprc"
    _write_container(path, big)
    copies = []
    for i in range(cold_reps):
        copy = workdir / f"overhead-cold-{i}.rprc"
        copy.write_bytes(path.read_bytes())
        copies.append(copy)

    def _median(samples):
        ordered = sorted(samples)
        return ordered[len(ordered) // 2]

    with RetrievalService() as service:
        cold = []
        for copy in copies:
            start = time.perf_counter()
            service.get(copy)
            cold.append(time.perf_counter() - start)
        cold_s = min(cold)
        reference = service.get(path).data  # warm the measurement container
        direct = []
        for _ in range(warm_reps):
            start = time.perf_counter()
            service.get(path)
            direct.append(time.perf_counter() - start)
        with RequestScheduler(service, max_inflight=_WINDOW) as scheduler:
            identical = np.array_equal(scheduler.request(path).data, reference)
            scheduled = []
            for _ in range(warm_reps):
                start = time.perf_counter()
                scheduler.request(path)
                scheduled.append(time.perf_counter() - start)
    tax_s = max(0.0, _median(scheduled) - _median(direct))
    return {
        "cold_direct_seconds": round(cold_s, 4),
        "warm_direct_seconds": round(_median(direct), 5),
        "warm_scheduled_seconds": round(_median(scheduled), 5),
        "tax_seconds": round(tax_s, 5),
        "overhead_fraction": round(tax_s / cold_s, 4),
        "identical": bool(identical),
    }


def _run_fairness(workdir, field):
    """Four equal-budget tenants, identical workloads, private containers.

    Bounds strictly tighten so no request is satisfied by fidelity already
    resident — every request is granted and debited its planner cost,
    which makes per-tenant totals exactly comparable (same construction as
    ``tests/test_scheduler.py``'s fairness test, here at benchmark scale
    and with wall-clock recorded).
    """
    source = workdir / "fair.rprc"
    _write_container(source, field)
    stored = _stored_bound(source)
    workload = [
        (None, stored * 64.0),
        (None, stored * 8.0),
        ((slice(0, max(1, field.shape[0] // 2)),), stored * 2.0),
    ]
    clients = [f"tenant-{i}" for i in range(_TENANTS)]
    paths = {}
    for client in clients:
        copy = workdir / f"{client}.rprc"
        copy.write_bytes(source.read_bytes())
        paths[client] = copy

    import threading

    results: dict = {}
    start = time.perf_counter()
    with RetrievalService() as service:
        with RequestScheduler(
            service, max_inflight=_WINDOW, budget_bps=4_000_000
        ) as scheduler:

            def run(client):
                handles = [
                    scheduler.submit(
                        paths[client], error_bound=bound, roi=roi, client=client
                    )
                    for roi, bound in workload
                ]
                results[client] = [h.refined(timeout=300) for h in handles]

            threads = [
                threading.Thread(target=run, args=(c,)) for c in clients
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        stats = scheduler.stats()
    wall = time.perf_counter() - start

    identical = True
    for client, finals in results.items():
        for (roi, bound), final in zip(workload, finals):
            oracle = _serial(paths[client], bound, roi=roi)
            identical &= np.array_equal(final.data, oracle.data)
    debited = [stats["clients"][c]["debited_bytes"] for c in clients]
    return {
        "tenants": _TENANTS,
        "requests_per_tenant": len(workload),
        "max_inflight": _WINDOW,
        "budget_bps": 4_000_000,
        "wall_seconds": round(wall, 4),
        "debited_bytes": dict(zip(clients, debited)),
        "debited_spread": max(debited) - min(debited),
        "all_granted": all(
            stats["clients"][c]["granted"] == len(workload) for c in clients
        ),
        "min_tokens": min(
            stats["clients"][c]["min_tokens"] for c in clients
        ),
        "followers": stats["followers"],
        "identical": bool(identical),
    }


def _run_shed_refine(workdir, field):
    """Degraded time-to-first-answer vs background-refined final."""
    path = workdir / "shed.rprc"
    _write_container(path, field)
    stored = _stored_bound(path)
    coarse, fine = stored * 64.0, stored * 2.0
    oracle = _serial(path, fine)
    with RetrievalService() as service:
        cost = service.cost(path, error_bound=fine).predicted_bytes
        # Size the budget so the fine request cannot be granted on arrival
        # and the background refine has to wait ~0.6 s for tokens.
        budget_bps = max(1, int(cost / 1.6))
        service.get(path, error_bound=coarse)  # resident rung to shed to
        with RequestScheduler(
            service, max_inflight=_WINDOW, budget_bps=budget_bps
        ) as scheduler:
            start = time.perf_counter()
            handle = scheduler.submit(path, error_bound=fine, client="shed")
            first = handle.result(timeout=300)
            first_s = time.perf_counter() - start
            final = handle.refined(timeout=300)
            final_s = time.perf_counter() - start
    return {
        "predicted_bytes": cost,
        "budget_bps": budget_bps,
        "first_answer_seconds": round(first_s, 4),
        "refined_seconds": round(final_s, 4),
        "first_over_refined": round(first_s / final_s, 4) if final_s else 0.0,
        "degraded": bool(handle.degraded),
        "first_bytes_loaded": first.trace.bytes_loaded,
        "first_achieved_bound": first.trace.achieved_bound,
        "refined_achieved_bound": final.trace.achieved_bound,
        "identical": bool(np.array_equal(final.data, oracle.data)),
    }


# ------------------------------------------------------------------- harness


@pytest.mark.benchmark(group="scheduler")
def test_scheduler_qos(benchmark, results_dir, tmp_path):
    shape = _SHAPES.get(BENCH_SCALE, _SHAPES["default"])
    field = _synthetic_field(shape)

    def _run():
        return {
            "schema": "bench-scheduler-qos/v1",
            "scale": BENCH_SCALE,
            "shape": list(shape),
            "field_mb": round(field.nbytes / 1e6, 3),
            "overhead": _run_overhead(tmp_path, field),
            "fairness": _run_fairness(tmp_path, field),
            "shed_refine": _run_shed_refine(tmp_path, field),
        }

    payload = benchmark.pedantic(_run, rounds=1, iterations=1)

    header = ["metric", "value"]
    rows = [
        ["overhead fraction", payload["overhead"]["overhead_fraction"]],
        ["fairness wall s", payload["fairness"]["wall_seconds"]],
        ["debited spread B", payload["fairness"]["debited_spread"]],
        ["min tokens", round(payload["fairness"]["min_tokens"], 1)],
        ["batched followers", payload["fairness"]["followers"]],
        ["first answer s", payload["shed_refine"]["first_answer_seconds"]],
        ["refined final s", payload["shed_refine"]["refined_seconds"]],
    ]
    print_table("Scheduler QoS", header, rows)
    write_csv(results_dir / "scheduler_qos.csv", header, rows)
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    # Correctness gates (hardware-independent, always asserted).
    assert payload["overhead"]["identical"]
    fairness = payload["fairness"]
    assert fairness["identical"]
    assert fairness["all_granted"], fairness
    assert fairness["debited_spread"] == 0, fairness
    assert fairness["min_tokens"] >= 0.0, fairness
    shed = payload["shed_refine"]
    assert shed["identical"]
    assert shed["degraded"], shed
    assert shed["first_bytes_loaded"] == 0, shed  # served from residency
    assert shed["first_answer_seconds"] <= shed["refined_seconds"]

    # Latency gates: only meaningful once the base request dwarfs fixed
    # scheduling costs.
    skip_scale_tuned_asserts("scheduler latency ratios")
    assert payload["overhead"]["overhead_fraction"] < 0.05, payload["overhead"]
    assert shed["first_answer_seconds"] < 0.5 * shed["refined_seconds"], shed
