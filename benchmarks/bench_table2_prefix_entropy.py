"""Table 2 — entropy of predictive bitplane coding with 0–3 prefix bits.

Paper observation: 1–3 prefix bits all reduce entropy relative to the raw
bitplanes, and 2 prefix bits is generally the best; the reduction is a few
percent of a bit per bit.  The harness reports bit entropy for the same three
fields the paper tables (Density, SpeedX, Wave).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, write_csv
from repro.analysis import prefix_entropy_table

FIELDS = ("density", "speedx", "wave")
PREFIXES = (0, 1, 2, 3)


def _run(bench_datasets):
    rows = []
    for name in FIELDS:
        table = prefix_entropy_table(bench_datasets[name], PREFIXES, error_bound=1e-6)
        rows.append([name] + [f"{table[p]:.6f}" for p in PREFIXES])
    return rows


@pytest.mark.benchmark(group="table2")
def test_table2_prefix_entropy(benchmark, bench_datasets, results_dir):
    rows = benchmark.pedantic(_run, args=(bench_datasets,), rounds=1, iterations=1)
    header = ["field", "original", "1-bit prefix", "2-bit prefix", "3-bit prefix"]
    print_table("Table 2: bitplane entropy vs. prefix bits", header, rows)
    write_csv(results_dir / "table2_prefix_entropy.csv", header, rows)
    for row in rows:
        original, two_bit = float(row[1]), float(row[3])
        assert two_bit <= original + 1e-9, "prefix coding must not raise entropy"
