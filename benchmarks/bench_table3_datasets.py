"""Table 3 — dataset inventory and basic statistics.

Regenerates the dataset table (name, domain, precision, shape) for the
synthetic stand-ins actually used by this reproduction, alongside simple
statistics showing they are non-trivial fields (nonzero variance, expected
value ranges).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table, write_csv
from repro.datasets import DATASETS


def _run(bench_datasets):
    rows = []
    for key, spec in DATASETS.items():
        field = bench_datasets[key]
        rows.append(
            [
                spec.name,
                spec.explanation,
                spec.domain,
                spec.precision,
                "x".join(map(str, spec.paper_shape)),
                "x".join(map(str, field.shape)),
                f"{field.min():.4g}",
                f"{field.max():.4g}",
                f"{field.std():.4g}",
            ]
        )
    return rows


@pytest.mark.benchmark(group="table3")
def test_table3_dataset_inventory(benchmark, bench_datasets, results_dir):
    rows = benchmark.pedantic(_run, args=(bench_datasets,), rounds=1, iterations=1)
    header = [
        "name", "explanation", "domain", "precision",
        "paper shape", "bench shape", "min", "max", "std",
    ]
    print_table("Table 3: datasets", header, rows)
    write_csv(results_dir / "table3_datasets.csv", header, rows)
    assert len(rows) == 6
    for row in rows:
        assert float(row[-1]) > 0.0  # every field carries actual signal
