"""Shared infrastructure of the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper's
evaluation section (see DESIGN.md §2 for the index).  The harnesses run under
``pytest benchmarks/ --benchmark-only``: each figure is produced inside a
``benchmark.pedantic(..., rounds=1)`` call so pytest-benchmark records its
wall-clock cost, and the produced rows are printed and written as CSV to
``benchmarks/results/``.

Scaling: the paper's fields are up to 500³ doubles; the default harness halves
the (already scaled-down) registry shapes so the full matrix completes in a
few minutes of pure Python.  Set ``REPRO_BENCH_SCALE=full`` for the registry
shapes (~0.3–0.6 million points per field), ``REPRO_BENCH_SCALE=paper`` for the
original resolutions, or ``REPRO_BENCH_SCALE=tiny`` for a seconds-long smoke
run.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path
from typing import Dict, Iterable, List, Sequence

import numpy as np
import pytest

from repro.datasets import DATASETS, load_dataset

RESULTS_DIR = Path(__file__).parent / "results"

#: Repository root — the e2e pipeline harness emits ``BENCH_pipeline.json``
#: here so the cross-PR benchmark trajectory has one canonical location.
REPO_ROOT = Path(__file__).resolve().parent.parent

#: The active shape-scale preset (see ``_SCALES``).
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "default")

#: Shape scale presets, as a per-axis factor on the registry's default shapes.
_SCALES = {
    "tiny": 0.25,
    "default": 0.5,
    "full": 1.0,
    "paper": None,  # use the full paper shapes
}


def skip_scale_tuned_asserts(reason: str) -> None:
    """Skip (with a visible reason) assertions tuned for ≥ default scale.

    Several figure harnesses assert paper-shaped *relationships* (relative
    orderings, ladder staircases) that only emerge once the fields are big
    enough for fixed overheads — headers, anchor blocks, coarsest rungs —
    to stop dominating.  At ``REPRO_BENCH_SCALE=tiny`` those relationships
    are genuinely absent, not broken, so the harness records its CSV as
    usual and skips only the assertion phase, loudly.
    """
    if BENCH_SCALE == "tiny":
        pytest.skip(f"scale-tuned assertion needs ≥ default scale: {reason}")


def _scaled_shape(name: str) -> tuple:
    scale = BENCH_SCALE
    spec = DATASETS[name]
    if scale == "paper":
        return spec.paper_shape
    factor = _SCALES.get(scale, 1.0)
    return tuple(max(8, int(round(s * factor))) for s in spec.default_shape)


@pytest.fixture(scope="session")
def bench_datasets() -> Dict[str, np.ndarray]:
    """The six Table 3 fields at benchmark scale, generated once per session."""
    return {name: load_dataset(name, shape=_scaled_shape(name)) for name in DATASETS}


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def write_csv(path: Path, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Persist one figure/table as CSV under benchmarks/results/."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for row in rows:
            writer.writerow(row)


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print a paper-style table (visible with ``pytest -s``)."""
    rows = [list(map(str, row)) for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(header)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
