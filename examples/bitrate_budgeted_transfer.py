#!/usr/bin/env python3
"""Domain example: fidelity under an I/O or network budget (fixed-rate mode).

A common situation in HPC workflows: a remote analysis node can only afford to
move a fixed number of bytes per field (WAN transfer, burst-buffer quota, or
in-situ visualisation frame budget).  IPComp's fixed-rate mode (§5.3) loads
the most valuable bitplanes for the budget; this example sweeps budgets on the
seismic Wave field and compares against the residual-ladder baseline, which
can only jump between its pre-defined rungs.

Run with::

    python examples/bitrate_budgeted_transfer.py
"""

from __future__ import annotations

import numpy as np

from repro import IPComp, ProgressiveRetriever
from repro.analysis import max_error, psnr
from repro.baselines import SZ3ResidualCompressor
from repro.datasets import load_dataset

SHAPE = (56, 56, 24)
BUDGETS = (0.5, 1.0, 2.0, 4.0, 8.0)  # bits per value


def main() -> None:
    wave = load_dataset("wave", shape=SHAPE)
    value_range = float(wave.max() - wave.min())

    ipcomp = IPComp(error_bound=1e-7, relative=True)
    ipcomp_blob = ipcomp.compress(wave)

    ladder = SZ3ResidualCompressor(error_bound=1e-7, relative=True, rungs=5)
    ladder_blob = ladder.compress(wave)

    print(f"wave field {wave.shape}: IPComp stream {len(ipcomp_blob) / 1e6:.2f} MB, "
          f"SZ3-R stream {len(ladder_blob) / 1e6:.2f} MB")
    print(f"{'budget':>8} | {'IPComp err':>12} {'IPComp PSNR':>12} | "
          f"{'SZ3-R err':>12} {'SZ3-R PSNR':>12} {'passes':>7}")
    for budget in BUDGETS:
        ip_result = ProgressiveRetriever(ipcomp_blob).retrieve(bitrate=budget)
        ip_err = max_error(wave, ip_result.data) / value_range
        ip_psnr = psnr(wave, ip_result.data)
        try:
            ladder_result = ladder.retrieve(ladder_blob, bitrate=budget)
            ladder_err = max_error(wave, ladder_result.data) / value_range
            ladder_psnr = psnr(wave, ladder_result.data)
            passes = ladder_result.passes
            ladder_cells = f"{ladder_err:12.3e} {ladder_psnr:12.2f} {passes:7d}"
        except Exception:
            ladder_cells = f"{'n/a':>12} {'n/a':>12} {'-':>7}"
        print(f"{budget:8.1f} | {ip_err:12.3e} {ip_psnr:12.2f} | {ladder_cells}")

    print("\nIPComp serves any budget with one decompression pass; the residual "
          "ladder is limited to its pre-defined rungs and decompresses one pass per "
          "rung loaded.")


if __name__ == "__main__":
    main()
