#!/usr/bin/env python3
"""Domain example: many tenants sharing one dataset under byte budgets.

A common situation in HPC serving: a post-hoc analysis portal exposes one
compressed field to many simultaneous users — a WAN-limited collaborator, a
dashboard polling coarse overviews, a batch job pulling full-fidelity
slices.  Earlier versions of this example swept per-request byte budgets in
a manual loop; the service layer now does the budgeting itself.
:class:`~repro.service.RequestScheduler` admits requests through a bounded
window, meters each client with a bytes-per-second token bucket costed by
the planner's exact ``predicted_bytes``, and — the part only a progressive
codec can offer — sheds overload by answering from whatever fidelity is
already resident (``degraded``), refining to the requested bound in the
background.

Run with::

    python examples/bitrate_budgeted_transfer.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.datasets import load_dataset
from repro.io.dataset import ChunkedDataset
from repro.service import RequestScheduler, RetrievalService

SHAPE = (56, 56, 24)

#: Unequal tenant budgets, bytes/second: a WAN user, a dashboard, two batch
#: jobs.  The scheduler keeps delivery proportional without starving anyone.
CLIENT_BUDGETS = {
    "wan": 50_000,
    "dashboard": 800_000,
    "batch-a": 3_000_000,
    "batch-b": 3_000_000,
}

#: Each tenant's workload: (roi, error_bound) request list over one field.
REQUESTS = [
    ("wan", ((0, 28), (0, 56), (0, 24)), 1e-3),
    ("dashboard", ((0, 56), (0, 28), (0, 24)), 1e-3),
    ("batch-a", ((0, 56), (0, 56), (0, 24)), 1e-4),
    ("batch-b", ((28, 56), (0, 56), (0, 24)), 1e-4),
    ("wan", ((28, 56), (0, 56), (0, 24)), 1e-3),
    ("dashboard", ((0, 56), (28, 56), (0, 24)), 1e-3),
    ("batch-a", ((0, 28), (0, 28), (0, 24)), 1e-4),
    ("batch-b", ((0, 56), (0, 56), (0, 24)), 1e-4),
]


def main() -> None:
    wave = load_dataset("wave", shape=SHAPE)
    workdir = Path(tempfile.mkdtemp(prefix="repro-qos-"))
    container = workdir / "wave.rprc"
    ChunkedDataset.write(
        container, wave, error_bound=1e-6, relative=True, n_blocks=4, workers=0
    )
    print(f"wave field {wave.shape} -> {container} "
          f"({container.stat().st_size / 1e6:.2f} MB container)")

    with RetrievalService() as service:
        # Warm a coarse rung so overloaded requests have a fidelity to
        # degrade to (a live portal reaches this state by itself).
        service.get(container, error_bound=1e-2)

        with RequestScheduler(
            service, max_inflight=2, client_budgets=CLIENT_BUDGETS
        ) as scheduler:
            handles = [
                (
                    client,
                    bound,
                    scheduler.submit(
                        container, error_bound=bound, roi=roi, client=client
                    ),
                )
                for client, roi, bound in REQUESTS
            ]
            # First answers arrive immediately (possibly degraded); the
            # refined finals land as budgets allow.
            for client, bound, handle in handles:
                first = handle.result(timeout=120)
                final = handle.refined(timeout=120)
                tag = "degraded" if handle.degraded else "direct  "
                print(
                    f"  {client:>9} eb={bound:.0e} [{tag}] "
                    f"first bound {first.trace.achieved_bound:.2e} -> "
                    f"final {final.trace.achieved_bound:.2e}, "
                    f"waited {final.trace.queue_wait * 1e3:6.1f} ms, "
                    f"debited {final.trace.budget_debited:>8} B"
                )
            stats = scheduler.stats()

    print(f"\nper-client QoS accounting "
          f"({stats['degraded_served']} degraded serves, "
          f"{stats['followers']} batched followers):")
    print(f"{'client':>10} {'budget B/s':>12} {'granted':>8} "
          f"{'delivered B':>12} {'min tokens':>11}")
    for name, c in sorted(stats["clients"].items()):
        print(f"{name:>10} {c['budget_bps']:>12} {c['granted']:>8} "
              f"{c['delivered_bytes']:>12} {c['min_tokens']:>11.0f}")
    print("\nToken buckets never overdraw (min tokens >= 0); degraded "
          "answers refine to the exact requested bound in the background.")


if __name__ == "__main__":
    main()
