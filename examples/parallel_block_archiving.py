#!/usr/bin/env python3
"""Domain example: block-parallel compression of a large combustion field.

HPC deployments compress per-rank blocks rather than whole fields.  This
example decomposes an S3D-like CH4 mass-fraction field into slabs, compresses
the slabs in a process pool (falling back to serial execution in restricted
environments), verifies that the global error bound survives the
decomposition, and then performs a block-local progressive retrieval — only
the slab containing the flame front is refined to high fidelity.

Run with::

    python examples/parallel_block_archiving.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import ProgressiveRetriever
from repro.analysis import max_error
from repro.datasets import load_dataset
from repro.parallel import BlockParallelCompressor

SHAPE = (64, 56, 56)
RELATIVE_BOUND = 1e-6


def main() -> None:
    ch4 = load_dataset("ch4", shape=SHAPE)
    global_eb = RELATIVE_BOUND * (ch4.max() - ch4.min())

    for workers in (0, 4):
        compressor = BlockParallelCompressor(
            error_bound=RELATIVE_BOUND, relative=True, n_blocks=4, workers=workers
        )
        start = time.perf_counter()
        blocks = compressor.compress(ch4)
        elapsed = time.perf_counter() - start
        total = BlockParallelCompressor.compressed_bytes(blocks)
        label = "serial" if workers == 0 else f"{workers} workers"
        print(
            f"[{label:10s}] compressed {ch4.nbytes / 1e6:.1f} MB into {len(blocks)} blocks, "
            f"{total / 1e6:.2f} MB total (CR {ch4.nbytes / total:.2f}) in {elapsed:.2f} s"
        )

    compressor = BlockParallelCompressor(
        error_bound=RELATIVE_BOUND, relative=True, n_blocks=4, workers=0
    )
    blocks = compressor.compress(ch4)
    restored = compressor.decompress(blocks, ch4.shape)
    print(f"global error after reassembly: {max_error(ch4, restored):.3e} "
          f"(bound {global_eb:.3e})")

    # Block-local progressive retrieval: find the slab with the most CH4 from a
    # coarse pass, then refine only that slab.
    coarse_means = []
    for block in blocks:
        result = ProgressiveRetriever(block.blob).retrieve(bitrate=0.5)
        coarse_means.append(float(result.data.mean()))
    hot = int(np.argmax(coarse_means))
    hot_block = blocks[hot]
    fine = ProgressiveRetriever(hot_block.blob).retrieve(error_bound=global_eb)
    original_slab = ch4[hot_block.slices]
    print(
        f"refined only slab {hot} (rows {hot_block.slices[0].start}:{hot_block.slices[0].stop}): "
        f"loaded {fine.bytes_loaded / 1e3:.1f} kB, slab error {max_error(original_slab, fine.data):.3e}"
    )


if __name__ == "__main__":
    main()
