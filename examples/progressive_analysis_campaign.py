#!/usr/bin/env python3
"""Domain example: a multi-stage turbulence analysis campaign.

This mirrors the workflow that motivates the paper (§1): an analyst first
scans many stored fields at coarse fidelity to find the interesting one, then
progressively refines only that field — once for a derivative-based analysis
(which needs more precision, cf. Figure 11), and finally to full precision for
archival verification.  The compressed data is written to an on-disk block
container and every stage reports exactly how many bytes it had to read.

Run with::

    python examples/progressive_analysis_campaign.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import IPComp, ProgressiveRetriever
from repro.analysis import max_error, psnr
from repro.analysis.derived import laplacian
from repro.datasets import load_dataset
from repro.io import BlockContainerReader, BlockContainerWriter

SHAPE = (40, 56, 56)
FIELDS = ("density", "pressure", "velocityx")


def archive_fields(path: Path) -> dict:
    """Simulation side: compress every field once, at tight fidelity."""
    compressor = IPComp(error_bound=1e-7, relative=True)
    originals = {}
    with BlockContainerWriter(path) as writer:
        for name in FIELDS:
            field = load_dataset(name, shape=SHAPE)
            originals[name] = field
            blob = compressor.compress(field)
            writer.add_block(name, blob, {"shape": list(SHAPE), "eb_rel": 1e-7})
            print(
                f"archived {name:10s}: {field.nbytes / 1e6:5.1f} MB -> "
                f"{len(blob) / 1e6:5.2f} MB (CR {field.nbytes / len(blob):5.2f})"
            )
    return originals


def stage1_triage(path: Path) -> str:
    """Analysis side, stage 1: cheap quick-look over every field."""
    print("\n-- stage 1: coarse triage of all fields (bitrate budget 0.75 bits/value)")
    scores = {}
    with BlockContainerReader(path) as reader:
        for name in FIELDS:
            blob = reader.read_block(name)
            result = ProgressiveRetriever(blob).retrieve(bitrate=0.75)
            # Toy triage criterion: pick the field with the strongest gradients.
            roughness = float(np.abs(np.gradient(result.data, axis=0)).mean())
            scores[name] = roughness
            print(
                f"   {name:10s}: loaded {result.bytes_loaded / 1e3:7.1f} kB, "
                f"roughness score {roughness:.4f}"
            )
        print(f"   container bytes touched: {reader.bytes_read / 1e3:.1f} kB")
    chosen = max(scores, key=scores.get)
    print(f"   -> selected field: {chosen}")
    return chosen


def stage2_refine(path: Path, name: str, original: np.ndarray) -> None:
    """Analysis side, stage 2+3: refine the selected field only."""
    print(f"\n-- stage 2: derivative analysis of {name} (error bound 64*eb)")
    with BlockContainerReader(path) as reader:
        blob = reader.read_block(name)
    retriever = ProgressiveRetriever(blob)
    eb = retriever.header.error_bound

    mid = retriever.retrieve(error_bound=64 * eb)
    reference = laplacian(original)
    lap_error = np.abs(laplacian(mid.data) - reference).max() / np.abs(reference).max()
    print(
        f"   loaded {mid.bytes_loaded / 1e3:.1f} kB, raw error {max_error(original, mid.data):.3e}, "
        f"Laplacian rel. error {lap_error:.3e}"
    )

    print(f"\n-- stage 3: refine {name} to full precision (incremental, Algorithm 2)")
    full = retriever.retrieve(error_bound=eb)
    print(
        f"   additional {full.bytes_loaded / 1e3:.1f} kB loaded "
        f"(total {retriever.cumulative_bytes / 1e3:.1f} kB of {len(blob) / 1e3:.1f} kB), "
        f"error {max_error(original, full.data):.3e}, PSNR {psnr(original, full.data):.1f} dB"
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "campaign.rprc"
        originals = archive_fields(path)
        chosen = stage1_triage(path)
        stage2_refine(path, chosen, originals[chosen])


if __name__ == "__main__":
    main()
