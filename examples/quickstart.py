#!/usr/bin/env python3
"""Quickstart: compress a field, then retrieve it progressively.

Run with::

    python examples/quickstart.py

It generates a synthetic turbulence density field (a stand-in for the paper's
Miranda dataset), compresses it with IPComp at a range-relative error bound of
1e-6, and then serves three retrieval requests of increasing fidelity from the
same compressed stream — loading only the additional bitplanes each time.
"""

from __future__ import annotations

import numpy as np

from repro import IPComp
from repro.analysis import max_error, psnr, summarize
from repro.datasets import load_dataset


def main() -> None:
    # 1. A scientific field (float64, 3-D). Swap in your own NumPy array here.
    field = load_dataset("density", shape=(48, 64, 64))
    print(f"field: shape={field.shape}, {field.nbytes / 1e6:.1f} MB")

    # 2. Compress once, at the tightest fidelity you will ever need.
    compressor = IPComp(error_bound=1e-6, relative=True)
    blob = compressor.compress(field)
    eb = compressor.absolute_bound(field)
    print(
        f"compressed to {len(blob) / 1e6:.2f} MB "
        f"(ratio {field.nbytes / len(blob):.2f}, eb = {eb:.3e})"
    )

    # 3. Progressive retrieval: coarse first, refine later, one pass each.
    retriever = compressor.retriever(blob)
    for label, request in [
        ("quick look      (error <= 1024*eb)", dict(error_bound=1024 * eb)),
        ("detailed view   (error <=   16*eb)", dict(error_bound=16 * eb)),
        ("full precision  (error <=      eb)", dict(error_bound=eb)),
    ]:
        result = retriever.retrieve(**request)
        print(
            f"{label}: loaded {result.bytes_loaded / 1e3:8.1f} kB this step "
            f"({result.cumulative_bitrate(field.size):5.2f} bits/value so far), "
            f"actual error {max_error(field, result.data):.3e}, "
            f"PSNR {psnr(field, result.data):6.2f} dB"
        )

    # 4. Or decompress at full precision in one go.
    restored = compressor.decompress(blob)
    print("full-precision report:", summarize(field, restored, blob))


if __name__ == "__main__":
    main()
