#!/usr/bin/env python3
"""Domain example: ROI-progressive retrieval from a file-backed dataset.

A post-analysis campaign rarely needs the whole field at full precision: an
analyst scans a coarse rendering, zooms into a region of interest, and keeps
tightening the error bound there.  This example writes a Miranda-like density
field into a sharded :class:`repro.io.ChunkedDataset` container, then plays
that campaign against the *file*, printing the bytes each request actually
read:

1. coarse full-field pass (every shard, few bitplanes),
2. one-shot ROI read — only the shards intersecting the region are opened,
3. stateful ``refine()`` ladder on the ROI — each rung loads only the *new*
   plane blocks of the touched shards (Algorithm 2), never re-reading a byte.

Run with::

    python examples/roi_progressive_retrieval.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis import max_error
from repro.datasets import load_dataset
from repro.io import ChunkedDataset

SHAPE = (64, 56, 56)
RELATIVE_BOUND = 1e-6
N_BLOCKS = 4


def main() -> None:
    density = load_dataset("density", shape=SHAPE)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "density.rprc"
        manifest = ChunkedDataset.write(
            path, density, error_bound=RELATIVE_BOUND, relative=True,
            n_blocks=N_BLOCKS, workers=0,
        )
        eb = manifest["error_bound"]
        file_bytes = path.stat().st_size
        print(
            f"stored {density.nbytes / 1e6:.1f} MB as {file_bytes / 1e3:.1f} kB "
            f"container ({len(manifest['shards'])} shards, abs eb {eb:.3e})"
        )

        with ChunkedDataset(path) as dataset:
            # 1. Coarse overview of the whole field.
            overview = dataset.read(error_bound=eb * 4096)
            print(
                f"overview   : {overview.bytes_loaded / 1e3:7.1f} kB "
                f"({overview.bytes_loaded / file_bytes:5.1%} of file), "
                f"error <= {overview.error_bound:.3e}"
            )

            # 2. Zoom into the first quarter of the domain: one shard opened.
            roi = (slice(0, SHAPE[0] // 4),)
            zoom = dataset.read(error_bound=eb * 256, roi=roi)
            print(
                f"roi read   : {zoom.bytes_loaded / 1e3:7.1f} kB "
                f"({len(zoom.shards)}/{dataset.n_shards} shards), "
                f"roi error {max_error(density[zoom.roi], zoom.data):.3e}"
            )

        # 3. Progressive refinement ladder on the ROI against a fresh handle.
        with ChunkedDataset(path) as dataset:
            seen = set()
            roi = (slice(0, SHAPE[0] // 4),)
            for multiplier in (4096, 256, 16, 1):
                step = dataset.refine(error_bound=eb * multiplier, roi=roi)
                reread = len(seen & set(step.ranges))
                seen |= set(step.ranges)
                print(
                    f"refine x{multiplier:<5d}: {step.bytes_loaded / 1e3:7.1f} kB new, "
                    f"{step.cumulative_bytes / 1e3:7.1f} kB total, "
                    f"re-read ranges: {reread}, "
                    f"roi error {max_error(density[step.roi], step.data):.3e}"
                )
                assert reread == 0, "Algorithm 2 must never re-read a range"


if __name__ == "__main__":
    main()
