"""Legacy setup shim (and the one place packaging metadata lives).

The offline evaluation environment ships setuptools without the ``wheel``
package, so PEP 517/660 editable installs cannot build an editable wheel.
This shim lets ``pip install -e . --no-build-isolation --no-use-pep517`` fall
back to the classic ``setup.py develop`` path.

Optional extras:

* ``compiled`` — pulls in numba for the ``"compiled"`` JIT kernel backend
  (``pip install -e ".[compiled]"``).  Without it the backend degrades to a
  :class:`repro.errors.ConfigurationError` naming this extra, and
  ``kernel="auto"`` falls back to the ``"fused"`` NumPy kernel.
"""

from setuptools import find_packages, setup

setup(
    name="ipcomp-repro",
    version="2.1.0",
    description="IPComp progressive lossy compressor (paper reproduction)",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={"compiled": ["numba>=0.59"]},
)
