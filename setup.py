"""Legacy setup shim.

The offline evaluation environment ships setuptools without the ``wheel``
package, so PEP 517/660 editable installs cannot build an editable wheel.
This shim lets ``pip install -e . --no-build-isolation --no-use-pep517`` fall
back to the classic ``setup.py develop`` path.  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
