"""repro — reproduction of IPComp (HPDC'25) and its evaluation ecosystem.

The package is organised as:

* :mod:`repro.core` — IPComp itself (interpolation predictor, predictive
  bitplane coder, optimized data loader, progressive retriever).
* :mod:`repro.coders` — from-scratch lossless coding substrate.
* :mod:`repro.baselines` — the compressors IPComp is evaluated against
  (SZ3, SZ3-M, SZ3-R, ZFP, ZFP-R, MGARD/PMGARD, SPERR/SPERR-R).
* :mod:`repro.datasets` — synthetic stand-ins for the six SDRBench fields.
* :mod:`repro.analysis` — error metrics, derived quantities, entropy studies.
* :mod:`repro.parallel` — block-decomposed multi-process compression.
* :mod:`repro.io` — on-disk block container plus the file-backed
  :class:`~repro.io.ChunkedDataset` with ROI-progressive retrieval.
* :mod:`repro.service` — long-lived :class:`~repro.service.RetrievalService`
  serving concurrent ROI requests from pinned sessions and a tiered cache.

Quickstart::

    import numpy as np
    from repro import IPComp
    from repro.datasets import load_dataset

    field = load_dataset("density", shape=(64, 96, 96))
    comp = IPComp(error_bound=1e-6, relative=True)
    blob = comp.compress(field)
    retriever = comp.retriever(blob)
    coarse = retriever.retrieve(error_bound=1e-2)
    fine = retriever.retrieve(error_bound=1e-5)   # incremental refinement
"""

from __future__ import annotations

from repro.core.compressor import IPComp, IPCompConfig
from repro.core.kernels import (
    available_kernels,
    get_kernel,
    register_kernel,
    resolve_auto_kernel,
)
from repro.core.profile import CodecProfile
from repro.core.progressive import ProgressiveRetriever, RetrievalResult
from repro.core.optimizer import LoadingPlan, OptimizedLoader
from repro.io.dataset import ChunkedDataset, DatasetReadResult
from repro.service import RetrievalService, RetrievalTrace

__version__ = "2.1.0"

__all__ = [
    "CodecProfile",
    "IPComp",
    "IPCompConfig",
    "ProgressiveRetriever",
    "RetrievalResult",
    "OptimizedLoader",
    "LoadingPlan",
    "ChunkedDataset",
    "DatasetReadResult",
    "RetrievalService",
    "RetrievalTrace",
    "available_kernels",
    "get_kernel",
    "register_kernel",
    "resolve_auto_kernel",
    "__version__",
]
