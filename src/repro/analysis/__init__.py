"""Analysis substrate: error metrics, derived quantities, entropy studies.

These are the measurement tools the paper's evaluation section relies on
(§3.1.1 metric definitions, Table 2 entropy study, Figure 11 post-analysis).
"""

from __future__ import annotations

from repro.analysis.derived import curl, divergence, gradient, gradient_magnitude, laplacian
from repro.analysis.entropy_analysis import prefix_coding_entropy, prefix_entropy_table
from repro.analysis.metrics import (
    bitrate,
    compression_ratio,
    max_error,
    mean_squared_error,
    normalized_root_mean_squared_error,
    psnr,
    summarize,
)

__all__ = [
    "max_error",
    "mean_squared_error",
    "normalized_root_mean_squared_error",
    "psnr",
    "compression_ratio",
    "bitrate",
    "summarize",
    "gradient",
    "gradient_magnitude",
    "laplacian",
    "curl",
    "divergence",
    "prefix_coding_entropy",
    "prefix_entropy_table",
]
