"""Derived physical quantities used by the Figure 11 post-analysis study.

The paper visualises the curl and the Laplacian of reconstructed fields to
show that different analyses tolerate different fidelity levels.  We compute
the same operators with second-order central differences (one-sided at the
boundary, via :func:`numpy.gradient`), which is what typical post-processing
pipelines (e.g. ParaView filters) do.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


def gradient(field: np.ndarray, spacing: float = 1.0) -> Tuple[np.ndarray, ...]:
    """Per-axis first derivatives of a scalar field (central differences)."""
    field = np.asarray(field, dtype=np.float64)
    grads = np.gradient(field, spacing)
    if field.ndim == 1:
        return (grads,)
    return tuple(grads)


def gradient_magnitude(field: np.ndarray, spacing: float = 1.0) -> np.ndarray:
    """Euclidean norm of the gradient vector at every point."""
    grads = gradient(field, spacing)
    return np.sqrt(sum(g**2 for g in grads))


def laplacian(field: np.ndarray, spacing: float = 1.0) -> np.ndarray:
    """Scalar Laplacian ``Σ_i ∂²f/∂x_i²`` via repeated central differences."""
    field = np.asarray(field, dtype=np.float64)
    result = np.zeros_like(field)
    for axis in range(field.ndim):
        first = np.gradient(field, spacing, axis=axis)
        result += np.gradient(first, spacing, axis=axis)
    return result


def divergence(components: Sequence[np.ndarray], spacing: float = 1.0) -> np.ndarray:
    """Divergence of a vector field given as one array per component."""
    components = [np.asarray(c, dtype=np.float64) for c in components]
    ndim = components[0].ndim
    if len(components) != ndim:
        raise ConfigurationError("divergence needs one component per dimension")
    return sum(
        np.gradient(comp, spacing, axis=axis) for axis, comp in enumerate(components)
    )


def curl(
    components: Sequence[np.ndarray], spacing: float = 1.0
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Curl of a 3-D vector field ``(vx, vy, vz)``.

    Returns the three curl components; use :func:`curl_magnitude` for the
    scalar visualisation the paper shows.
    """
    if len(components) != 3:
        raise ConfigurationError("curl is defined for 3-component 3-D fields")
    vx, vy, vz = (np.asarray(c, dtype=np.float64) for c in components)
    if vx.ndim != 3 or vx.shape != vy.shape or vy.shape != vz.shape:
        raise ConfigurationError("curl components must be equally shaped 3-D arrays")
    dvz_dy = np.gradient(vz, spacing, axis=1)
    dvy_dz = np.gradient(vy, spacing, axis=2)
    dvx_dz = np.gradient(vx, spacing, axis=2)
    dvz_dx = np.gradient(vz, spacing, axis=0)
    dvy_dx = np.gradient(vy, spacing, axis=0)
    dvx_dy = np.gradient(vx, spacing, axis=1)
    return (dvz_dy - dvy_dz, dvx_dz - dvz_dx, dvy_dx - dvx_dy)


def curl_magnitude(components: Sequence[np.ndarray], spacing: float = 1.0) -> np.ndarray:
    """Magnitude of the curl vector (the quantity visualised in Figure 11)."""
    cx, cy, cz = curl(components, spacing)
    return np.sqrt(cx**2 + cy**2 + cz**2)
