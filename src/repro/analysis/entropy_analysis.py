"""Table 2 reproduction: entropy of predictive bitplane coding.

The paper quantifies how much the XOR-prefix prediction of §4.4.1 lowers the
zero-order entropy of the bitplane streams (lower entropy → better
compressibility by the lossless backend).  ``prefix_coding_entropy`` runs the
full IPComp front end (interpolation + quantization + negabinary + bitplanes)
on a field and reports the plane-size-weighted average bit entropy for a given
number of prefix bits; ``prefix_entropy_table`` sweeps 0–3 prefix bits, which
is exactly the content of Table 2.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.coders.entropy import bit_entropy
from repro.core.bitplane import extract_bitplanes, predictive_encode
from repro.core.interpolation import InterpolationPredictor
from repro.core.negabinary import required_bits, to_negabinary
from repro.core.quantizer import LinearQuantizer, relative_to_absolute


def _level_planes(field: np.ndarray, error_bound: float, relative: bool, method: str):
    """Run the IPComp front end and yield per-level raw bitplane matrices."""
    field = np.asarray(field, dtype=np.float64)
    eb = relative_to_absolute(error_bound, field) if relative else error_bound
    predictor = InterpolationPredictor(field.shape, method)
    quantizer = LinearQuantizer(eb)
    _, level_codes, _ = predictor.decompose(field, quantizer)
    for level, codes in level_codes.items():
        if codes.size == 0:
            continue
        nbits = required_bits(codes)
        planes = extract_bitplanes(to_negabinary(codes), nbits)
        yield level, planes


def prefix_coding_entropy(
    field: np.ndarray,
    prefix_bits: int,
    error_bound: float = 1e-6,
    relative: bool = True,
    method: str = "cubic",
) -> float:
    """Average bit entropy of all bitplanes after XOR-prefix prediction.

    ``prefix_bits = 0`` reports the entropy of the raw bitplanes (the
    "Original" column of Table 2); 1–3 reproduce the remaining columns.  The
    average weights every plane equally within a level and every level by its
    number of planes × elements, i.e. by its share of the raw bit volume.
    """
    weighted = 0.0
    total_bits = 0
    for _, planes in _level_planes(field, error_bound, relative, method):
        encoded = predictive_encode(planes, prefix_bits)
        for plane in encoded:
            weighted += bit_entropy(plane) * plane.size
            total_bits += plane.size
    return weighted / total_bits if total_bits else 0.0


def prefix_entropy_table(
    field: np.ndarray,
    prefixes: Sequence[int] = (0, 1, 2, 3),
    error_bound: float = 1e-6,
    relative: bool = True,
    method: str = "cubic",
) -> Dict[int, float]:
    """Entropy for each prefix length — one row of Table 2."""
    return {
        int(p): prefix_coding_entropy(field, int(p), error_bound, relative, method)
        for p in prefixes
    }
