"""Compression quality metrics (§3.1.1 of the paper).

All metrics follow the paper's definitions exactly:

* compression ratio ``CR = size(original) / size(compressed)``;
* bitrate = average stored bits per scalar value (inverse-proportional to CR);
* decompression error measured with the L∞ norm;
* ``PSNR = 20·log10((max(x) − min(x)) / sqrt(MSE))``.
"""

from __future__ import annotations

from typing import Dict, Union

import numpy as np

from repro.errors import ConfigurationError


def _pair(original: np.ndarray, reconstructed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if original.shape != reconstructed.shape:
        raise ConfigurationError(
            f"shape mismatch: {original.shape} vs {reconstructed.shape}"
        )
    return original, reconstructed


def max_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """L∞ (maximum point-wise absolute) error."""
    original, reconstructed = _pair(original, reconstructed)
    if original.size == 0:
        return 0.0
    return float(np.abs(original - reconstructed).max())


def mean_squared_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean squared error."""
    original, reconstructed = _pair(original, reconstructed)
    if original.size == 0:
        return 0.0
    return float(np.mean((original - reconstructed) ** 2))


def normalized_root_mean_squared_error(
    original: np.ndarray, reconstructed: np.ndarray
) -> float:
    """RMSE normalized by the value range (dimensionless)."""
    original, reconstructed = _pair(original, reconstructed)
    value_range = float(original.max() - original.min()) if original.size else 0.0
    rmse = float(np.sqrt(mean_squared_error(original, reconstructed)))
    if value_range == 0.0:
        return 0.0 if rmse == 0.0 else float("inf")
    return rmse / value_range


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (paper definition, range-based peak)."""
    original, reconstructed = _pair(original, reconstructed)
    mse = mean_squared_error(original, reconstructed)
    value_range = float(original.max() - original.min()) if original.size else 0.0
    if mse == 0.0:
        return float("inf")
    if value_range == 0.0:
        return float("-inf")
    return float(20.0 * np.log10(value_range / np.sqrt(mse)))


def compression_ratio(original: np.ndarray, compressed: Union[bytes, int]) -> float:
    """Original bytes divided by compressed bytes."""
    size = len(compressed) if isinstance(compressed, (bytes, bytearray)) else int(compressed)
    if size <= 0:
        raise ConfigurationError("compressed size must be positive")
    return np.asarray(original).nbytes / size


def bitrate(original: np.ndarray, compressed: Union[bytes, int]) -> float:
    """Average stored bits per scalar value."""
    size = len(compressed) if isinstance(compressed, (bytes, bytearray)) else int(compressed)
    n = np.asarray(original).size
    if n == 0:
        raise ConfigurationError("cannot compute bitrate of an empty array")
    return 8.0 * size / n


def summarize(
    original: np.ndarray,
    reconstructed: np.ndarray,
    compressed: Union[bytes, int, None] = None,
) -> Dict[str, float]:
    """Bundle every §3.1.1 metric into one dictionary (used by the CLI/benches)."""
    report = {
        "max_error": max_error(original, reconstructed),
        "mse": mean_squared_error(original, reconstructed),
        "nrmse": normalized_root_mean_squared_error(original, reconstructed),
        "psnr": psnr(original, reconstructed),
    }
    if compressed is not None:
        report["compression_ratio"] = compression_ratio(original, compressed)
        report["bitrate"] = bitrate(original, compressed)
    return report
