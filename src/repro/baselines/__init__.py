"""Baseline compressors evaluated against IPComp (§6.1.3).

``make_compressor`` builds any of the evaluated compressors by name, which is
what the benchmark harness iterates over:

========  ==========================================================
name      class
========  ==========================================================
ipcomp    :class:`repro.baselines.ipcomp_adapter.IPCompAdapter`
sz3       :class:`repro.baselines.sz3.SZ3Compressor`
sz3-m     :class:`repro.baselines.sz3_m.SZ3MultiFidelityCompressor`
sz3-r     :class:`repro.baselines.sz3_r.SZ3ResidualCompressor`
zfp       :class:`repro.baselines.zfp.ZFPCompressor`
zfp-r     :class:`repro.baselines.zfp_r.ZFPResidualCompressor`
mgard     :class:`repro.baselines.mgard.MGARDCompressor`
pmgard    :class:`repro.baselines.pmgard.PMGARDCompressor`
sperr     :class:`repro.baselines.sperr.SPERRCompressor`
sperr-r   :class:`repro.baselines.sperr.SPERRResidualCompressor`
========  ==========================================================
"""

from __future__ import annotations

from typing import Dict, Type

from repro.baselines.base import (
    LossyCompressor,
    ProgressiveCompressor,
    RetrievalOutcome,
    pack_sections,
    unpack_sections,
)
from repro.baselines.ipcomp_adapter import IPCompAdapter
from repro.baselines.mgard import MGARDCompressor
from repro.baselines.pmgard import PMGARDCompressor
from repro.baselines.residual import ResidualProgressiveCompressor, default_bound_ladder
from repro.baselines.sperr import SPERRCompressor, SPERRResidualCompressor
from repro.baselines.sz3 import SZ3Compressor
from repro.baselines.sz3_m import SZ3MultiFidelityCompressor
from repro.baselines.sz3_r import SZ3ResidualCompressor
from repro.baselines.zfp import ZFPCompressor
from repro.baselines.zfp_r import ZFPResidualCompressor
from repro.errors import ConfigurationError

COMPRESSORS: Dict[str, Type[LossyCompressor]] = {
    "ipcomp": IPCompAdapter,
    "sz3": SZ3Compressor,
    "sz3-m": SZ3MultiFidelityCompressor,
    "sz3-r": SZ3ResidualCompressor,
    "zfp": ZFPCompressor,
    "zfp-r": ZFPResidualCompressor,
    "mgard": MGARDCompressor,
    "pmgard": PMGARDCompressor,
    "sperr": SPERRCompressor,
    "sperr-r": SPERRResidualCompressor,
}


def compressor_names() -> tuple:
    """All registered compressor names."""
    return tuple(COMPRESSORS)


def make_compressor(name: str, error_bound: float = 1e-6, relative: bool = True, **kwargs):
    """Instantiate a compressor by registry name."""
    key = name.strip().lower()
    if key not in COMPRESSORS:
        raise ConfigurationError(
            f"unknown compressor {name!r}; available: {sorted(COMPRESSORS)}"
        )
    return COMPRESSORS[key](error_bound=error_bound, relative=relative, **kwargs)


__all__ = [
    "LossyCompressor",
    "ProgressiveCompressor",
    "RetrievalOutcome",
    "ResidualProgressiveCompressor",
    "default_bound_ladder",
    "pack_sections",
    "unpack_sections",
    "IPCompAdapter",
    "SZ3Compressor",
    "SZ3MultiFidelityCompressor",
    "SZ3ResidualCompressor",
    "ZFPCompressor",
    "ZFPResidualCompressor",
    "MGARDCompressor",
    "PMGARDCompressor",
    "SPERRCompressor",
    "SPERRResidualCompressor",
    "COMPRESSORS",
    "compressor_names",
    "make_compressor",
]
