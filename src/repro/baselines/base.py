"""Shared interface and serialization helpers of the baseline compressors.

Every baseline exposes the same minimal surface so the benchmark harness can
iterate over them generically:

* :class:`LossyCompressor` — ``compress`` / ``decompress`` with a value-range
  relative or absolute error bound;
* :class:`ProgressiveCompressor` — additionally ``retrieve`` at an error bound
  or bitrate, reporting how many compressed bytes the request touched and how
  many decompression passes it cost (the operational-overhead axis the paper
  holds against residual-based schemes).

Multi-section streams (residual rungs, multi-fidelity copies, coefficient +
outlier payloads) share one container format produced by
:func:`pack_sections` / :func:`unpack_sections`:

``magic "RPB1" | meta_len:u32 | meta JSON | n_sections:u32 |
  (size:u64)*n | section bytes ...``
"""

from __future__ import annotations

import abc
import json
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.quantizer import relative_to_absolute
from repro.errors import ConfigurationError, StreamFormatError

_MAGIC = b"RPB1"


def pack_sections(meta: Dict, sections: Sequence[bytes]) -> bytes:
    """Serialize a JSON metadata dict plus opaque binary sections."""
    meta_blob = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    out = bytearray()
    out += _MAGIC
    out += struct.pack("<I", len(meta_blob))
    out += meta_blob
    out += struct.pack("<I", len(sections))
    for section in sections:
        out += struct.pack("<Q", len(section))
    for section in sections:
        out += section
    return bytes(out)


def unpack_sections(blob: bytes) -> Tuple[Dict, List[bytes]]:
    """Invert :func:`pack_sections`."""
    if blob[:4] != _MAGIC:
        raise StreamFormatError("not a baseline stream (bad magic)")
    (meta_len,) = struct.unpack_from("<I", blob, 4)
    pos = 8
    meta = json.loads(blob[pos : pos + meta_len].decode("utf-8"))
    pos += meta_len
    (n_sections,) = struct.unpack_from("<I", blob, pos)
    pos += 4
    sizes = []
    for _ in range(n_sections):
        (size,) = struct.unpack_from("<Q", blob, pos)
        pos += 8
        sizes.append(size)
    sections = []
    for size in sizes:
        sections.append(blob[pos : pos + size])
        pos += size
    return meta, sections


def section_sizes(blob: bytes) -> List[int]:
    """Sizes of the sections of a packed stream without copying the payloads."""
    if blob[:4] != _MAGIC:
        raise StreamFormatError("not a baseline stream (bad magic)")
    (meta_len,) = struct.unpack_from("<I", blob, 4)
    pos = 8 + meta_len
    (n_sections,) = struct.unpack_from("<I", blob, pos)
    pos += 4
    sizes = []
    for _ in range(n_sections):
        (size,) = struct.unpack_from("<Q", blob, pos)
        pos += 8
        sizes.append(int(size))
    return sizes


@dataclass
class RetrievalOutcome:
    """Result of a progressive (partial) retrieval from a baseline."""

    data: np.ndarray
    bytes_loaded: int
    passes: int
    achieved_bound: float

    def bitrate(self, n_elements: Optional[int] = None) -> float:
        n = n_elements if n_elements is not None else self.data.size
        return 8.0 * self.bytes_loaded / n


class LossyCompressor(abc.ABC):
    """Error-bounded lossy compressor interface."""

    #: Short registry name ("sz3", "zfp-r", ...).
    name: str = "base"
    #: Whether the compressor supports partial/progressive retrieval.
    progressive: bool = False

    def __init__(self, error_bound: float = 1e-6, relative: bool = True) -> None:
        if error_bound <= 0 or not np.isfinite(error_bound):
            raise ConfigurationError("error_bound must be a positive finite number")
        self.error_bound = float(error_bound)
        self.relative = bool(relative)

    def absolute_bound(self, data: np.ndarray) -> float:
        """Absolute error bound used for ``data`` under this configuration."""
        if self.relative:
            return relative_to_absolute(self.error_bound, data)
        return self.error_bound

    @abc.abstractmethod
    def compress(self, data: np.ndarray) -> bytes:
        """Compress ``data`` into a self-describing byte stream."""

    @abc.abstractmethod
    def decompress(self, blob: bytes) -> np.ndarray:
        """Decompress at full (compression-time) fidelity."""


class ProgressiveCompressor(LossyCompressor):
    """Compressor that can serve partial retrievals."""

    progressive = True

    @abc.abstractmethod
    def retrieve(
        self,
        blob: bytes,
        error_bound: Optional[float] = None,
        bitrate: Optional[float] = None,
    ) -> RetrievalOutcome:
        """Retrieve at a requested error bound or bitrate budget."""

    @staticmethod
    def _check_request(error_bound, bitrate) -> None:
        if (error_bound is None) == (bitrate is None):
            raise ConfigurationError("specify exactly one of error_bound or bitrate")


def validate_field(data: np.ndarray) -> np.ndarray:
    """Common input validation of every baseline."""
    data = np.asarray(data)
    if data.size == 0:
        raise ConfigurationError("cannot compress an empty array")
    if not np.issubdtype(data.dtype, np.floating):
        raise ConfigurationError("baselines compress floating-point fields")
    if not np.isfinite(data).all():
        raise ConfigurationError("baselines require finite input values")
    return data
