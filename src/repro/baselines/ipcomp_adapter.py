"""Adapter exposing IPComp through the baseline compressor interface.

The benchmark harness iterates over :class:`repro.baselines.base.LossyCompressor`
instances; this adapter lets IPComp participate in the exact same loops (and
is also a compact usage example of the public :class:`repro.IPComp` API).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import ProgressiveCompressor, RetrievalOutcome
from repro.core.compressor import IPComp


class IPCompAdapter(ProgressiveCompressor):
    """IPComp behind the generic progressive-compressor interface."""

    name = "ipcomp"

    def __init__(
        self,
        error_bound: float = 1e-6,
        relative: bool = True,
        method: str = "cubic",
        prefix_bits: int = 2,
        backend: str = "zlib",
    ) -> None:
        super().__init__(error_bound, relative)
        self._ipcomp = IPComp(
            error_bound=error_bound,
            relative=relative,
            method=method,
            prefix_bits=prefix_bits,
            backend=backend,
        )

    def compress(self, data: np.ndarray) -> bytes:
        return self._ipcomp.compress(data)

    def decompress(self, blob: bytes) -> np.ndarray:
        return self._ipcomp.decompress(blob)

    def retrieve(
        self,
        blob: bytes,
        error_bound: Optional[float] = None,
        bitrate: Optional[float] = None,
    ) -> RetrievalOutcome:
        self._check_request(error_bound, bitrate)
        result = self._ipcomp.retrieve(blob, error_bound=error_bound, bitrate=bitrate)
        return RetrievalOutcome(
            data=result.data,
            bytes_loaded=result.bytes_loaded,
            passes=1,
            achieved_bound=result.error_bound,
        )
