"""Adapter exposing IPComp through the baseline compressor interface.

The benchmark harness iterates over :class:`repro.baselines.base.LossyCompressor`
instances; this adapter lets IPComp participate in the exact same loops (and
is also a compact usage example of the public :class:`repro.IPComp` API).
Configuration is one :class:`~repro.core.profile.CodecProfile`; the keyword
parameters are profile-field overrides — left unspecified they defer to the
profile (or the profile defaults), so a tuned profile's bound is never
silently clobbered.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import ProgressiveCompressor, RetrievalOutcome
from repro.core.compressor import IPComp
from repro.core.profile import CodecProfile


class IPCompAdapter(ProgressiveCompressor):
    """IPComp behind the generic progressive-compressor interface."""

    name = "ipcomp"

    def __init__(
        self,
        error_bound: Optional[float] = None,
        relative: Optional[bool] = None,
        profile: Optional[CodecProfile] = None,
        **profile_overrides,
    ) -> None:
        self._ipcomp = IPComp(
            error_bound=error_bound,
            relative=relative,
            profile=profile,
            **profile_overrides,
        )
        p = self._ipcomp.profile
        super().__init__(p.error_bound, p.relative)

    @property
    def profile(self) -> CodecProfile:
        return self._ipcomp.profile

    def compress(self, data: np.ndarray) -> bytes:
        return self._ipcomp.compress(data)

    def decompress(self, blob: bytes) -> np.ndarray:
        return self._ipcomp.decompress(blob)

    def retrieve(
        self,
        blob: bytes,
        error_bound: Optional[float] = None,
        bitrate: Optional[float] = None,
    ) -> RetrievalOutcome:
        self._check_request(error_bound, bitrate)
        result = self._ipcomp.retrieve(blob, error_bound=error_bound, bitrate=bitrate)
        return RetrievalOutcome(
            data=result.data,
            bytes_loaded=result.bytes_loaded,
            passes=1,
            achieved_bound=result.error_bound,
        )
