"""MGARD-like non-progressive multigrid compressor (refs. [2, 23, 24]).

The non-progressive variant of :mod:`repro.baselines.pmgard`: the same
hierarchical-basis (piecewise-linear multigrid) decomposition, but the
quantized coefficients are entropy coded in one monolithic Huffman + DEFLATE
stream instead of per-bitplane blocks.  It exists so the PMGARD progressive
overhead (block granularity, per-level δ tables) can be measured against its
own non-progressive baseline, mirroring how the paper positions SZ3 vs IPComp.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.baselines.base import LossyCompressor, pack_sections, unpack_sections, validate_field
from repro.baselines.pmgard import _quantizer_refinement
from repro.coders.huffman import decode_symbols, encode_symbols
from repro.coders.zlib_backend import ZlibCoder
from repro.core.interpolation import InterpolationPredictor
from repro.core.quantizer import LinearQuantizer
from repro.errors import StreamFormatError

_QUANT_CAP = 1 << 15
_OUTLIER_SENTINEL = _QUANT_CAP + 1


class MGARDCompressor(LossyCompressor):
    """Hierarchical-basis transform + Huffman + DEFLATE compressor."""

    name = "mgard"

    def __init__(self, error_bound: float = 1e-6, relative: bool = True) -> None:
        super().__init__(error_bound, relative)
        self._zlib = ZlibCoder()

    def compress(self, data: np.ndarray) -> bytes:
        data = validate_field(data)
        eb_user = self.absolute_bound(data)
        predictor = InterpolationPredictor(data.shape, "linear")
        refinement = _quantizer_refinement(data.shape, predictor.num_levels)
        quantizer = LinearQuantizer(eb_user / refinement)

        anchor_values, level_coeffs = predictor.transform(data)
        ordered = [quantizer.quantize(anchor_values)]
        for level in range(predictor.num_levels, 0, -1):
            ordered.append(quantizer.quantize(level_coeffs[level]))
        symbols = np.concatenate(ordered)

        outlier_mask = np.abs(symbols) > _QUANT_CAP
        outliers = symbols[outlier_mask]
        clipped = symbols.copy()
        clipped[outlier_mask] = _OUTLIER_SENTINEL

        meta = {
            "shape": list(data.shape),
            "dtype": str(data.dtype),
            "error_bound": eb_user,
            "quant_bound": quantizer.error_bound,
            "n_outliers": int(outliers.size),
        }
        return pack_sections(
            meta,
            [
                self._zlib.encode(encode_symbols(clipped)),
                self._zlib.encode(outliers.astype(np.int64).tobytes()),
            ],
        )

    def decompress(self, blob: bytes) -> np.ndarray:
        meta, sections = unpack_sections(blob)
        if len(sections) != 2:
            raise StreamFormatError("MGARD stream must contain two sections")
        shape = tuple(meta["shape"])
        predictor = InterpolationPredictor(shape, "linear")
        quantizer = LinearQuantizer(float(meta["quant_bound"]))

        symbols = decode_symbols(self._zlib.decode(sections[0]))
        outliers = np.frombuffer(self._zlib.decode(sections[1]), dtype=np.int64)
        mask = symbols == _OUTLIER_SENTINEL
        symbols = symbols.copy()
        symbols[mask] = outliers

        anchor_count = predictor.anchor_count
        cursor = anchor_count
        sizes = predictor.level_sizes()
        level_diffs: Dict[int, np.ndarray] = {}
        for level in range(predictor.num_levels, 0, -1):
            count = sizes[level]
            level_diffs[level] = quantizer.dequantize(symbols[cursor : cursor + count])
            cursor += count
        output = predictor.reconstruct(
            quantizer.dequantize(symbols[:anchor_count]), level_diffs
        )
        return output.astype(meta["dtype"]).reshape(shape)
