"""PMGARD: progressive multigrid (MGARD-style) compressor (§6.1.3, refs. [23, 34]).

MGARD decomposes a field on a hierarchy of nested grids using a piecewise-
linear (hierarchical-basis) decomposition; PMGARD adds progressive retrieval
by encoding the multilevel coefficients bitplane by bitplane.

This reproduction builds the decomposition with
:meth:`repro.core.interpolation.InterpolationPredictor.transform` (linear
method), i.e. coefficients are computed against the *original* coarse values —
a transform model in the paper's §4.2 terminology.  Consequently quantization
errors of different levels add up, and the per-level quantizer must be
``Σ_l s_l + 1`` times finer than the user bound to guarantee it.  That is the
structural reason PMGARD's compression ratio trails IPComp's in the paper, and
the effect reproduces here without any further tuning.

The bitplane blocks, the stream container, the knapsack loader and the
progressive retriever are shared with IPComp (the inverse transform is the
same reconstruction routine), so PMGARD also serves arbitrary error-bound and
bitrate requests in a single pass — its disadvantage is purely the ratio.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.baselines.base import ProgressiveCompressor, RetrievalOutcome, validate_field
from repro.core.interpolation import InterpolationPredictor
from repro.core.predictive_coder import PredictiveCoder
from repro.core.profile import CodecProfile
from repro.core.progressive import ProgressiveRetriever
from repro.core.quantizer import LinearQuantizer
from repro.core.stream import IPCompStream, StreamHeader
from repro.core.theory import level_sweep_counts


def _quantizer_refinement(shape, num_levels: int) -> int:
    """How much finer than the user bound the per-level quantizer must be."""
    sweeps = level_sweep_counts(shape, num_levels)
    return sum(sweeps.values()) + 1  # +1 for the anchor values


class PMGARDCompressor(ProgressiveCompressor):
    """Progressive hierarchical-basis (MGARD-like) compressor."""

    name = "pmgard"

    def __init__(
        self,
        error_bound: float = 1e-6,
        relative: bool = True,
        prefix_bits: int = 2,
        backend: str = "zlib",
    ) -> None:
        super().__init__(error_bound, relative)
        self.prefix_bits = int(prefix_bits)
        self.backend = backend

    # ------------------------------------------------------------ compression

    def compress(self, data: np.ndarray) -> bytes:
        data = validate_field(data)
        eb_user = self.absolute_bound(data)
        predictor = InterpolationPredictor(data.shape, "linear")
        refinement = _quantizer_refinement(data.shape, predictor.num_levels)
        eb_q = eb_user / refinement
        quantizer = LinearQuantizer(eb_q)
        coder = PredictiveCoder(
            quantizer,
            CodecProfile.fixed(self.backend, prefix_bits=self.prefix_bits),
        )

        anchor_values, unit_coeffs = predictor.transform(data, granularity="sweep")
        anchor_codes = quantizer.quantize(anchor_values)
        anchor_block = coder.encode_anchor(anchor_codes)
        encodings = [
            coder.encode_level(unit, quantizer.quantize(coeffs))
            for unit, coeffs in unit_coeffs.items()
        ]
        header = StreamHeader(
            shape=tuple(data.shape),
            dtype=str(data.dtype),
            error_bound=eb_q,
            method="linear",
            prefix_bits=self.prefix_bits,
            anchor_coder=self.backend,
            anchor_count=int(anchor_codes.size),
            anchor_size=len(anchor_block),
            levels=encodings,
        )
        return IPCompStream.serialize(header, anchor_block, encodings)

    # ---------------------------------------------------------- decompression

    def decompress(self, blob: bytes) -> np.ndarray:
        retriever = ProgressiveRetriever(blob)
        return retriever.retrieve(error_bound=retriever.header.error_bound).data

    # -------------------------------------------------------------- retrieval

    def retrieve(
        self,
        blob: bytes,
        error_bound: Optional[float] = None,
        bitrate: Optional[float] = None,
    ) -> RetrievalOutcome:
        """Partial retrieval; single pass, arbitrary bounds/bitrates.

        For the transform model the *full-precision* error is already
        ``refinement × eb_q`` (quantization errors accumulate over levels), so
        an error-bound request must reserve that much of its budget before the
        bitplane-truncation loss is allowed to use the rest.
        """
        self._check_request(error_bound, bitrate)
        retriever = ProgressiveRetriever(blob)
        header = retriever.header
        # Stream groups are per sweep, so the accumulated quantization error of
        # a full retrieval is (number of sweeps + anchor) times the per-group
        # quantizer bound.
        refinement = len(header.levels) + 1
        full_error = header.error_bound * refinement
        if error_bound is not None:
            # Reserve the accumulated quantization error, then hand the
            # remaining budget to the plane-selection optimizer.
            truncation_budget = max(error_bound - full_error, 0.0)
            adjusted = header.error_bound + truncation_budget
            result = retriever.retrieve(error_bound=adjusted)
            achieved = result.error_bound - header.error_bound + full_error
        else:
            result = retriever.retrieve(bitrate=bitrate)
            achieved = result.error_bound - header.error_bound + full_error
        return RetrievalOutcome(
            data=result.data,
            bytes_loaded=result.bytes_loaded,
            passes=1,
            achieved_bound=achieved,
        )
