"""Generic residual-based progressive ladder (§2, §6.1.3, ref. [30]).

The residual scheme turns *any* error-bounded compressor into a progressive
one: compress the field at a loose bound, compress the residual (original
minus reconstruction) at a tighter bound, and keep going until the target
bound is reached.  Retrieval at fidelity ``F_i`` must load **and decompress**
every rung up to ``i`` and sum the reconstructions — the multi-pass
operational cost the paper's Figures 8 and 9 quantify, and that IPComp's
single-pass design avoids.

The ladder is shared by SZ3-R, ZFP-R and SPERR-R, which only differ in the
base compressor they plug in.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.baselines.base import (
    LossyCompressor,
    ProgressiveCompressor,
    RetrievalOutcome,
    pack_sections,
    section_sizes,
    unpack_sections,
    validate_field,
)
from repro.errors import ConfigurationError, RetrievalError


def default_bound_ladder(target: float, rungs: int = 5, factor: float = 4.0) -> List[float]:
    """Build the descending bound schedule the paper configures for baselines.

    The last rung equals the target bound and every earlier rung is ``factor``
    times looser, e.g. ``rungs=5, factor=4`` → ``256·eb, 64·eb, 16·eb, 4·eb, eb``.
    """
    if rungs < 1:
        raise ConfigurationError("rungs must be >= 1")
    if factor <= 1.0:
        raise ConfigurationError("factor must be > 1")
    return [target * factor ** (rungs - 1 - i) for i in range(rungs)]


class ResidualProgressiveCompressor(ProgressiveCompressor):
    """Residual ladder over an arbitrary base compressor factory."""

    name = "residual"

    def __init__(
        self,
        base_factory: Callable[[float], LossyCompressor],
        error_bound: float = 1e-6,
        relative: bool = True,
        rungs: int = 5,
        factor: float = 4.0,
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(error_bound, relative)
        self.base_factory = base_factory
        self.rungs = int(rungs)
        self.factor = float(factor)
        self._explicit_bounds = list(bounds) if bounds is not None else None

    # ------------------------------------------------------------------ ladder

    def bound_ladder(self, data: np.ndarray) -> List[float]:
        """Absolute bound of every rung for this field."""
        if self._explicit_bounds is not None:
            return list(self._explicit_bounds)
        return default_bound_ladder(self.absolute_bound(data), self.rungs, self.factor)

    # ------------------------------------------------------------ compression

    def compress(self, data: np.ndarray) -> bytes:
        data = validate_field(data).astype(np.float64)
        bounds = self.bound_ladder(data)
        sections: List[bytes] = []
        residual = data
        for bound in bounds:
            base = self.base_factory(bound)
            blob = base.compress(residual)
            sections.append(blob)
            reconstructed = np.asarray(base.decompress(blob), dtype=np.float64)
            residual = residual - reconstructed
        meta = {
            "shape": list(data.shape),
            "dtype": str(np.asarray(data).dtype),
            "bounds": [float(b) for b in bounds],
        }
        return pack_sections(meta, sections)

    # ---------------------------------------------------------- decompression

    def decompress(self, blob: bytes) -> np.ndarray:
        meta, _ = unpack_sections(blob)
        outcome = self.retrieve(blob, error_bound=float(meta["bounds"][-1]))
        return outcome.data

    # -------------------------------------------------------------- retrieval

    def retrieve(
        self,
        blob: bytes,
        error_bound: Optional[float] = None,
        bitrate: Optional[float] = None,
    ) -> RetrievalOutcome:
        """Load rungs until the request is satisfied; decompress each one.

        Error-bound mode loads every rung whose bound is still looser than the
        request plus the first rung at or below it (the retrieval is only
        possible at the pre-defined bounds — the "staircase" behaviour of
        Figures 6/7).  Bitrate mode loads the longest rung prefix that fits
        the byte budget.
        """
        self._check_request(error_bound, bitrate)
        meta, sections = unpack_sections(blob)
        bounds = [float(b) for b in meta["bounds"]]
        n_elements = int(np.prod(meta["shape"]))

        if error_bound is not None:
            n_load = len(bounds)
            for index, bound in enumerate(bounds):
                if bound <= error_bound:
                    n_load = index + 1
                    break
            if bounds[min(n_load, len(bounds)) - 1] > error_bound and bounds[-1] > error_bound:
                # Even the tightest rung cannot satisfy the request; load all.
                n_load = len(bounds)
        else:
            assert bitrate is not None
            budget = bitrate * n_elements / 8.0
            sizes = [len(s) for s in sections]
            n_load = 0
            used = 0
            for size in sizes:
                if used + size > budget and n_load > 0:
                    break
                used += size
                n_load += 1
                if used > budget:
                    break
            n_load = max(n_load, 1)

        total = np.zeros(tuple(meta["shape"]), dtype=np.float64)
        bytes_loaded = 0
        for index in range(n_load):
            base = self.base_factory(bounds[index])
            bytes_loaded += len(sections[index])
            total += np.asarray(base.decompress(sections[index]), dtype=np.float64)
        return RetrievalOutcome(
            data=total.astype(meta["dtype"]),
            bytes_loaded=bytes_loaded,
            passes=n_load,
            achieved_bound=bounds[n_load - 1],
        )

    # ------------------------------------------------------------- inspection

    @staticmethod
    def rung_sizes(blob: bytes) -> List[int]:
        """Compressed size of every rung (used by the speed/ladder benches)."""
        return section_sizes(blob)
