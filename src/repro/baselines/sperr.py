"""SPERR-like wavelet compressor (§6.2.3, ref. [22]).

SPERR runs a CDF 9/7 wavelet transform, encodes the coefficients with a
SPECK-style embedded coder, and fixes any point whose error exceeds the bound
with an explicit outlier-correction pass.  This reproduction keeps the three
stages — multi-level CDF 9/7 lifting, uniform coefficient quantization +
DEFLATE, and an outlier pass that *guarantees* the point-wise bound — while
simplifying the embedded coder away (it is only used for the Figure 8/9 speed
study, where the paper itself drops SPERR-R from the full evaluation for being
too slow).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import LossyCompressor, pack_sections, unpack_sections, validate_field
from repro.baselines.residual import ResidualProgressiveCompressor
from repro.coders.zlib_backend import ZlibCoder
from repro.errors import StreamFormatError

# CDF 9/7 lifting coefficients (JPEG2000 irreversible transform).
_ALPHA = -1.586134342059924
_BETA = -0.052980118572961
_GAMMA = 0.882911075530934
_DELTA = 0.443506852043971
_KAPPA = 1.230174104914001


def _dwt_1d(signal: np.ndarray, axis: int) -> Tuple[np.ndarray, np.ndarray]:
    """One CDF 9/7 lifting step along ``axis`` → (approximation, detail)."""
    x = np.moveaxis(signal, axis, -1)
    n = x.shape[-1]
    if n % 2:
        x = np.concatenate([x, x[..., -1:]], axis=-1)
        n += 1
    even = x[..., 0::2].copy()
    odd = x[..., 1::2].copy()

    def _sym(arr):
        # symmetric extension of the last sample for boundary handling
        return np.concatenate([arr, arr[..., -1:]], axis=-1)

    odd += _ALPHA * (even + _sym(even)[..., 1:])
    even += _BETA * (np.concatenate([odd[..., :1], odd], axis=-1)[..., :-1] + odd)
    odd += _GAMMA * (even + _sym(even)[..., 1:])
    even += _DELTA * (np.concatenate([odd[..., :1], odd], axis=-1)[..., :-1] + odd)
    approx = _KAPPA * even
    detail = odd / _KAPPA
    return np.moveaxis(approx, -1, axis), np.moveaxis(detail, -1, axis)


def _idwt_1d(approx: np.ndarray, detail: np.ndarray, axis: int, length: int) -> np.ndarray:
    """Invert :func:`_dwt_1d` and trim back to ``length`` samples."""
    even = np.moveaxis(approx, axis, -1) / _KAPPA
    odd = np.moveaxis(detail, axis, -1) * _KAPPA

    def _sym(arr):
        return np.concatenate([arr, arr[..., -1:]], axis=-1)

    even = even - _DELTA * (np.concatenate([odd[..., :1], odd], axis=-1)[..., :-1] + odd)
    odd = odd - _GAMMA * (even + _sym(even)[..., 1:])
    even = even - _BETA * (np.concatenate([odd[..., :1], odd], axis=-1)[..., :-1] + odd)
    odd = odd - _ALPHA * (even + _sym(even)[..., 1:])

    n = even.shape[-1] + odd.shape[-1]
    out = np.empty(even.shape[:-1] + (n,), dtype=np.float64)
    out[..., 0::2] = even
    out[..., 1::2] = odd
    out = out[..., :length]
    return np.moveaxis(out, -1, axis)


def wavelet_forward(data: np.ndarray, levels: int) -> Tuple[np.ndarray, List[dict]]:
    """Multi-level separable CDF 9/7 transform.

    Returns the final approximation band and, per level, the detail bands plus
    the axis lengths needed to invert exactly.
    """
    approx = np.asarray(data, dtype=np.float64)
    plan: List[dict] = []
    for _ in range(levels):
        if min(approx.shape) < 2:
            break
        record = {"lengths": approx.shape, "details": {}}
        for axis in range(approx.ndim):
            approx, detail = _dwt_1d(approx, axis)
            record["details"][axis] = detail
        plan.append(record)
    return approx, plan


def wavelet_inverse(approx: np.ndarray, plan: List[dict]) -> np.ndarray:
    """Invert :func:`wavelet_forward`."""
    out = approx
    for record in reversed(plan):
        lengths = record["lengths"]
        for axis in range(out.ndim - 1, -1, -1):
            # ``lengths[axis]`` is the extent along ``axis`` before this
            # level's forward step (other axes do not change it).
            out = _idwt_1d(out, record["details"][axis], axis, lengths[axis])
    return out


class SPERRCompressor(LossyCompressor):
    """Wavelet + uniform quantization + outlier-correction compressor."""

    name = "sperr"

    def __init__(
        self, error_bound: float = 1e-6, relative: bool = True, levels: int = 3
    ) -> None:
        super().__init__(error_bound, relative)
        self.levels = int(levels)
        self._zlib = ZlibCoder()

    # ------------------------------------------------------------ compression

    def compress(self, data: np.ndarray) -> bytes:
        data = validate_field(data)
        eb = self.absolute_bound(data)
        work = np.asarray(data, dtype=np.float64)
        approx, plan = wavelet_forward(work, self.levels)

        # Uniform coefficient quantization; the outlier pass below restores
        # the guarantee regardless of how the wavelet redistributes error.
        step = eb
        sections: List[bytes] = []
        layout = {"approx_shape": list(approx.shape), "levels": []}
        q_approx = np.rint(approx / step).astype(np.int64)
        sections.append(self._zlib.encode(q_approx.tobytes()))
        dq_plan: List[dict] = []
        for record in plan:
            level_meta = {"lengths": list(record["lengths"]), "details": {}}
            dq_details = {}
            for axis, detail in record["details"].items():
                q_detail = np.rint(detail / step).astype(np.int64)
                sections.append(self._zlib.encode(q_detail.tobytes()))
                level_meta["details"][str(axis)] = list(detail.shape)
                dq_details[axis] = q_detail.astype(np.float64) * step
            layout["levels"].append(level_meta)
            dq_plan.append({"lengths": record["lengths"], "details": dq_details})

        reconstructed = wavelet_inverse(q_approx.astype(np.float64) * step, dq_plan)
        error = work - reconstructed
        outlier_mask = np.abs(error) > eb
        outlier_indices = np.flatnonzero(outlier_mask)
        outlier_codes = np.rint(error.ravel()[outlier_indices] / eb).astype(np.int64)
        sections.append(self._zlib.encode(outlier_indices.astype(np.int64).tobytes()))
        sections.append(self._zlib.encode(outlier_codes.tobytes()))

        meta = {
            "shape": list(data.shape),
            "dtype": str(data.dtype),
            "error_bound": eb,
            "step": step,
            "layout": layout,
        }
        return pack_sections(meta, sections)

    # ---------------------------------------------------------- decompression

    def decompress(self, blob: bytes) -> np.ndarray:
        meta, sections = unpack_sections(blob)
        shape = tuple(meta["shape"])
        step = float(meta["step"])
        eb = float(meta["error_bound"])
        layout = meta["layout"]

        cursor = 0
        approx_shape = tuple(layout["approx_shape"])
        approx = np.frombuffer(self._zlib.decode(sections[cursor]), dtype=np.int64)
        approx = approx.reshape(approx_shape).astype(np.float64) * step
        cursor += 1
        plan = []
        for level_meta in layout["levels"]:
            details = {}
            for axis_str, det_shape in level_meta["details"].items():
                detail = np.frombuffer(self._zlib.decode(sections[cursor]), dtype=np.int64)
                details[int(axis_str)] = detail.reshape(tuple(det_shape)).astype(np.float64) * step
                cursor += 1
            plan.append({"lengths": tuple(level_meta["lengths"]), "details": details})
        out = wavelet_inverse(approx, plan)

        indices = np.frombuffer(self._zlib.decode(sections[cursor]), dtype=np.int64)
        cursor += 1
        codes = np.frombuffer(self._zlib.decode(sections[cursor]), dtype=np.int64)
        flat = out.reshape(-1)
        flat[indices] += codes.astype(np.float64) * eb
        return flat.reshape(shape).astype(meta["dtype"])


class SPERRResidualCompressor(ResidualProgressiveCompressor):
    """SPERR-R: residual ladder over the wavelet compressor (speed study only)."""

    name = "sperr-r"

    def __init__(
        self,
        error_bound: float = 1e-6,
        relative: bool = True,
        rungs: int = 5,
        factor: float = 4.0,
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(
            base_factory=lambda bound: SPERRCompressor(error_bound=bound, relative=False),
            error_bound=error_bound,
            relative=relative,
            rungs=rungs,
            factor=factor,
            bounds=bounds,
        )
