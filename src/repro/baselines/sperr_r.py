"""Convenience module re-exporting the SPERR residual ladder.

The class lives next to the base wavelet compressor in
:mod:`repro.baselines.sperr`; this module keeps the one-baseline-per-module
layout symmetric with ``sz3_r`` / ``zfp_r``.
"""

from __future__ import annotations

from repro.baselines.sperr import SPERRResidualCompressor

__all__ = ["SPERRResidualCompressor"]
