"""SZ3-like non-progressive compressor (§6.1.3).

The paper describes SZ3 as "interpolation as prediction, together with
linear-scale quantization, Huffman coding, and zstd lossless coding".  This
baseline follows that pipeline exactly, reusing the same interpolation
predictor as IPComp so that the comparison isolates the *encoding* stage:

* quantization integers of every level are concatenated into one symbol
  stream;
* symbols whose magnitude exceeds the quantization-bin capacity are emitted
  as literal "outliers" (SZ3's unpredictable-data path) so the Huffman
  alphabet stays bounded;
* the symbol stream is canonical-Huffman coded and then DEFLATE-compressed
  (the zstd stand-in), which reproduces the Huffman-disrupts-byte-patterns
  effect discussed in §6.2.1.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.baselines.base import LossyCompressor, pack_sections, unpack_sections, validate_field
from repro.coders.huffman import decode_symbols, encode_symbols
from repro.coders.zlib_backend import ZlibCoder
from repro.core.interpolation import InterpolationPredictor
from repro.core.quantizer import LinearQuantizer
from repro.errors import StreamFormatError

#: Symbols with |q| above this go through the outlier path (SZ3 uses 2^15 bins).
_QUANT_CAP = 1 << 15
_OUTLIER_SENTINEL = _QUANT_CAP + 1


class SZ3Compressor(LossyCompressor):
    """Non-progressive interpolation + Huffman + DEFLATE compressor."""

    name = "sz3"

    def __init__(
        self,
        error_bound: float = 1e-6,
        relative: bool = True,
        method: str = "cubic",
    ) -> None:
        super().__init__(error_bound, relative)
        self.method = method
        self._zlib = ZlibCoder()

    # ------------------------------------------------------------ compression

    def compress(self, data: np.ndarray) -> bytes:
        data = validate_field(data)
        eb = self.absolute_bound(data)
        predictor = InterpolationPredictor(data.shape, self.method)
        quantizer = LinearQuantizer(eb)
        anchor_codes, level_codes, _ = predictor.decompose(data, quantizer)

        ordered: List[np.ndarray] = [anchor_codes]
        for level in range(predictor.num_levels, 0, -1):
            ordered.append(level_codes[level])
        symbols = np.concatenate(ordered) if ordered else np.zeros(0, dtype=np.int64)

        outlier_mask = np.abs(symbols) > _QUANT_CAP
        outlier_values = symbols[outlier_mask]
        clipped = symbols.copy()
        clipped[outlier_mask] = _OUTLIER_SENTINEL

        huffman_blob = self._zlib.encode(encode_symbols(clipped))
        outlier_blob = self._zlib.encode(outlier_values.astype(np.int64).tobytes())
        meta = {
            "shape": list(data.shape),
            "dtype": str(data.dtype),
            "error_bound": eb,
            "method": self.method,
            "n_outliers": int(outlier_values.size),
        }
        return pack_sections(meta, [huffman_blob, outlier_blob])

    # ---------------------------------------------------------- decompression

    def decompress(self, blob: bytes) -> np.ndarray:
        meta, sections = unpack_sections(blob)
        if len(sections) != 2:
            raise StreamFormatError("SZ3 stream must contain two sections")
        shape = tuple(meta["shape"])
        eb = float(meta["error_bound"])
        predictor = InterpolationPredictor(shape, meta["method"])
        quantizer = LinearQuantizer(eb)

        symbols = decode_symbols(self._zlib.decode(sections[0]))
        outliers = np.frombuffer(self._zlib.decode(sections[1]), dtype=np.int64)
        outlier_mask = symbols == _OUTLIER_SENTINEL
        if int(outlier_mask.sum()) != int(meta["n_outliers"]):
            raise StreamFormatError("outlier count mismatch in SZ3 stream")
        symbols = symbols.copy()
        symbols[outlier_mask] = outliers

        anchor_count = predictor.anchor_count
        anchor_codes = symbols[:anchor_count]
        cursor = anchor_count
        sizes = predictor.level_sizes()
        level_diffs: Dict[int, np.ndarray] = {}
        for level in range(predictor.num_levels, 0, -1):
            count = sizes[level]
            level_diffs[level] = quantizer.dequantize(symbols[cursor : cursor + count])
            cursor += count
        output = predictor.reconstruct(quantizer.dequantize(anchor_codes), level_diffs)
        return output.astype(meta["dtype"]).reshape(shape)
