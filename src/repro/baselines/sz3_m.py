"""SZ3-M: multi-fidelity (but not progressive) SZ3 (§6.1.3).

SZ3-M simply compresses the input independently at several error bounds and
stores all outputs together.  Retrieval picks the coarsest stored copy that
satisfies the request, so a single decompression pass suffices — but nothing
is shared between fidelity levels, which is why its compression ratio is far
worse than every truly progressive scheme (the paper uses it to argue that
sacrificing CR for multi-fidelity makes the capability useless).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.base import (
    ProgressiveCompressor,
    RetrievalOutcome,
    pack_sections,
    unpack_sections,
    validate_field,
)
from repro.baselines.residual import default_bound_ladder
from repro.baselines.sz3 import SZ3Compressor
from repro.errors import RetrievalError


class SZ3MultiFidelityCompressor(ProgressiveCompressor):
    """Concatenated independent SZ3 outputs at a ladder of error bounds."""

    name = "sz3-m"

    def __init__(
        self,
        error_bound: float = 1e-6,
        relative: bool = True,
        rungs: int = 5,
        factor: float = 4.0,
        method: str = "cubic",
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(error_bound, relative)
        self.rungs = int(rungs)
        self.factor = float(factor)
        self.method = method
        self._explicit_bounds = list(bounds) if bounds is not None else None

    def bound_ladder(self, data: np.ndarray) -> List[float]:
        if self._explicit_bounds is not None:
            return list(self._explicit_bounds)
        return default_bound_ladder(self.absolute_bound(data), self.rungs, self.factor)

    # ------------------------------------------------------------ compression

    def compress(self, data: np.ndarray) -> bytes:
        data = validate_field(data)
        bounds = self.bound_ladder(data)
        sections = []
        for bound in bounds:
            base = SZ3Compressor(error_bound=bound, relative=False, method=self.method)
            sections.append(base.compress(data))
        meta = {
            "shape": list(data.shape),
            "dtype": str(data.dtype),
            "bounds": [float(b) for b in bounds],
        }
        return pack_sections(meta, sections)

    # ---------------------------------------------------------- decompression

    def decompress(self, blob: bytes) -> np.ndarray:
        meta, sections = unpack_sections(blob)
        base = SZ3Compressor(error_bound=float(meta["bounds"][-1]), relative=False)
        return base.decompress(sections[-1])

    # -------------------------------------------------------------- retrieval

    def retrieve(
        self,
        blob: bytes,
        error_bound: Optional[float] = None,
        bitrate: Optional[float] = None,
    ) -> RetrievalOutcome:
        """Pick the single stored copy matching the request (one pass)."""
        self._check_request(error_bound, bitrate)
        meta, sections = unpack_sections(blob)
        bounds = [float(b) for b in meta["bounds"]]
        n_elements = int(np.prod(meta["shape"]))

        index: Optional[int] = None
        if error_bound is not None:
            for i, bound in enumerate(bounds):
                if bound <= error_bound:
                    index = i
                    break
            if index is None:
                index = len(bounds) - 1
        else:
            assert bitrate is not None
            budget = bitrate * n_elements / 8.0
            for i, section in enumerate(sections):
                if len(section) <= budget:
                    index = i
                    # Prefer the finest copy that still fits the budget.
                    for j in range(len(sections) - 1, i - 1, -1):
                        if len(sections[j]) <= budget:
                            index = j
                            break
                    break
            if index is None:
                raise RetrievalError(
                    "no stored SZ3-M fidelity level fits the bitrate budget"
                )

        base = SZ3Compressor(error_bound=bounds[index], relative=False)
        data = base.decompress(sections[index])
        return RetrievalOutcome(
            data=data,
            bytes_loaded=len(sections[index]),
            passes=1,
            achieved_bound=bounds[index],
        )
