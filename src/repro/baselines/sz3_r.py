"""SZ3-R: residual-based progressive SZ3 (§6.1.3, refs. [30, 34]).

A thin specialisation of :class:`repro.baselines.residual.ResidualProgressiveCompressor`
with SZ3 as the base compressor at every rung.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.residual import ResidualProgressiveCompressor
from repro.baselines.sz3 import SZ3Compressor


class SZ3ResidualCompressor(ResidualProgressiveCompressor):
    """Residual ladder of SZ3 compressions with shrinking bounds."""

    name = "sz3-r"

    def __init__(
        self,
        error_bound: float = 1e-6,
        relative: bool = True,
        rungs: int = 5,
        factor: float = 4.0,
        method: str = "cubic",
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        self.method = method
        super().__init__(
            base_factory=lambda bound: SZ3Compressor(
                error_bound=bound, relative=False, method=method
            ),
            error_bound=error_bound,
            relative=relative,
            rungs=rungs,
            factor=factor,
            bounds=bounds,
        )
