"""ZFP-like fixed-accuracy block-transform compressor (§6.1.3, ref. [25]).

ZFP partitions the field into 4^d blocks, decorrelates every block with an
integer lifting transform, and encodes the coefficients bitplane by bitplane.
This reproduction keeps that structure:

* 4×4(×4) blocks with edge-replication padding;
* an exactly invertible two-level Haar integer lifting applied along every
  block axis (a simplified stand-in for ZFP's non-orthogonal lifting — same
  shape: in-place, integer, per 4-vector; see DESIGN.md for the substitution
  note);
* global fixed-point quantization derived from the error bound (accuracy
  mode), negabinary mapping, and bitplane packing of the coefficients with a
  DEFLATE backend;
* low-plane truncation chosen *empirically* during compression as the largest
  truncation whose measured reconstruction error still satisfies the bound —
  so the error guarantee holds by construction.

ZFP's hallmark relative to SZ3 — much faster, noticeably lower compression
ratio at tight bounds — carries over, which is what the paper's figures rely
on.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.baselines.base import LossyCompressor, pack_sections, unpack_sections, validate_field
from repro.coders.zlib_backend import ZlibCoder
from repro.core.bitplane import extract_bitplanes, assemble_bitplanes, pack_plane, unpack_plane
from repro.core.negabinary import from_negabinary, required_bits, to_negabinary
from repro.errors import StreamFormatError

BLOCK = 4


def _pad_to_blocks(data: np.ndarray) -> Tuple[np.ndarray, Tuple[int, ...]]:
    """Edge-replicate pad every axis to a multiple of the block size."""
    pad = [(0, (-size) % BLOCK) for size in data.shape]
    return np.pad(data, pad, mode="edge"), data.shape


def _to_blocks(data: np.ndarray) -> np.ndarray:
    """Reshape a padded field into ``(nblocks, BLOCK, BLOCK, ...)``."""
    ndim = data.ndim
    grid = tuple(s // BLOCK for s in data.shape)
    shape = []
    for g in grid:
        shape.extend([g, BLOCK])
    reshaped = data.reshape(shape)
    # Move all grid axes first, then all intra-block axes.
    order = list(range(0, 2 * ndim, 2)) + list(range(1, 2 * ndim, 2))
    blocks = reshaped.transpose(order)
    return blocks.reshape((-1,) + (BLOCK,) * ndim)


def _from_blocks(blocks: np.ndarray, padded_shape: Tuple[int, ...]) -> np.ndarray:
    """Invert :func:`_to_blocks`."""
    ndim = len(padded_shape)
    grid = tuple(s // BLOCK for s in padded_shape)
    blocks = blocks.reshape(grid + (BLOCK,) * ndim)
    order = []
    for axis in range(ndim):
        order.extend([axis, ndim + axis])
    return blocks.transpose(order).reshape(padded_shape)


def _lift_forward(blocks: np.ndarray, axis: int) -> np.ndarray:
    """Two-level Haar integer lifting along one intra-block axis."""
    moved = np.moveaxis(blocks, axis, -1)
    a, b, c, d = (moved[..., i].astype(np.int64) for i in range(4))
    d1 = b - a
    s1 = a + (d1 >> 1)
    d2 = d - c
    s2 = c + (d2 >> 1)
    dd = s2 - s1
    ss = s1 + (dd >> 1)
    out = np.stack([ss, dd, d1, d2], axis=-1)
    return np.moveaxis(out, -1, axis)


def _lift_inverse(blocks: np.ndarray, axis: int) -> np.ndarray:
    """Exact inverse of :func:`_lift_forward`."""
    moved = np.moveaxis(blocks, axis, -1)
    ss, dd, d1, d2 = (moved[..., i].astype(np.int64) for i in range(4))
    s1 = ss - (dd >> 1)
    s2 = s1 + dd
    a = s1 - (d1 >> 1)
    b = a + d1
    c = s2 - (d2 >> 1)
    d = c + d2
    out = np.stack([a, b, c, d], axis=-1)
    return np.moveaxis(out, -1, axis)


def forward_transform(blocks: np.ndarray) -> np.ndarray:
    """Apply the lifting along every intra-block axis (axes 1..ndim)."""
    out = blocks
    for axis in range(1, blocks.ndim):
        out = _lift_forward(out, axis)
    return out


def inverse_transform(blocks: np.ndarray) -> np.ndarray:
    """Invert :func:`forward_transform` (reverse axis order)."""
    out = blocks
    for axis in range(blocks.ndim - 1, 0, -1):
        out = _lift_inverse(out, axis)
    return out


class ZFPCompressor(LossyCompressor):
    """Fixed-accuracy block-transform compressor."""

    name = "zfp"

    def __init__(self, error_bound: float = 1e-6, relative: bool = True) -> None:
        super().__init__(error_bound, relative)
        self._zlib = ZlibCoder()

    # ------------------------------------------------------------ compression

    def compress(self, data: np.ndarray) -> bytes:
        data = validate_field(data)
        eb = self.absolute_bound(data)
        step = eb / 2.0
        work = np.asarray(data, dtype=np.float64)
        padded, original_shape = _pad_to_blocks(work)
        quantized = np.rint(padded / step).astype(np.int64)
        blocks = _to_blocks(quantized)
        coefficients = forward_transform(blocks)
        flat = coefficients.ravel()
        nbits = required_bits(flat)

        # Pick the deepest low-plane truncation that still honours the bound,
        # measured on the actual data (accuracy mode with a hard guarantee).
        dropped = 0
        for candidate in range(0, nbits):
            if candidate and not self._truncation_ok(
                flat, nbits, candidate, coefficients.shape, padded.shape,
                original_shape, work, step, eb,
            ):
                break
            dropped = candidate

        codes = to_negabinary(flat)
        if dropped:
            mask = ~np.uint64((np.uint64(1) << np.uint64(dropped)) - np.uint64(1))
            codes = codes & mask
        planes = extract_bitplanes(codes, nbits)[: nbits - dropped]
        payload = b"".join(pack_plane(plane) for plane in planes)
        compressed = self._zlib.encode(payload)

        meta = {
            "shape": list(original_shape),
            "padded_shape": list(padded.shape),
            "dtype": str(data.dtype),
            "error_bound": eb,
            "step": step,
            "nbits": int(nbits),
            "dropped": int(dropped),
            "count": int(flat.size),
        }
        return pack_sections(meta, [compressed])

    def _truncation_ok(
        self, flat, nbits, dropped, block_shape, padded_shape, original_shape,
        original, step, eb,
    ) -> bool:
        """Measure whether dropping ``dropped`` planes keeps the L∞ error ≤ eb."""
        codes = to_negabinary(flat)
        mask = ~np.uint64((np.uint64(1) << np.uint64(dropped)) - np.uint64(1))
        truncated = from_negabinary(codes & mask).reshape(block_shape)
        restored = inverse_transform(truncated)
        field = _from_blocks(restored, padded_shape).astype(np.float64) * step
        slices = tuple(slice(0, s) for s in original_shape)
        return float(np.abs(field[slices] - original).max()) <= eb

    # ---------------------------------------------------------- decompression

    def decompress(self, blob: bytes) -> np.ndarray:
        meta, sections = unpack_sections(blob)
        if len(sections) != 1:
            raise StreamFormatError("ZFP stream must contain one section")
        shape = tuple(meta["shape"])
        padded_shape = tuple(meta["padded_shape"])
        nbits = int(meta["nbits"])
        dropped = int(meta["dropped"])
        count = int(meta["count"])
        step = float(meta["step"])

        payload = self._zlib.decode(sections[0])
        kept = nbits - dropped
        plane_bytes = (count + 7) // 8
        planes = np.empty((kept, count), dtype=np.uint8)
        for row in range(kept):
            start = row * plane_bytes
            planes[row] = unpack_plane(payload[start : start + plane_bytes], count)
        codes = from_negabinary(assemble_bitplanes(planes, nbits))

        ndim = len(shape)
        block_shape = (-1,) + (BLOCK,) * ndim
        restored = inverse_transform(codes.reshape(block_shape))
        field = _from_blocks(restored, padded_shape).astype(np.float64) * step
        slices = tuple(slice(0, s) for s in shape)
        return field[slices].astype(meta["dtype"])
