"""ZFP-R: residual-based progressive ZFP (§6.1.3, ref. [30])."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.residual import ResidualProgressiveCompressor
from repro.baselines.zfp import ZFPCompressor


class ZFPResidualCompressor(ResidualProgressiveCompressor):
    """Residual ladder of ZFP compressions with shrinking bounds."""

    name = "zfp-r"

    def __init__(
        self,
        error_bound: float = 1e-6,
        relative: bool = True,
        rungs: int = 5,
        factor: float = 4.0,
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(
            base_factory=lambda bound: ZFPCompressor(error_bound=bound, relative=False),
            error_bound=error_bound,
            relative=relative,
            rungs=rungs,
            factor=factor,
            bounds=bounds,
        )
