"""Command line interface (the FZ-framework-style front end of §3.2).

Subcommands::

    ipcomp compress   INPUT.raw -o OUT.ipc --shape 64x96x96 --eb 1e-6 [--abs]
    ipcomp decompress OUT.ipc  -o RESTORED.raw
    ipcomp retrieve   OUT.ipc  -o PARTIAL.raw (--error-bound 1e-3 | --bitrate 2.0)
    ipcomp info       OUT.ipc
    ipcomp datasets                       # print the Table 3 inventory
    ipcomp demo       --dataset density   # synthetic end-to-end demo + metrics

Raw inputs follow the SDRBench layout (headerless little-endian binary); the
shape is passed as ``AxBxC``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro import IPComp, ProgressiveRetriever
from repro.analysis import summarize
from repro.core.kernels import DEFAULT_KERNEL, available_kernels
from repro.core.stream import IPCompStream
from repro.datasets import dataset_table, load_dataset, load_raw, save_raw
from repro.errors import ReproError


def _parse_shape(text: str) -> tuple:
    try:
        return tuple(int(part) for part in text.lower().replace(",", "x").split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(f"cannot parse shape {text!r}") from None


def _add_kernel_argument(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--kernel",
        choices=available_kernels(),
        default=DEFAULT_KERNEL,
        help="bit-level kernel implementation (default: %(default)s)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ipcomp", description="IPComp progressive lossy compressor (reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compress = sub.add_parser("compress", help="compress a raw binary field")
    compress.add_argument("input", type=Path)
    compress.add_argument("-o", "--output", type=Path, required=True)
    compress.add_argument("--shape", type=_parse_shape, required=True)
    compress.add_argument("--dtype", default="float64")
    compress.add_argument("--eb", type=float, default=1e-6, help="error bound")
    compress.add_argument(
        "--abs", action="store_true", help="treat --eb as absolute instead of range-relative"
    )
    compress.add_argument("--method", choices=("cubic", "linear"), default="cubic")
    _add_kernel_argument(compress)

    decompress = sub.add_parser("decompress", help="full-precision decompression")
    decompress.add_argument("input", type=Path)
    decompress.add_argument("-o", "--output", type=Path, required=True)
    _add_kernel_argument(decompress)

    retrieve = sub.add_parser("retrieve", help="partial retrieval at a fidelity target")
    retrieve.add_argument("input", type=Path)
    retrieve.add_argument("-o", "--output", type=Path, required=True)
    group = retrieve.add_mutually_exclusive_group(required=True)
    group.add_argument("--error-bound", type=float)
    group.add_argument("--bitrate", type=float)
    _add_kernel_argument(retrieve)

    info = sub.add_parser("info", help="print the stream header")
    info.add_argument("input", type=Path)

    sub.add_parser("datasets", help="list the Table 3 dataset inventory")

    demo = sub.add_parser("demo", help="synthetic end-to-end demo")
    demo.add_argument("--dataset", default="density")
    demo.add_argument("--shape", type=_parse_shape, default=None)
    demo.add_argument("--eb", type=float, default=1e-6)
    _add_kernel_argument(demo)
    return parser


def _cmd_compress(args) -> int:
    data = load_raw(args.input, args.shape, args.dtype)
    comp = IPComp(
        error_bound=args.eb, relative=not args.abs, method=args.method,
        kernel=args.kernel,
    )
    blob = comp.compress(data)
    args.output.write_bytes(blob)
    print(
        f"compressed {data.nbytes} B -> {len(blob)} B "
        f"(CR {data.nbytes / len(blob):.2f}, eb {comp.absolute_bound(data):.3e})"
    )
    return 0


def _cmd_decompress(args) -> int:
    blob = args.input.read_bytes()
    retriever = ProgressiveRetriever(blob, kernel=args.kernel)
    result = retriever.retrieve(error_bound=retriever.header.error_bound)
    save_raw(args.output, result.data)
    print(f"decompressed to {args.output} shape={result.data.shape}")
    return 0


def _cmd_retrieve(args) -> int:
    blob = args.input.read_bytes()
    retriever = ProgressiveRetriever(blob, kernel=args.kernel)
    result = retriever.retrieve(error_bound=args.error_bound, bitrate=args.bitrate)
    save_raw(args.output, result.data)
    print(
        f"retrieved {result.bytes_loaded} B "
        f"({result.bitrate():.3f} bits/value), guaranteed error <= {result.error_bound:.3e}"
    )
    return 0


def _cmd_info(args) -> int:
    header, _ = IPCompStream.parse_header(args.input.read_bytes())
    print(json.dumps(header.to_json(), indent=2))
    return 0


def _cmd_datasets(_args) -> int:
    print(dataset_table())
    return 0


def _cmd_demo(args) -> int:
    field = load_dataset(args.dataset, shape=args.shape)
    comp = IPComp(error_bound=args.eb, relative=True, kernel=args.kernel)
    blob = comp.compress(field)
    restored = comp.decompress(blob)
    report = summarize(field, restored, blob)
    print(f"dataset={args.dataset} shape={field.shape} eb(rel)={args.eb}")
    for key, value in report.items():
        print(f"  {key:18s} {value:.6g}")
    return 0


_COMMANDS = {
    "compress": _cmd_compress,
    "decompress": _cmd_decompress,
    "retrieve": _cmd_retrieve,
    "info": _cmd_info,
    "datasets": _cmd_datasets,
    "demo": _cmd_demo,
}


def main(argv=None) -> int:
    """CLI entry point (installed as the ``ipcomp`` console script)."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
