"""Command line interface (the FZ-framework-style front end of §3.2).

Subcommands::

    ipcomp compress   INPUT.raw -o OUT.ipc --shape 64x96x96 --eb 1e-6 [--abs]
    ipcomp compress   INPUT.raw -o OUT.rprc --shape 64x96x96 --blocks 4
    ipcomp decompress OUT.ipc  -o RESTORED.raw
    ipcomp retrieve   OUT.ipc  -o PARTIAL.raw (--error-bound 1e-3 | --bitrate 2.0)
    ipcomp retrieve   OUT.rprc -o ROI.raw --roi 0:16,:,: --error-bound 1e-3
    ipcomp info       OUT.ipc
    ipcomp datasets                       # print the Table 3 inventory
    ipcomp demo       --dataset density   # synthetic end-to-end demo + metrics

Raw inputs follow the SDRBench layout (headerless little-endian binary); the
shape is passed as ``AxBxC``.  ``compress --blocks N`` writes a sharded
:class:`~repro.io.ChunkedDataset` container instead of a single stream;
``retrieve`` detects the format from the file and, for containers, serves
``--roi START:STOP,...`` regions by opening only the intersecting shards.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro import ChunkedDataset, IPComp, ProgressiveRetriever
from repro.analysis import summarize
from repro.core.kernels import DEFAULT_KERNEL, available_kernels
from repro.core.stream import IPCompStream
from repro.datasets import dataset_table, load_dataset, load_raw, save_raw
from repro.errors import ConfigurationError, ReproError
from repro.io import is_container


def _parse_shape(text: str) -> tuple:
    try:
        return tuple(int(part) for part in text.lower().replace(",", "x").split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(f"cannot parse shape {text!r}") from None


def _parse_roi(text: str) -> tuple:
    """Parse ``start:stop,start:stop,...`` (``:`` keeps an axis whole)."""
    axes = []
    try:
        for part in text.split(","):
            bounds = part.strip().split(":")
            if len(bounds) != 2:
                raise ValueError(part)
            start = int(bounds[0]) if bounds[0] else None
            stop = int(bounds[1]) if bounds[1] else None
            axes.append(slice(start, stop))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"cannot parse roi {text!r} (expected start:stop,start:stop,...)"
        ) from None
    return tuple(axes)


def _add_kernel_argument(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--kernel",
        choices=available_kernels(),
        default=DEFAULT_KERNEL,
        help="bit-level kernel implementation (default: %(default)s)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ipcomp", description="IPComp progressive lossy compressor (reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compress = sub.add_parser("compress", help="compress a raw binary field")
    compress.add_argument("input", type=Path)
    compress.add_argument("-o", "--output", type=Path, required=True)
    compress.add_argument("--shape", type=_parse_shape, required=True)
    compress.add_argument("--dtype", default="float64")
    compress.add_argument("--eb", type=float, default=1e-6, help="error bound")
    compress.add_argument(
        "--abs", action="store_true", help="treat --eb as absolute instead of range-relative"
    )
    compress.add_argument("--method", choices=("cubic", "linear"), default="cubic")
    compress.add_argument(
        "--blocks",
        type=int,
        default=None,
        metavar="N",
        help="write a sharded ChunkedDataset container with N slabs "
        "instead of a single stream (enables ROI retrieval)",
    )
    compress.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for --blocks compression (0 = serial)",
    )
    _add_kernel_argument(compress)

    decompress = sub.add_parser("decompress", help="full-precision decompression")
    decompress.add_argument("input", type=Path)
    decompress.add_argument("-o", "--output", type=Path, required=True)
    _add_kernel_argument(decompress)

    retrieve = sub.add_parser("retrieve", help="partial retrieval at a fidelity target")
    retrieve.add_argument("input", type=Path)
    retrieve.add_argument("-o", "--output", type=Path, required=True)
    group = retrieve.add_mutually_exclusive_group(required=True)
    group.add_argument("--error-bound", type=float)
    group.add_argument("--bitrate", type=float)
    retrieve.add_argument(
        "--roi",
        type=_parse_roi,
        default=None,
        metavar="S:E,S:E,...",
        help="region of interest (container inputs only): per-axis "
        "start:stop, ':' keeps an axis whole",
    )
    _add_kernel_argument(retrieve)

    info = sub.add_parser("info", help="print the stream header")
    info.add_argument("input", type=Path)

    sub.add_parser("datasets", help="list the Table 3 dataset inventory")

    demo = sub.add_parser("demo", help="synthetic end-to-end demo")
    demo.add_argument("--dataset", default="density")
    demo.add_argument("--shape", type=_parse_shape, default=None)
    demo.add_argument("--eb", type=float, default=1e-6)
    _add_kernel_argument(demo)
    return parser


def _cmd_compress(args) -> int:
    data = load_raw(args.input, args.shape, args.dtype)
    if args.blocks is not None:
        manifest = ChunkedDataset.write(
            args.output,
            data,
            error_bound=args.eb,
            relative=not args.abs,
            n_blocks=args.blocks,
            workers=args.workers,
            method=args.method,
            kernel=args.kernel,
        )
        size = args.output.stat().st_size
        print(
            f"compressed {data.nbytes} B -> {size} B container "
            f"(CR {data.nbytes / size:.2f}, {len(manifest['shards'])} shards, "
            f"eb {manifest['error_bound']:.3e})"
        )
        return 0
    comp = IPComp(
        error_bound=args.eb, relative=not args.abs, method=args.method,
        kernel=args.kernel,
    )
    blob = comp.compress(data)
    args.output.write_bytes(blob)
    print(
        f"compressed {data.nbytes} B -> {len(blob)} B "
        f"(CR {data.nbytes / len(blob):.2f}, eb {comp.absolute_bound(data):.3e})"
    )
    return 0


def _cmd_decompress(args) -> int:
    if is_container(args.input):
        with ChunkedDataset(args.input, kernel=args.kernel) as dataset:
            result = dataset.read()
        save_raw(args.output, result.data)
        print(f"decompressed to {args.output} shape={result.data.shape}")
        return 0
    blob = args.input.read_bytes()
    retriever = ProgressiveRetriever(blob, kernel=args.kernel)
    result = retriever.retrieve(error_bound=retriever.header.error_bound)
    save_raw(args.output, result.data)
    print(f"decompressed to {args.output} shape={result.data.shape}")
    return 0


def _cmd_retrieve(args) -> int:
    if is_container(args.input):
        if args.bitrate is not None:
            raise ConfigurationError(
                "container retrieval targets an error bound, not a bitrate"
            )
        with ChunkedDataset(args.input, kernel=args.kernel) as dataset:
            result = dataset.read(error_bound=args.error_bound, roi=args.roi)
            save_raw(args.output, result.data)
            print(
                f"retrieved {result.bytes_loaded} B of {dataset.file_bytes} B "
                f"({len(result.shards)}/{dataset.n_shards} shards, "
                f"{result.bitrate():.3f} bits/value), "
                f"guaranteed error <= {result.error_bound:.3e}"
            )
        return 0
    if args.roi is not None:
        raise ConfigurationError(
            "--roi requires a chunked container (compress with --blocks)"
        )
    blob = args.input.read_bytes()
    retriever = ProgressiveRetriever(blob, kernel=args.kernel)
    result = retriever.retrieve(error_bound=args.error_bound, bitrate=args.bitrate)
    save_raw(args.output, result.data)
    print(
        f"retrieved {result.bytes_loaded} B "
        f"({result.bitrate():.3f} bits/value), guaranteed error <= {result.error_bound:.3e}"
    )
    return 0


def _cmd_info(args) -> int:
    if is_container(args.input):
        with ChunkedDataset(args.input) as dataset:
            print(json.dumps(dataset.manifest, indent=2))
        return 0
    header, _ = IPCompStream.parse_header(args.input.read_bytes())
    print(json.dumps(header.to_json(), indent=2))
    return 0


def _cmd_datasets(_args) -> int:
    print(dataset_table())
    return 0


def _cmd_demo(args) -> int:
    field = load_dataset(args.dataset, shape=args.shape)
    comp = IPComp(error_bound=args.eb, relative=True, kernel=args.kernel)
    blob = comp.compress(field)
    restored = comp.decompress(blob)
    report = summarize(field, restored, blob)
    print(f"dataset={args.dataset} shape={field.shape} eb(rel)={args.eb}")
    for key, value in report.items():
        print(f"  {key:18s} {value:.6g}")
    return 0


_COMMANDS = {
    "compress": _cmd_compress,
    "decompress": _cmd_decompress,
    "retrieve": _cmd_retrieve,
    "info": _cmd_info,
    "datasets": _cmd_datasets,
    "demo": _cmd_demo,
}


def main(argv=None) -> int:
    """CLI entry point (installed as the ``ipcomp`` console script)."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
