"""Command line interface (the FZ-framework-style front end of §3.2).

Subcommands::

    ipcomp compress   INPUT.raw -o OUT.ipc --shape 64x96x96 --eb 1e-6 [--abs]
    ipcomp compress   INPUT.raw -o OUT.ipc --shape 64x96x96 --profile prof.json
    ipcomp compress   INPUT.raw -o OUT.rprc --shape 64x96x96 --blocks 4
    ipcomp decompress OUT.ipc  -o RESTORED.raw
    ipcomp retrieve   OUT.ipc  -o PARTIAL.raw (--error-bound 1e-3 | --bitrate 2.0)
    ipcomp retrieve   OUT.rprc -o ROI.raw --roi 0:16,:,: --error-bound 1e-3
    ipcomp retrieve   OUT.rprc -o ROI.raw --roi ... --workers 4 --prefetch 8
    ipcomp info       OUT.ipc             # header: version, levels, per-plane codec
    ipcomp info       OUT.rprc            # manifest + per-shard header summary
    ipcomp info       OUT.rprc --roi 0:16,:,: --error-bound 1e-3  # + retrieval plan
    ipcomp serve      OUT.rprc --requests REQS.jsonl [--threads 4] [--workers 2]
    ipcomp serve      OUT.rprc --requests REQS.jsonl --max-inflight 2 \
                      --client-budget-bps 1000000 --client-budget-bps vip=8000000
    ipcomp stats      OUT.rprc --requests REQS.jsonl  # aggregate only
    ipcomp retrieve   http://host:8123/OUT.rprc -o ROI.raw --roi 0:16,:,: \
                      --error-bound 1e-3 --mirror http://replica:8123/OUT.rprc
    ipcomp serve      http://host:8123/OUT.rprc --requests REQS.jsonl
    ipcomp datasets                       # print the Table 3 inventory
    ipcomp demo       --dataset density   # synthetic end-to-end demo + metrics

Raw inputs follow the SDRBench layout (headerless little-endian binary); the
shape is passed as ``AxBxC``.  ``compress --blocks N`` writes a sharded
:class:`~repro.io.ChunkedDataset` container instead of a single stream;
``retrieve`` detects the format from the file and, for containers, serves
``--roi START:STOP,...`` regions by opening only the intersecting shards.
Retrieval runs the plan → prefetch → pool-decode pipeline of
:mod:`repro.retrieval`: ``--prefetch N`` bounds the background range reads
in flight (default 4; ``--no-prefetch`` reads synchronously) and
``--workers N`` pool-decodes container shards in worker processes — both
pure runtime choices with bitwise-identical output and identical reported
byte counts.

``serve`` runs a batch of requests — one JSON object per line, e.g.
``{"roi": "0:16,:,:", "error_bound": 1e-3, "out": "roi.raw", "client":
"alice"}`` — through a single long-lived
:class:`~repro.service.RetrievalService` (pinned session, tiered slab/rung
cache, optional ``--threads`` concurrency and persistent ``--workers``
pool) and prints one trace JSON line per request; ``stats`` serves the
same batch but prints only the aggregate statistics.  ``--max-inflight``
and/or ``--client-budget-bps`` route the batch through the QoS
:class:`~repro.service.RequestScheduler` instead: admission-bounded,
byte-budgeted per client, with overload answered from resident fidelity
(``"degraded": true`` in the trace) and refined in the background — the
written outputs are always the final refined answers.

``retrieve``, ``info``, ``serve`` and ``stats`` also accept ``http(s)://``
URLs served with byte-range support (``python -m repro.io.rangeserver PATH``
publishes a directory): reads go through the resilient remote stack of
:mod:`repro.io.remote` — retries with jittered backoff, per-endpoint
circuit breakers, CRC verification, and with ``--mirror`` replica failover
— and stay bitwise-identical to a local read.  ``--inject-faults PLAN.json``
(a :mod:`repro.io.faults` plan) deterministically injects failures:
client-side below CRC verification for ``retrieve`` URLs, or around every
cold read's source for ``serve``/``stats``, exercising the healing paths
end-to-end.  ``retrieve --trace-json FILE`` writes a receipt with the
remote stack's request/egress/retry/breaker statistics.

Configuration is one :class:`~repro.core.profile.CodecProfile`:
``--profile FILE.json`` loads a profile, and the individual flags (``--eb``,
``--abs``, ``--method``, ``--kernel``, ``--coders``, ``--negotiation``)
override single fields of it — flags always win over the file.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import ChunkedDataset, CodecProfile, IPComp, ProgressiveRetriever
from repro.analysis import summarize
from repro.core.kernels import DEFAULT_KERNEL, available_kernels
from repro.core.profile import NEGOTIATION_ALIASES, NEGOTIATION_POLICIES
from repro.core.stream import IPCompStream
from repro.datasets import dataset_table, load_dataset, load_raw, save_raw
from repro.errors import ConfigurationError, ReproError
from repro.io import is_container
from repro.io.container import sniff_container
from repro.io.faults import FaultInjector, FaultPlan
from repro.io.aio import IO_BACKENDS, open_async_source, resolve_io_backend
from repro.io.remote import is_url, open_remote_source
from repro.retrieval.engine import open_stream_source
from repro.retrieval.prefetch import DEFAULT_PREFETCH_DEPTH
from repro.service import RetrievalService


def _input_path(text: str):
    """Input argument type: a local path, or an ``http(s)://`` URL kept as
    a verbatim string (``Path`` would collapse the ``//``)."""
    return text if is_url(text) else Path(text)


def _parse_shape(text: str) -> tuple:
    try:
        return tuple(int(part) for part in text.lower().replace(",", "x").split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(f"cannot parse shape {text!r}") from None


def _parse_roi(text: str) -> tuple:
    """Parse ``start:stop,start:stop,...`` (``:`` keeps an axis whole)."""
    axes = []
    try:
        for part in text.split(","):
            bounds = part.strip().split(":")
            if len(bounds) != 2:
                raise ValueError(part)
            start = int(bounds[0]) if bounds[0] else None
            stop = int(bounds[1]) if bounds[1] else None
            axes.append(slice(start, stop))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"cannot parse roi {text!r} (expected start:stop,start:stop,...)"
        ) from None
    return tuple(axes)


def _parse_coders(text: str) -> tuple:
    return tuple(part.strip() for part in text.split(",") if part.strip())


def _add_profile_arguments(subparser: argparse.ArgumentParser, full: bool = True) -> None:
    """Codec-profile options: a JSON file plus per-field override flags.

    ``full=False`` adds only the decode-relevant subset (the kernel): prefix
    bits, coders, and the bound are stream properties on the read side.
    """
    subparser.add_argument(
        "--profile",
        type=Path,
        default=None,
        metavar="FILE.json",
        help="codec profile JSON file; individual flags override its fields",
    )
    subparser.add_argument(
        "--kernel",
        choices=available_kernels(),
        default=None,
        help=f"bit-level kernel implementation (default: {DEFAULT_KERNEL}; "
        "'auto' picks the fastest available backend, 'compiled' needs the "
        "[compiled] extra)",
    )
    if not full:
        return
    subparser.add_argument("--eb", type=float, default=None, help="error bound")
    subparser.add_argument(
        "--abs", action=argparse.BooleanOptionalAction, default=None,
        help="treat the error bound as absolute instead of range-relative "
        "(--no-abs restores range-relative over a profile file)",
    )
    subparser.add_argument("--method", choices=("cubic", "linear"), default=None)
    subparser.add_argument(
        "--coders",
        type=_parse_coders,
        default=None,
        metavar="A,B,...",
        help="plane-coder candidate set, e.g. zlib,huffman,rle,raw",
    )
    subparser.add_argument(
        "--negotiation",
        choices=NEGOTIATION_POLICIES + tuple(NEGOTIATION_ALIASES),
        default=None,
        help="how the plane coder is chosen from the candidates "
        "(smallest/full: per-plane trial encode; sampled: trial encode a "
        "plane prefix only; fixed: always the first)",
    )
    subparser.add_argument(
        "--negotiation-sample",
        type=int,
        default=None,
        metavar="BYTES",
        help="plane-prefix bytes trial-encoded per candidate under "
        "--negotiation sampled",
    )


def _profile_from_args(args) -> CodecProfile:
    """Resolve the effective profile: file (or defaults) + flag overrides."""
    base = CodecProfile.from_file(args.profile) if getattr(args, "profile", None) else None
    overrides = {}
    if getattr(args, "kernel", None) is not None:
        overrides["kernel"] = args.kernel
    if getattr(args, "eb", None) is not None:
        overrides["error_bound"] = args.eb
    if getattr(args, "abs", None) is not None:
        overrides["relative"] = not args.abs
    if getattr(args, "method", None) is not None:
        overrides["method"] = args.method
    if getattr(args, "coders", None) is not None:
        overrides["plane_coders"] = args.coders
    if getattr(args, "negotiation", None) is not None:
        overrides["negotiation"] = args.negotiation
    if getattr(args, "negotiation_sample", None) is not None:
        overrides["negotiation_sample"] = args.negotiation_sample
    return CodecProfile.from_options(base, **overrides)


def _decode_profile_from_args(args) -> CodecProfile:
    """The decode-side profile: only the kernel field is consumed.

    Streams are self-describing, so a profile file written on a machine with
    extra coders registered must not fail validation here — only its kernel
    (flag wins over file) is read.
    """
    kernel = args.kernel
    if kernel is None and args.profile is not None:
        try:
            obj = json.loads(Path(args.profile).read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise ConfigurationError(
                f"cannot read codec profile {args.profile}: {exc}"
            ) from None
        if not isinstance(obj, dict):
            raise ConfigurationError("codec profile JSON must be an object")
        kernel = obj.get("kernel")
    if kernel is None:
        return CodecProfile()
    return CodecProfile(kernel=kernel)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ipcomp", description="IPComp progressive lossy compressor (reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compress = sub.add_parser("compress", help="compress a raw binary field")
    compress.add_argument("input", type=Path)
    compress.add_argument("-o", "--output", type=Path, required=True)
    compress.add_argument("--shape", type=_parse_shape, required=True)
    compress.add_argument("--dtype", default="float64")
    compress.add_argument(
        "--blocks",
        type=int,
        default=None,
        metavar="N",
        help="write a sharded ChunkedDataset container with N slabs "
        "instead of a single stream (enables ROI retrieval)",
    )
    compress.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for --blocks compression (0 = serial)",
    )
    _add_profile_arguments(compress)

    decompress = sub.add_parser("decompress", help="full-precision decompression")
    decompress.add_argument("input", type=Path)
    decompress.add_argument("-o", "--output", type=Path, required=True)
    _add_profile_arguments(decompress, full=False)

    retrieve = sub.add_parser("retrieve", help="partial retrieval at a fidelity target")
    retrieve.add_argument(
        "input",
        type=_input_path,
        help="stream/container file, or an http(s):// URL served with "
        "Range support (e.g. by python -m repro.io.rangeserver)",
    )
    retrieve.add_argument("-o", "--output", type=Path, required=True)
    retrieve.add_argument(
        "--mirror",
        action="append",
        default=None,
        metavar="URL",
        help="replica URL of the same bytes (repeatable; URL inputs only) "
        "— reads fail over between mirrors by health",
    )
    retrieve.add_argument(
        "--inject-faults",
        type=Path,
        default=None,
        metavar="PLAN.json",
        help="deterministic fault plan (repro.io.faults JSON) injected "
        "client-side below CRC verification (URL inputs only)",
    )
    retrieve.add_argument(
        "--trace-json",
        type=Path,
        default=None,
        metavar="FILE",
        help="write a retrieval receipt JSON (bytes, and for URL inputs "
        "the remote stack's requests/egress/retries/breaker stats)",
    )
    group = retrieve.add_mutually_exclusive_group(required=True)
    group.add_argument("--error-bound", type=float)
    group.add_argument("--bitrate", type=float)
    retrieve.add_argument(
        "--roi",
        type=_parse_roi,
        default=None,
        metavar="S:E,S:E,...",
        help="region of interest (container inputs only): per-axis "
        "start:stop, ':' keeps an axis whole",
    )
    retrieve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="pool-decode worker processes for container retrieval "
        "(0/1 = in-process; single streams always decode in-process)",
    )
    prefetch_group = retrieve.add_mutually_exclusive_group()
    prefetch_group.add_argument(
        "--prefetch",
        type=int,
        default=None,
        metavar="N",
        help=f"planned byte ranges kept in flight by the background "
        f"prefetcher (default: {DEFAULT_PREFETCH_DEPTH}; reads overlap "
        "decode, reported bytes are unchanged)",
    )
    prefetch_group.add_argument(
        "--no-prefetch",
        action="store_true",
        help="read every planned range synchronously",
    )
    retrieve.add_argument(
        "--io",
        choices=IO_BACKENDS,
        default=None,
        metavar="BACKEND",
        help="range-I/O backend: auto (default; async event loop for "
        "http(s) URLs, threads otherwise), async (multiplexed connection "
        "pool), threads (thread-pool prefetcher), or sync (serial reads, "
        "prefetch off) — every backend is bitwise-identical",
    )
    _add_profile_arguments(retrieve, full=False)

    info = sub.add_parser(
        "info", help="print the parsed stream header / dataset manifest"
    )
    info.add_argument("input", type=_input_path)
    info.add_argument(
        "--roi",
        type=_parse_roi,
        default=None,
        metavar="S:E,S:E,...",
        help="also print the retrieval plan (fetch ops, coalesced ranges, "
        "predicted bytes) for this region (container inputs only)",
    )
    info.add_argument(
        "--error-bound",
        type=float,
        default=None,
        help="fidelity target of the printed retrieval plan "
        "(default: the stored bound, i.e. full precision)",
    )

    def _add_serve_arguments(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "input",
            type=_input_path,
            help="container/stream file, or an http(s):// URL (served "
            "through the resilient remote stack)",
        )
        subparser.add_argument(
            "--mirror",
            action="append",
            default=None,
            metavar="URL",
            help="replica URL for URL inputs (repeatable): reads fail "
            "over between mirrors by health",
        )
        subparser.add_argument(
            "--inject-faults",
            type=Path,
            default=None,
            metavar="PLAN.json",
            help="deterministic fault plan (repro.io.faults JSON) wrapped "
            "around every cold read's source — the service's retry "
            "ladder must heal the injected failures",
        )
        subparser.add_argument(
            "--requests",
            type=Path,
            required=True,
            metavar="FILE.jsonl",
            help="request batch: one JSON object per line with optional "
            "'roi' (start:stop,...), 'error_bound', 'client' (tenant name "
            "for QoS scheduling), and 'out' (raw output file name); "
            "'-' reads from stdin",
        )
        subparser.add_argument(
            "--max-inflight",
            type=int,
            default=None,
            metavar="N",
            help="QoS scheduler admission window: at most N requests "
            "fetch/decode concurrently; the rest queue or degrade to a "
            "resident fidelity (enables the scheduler)",
        )
        subparser.add_argument(
            "--client-budget-bps",
            action="append",
            default=None,
            metavar="[CLIENT=]BPS",
            help="byte-budget token bucket rate; plain BPS sets the "
            "default for every client, CLIENT=BPS one tenant's rate "
            "(repeatable; enables the scheduler)",
        )
        subparser.add_argument(
            "--threads",
            type=int,
            default=1,
            metavar="N",
            help="serve the batch with N concurrent threads (default 1; "
            "traces still print in request order)",
        )
        subparser.add_argument(
            "--workers",
            type=int,
            default=None,
            metavar="N",
            help="persistent pool-decode workers shared across requests",
        )
        subparser.add_argument(
            "--cache-bytes",
            type=int,
            default=None,
            metavar="B",
            help="tiered slab/rung cache budget in bytes "
            "(default: profile's cache_bytes, else 256 MiB)",
        )
        subparser.add_argument(
            "--out-dir",
            type=Path,
            default=Path("."),
            help="directory for requests' 'out' files (default: cwd)",
        )
        subparser.add_argument(
            "--stats-json",
            type=Path,
            default=None,
            metavar="FILE",
            help="also write the aggregate service stats to FILE",
        )
        subparser.add_argument(
            "--io",
            choices=IO_BACKENDS,
            default=None,
            metavar="BACKEND",
            help="remote range-I/O backend for URL inputs: auto (default), "
            "async, threads, or sync",
        )
        _add_profile_arguments(subparser, full=False)

    serve = sub.add_parser(
        "serve",
        help="serve a request batch through one cached retrieval service",
    )
    _add_serve_arguments(serve)

    stats = sub.add_parser(
        "stats", help="serve a request batch, print aggregate stats only"
    )
    _add_serve_arguments(stats)

    sub.add_parser("datasets", help="list the Table 3 dataset inventory")

    demo = sub.add_parser("demo", help="synthetic end-to-end demo")
    demo.add_argument("--dataset", default="density")
    demo.add_argument("--shape", type=_parse_shape, default=None)
    _add_profile_arguments(demo)
    return parser


def _cmd_compress(args) -> int:
    data = load_raw(args.input, args.shape, args.dtype)
    profile = _profile_from_args(args)
    if args.blocks is not None:
        manifest = ChunkedDataset.write(
            args.output,
            data,
            profile=profile,
            n_blocks=args.blocks,
            workers=args.workers,
        )
        size = args.output.stat().st_size
        print(
            f"compressed {data.nbytes} B -> {size} B container "
            f"(CR {data.nbytes / size:.2f}, {len(manifest['shards'])} shards, "
            f"eb {manifest['error_bound']:.3e})"
        )
        return 0
    comp = IPComp(profile=profile)
    blob = comp.compress(data)
    args.output.write_bytes(blob)
    print(
        f"compressed {data.nbytes} B -> {len(blob)} B "
        f"(CR {data.nbytes / len(blob):.2f}, eb {comp.absolute_bound(data):.3e})"
    )
    return 0


def _cmd_decompress(args) -> int:
    profile = _decode_profile_from_args(args)
    if is_container(args.input):
        with ChunkedDataset(args.input, profile=profile) as dataset:
            result = dataset.read()
        save_raw(args.output, result.data)
        print(f"decompressed to {args.output} shape={result.data.shape}")
        return 0
    blob = args.input.read_bytes()
    retriever = ProgressiveRetriever(blob, profile=profile)
    result = retriever.retrieve(error_bound=retriever.header.error_bound)
    save_raw(args.output, result.data)
    print(f"decompressed to {args.output} shape={result.data.shape}")
    return 0


def _runtime_knobs_from_profile_file(args) -> dict:
    """``prefetch`` / ``workers`` read from ``--profile`` (flags override)."""
    if getattr(args, "profile", None) is None:
        return {}
    try:
        obj = json.loads(Path(args.profile).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ConfigurationError(
            f"cannot read codec profile {args.profile}: {exc}"
        ) from None
    if not isinstance(obj, dict):
        raise ConfigurationError("codec profile JSON must be an object")
    return {
        k: obj[k]
        for k in ("prefetch", "workers", "cache_bytes", "cache_verify", "io_backend")
        if k in obj
    }


def _retrieve_prefetch_depth(args, file_knobs: dict) -> int:
    """Effective prefetch depth: flag > profile file > default."""
    if args.no_prefetch:
        return 0
    if args.prefetch is not None:
        if args.prefetch < 0:
            raise ConfigurationError("--prefetch must be non-negative")
        return args.prefetch
    return int(file_knobs.get("prefetch", DEFAULT_PREFETCH_DEPTH))


def _retrieve_io_choice(args, file_knobs: dict) -> str:
    """Effective ``--io`` choice: flag > profile file > auto."""
    if getattr(args, "io", None) is not None:
        return args.io
    return str(file_knobs.get("io_backend", "auto"))


def _fault_injector_from_args(args) -> "FaultInjector | None":
    if getattr(args, "inject_faults", None) is None:
        return None
    return FaultInjector(FaultPlan.from_file(args.inject_faults))


def _write_retrieve_trace(args, result, remote_stats, io_backend=None) -> None:
    """``retrieve --trace-json``: one receipt object, remote stats included."""
    if args.trace_json is None:
        return
    receipt = {
        "input": str(args.input),
        "error_bound": result.error_bound,
        "bytes_loaded": result.bytes_loaded,
        "bitrate": result.bitrate(),
        "io_backend": io_backend,
        "remote": remote_stats,
    }
    args.trace_json.write_text(json.dumps(receipt, indent=2), encoding="utf-8")


def _cmd_retrieve_remote(args, profile, prefetch, workers, io_choice) -> int:
    """``retrieve`` over an ``http(s)://`` URL: the resilient remote stack
    (retries, CRC, optional mirrors / injected faults) feeds the same
    plan → prefetch → decode pipeline; output is bitwise-identical to a
    local read of the same file."""
    injector = _fault_injector_from_args(args)
    backend = resolve_io_backend(io_choice, args.input)
    if backend == "sync":
        prefetch = 0
    tamper = injector.tamper if injector is not None else None
    if backend == "async":
        stack = open_async_source(
            args.input, tuple(args.mirror or ()), tamper=tamper
        )
    else:
        stack = open_remote_source(
            args.input, tuple(args.mirror or ()), tamper=tamper
        )
    if sniff_container(stack):
        if args.bitrate is not None:
            stack.close()
            raise ConfigurationError(
                "container retrieval targets an error bound, not a bitrate"
            )
        # The dataset's reader owns (and closes) the stack.
        with ChunkedDataset(
            args.input, profile=profile, prefetch=prefetch,
            workers=workers, source=stack, io_backend=backend,
        ) as dataset:
            result = dataset.read(error_bound=args.error_bound, roi=args.roi)
            save_raw(args.output, result.data)
            file_bytes = dataset.file_bytes
            n_shards = dataset.n_shards
        stats = stack.stats()
        print(
            f"retrieved {result.bytes_loaded} B of {file_bytes} B over HTTP "
            f"({len(result.shards)}/{n_shards} shards, "
            f"{stats['egress_bytes']} B egress, {stats.get('retries', 0)} retries), "
            f"guaranteed error <= {result.error_bound:.3e}"
        )
    else:
        if args.roi is not None:
            stack.close()
            raise ConfigurationError(
                "--roi requires a chunked container (compress with --blocks)"
            )
        source = open_stream_source(
            args.input, prefetch=prefetch, source=stack, io_backend=backend
        )
        try:
            retriever = ProgressiveRetriever(source, profile=profile)
            result = retriever.retrieve(
                error_bound=args.error_bound, bitrate=args.bitrate
            )
        finally:
            close = getattr(source, "close", None)
            if close is not None:
                close()
        save_raw(args.output, result.data)
        stats = stack.stats()
        print(
            f"retrieved {result.bytes_loaded} B over HTTP "
            f"({stats['egress_bytes']} B egress, {stats.get('retries', 0)} "
            f"retries, {result.bitrate():.3f} bits/value), "
            f"guaranteed error <= {result.error_bound:.3e}"
        )
    if injector is not None:
        stats = {**stats, "faults": injector.stats()}
    _write_retrieve_trace(args, result, stats, io_backend=backend)
    return 0


def _cmd_retrieve(args) -> int:
    profile = _decode_profile_from_args(args)
    file_knobs = _runtime_knobs_from_profile_file(args)
    prefetch = _retrieve_prefetch_depth(args, file_knobs)
    workers = args.workers if args.workers is not None else file_knobs.get("workers")
    io_choice = _retrieve_io_choice(args, file_knobs)
    if is_url(args.input):
        return _cmd_retrieve_remote(args, profile, prefetch, workers, io_choice)
    if io_choice == "async":
        raise ConfigurationError(
            "--io async requires an http(s):// input (local files use "
            "threads or sync)"
        )
    if io_choice == "sync":
        prefetch = 0
    if args.mirror or args.inject_faults is not None:
        raise ConfigurationError(
            "--mirror and --inject-faults apply to http(s):// inputs "
            "(use 'serve --inject-faults' for local files)"
        )
    if is_container(args.input):
        if args.bitrate is not None:
            raise ConfigurationError(
                "container retrieval targets an error bound, not a bitrate"
            )
        with ChunkedDataset(
            args.input, profile=profile, prefetch=prefetch, workers=workers
        ) as dataset:
            result = dataset.read(error_bound=args.error_bound, roi=args.roi)
            save_raw(args.output, result.data)
            print(
                f"retrieved {result.bytes_loaded} B of {dataset.file_bytes} B "
                f"({len(result.shards)}/{dataset.n_shards} shards, "
                f"{result.bitrate():.3f} bits/value), "
                f"guaranteed error <= {result.error_bound:.3e}"
            )
        _write_retrieve_trace(
            args, result, None,
            io_backend="sync" if prefetch == 0 else "threads",
        )
        return 0
    if args.roi is not None:
        raise ConfigurationError(
            "--roi requires a chunked container (compress with --blocks)"
        )
    # Single streams decode in-process (one stream, nothing to pool), but
    # still run the plan → prefetch stages against the file: only the
    # planned plane blocks are read, overlapped with decode when prefetch
    # is on.
    source = open_stream_source(args.input, prefetch=prefetch)
    try:
        retriever = ProgressiveRetriever(source, profile=profile)
        result = retriever.retrieve(error_bound=args.error_bound, bitrate=args.bitrate)
    finally:
        close = getattr(source, "close", None)
        if close is not None:
            close()
    save_raw(args.output, result.data)
    print(
        f"retrieved {result.bytes_loaded} B "
        f"({result.bitrate():.3f} bits/value), guaranteed error <= {result.error_bound:.3e}"
    )
    _write_retrieve_trace(
        args, result, None, io_backend="sync" if prefetch == 0 else "threads"
    )
    return 0


def _header_summary(header) -> dict:
    """The inspection view of a parsed stream header (``info`` subcommand)."""
    summary = header.to_json()
    summary["version"] = header.version
    summary["payload_bytes"] = header.payload_bytes()
    # to_json emits codec indices (the compact wire form); resolve them back
    # to names so the inspection output is directly readable.
    codecs = summary["codecs"]
    summary["anchor_coder"] = codecs[summary["anchor_coder"]]
    for level in summary["levels"]:
        level["plane_codecs"] = [codecs[i] for i in level["plane_codecs"]]
        del level["delta_table"]  # planning detail, noise for inspection
    return summary


def _container_info(dataset, args) -> dict:
    report = dict(dataset.manifest)
    report["file_bytes"] = dataset.file_bytes
    shard_headers = {}
    for shard in sorted(dataset.shards, key=lambda s: s.name):
        header, _ = IPCompStream.parse_header_source(
            dataset.shard_source(shard.name)
        )
        shard_headers[shard.name] = _header_summary(header)
    report["shard_headers"] = shard_headers
    if args.roi is not None or args.error_bound is not None:
        # Stage-1 planning only: the fetch ops, coalesced ranges and
        # predicted bytes a stateless read of this region would run.
        plan = dataset.plan(error_bound=args.error_bound, roi=args.roi)
        report["retrieval_plan"] = plan.to_json()
    return report


def _stream_info(blob: bytes, args) -> dict:
    header, _ = IPCompStream.parse_header(blob)
    summary = _header_summary(header)
    if args.error_bound is not None:
        # Single-stream retrieval plan at the requested target: the same
        # stage-1 fetch ops a `retrieve --error-bound` would read.
        from repro.retrieval.plan import RetrievalPlan, ShardPlan

        retriever = ProgressiveRetriever(blob)
        ops = retriever.pending_ops(error_bound=args.error_bound)
        plan = RetrievalPlan([
            ShardPlan(
                shard=None,
                ops=ops,
                header_bytes=retriever.store.header_bytes,
                target_keep=retriever.plan_request(
                    error_bound=args.error_bound
                ).keep,
            )
        ])
        summary["retrieval_plan"] = plan.to_json()
    return summary


def _cmd_info(args) -> int:
    if is_url(args.input):
        stack = open_remote_source(args.input)
        if sniff_container(stack):
            with ChunkedDataset(args.input, source=stack) as dataset:
                report = _container_info(dataset, args)
        else:
            try:
                if args.roi is not None:
                    raise ConfigurationError(
                        "--roi requires a chunked container "
                        "(compress with --blocks)"
                    )
                blob = stack.read_range(0, stack.size)
            finally:
                stack.close()
            report = _stream_info(blob, args)
        print(json.dumps(report, indent=2))
        return 0
    if is_container(args.input):
        with ChunkedDataset(args.input) as dataset:
            report = _container_info(dataset, args)
        print(json.dumps(report, indent=2))
        return 0
    if args.roi is not None:
        raise ConfigurationError(
            "--roi requires a chunked container (compress with --blocks)"
        )
    print(json.dumps(_stream_info(args.input.read_bytes(), args), indent=2))
    return 0


def _load_requests(path: Path) -> list:
    """Parse a JSONL batch into ``(roi, error_bound, out, client)`` tuples."""
    if str(path) == "-":
        text = sys.stdin.read()
    else:
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(f"cannot read requests file: {exc}") from None
    requests = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            obj = json.loads(line)
        except ValueError as exc:
            raise ConfigurationError(
                f"requests line {lineno} is not valid JSON: {exc}"
            ) from None
        if not isinstance(obj, dict):
            raise ConfigurationError(f"requests line {lineno} must be an object")
        try:
            roi = _parse_roi(str(obj["roi"])) if obj.get("roi") is not None else None
        except argparse.ArgumentTypeError as exc:
            raise ConfigurationError(f"requests line {lineno}: {exc}") from None
        bound = obj.get("error_bound")
        requests.append(
            (
                roi,
                float(bound) if bound is not None else None,
                obj.get("out"),
                str(obj.get("client") or "default"),
            )
        )
    if not requests:
        raise ConfigurationError("requests file contains no requests")
    return requests


def _parse_client_budgets(values) -> tuple:
    """Split ``--client-budget-bps`` values into (default_bps, {client: bps})."""
    default_bps = 0
    per_client = {}
    for value in values or []:
        name, sep, rate = str(value).rpartition("=")
        try:
            bps = int(rate)
        except ValueError:
            raise ConfigurationError(
                f"invalid --client-budget-bps value: {value!r}"
            ) from None
        if sep:
            per_client[name] = bps
        else:
            default_bps = bps
    return default_bps, per_client


def _serve_batch(args) -> tuple:
    """Run the request batch through one service; returns (traces, stats).

    With ``--max-inflight`` or ``--client-budget-bps`` the batch goes
    through the QoS :class:`~repro.service.scheduler.RequestScheduler`
    (admission window, per-client byte budgets, degradation with
    background refinement); outputs are always the *refined* final
    answers, with the trace's ``degraded`` flag recording whether a
    coarser answer was load-shed first.
    """
    from concurrent.futures import ThreadPoolExecutor

    profile = _decode_profile_from_args(args)
    file_knobs = _runtime_knobs_from_profile_file(args)
    workers = args.workers if args.workers is not None else file_knobs.get("workers")
    cache_bytes = (
        args.cache_bytes
        if args.cache_bytes is not None
        else file_knobs.get("cache_bytes")
    )
    requests = _load_requests(args.requests)
    scheduled = args.max_inflight is not None or args.client_budget_bps
    injector = _fault_injector_from_args(args)
    remote_options = {"mirrors": tuple(args.mirror)} if args.mirror else {}
    with RetrievalService(
        profile=profile,
        cache_bytes=cache_bytes,
        cache_verify=file_knobs.get("cache_verify"),
        workers=workers,
        source_filter=injector.source_filter if injector is not None else None,
        remote_options=remote_options,
        io_backend=_retrieve_io_choice(args, file_knobs),
    ) as service:
        if scheduled:
            default_bps, per_client = _parse_client_budgets(args.client_budget_bps)
            from repro.service.scheduler import DEFAULT_MAX_INFLIGHT, RequestScheduler

            with RequestScheduler(
                service,
                max_inflight=args.max_inflight or DEFAULT_MAX_INFLIGHT,
                budget_bps=default_bps,
                client_budgets=per_client,
            ) as scheduler:
                handles = [
                    scheduler.submit(
                        args.input, error_bound=error_bound, roi=roi, client=client
                    )
                    for roi, error_bound, _out, client in requests
                ]
                traces = []
                for handle, (_roi, _eb, out, _client) in zip(handles, requests):
                    response = handle.refined()
                    if out is not None:
                        save_raw(args.out_dir / out, response.data)
                    traces.append(response.trace)
                stats = {**service.stats(), "scheduler": scheduler.stats()}
        else:

            def serve_one(request):
                roi, error_bound, out, client = request
                response = service.get(args.input, error_bound=error_bound, roi=roi)
                response.trace.client = client
                if out is not None:
                    save_raw(args.out_dir / out, response.data)
                return response.trace

            threads = max(1, int(args.threads))
            if threads == 1 or len(requests) == 1:
                traces = [serve_one(request) for request in requests]
            else:
                with ThreadPoolExecutor(max_workers=threads) as pool:
                    traces = list(pool.map(serve_one, requests))
            stats = service.stats()
    if injector is not None:
        stats = {**stats, "faults": injector.stats()}
    if args.stats_json is not None:
        args.stats_json.write_text(json.dumps(stats, indent=2), encoding="utf-8")
    return traces, stats


def _cmd_serve(args) -> int:
    traces, _ = _serve_batch(args)
    for trace in traces:
        print(json.dumps(trace.to_json()))
    return 0


def _cmd_stats(args) -> int:
    _, stats = _serve_batch(args)
    print(json.dumps(stats, indent=2))
    return 0


def _cmd_datasets(_args) -> int:
    print(dataset_table())
    return 0


def _cmd_demo(args) -> int:
    field = load_dataset(args.dataset, shape=args.shape)
    comp = IPComp(profile=_profile_from_args(args))
    blob = comp.compress(field)
    restored = comp.decompress(blob)
    report = summarize(field, restored, blob)
    print(
        f"dataset={args.dataset} shape={field.shape} "
        f"eb({'abs' if not comp.profile.relative else 'rel'})={comp.profile.error_bound}"
    )
    for key, value in report.items():
        print(f"  {key:18s} {value:.6g}")
    return 0


_COMMANDS = {
    "compress": _cmd_compress,
    "decompress": _cmd_decompress,
    "retrieve": _cmd_retrieve,
    "info": _cmd_info,
    "serve": _cmd_serve,
    "stats": _cmd_stats,
    "datasets": _cmd_datasets,
    "demo": _cmd_demo,
}


def main(argv=None) -> int:
    """CLI entry point (installed as the ``ipcomp`` console script)."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
