"""Lossless coding substrate.

The paper's IPComp pipeline ends with a lossless back-end (zstd in the
authors' implementation) applied to every independently retrievable block.
This subpackage provides that substrate from scratch:

* :mod:`repro.coders.bitio` — bit-granular reader/writer; the packing
  substrate both kernels of :mod:`repro.core.kernels` build on.
* :mod:`repro.coders.huffman` — canonical Huffman coder (used by the SZ3
  baseline, matching the paper's description of SZ3 = Huffman + zstd).
* :mod:`repro.coders.rle` — byte run-length coder (cheap pre-pass for very
  sparse bitplanes).
* :mod:`repro.coders.lz77` — a from-scratch byte-level LZ77 coder standing in
  for zstd's match/offset modelling.
* :mod:`repro.coders.zlib_backend` — stdlib DEFLATE wrapper, the default
  production backend (fast and always available).
* :mod:`repro.coders.entropy` — Shannon entropy estimators used by the
  Table 2 reproduction.

Every coder exposes the same two-function interface ``encode(bytes) -> bytes``
and ``decode(bytes) -> bytes`` plus a registry so the compressors can select a
backend by name.
"""

from __future__ import annotations

from repro.coders.backend import (
    Backend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.coders.entropy import bit_entropy, byte_entropy, shannon_entropy
from repro.coders.huffman import HuffmanCoder
from repro.coders.lz77 import LZ77Coder
from repro.coders.rle import RLECoder
from repro.coders.zlib_backend import ZlibCoder

__all__ = [
    "Backend",
    "available_backends",
    "get_backend",
    "register_backend",
    "HuffmanCoder",
    "LZ77Coder",
    "RLECoder",
    "ZlibCoder",
    "shannon_entropy",
    "byte_entropy",
    "bit_entropy",
]
