"""Backend registry for lossless coders.

The compressors in this package never hard-code a specific lossless coder;
they ask the registry for a backend by name.  This mirrors the FZ framework's
pluggable lossless stage described in the paper (§3.2) and makes it trivial to
benchmark the effect of the backend choice (DEFLATE vs. from-scratch LZ77 vs.
Huffman) on the final compression ratio.
"""

from __future__ import annotations

from typing import Callable, Dict, Protocol

from repro.errors import ConfigurationError


class Backend(Protocol):
    """Minimal protocol every lossless backend implements."""

    #: Registry name of the backend.
    name: str

    def encode(self, data: bytes) -> bytes:  # pragma: no cover - protocol
        """Losslessly compress ``data``."""
        ...

    def decode(self, data: bytes) -> bytes:  # pragma: no cover - protocol
        """Invert :meth:`encode`."""
        ...


_REGISTRY: Dict[str, Callable[[], Backend]] = {}


def register_backend(
    name: str, factory: Callable[[], Backend], *, replace: bool = False
) -> None:
    """Register a lossless backend factory under ``name``.

    Re-registering an existing name is rejected unless ``replace=True`` —
    a silent replacement would let two subsystems fight over a name and
    corrupt streams that negotiated the original coder.  Tests that inject
    instrumented backends pass ``replace=True`` explicitly.
    """
    if not name:
        raise ConfigurationError("backend name must be a non-empty string")
    if name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"lossless backend {name!r} is already registered; "
            "pass replace=True to override it"
        )
    _REGISTRY[name] = factory


def available_backends() -> tuple[str, ...]:
    """Return the names of all registered backends, sorted."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> Backend:
    """Instantiate the backend registered under ``name``.

    Raises
    ------
    ConfigurationError
        If no backend with that name has been registered.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown lossless backend {name!r}; available: {available_backends()}"
        ) from None
    return factory()


def _register_defaults() -> None:
    """Register the built-in backends lazily to avoid import cycles."""
    from repro.coders.huffman import HuffmanCoder
    from repro.coders.lz77 import LZ77Coder
    from repro.coders.rle import RLECoder
    from repro.coders.zlib_backend import ZlibCoder

    register_backend("zlib", ZlibCoder)
    register_backend("huffman", HuffmanCoder)
    register_backend("rle", RLECoder)
    register_backend("lz77", LZ77Coder)
    register_backend("raw", RawCoder)


class RawCoder:
    """Identity backend — useful for isolating the effect of the lossy stage."""

    name = "raw"

    def encode(self, data: bytes) -> bytes:
        return bytes(data)

    def decode(self, data: bytes) -> bytes:
        return bytes(data)


_register_defaults()
