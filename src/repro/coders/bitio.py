"""Bit-granular I/O.

``BitWriter`` packs bits LSB-first into a growing bytearray; ``BitReader``
is its exact inverse.  The single-bit paths keep the hot loops simple
(append to an integer accumulator, flush whole bytes) and are the substrate
of the ``"reference"`` kernel's auditable bit-by-bit plane packing
(:mod:`repro.core.kernels`).  Every multi-bit operation —
:meth:`BitWriter.write_bit_array` / :meth:`BitReader.read_bit_array`, wide
:meth:`BitWriter.write_bits` / :meth:`BitReader.read_bits` fields, and long
unary runs — routes through one ``np.packbits`` / ``np.unpackbits`` pass on
*any* alignment (a misaligned writer folds its pending accumulator bits
into the same pass); only fields of at most 16 bits keep the integer loop,
which is faster than an array round trip at that size.  The vectorized
kernel's per-plane packing uses ``np.packbits`` directly (a fresh plane is
always byte-aligned, so the writer object would only add copies).  All
routes emit identical bytes for the same bit sequence.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StreamFormatError


class BitWriter:
    """Accumulate bits (LSB-first within each byte) into a byte buffer."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._accumulator = 0
        self._nbits = 0
        self._total_bits = 0

    def __len__(self) -> int:
        """Number of bits written so far."""
        return self._total_bits

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self._accumulator |= (bit & 1) << self._nbits
        self._nbits += 1
        self._total_bits += 1
        if self._nbits == 8:
            self._buffer.append(self._accumulator)
            self._accumulator = 0
            self._nbits = 0

    def write_bits(self, value: int, count: int) -> None:
        """Append the ``count`` least-significant bits of ``value``, LSB first."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count <= 16:
            # For the short fields (flags, small varint limbs) that dominate
            # header writes, the integer loop beats any array round trip.
            for i in range(count):
                self.write_bit((value >> i) & 1)
            return
        value = int(value) & ((1 << count) - 1)
        packed = value.to_bytes((count + 7) // 8, "little")
        self.write_bit_array(
            np.unpackbits(
                np.frombuffer(packed, dtype=np.uint8), count=count, bitorder="little"
            )
        )

    def write_unary(self, value: int) -> None:
        """Append ``value`` zero bits followed by a terminating one bit."""
        if value <= 16:
            for _ in range(value):
                self.write_bit(0)
            self.write_bit(1)
            return
        bits = np.zeros(value + 1, dtype=np.uint8)
        bits[value] = 1
        self.write_bit_array(bits)

    def write_bit_array(self, bits: np.ndarray) -> None:
        """Append an array of bits (any nonzero value counts as 1) in one pass.

        The whole array is packed with a single ``np.packbits`` call; a
        misaligned writer first folds its pending accumulator bits into the
        array so no per-bit Python loop runs on any alignment (same output
        bytes as the bit-by-bit path on every route).
        """
        bits = (np.asarray(bits).ravel() != 0).astype(np.uint8)
        if bits.size == 0:
            return
        if self._nbits:
            pending = np.unpackbits(
                np.frombuffer(bytes([self._accumulator]), dtype=np.uint8),
                count=self._nbits,
                bitorder="little",
            )
            self._total_bits -= self._nbits
            self._accumulator = 0
            self._nbits = 0
            bits = np.concatenate([pending, bits])
        full = bits.size & ~7
        if full:
            self._buffer += np.packbits(bits[:full], bitorder="little").tobytes()
            self._total_bits += full
        tail = bits[full:]
        if tail.size:
            self._accumulator = int(np.packbits(tail, bitorder="little")[0])
            self._nbits = int(tail.size)
            self._total_bits += int(tail.size)

    def getvalue(self) -> bytes:
        """Return the packed bytes (the final partial byte is zero-padded)."""
        out = bytearray(self._buffer)
        if self._nbits:
            out.append(self._accumulator)
        return bytes(out)


class BitReader:
    """Read bits back in the order a :class:`BitWriter` produced them."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit position

    @property
    def bits_remaining(self) -> int:
        """Number of unread bits left in the buffer."""
        return len(self._data) * 8 - self._pos

    def read_bit(self) -> int:
        """Read a single bit; raise :class:`StreamFormatError` past the end."""
        byte_index, bit_index = divmod(self._pos, 8)
        if byte_index >= len(self._data):
            raise StreamFormatError("bit stream exhausted")
        self._pos += 1
        return (self._data[byte_index] >> bit_index) & 1

    def read_bits(self, count: int) -> int:
        """Read ``count`` bits and assemble them LSB-first into an integer."""
        if count <= 16:
            value = 0
            for i in range(count):
                value |= self.read_bit() << i
            return value
        bits = self.read_bit_array(count)
        return int.from_bytes(
            np.packbits(bits, bitorder="little").tobytes(), "little"
        )

    #: Bits scanned per chunk by :meth:`read_unary`'s bulk terminator search.
    _UNARY_CHUNK_BITS = 4096

    def read_unary(self) -> int:
        """Read a unary-coded value (count of zero bits before the first one).

        Scans whole chunks with one ``np.unpackbits`` + ``np.flatnonzero``
        pass per :data:`_UNARY_CHUNK_BITS` bits instead of one Python-level
        ``read_bit`` call per zero; an exhausted stream raises the same
        :class:`StreamFormatError` as the bit-by-bit path.
        """
        zeros = 0
        while True:
            remaining = self.bits_remaining
            if remaining == 0:
                raise StreamFormatError("bit stream exhausted")
            chunk = min(remaining, self._UNARY_CHUNK_BITS)
            start_byte, start_bit = divmod(self._pos, 8)
            end_byte = (self._pos + chunk + 7) // 8
            window = np.frombuffer(
                self._data, dtype=np.uint8, count=end_byte - start_byte,
                offset=start_byte,
            )
            bits = np.unpackbits(window, bitorder="little")[start_bit : start_bit + chunk]
            hits = np.flatnonzero(bits)
            if hits.size:
                first = int(hits[0])
                self._pos += first + 1
                return zeros + first
            zeros += chunk
            self._pos += chunk

    def read_bit_array(self, count: int) -> np.ndarray:
        """Read ``count`` bits as a ``uint8`` 0/1 array in one pass."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count > self.bits_remaining:
            raise StreamFormatError("bit stream exhausted")
        start_byte, start_bit = divmod(self._pos, 8)
        end_byte = (self._pos + count + 7) // 8
        window = np.frombuffer(self._data, dtype=np.uint8, count=end_byte - start_byte,
                               offset=start_byte)
        bits = np.unpackbits(window, bitorder="little")[start_bit : start_bit + count]
        self._pos += count
        return bits
