"""Bit-granular I/O.

The canonical Huffman coder and the embedded coders used by the ZFP / SPERR
baselines need to emit and consume individual bits.  ``BitWriter`` packs bits
LSB-first into a growing bytearray; ``BitReader`` is its exact inverse.

The implementation keeps the hot loops simple (append to an integer
accumulator, flush whole bytes) — profiling showed this is dominated by the
surrounding Python-level symbol loops anyway, and the production path of
IPComp itself uses vectorised NumPy bitplane packing (:mod:`repro.core.bitplane`)
rather than this module.
"""

from __future__ import annotations

from repro.errors import StreamFormatError


class BitWriter:
    """Accumulate bits (LSB-first within each byte) into a byte buffer."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._accumulator = 0
        self._nbits = 0
        self._total_bits = 0

    def __len__(self) -> int:
        """Number of bits written so far."""
        return self._total_bits

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self._accumulator |= (bit & 1) << self._nbits
        self._nbits += 1
        self._total_bits += 1
        if self._nbits == 8:
            self._buffer.append(self._accumulator)
            self._accumulator = 0
            self._nbits = 0

    def write_bits(self, value: int, count: int) -> None:
        """Append the ``count`` least-significant bits of ``value``, LSB first."""
        if count < 0:
            raise ValueError("count must be non-negative")
        for i in range(count):
            self.write_bit((value >> i) & 1)

    def write_unary(self, value: int) -> None:
        """Append ``value`` zero bits followed by a terminating one bit."""
        for _ in range(value):
            self.write_bit(0)
        self.write_bit(1)

    def getvalue(self) -> bytes:
        """Return the packed bytes (the final partial byte is zero-padded)."""
        out = bytearray(self._buffer)
        if self._nbits:
            out.append(self._accumulator)
        return bytes(out)


class BitReader:
    """Read bits back in the order a :class:`BitWriter` produced them."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit position

    @property
    def bits_remaining(self) -> int:
        """Number of unread bits left in the buffer."""
        return len(self._data) * 8 - self._pos

    def read_bit(self) -> int:
        """Read a single bit; raise :class:`StreamFormatError` past the end."""
        byte_index, bit_index = divmod(self._pos, 8)
        if byte_index >= len(self._data):
            raise StreamFormatError("bit stream exhausted")
        self._pos += 1
        return (self._data[byte_index] >> bit_index) & 1

    def read_bits(self, count: int) -> int:
        """Read ``count`` bits and assemble them LSB-first into an integer."""
        value = 0
        for i in range(count):
            value |= self.read_bit() << i
        return value

    def read_unary(self) -> int:
        """Read a unary-coded value (count of zero bits before the first one)."""
        count = 0
        while self.read_bit() == 0:
            count += 1
        return count
