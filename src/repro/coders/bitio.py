"""Bit-granular I/O.

``BitWriter`` packs bits LSB-first into a growing bytearray; ``BitReader``
is its exact inverse.  The single-bit paths keep the hot loops simple
(append to an integer accumulator, flush whole bytes) and are the substrate
of the ``"reference"`` kernel's auditable bit-by-bit plane packing
(:mod:`repro.core.kernels`).  :meth:`BitWriter.write_bit_array` /
:meth:`BitReader.read_bit_array` are the bulk counterparts — one
``np.packbits`` / ``np.unpackbits`` pass when the stream is byte-aligned —
for coders that interleave bulk bit runs with single bits; the vectorized
kernel's per-plane packing uses ``np.packbits`` directly (a fresh plane is
always byte-aligned, so the writer object would only add copies).  All
routes emit identical bytes for the same bit sequence.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StreamFormatError


class BitWriter:
    """Accumulate bits (LSB-first within each byte) into a byte buffer."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._accumulator = 0
        self._nbits = 0
        self._total_bits = 0

    def __len__(self) -> int:
        """Number of bits written so far."""
        return self._total_bits

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self._accumulator |= (bit & 1) << self._nbits
        self._nbits += 1
        self._total_bits += 1
        if self._nbits == 8:
            self._buffer.append(self._accumulator)
            self._accumulator = 0
            self._nbits = 0

    def write_bits(self, value: int, count: int) -> None:
        """Append the ``count`` least-significant bits of ``value``, LSB first."""
        if count < 0:
            raise ValueError("count must be non-negative")
        for i in range(count):
            self.write_bit((value >> i) & 1)

    def write_unary(self, value: int) -> None:
        """Append ``value`` zero bits followed by a terminating one bit."""
        for _ in range(value):
            self.write_bit(0)
        self.write_bit(1)

    def write_bit_array(self, bits: np.ndarray) -> None:
        """Append an array of bits (any nonzero value counts as 1) in one pass.

        When the writer is byte-aligned the whole array is packed with a
        single ``np.packbits`` call and only the trailing partial byte goes
        through the accumulator; a misaligned writer falls back to the
        bit-by-bit path (same output either way).
        """
        bits = (np.asarray(bits).ravel() != 0).astype(np.uint8)
        if self._nbits != 0 or bits.size < 8:
            for bit in bits.tolist():
                self.write_bit(bit)
            return
        full = bits.size & ~7
        self._buffer += np.packbits(bits[:full], bitorder="little").tobytes()
        self._total_bits += full
        for bit in bits[full:].tolist():
            self.write_bit(bit)

    def getvalue(self) -> bytes:
        """Return the packed bytes (the final partial byte is zero-padded)."""
        out = bytearray(self._buffer)
        if self._nbits:
            out.append(self._accumulator)
        return bytes(out)


class BitReader:
    """Read bits back in the order a :class:`BitWriter` produced them."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit position

    @property
    def bits_remaining(self) -> int:
        """Number of unread bits left in the buffer."""
        return len(self._data) * 8 - self._pos

    def read_bit(self) -> int:
        """Read a single bit; raise :class:`StreamFormatError` past the end."""
        byte_index, bit_index = divmod(self._pos, 8)
        if byte_index >= len(self._data):
            raise StreamFormatError("bit stream exhausted")
        self._pos += 1
        return (self._data[byte_index] >> bit_index) & 1

    def read_bits(self, count: int) -> int:
        """Read ``count`` bits and assemble them LSB-first into an integer."""
        value = 0
        for i in range(count):
            value |= self.read_bit() << i
        return value

    def read_unary(self) -> int:
        """Read a unary-coded value (count of zero bits before the first one)."""
        count = 0
        while self.read_bit() == 0:
            count += 1
        return count

    def read_bit_array(self, count: int) -> np.ndarray:
        """Read ``count`` bits as a ``uint8`` 0/1 array in one pass."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count > self.bits_remaining:
            raise StreamFormatError("bit stream exhausted")
        start_byte, start_bit = divmod(self._pos, 8)
        end_byte = (self._pos + count + 7) // 8
        window = np.frombuffer(self._data, dtype=np.uint8, count=end_byte - start_byte,
                               offset=start_byte)
        bits = np.unpackbits(window, bitorder="little")[start_bit : start_bit + count]
        self._pos += count
        return bits
