"""Shannon entropy estimators.

Table 2 of the paper compares the zero-order entropy of raw bitplane streams
against the entropy after predictive (XOR-prefix) coding with 1, 2, or 3
prefix bits; lower entropy indicates better downstream compressibility.  The
functions here compute exactly that quantity.
"""

from __future__ import annotations

import numpy as np


def shannon_entropy(symbols: np.ndarray) -> float:
    """Zero-order Shannon entropy in bits/symbol of an integer array."""
    flat = np.asarray(symbols).ravel()
    if flat.size == 0:
        return 0.0
    _, counts = np.unique(flat, return_counts=True)
    probabilities = counts / flat.size
    return float(-(probabilities * np.log2(probabilities)).sum())


def bit_entropy(bits: np.ndarray) -> float:
    """Entropy of a binary stream in bits/bit (between 0 and 1)."""
    flat = np.asarray(bits).ravel().astype(np.uint8)
    if flat.size == 0:
        return 0.0
    p1 = float(flat.mean())
    if p1 in (0.0, 1.0):
        return 0.0
    p0 = 1.0 - p1
    return float(-(p0 * np.log2(p0) + p1 * np.log2(p1)))


def byte_entropy(data: bytes) -> float:
    """Zero-order entropy in bits/byte of a byte string."""
    if not data:
        return 0.0
    arr = np.frombuffer(data, dtype=np.uint8)
    return shannon_entropy(arr)
