"""Canonical Huffman coder.

The SZ3 baseline in the paper encodes quantization integers with Huffman
coding before handing the bit stream to zstd (§6.1.3).  This module provides
a from-scratch canonical Huffman implementation with two entry points:

* the byte-oriented :class:`HuffmanCoder` backend (``encode``/``decode`` over
  ``bytes``), registered as the ``"huffman"`` lossless backend, and
* the symbol-oriented :func:`encode_symbols` / :func:`decode_symbols` pair
  used by the SZ3 baseline, which works on arbitrary integer alphabets and
  packs codes with vectorised NumPy bit scatter so encoding large fields stays
  fast in pure Python.

Canonical codes are used so the code table can be transmitted as just the
per-symbol code lengths.
"""

from __future__ import annotations

import heapq
import struct
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import StreamFormatError

_MAGIC = b"HUF1"


def _build_code_lengths(frequencies: Dict[int, int]) -> Dict[int, int]:
    """Return the Huffman code length of every symbol with non-zero frequency.

    A standard heap-based Huffman construction; ties are broken by symbol
    value so the result is deterministic across runs.
    """
    if not frequencies:
        return {}
    if len(frequencies) == 1:
        only = next(iter(frequencies))
        return {only: 1}

    heap: List[Tuple[int, int, Tuple[int, ...]]] = [
        (freq, sym, (sym,)) for sym, freq in frequencies.items()
    ]
    heapq.heapify(heap)
    depths: Dict[int, int] = {sym: 0 for sym in frequencies}
    while len(heap) > 1:
        f1, s1, group1 = heapq.heappop(heap)
        f2, s2, group2 = heapq.heappop(heap)
        for sym in group1 + group2:
            depths[sym] += 1
        heapq.heappush(heap, (f1 + f2, min(s1, s2), group1 + group2))
    return depths


def _canonical_codes(lengths: Dict[int, int]) -> Dict[int, Tuple[int, int]]:
    """Assign canonical codes (value, length) from code lengths.

    Symbols are sorted by (length, symbol); codes are assigned in increasing
    numeric order, which lets the decoder rebuild the exact same table from
    lengths alone.
    """
    codes: Dict[int, Tuple[int, int]] = {}
    code = 0
    previous_length = 0
    for sym, length in sorted(lengths.items(), key=lambda kv: (kv[1], kv[0])):
        code <<= length - previous_length
        codes[sym] = (code, length)
        code += 1
        previous_length = length
    return codes


def encode_symbols(symbols: np.ndarray, kernel=None) -> bytes:
    """Huffman-encode an integer array into a self-describing byte stream.

    The stream layout is::

        MAGIC | n_symbols:u64 | alphabet_size:u32 |
        (symbol:i64, length:u8) * alphabet_size | n_bits:u64 | packed bits

    The bit scatter and packing run on a :mod:`repro.core.kernels` kernel
    (``kernel`` is a registry name or instance; default ``"vectorized"``).
    The vectorized kernel scatters one bit position of every code per NumPy
    pass, so the cost is ``O(max_code_length)`` vector operations instead of
    a Python loop over all symbols; the ``"reference"`` kernel writes code
    bits one by one and produces the identical stream.
    """
    from repro.core.kernels import get_kernel

    kern = get_kernel(kernel)
    flat = np.asarray(symbols).ravel()
    values, counts = np.unique(flat, return_counts=True)
    frequencies = {int(v): int(c) for v, c in zip(values, counts)}
    lengths = _build_code_lengths(frequencies)
    codes = _canonical_codes(lengths)

    header = bytearray()
    header += _MAGIC
    header += struct.pack("<QI", flat.size, len(codes))
    for sym in sorted(codes):
        header += struct.pack("<qB", sym, codes[sym][1])

    if flat.size == 0:
        header += struct.pack("<Q", 0)
        return bytes(header)

    # Vectorised code lookup.
    sorted_syms = np.array(sorted(codes), dtype=np.int64)
    code_values = np.array([codes[int(s)][0] for s in sorted_syms], dtype=np.uint64)
    code_lengths = np.array([codes[int(s)][1] for s in sorted_syms], dtype=np.uint8)
    idx = np.searchsorted(sorted_syms, flat)
    sym_codes = code_values[idx]
    sym_lengths = code_lengths[idx].astype(np.int64)

    offsets = np.zeros(flat.size, dtype=np.int64)
    np.cumsum(sym_lengths[:-1], out=offsets[1:])
    total_bits = int(offsets[-1] + sym_lengths[-1]) if flat.size else 0

    bits = kern.scatter_code_bits(sym_codes, sym_lengths, offsets, total_bits)
    payload = bytes(header) + struct.pack("<Q", total_bits) + kern.pack_bits(bits)
    return payload


def decode_symbols(data: bytes, kernel=None) -> np.ndarray:
    """Invert :func:`encode_symbols`, returning an ``int64`` array."""
    from repro.core.kernels import get_kernel

    kern = get_kernel(kernel)
    if data[:4] != _MAGIC:
        raise StreamFormatError("not a Huffman symbol stream")
    pos = 4
    n_symbols, alphabet_size = struct.unpack_from("<QI", data, pos)
    pos += 12
    lengths: Dict[int, int] = {}
    for _ in range(alphabet_size):
        sym, length = struct.unpack_from("<qB", data, pos)
        pos += 9
        lengths[sym] = length
    (total_bits,) = struct.unpack_from("<Q", data, pos)
    pos += 8

    if n_symbols == 0:
        return np.zeros(0, dtype=np.int64)

    codes = _canonical_codes(lengths)
    # Reverse map: (length, code value) -> symbol.
    decode_map: Dict[Tuple[int, int], int] = {
        (length, value): sym for sym, (value, length) in codes.items()
    }

    packed = memoryview(data)[pos : pos + (total_bits + 7) // 8]  # zero-copy
    bits = kern.unpack_bits(packed, total_bits)

    out = np.empty(n_symbols, dtype=np.int64)
    value = 0
    length = 0
    produced = 0
    bit_list = bits.tolist()
    for bit in bit_list:
        value = (value << 1) | bit
        length += 1
        sym = decode_map.get((length, value))
        if sym is not None:
            out[produced] = sym
            produced += 1
            if produced == n_symbols:
                break
            value = 0
            length = 0
    if produced != n_symbols:
        raise StreamFormatError("Huffman stream truncated")
    return out


class HuffmanCoder:
    """Byte-oriented lossless backend based on :func:`encode_symbols`."""

    name = "huffman"

    def __init__(self, kernel=None) -> None:
        self.kernel = kernel

    def encode(self, data: bytes) -> bytes:
        symbols = np.frombuffer(data, dtype=np.uint8).astype(np.int64)
        return encode_symbols(symbols, kernel=self.kernel)

    def decode(self, data: bytes) -> bytes:
        symbols = decode_symbols(data, kernel=self.kernel)
        return symbols.astype(np.uint8).tobytes()


def estimate_code_lengths(frequencies: Dict[int, int]) -> Dict[int, int]:
    """Public helper exposing the code-length construction (used in tests)."""
    return _build_code_lengths(dict(frequencies))
