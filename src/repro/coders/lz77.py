"""Greedy byte-level LZ77 coder.

The authors' IPComp uses zstd for the final lossless stage.  zstd is a
dictionary coder: it finds repeated byte sequences and replaces them with
(offset, length) references, then entropy-codes the token stream.  This module
provides a from-scratch coder with the same structure — greedy hash-chain
match finding plus a compact token encoding — so that the repository has a
self-contained "pattern extraction" backend that does not depend on any
external compression library.  The default production backend remains the
stdlib DEFLATE wrapper (:mod:`repro.coders.zlib_backend`) because it is far
faster; ``"lz77"`` exists for ablations and for environments where ``zlib``
would be unavailable.

Token format (byte-aligned for simplicity):

* literal run:  ``0x00 | varint(length) | raw bytes``
* match:        ``0x01 | varint(length) | varint(distance)``

Matches must be at least ``MIN_MATCH`` bytes long and at most ``MAX_MATCH``.
"""

from __future__ import annotations

from repro.errors import StreamFormatError
from repro.coders.rle import _read_varint, _write_varint

MIN_MATCH = 4
MAX_MATCH = 1 << 16
WINDOW = 1 << 16
_HASH_BYTES = 4


class LZ77Coder:
    """Greedy LZ77 with a single-slot hash table (fast, modest ratio)."""

    name = "lz77"

    def encode(self, data: bytes) -> bytes:
        n = len(data)
        out = bytearray()
        table: dict[int, int] = {}
        literal_start = 0
        pos = 0

        def flush_literals(end: int) -> None:
            nonlocal literal_start
            if end > literal_start:
                out.append(0x00)
                _write_varint(end - literal_start, out)
                out.extend(data[literal_start:end])
            literal_start = end

        while pos + _HASH_BYTES <= n:
            key = int.from_bytes(data[pos : pos + _HASH_BYTES], "little")
            candidate = table.get(key)
            table[key] = pos
            if candidate is not None and pos - candidate <= WINDOW:
                # Extend the match as far as it goes.
                length = 0
                max_len = min(MAX_MATCH, n - pos)
                while (
                    length < max_len
                    and data[candidate + length] == data[pos + length]
                ):
                    length += 1
                if length >= MIN_MATCH:
                    flush_literals(pos)
                    out.append(0x01)
                    _write_varint(length, out)
                    _write_varint(pos - candidate, out)
                    pos += length
                    literal_start = pos
                    continue
            pos += 1
        flush_literals(n)
        return bytes(out)

    def decode(self, data: bytes) -> bytes:
        out = bytearray()
        pos = 0
        n = len(data)
        while pos < n:
            token = data[pos]
            pos += 1
            if token == 0x00:
                length, pos = _read_varint(data, pos)
                if pos + length > n:
                    raise StreamFormatError("truncated LZ77 literal run")
                out += data[pos : pos + length]
                pos += length
            elif token == 0x01:
                length, pos = _read_varint(data, pos)
                distance, pos = _read_varint(data, pos)
                if distance <= 0 or distance > len(out):
                    raise StreamFormatError("invalid LZ77 match distance")
                start = len(out) - distance
                for i in range(length):
                    out.append(out[start + i])
            else:
                raise StreamFormatError(f"unknown LZ77 token {token:#x}")
        return bytes(out)
