"""Byte run-length coder.

Bitplanes of the most-significant negabinary bits are overwhelmingly zero, so
a run-length pre-pass captures most of their redundancy at almost no cost.
The coder emits ``(count, byte)`` pairs with a varint count, which is the
classic RLE scheme; it is exposed as the ``"rle"`` backend mostly for ablation
benchmarks comparing lossless back-ends.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StreamFormatError


def _write_varint(value: int, out: bytearray) -> None:
    """Append an unsigned LEB128 varint."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    """Read an unsigned LEB128 varint, returning ``(value, new_pos)``."""
    value = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise StreamFormatError("truncated RLE varint")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


class RLECoder:
    """Run-length encode repeated bytes as ``varint(count) byte`` pairs."""

    name = "rle"

    def encode(self, data: bytes) -> bytes:
        if not data:
            return b""
        arr = np.frombuffer(data, dtype=np.uint8)
        # Boundaries where the byte value changes.
        change = np.flatnonzero(np.diff(arr)) + 1
        starts = np.concatenate(([0], change))
        ends = np.concatenate((change, [arr.size]))
        out = bytearray()
        for start, end in zip(starts.tolist(), ends.tolist()):
            _write_varint(end - start, out)
            out.append(int(arr[start]))
        return bytes(out)

    def decode(self, data: bytes) -> bytes:
        out = bytearray()
        pos = 0
        while pos < len(data):
            count, pos = _read_varint(data, pos)
            if pos >= len(data):
                raise StreamFormatError("truncated RLE run")
            out += bytes([data[pos]]) * count
            pos += 1
        return bytes(out)
