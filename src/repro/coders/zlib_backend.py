"""DEFLATE (stdlib ``zlib``) lossless backend.

This is the default back-end of every compressor in the repository.  The
paper's implementation uses zstd; DEFLATE is the closest always-available
stand-in — both are LZ-class dictionary coders followed by entropy coding, so
the §6.2.1 argument about preserving byte-level repetition applies unchanged.
"""

from __future__ import annotations

import zlib


class ZlibCoder:
    """Thin wrapper adding the registry protocol around :mod:`zlib`."""

    name = "zlib"

    def __init__(self, level: int = 6) -> None:
        if not 0 <= level <= 9:
            raise ValueError("zlib level must be in [0, 9]")
        self.level = level

    def encode(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decode(self, data: bytes) -> bytes:
        return zlib.decompress(data)
