"""IPComp core: the paper's primary contribution.

The subpackage is organised exactly along the pipeline of Figure 2:

``interpolation`` (decorrelation) → ``quantizer`` (error-bounded quantization)
→ ``negabinary`` + ``bitplane`` + ``predictive_coder`` (progressive encoding
into independent blocks) → ``stream`` (addressable container) →
``optimizer`` (minimum-volume data loading) → ``progressive`` (Algorithm 1/2
retrieval) → ``compressor`` (the public façade :class:`repro.core.compressor.IPComp`).

``theory`` holds the analytical error-propagation results (Theorem 1 and the
transform-vs-prediction comparison of §4.2) that the optimizer relies on.
"""

from __future__ import annotations

from repro.core.compressor import IPComp, IPCompConfig
from repro.core.interpolation import InterpolationPredictor
from repro.core.kernels import (
    Kernel,
    available_kernels,
    get_kernel,
    register_kernel,
    resolve_auto_kernel,
)
from repro.core.optimizer import LoadingPlan, OptimizedLoader
from repro.core.profile import CodecProfile
from repro.core.progressive import ProgressiveRetriever
from repro.core.quantizer import LinearQuantizer
from repro.core.stream import CompressedStore, IPCompStream

__all__ = [
    "CodecProfile",
    "IPComp",
    "IPCompConfig",
    "InterpolationPredictor",
    "Kernel",
    "LinearQuantizer",
    "OptimizedLoader",
    "LoadingPlan",
    "ProgressiveRetriever",
    "IPCompStream",
    "CompressedStore",
    "available_kernels",
    "get_kernel",
    "register_kernel",
    "resolve_auto_kernel",
]
