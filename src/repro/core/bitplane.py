"""Bitplane decomposition and predictive (XOR-prefix) bitplane coding.

Figure 4 of the paper: the quantized integers of every interpolation level are
viewed as a matrix of bits; all bits occupying the same position across the
level form a *bitplane*.  Planes are stored most-significant first so that a
prefix of the plane sequence is exactly a truncated-precision version of the
level.

§4.4.1 then removes the correlation between consecutive planes of the same
integer with predictive coding: the value of a bit is predicted as the XOR of
its ``prefix_bits`` previously-loaded (more significant) bits and only the
prediction error is stored.  Two prefix bits minimise the entropy on the
paper's datasets (Table 2), so 2 is the default here.

The actual bit twiddling lives in :mod:`repro.core.kernels`; the functions
below are thin wrappers that dispatch to a registered kernel (the bulk-NumPy
``"vectorized"`` kernel unless a ``kernel=`` argument selects another), kept
so existing call sites and the paper-facing naming survive the kernel
refactor unchanged.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.kernels import Kernel, get_kernel

DEFAULT_PREFIX_BITS = 2

_KernelArg = Optional[Union[str, Kernel]]


def extract_bitplanes(
    codes: np.ndarray, nbits: int, kernel: _KernelArg = None
) -> np.ndarray:
    """Split unsigned codes into ``nbits`` bitplanes.

    Parameters
    ----------
    codes:
        1-D ``uint64`` array of negabinary codes.
    nbits:
        Number of planes to produce; must cover the largest code.
    kernel:
        Optional kernel name or instance (default ``"vectorized"``).

    Returns
    -------
    ndarray
        ``uint8`` array of shape ``(nbits, n)``.  Row 0 is the most
        significant plane (bit position ``nbits − 1``), row ``nbits − 1`` the
        least significant — i.e. rows are in *load order*.
    """
    return get_kernel(kernel).extract_bitplanes(codes, nbits)


def assemble_bitplanes(
    planes: np.ndarray, nbits: int, kernel: _KernelArg = None
) -> np.ndarray:
    """Rebuild codes from the first ``planes.shape[0]`` (most significant) planes.

    Missing (unloaded) low planes are treated as zero, matching the partial
    retrieval semantics of §4.3.
    """
    return get_kernel(kernel).assemble_bitplanes(planes, nbits)


def predictive_encode(
    planes: np.ndarray,
    prefix_bits: int = DEFAULT_PREFIX_BITS,
    kernel: _KernelArg = None,
) -> np.ndarray:
    """XOR-predict every plane from its ``prefix_bits`` predecessors.

    ``encoded[k] = planes[k] ^ planes[k-1] ^ ... ^ planes[k-prefix_bits]``
    (with fewer terms near the top).  ``prefix_bits = 0`` is the identity.
    """
    return get_kernel(kernel).predictive_encode(planes, prefix_bits)


def predictive_decode(
    encoded: np.ndarray,
    prefix_bits: int = DEFAULT_PREFIX_BITS,
    kernel: _KernelArg = None,
) -> np.ndarray:
    """Invert :func:`predictive_encode` plane by plane (top to bottom).

    Decoding only needs the *already decoded* more-significant planes, which is
    precisely why the scheme is compatible with progressive loading: the
    planes available at retrieval time are always a prefix of the sequence.
    """
    return get_kernel(kernel).predictive_decode(encoded, prefix_bits)


def pack_plane(plane: np.ndarray, kernel: _KernelArg = None) -> bytes:
    """Pack one bitplane (uint8 0/1 values) into bytes, little-endian bit order."""
    return get_kernel(kernel).pack_bits(plane)


def unpack_plane(data: bytes, count: int, kernel: _KernelArg = None) -> np.ndarray:
    """Invert :func:`pack_plane`, recovering exactly ``count`` bits."""
    return get_kernel(kernel).unpack_bits(data, count)
