"""Bitplane decomposition and predictive (XOR-prefix) bitplane coding.

Figure 4 of the paper: the quantized integers of every interpolation level are
viewed as a matrix of bits; all bits occupying the same position across the
level form a *bitplane*.  Planes are stored most-significant first so that a
prefix of the plane sequence is exactly a truncated-precision version of the
level.

§4.4.1 then removes the correlation between consecutive planes of the same
integer with predictive coding: the value of a bit is predicted as the XOR of
its ``prefix_bits`` previously-loaded (more significant) bits and only the
prediction error is stored.  Two prefix bits minimise the entropy on the
paper's datasets (Table 2), so 2 is the default here.

All operations are vectorised over the whole level.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

DEFAULT_PREFIX_BITS = 2


def extract_bitplanes(codes: np.ndarray, nbits: int) -> np.ndarray:
    """Split unsigned codes into ``nbits`` bitplanes.

    Parameters
    ----------
    codes:
        1-D ``uint64`` array of negabinary codes.
    nbits:
        Number of planes to produce; must cover the largest code.

    Returns
    -------
    ndarray
        ``uint8`` array of shape ``(nbits, n)``.  Row 0 is the most
        significant plane (bit position ``nbits − 1``), row ``nbits − 1`` the
        least significant — i.e. rows are in *load order*.
    """
    codes = np.asarray(codes, dtype=np.uint64).ravel()
    if nbits < 1 or nbits > 64:
        raise ConfigurationError("nbits must be in [1, 64]")
    planes = np.empty((nbits, codes.size), dtype=np.uint8)
    for row, bit_position in enumerate(range(nbits - 1, -1, -1)):
        planes[row] = ((codes >> np.uint64(bit_position)) & np.uint64(1)).astype(np.uint8)
    return planes


def assemble_bitplanes(planes: np.ndarray, nbits: int) -> np.ndarray:
    """Rebuild codes from the first ``planes.shape[0]`` (most significant) planes.

    Missing (unloaded) low planes are treated as zero, matching the partial
    retrieval semantics of §4.3.
    """
    planes = np.asarray(planes, dtype=np.uint8)
    loaded = planes.shape[0]
    if loaded > nbits:
        raise ConfigurationError("more planes supplied than the level width")
    n = planes.shape[1] if planes.ndim == 2 else 0
    codes = np.zeros(n, dtype=np.uint64)
    for row in range(loaded):
        bit_position = nbits - 1 - row
        codes |= planes[row].astype(np.uint64) << np.uint64(bit_position)
    return codes


def predictive_encode(planes: np.ndarray, prefix_bits: int = DEFAULT_PREFIX_BITS) -> np.ndarray:
    """XOR-predict every plane from its ``prefix_bits`` predecessors.

    ``encoded[k] = planes[k] ^ planes[k-1] ^ ... ^ planes[k-prefix_bits]``
    (with fewer terms near the top).  ``prefix_bits = 0`` is the identity.
    """
    if not 0 <= prefix_bits <= 3:
        raise ConfigurationError("prefix_bits must be in [0, 3]")
    planes = np.asarray(planes, dtype=np.uint8)
    encoded = planes.copy()
    for k in range(planes.shape[0]):
        for j in range(1, prefix_bits + 1):
            if k - j >= 0:
                encoded[k] ^= planes[k - j]
    return encoded


def predictive_decode(encoded: np.ndarray, prefix_bits: int = DEFAULT_PREFIX_BITS) -> np.ndarray:
    """Invert :func:`predictive_encode` plane by plane (top to bottom).

    Decoding only needs the *already decoded* more-significant planes, which is
    precisely why the scheme is compatible with progressive loading: the
    planes available at retrieval time are always a prefix of the sequence.
    """
    if not 0 <= prefix_bits <= 3:
        raise ConfigurationError("prefix_bits must be in [0, 3]")
    encoded = np.asarray(encoded, dtype=np.uint8)
    planes = encoded.copy()
    for k in range(encoded.shape[0]):
        for j in range(1, prefix_bits + 1):
            if k - j >= 0:
                planes[k] ^= planes[k - j]
    return planes


def pack_plane(plane: np.ndarray) -> bytes:
    """Pack one bitplane (uint8 0/1 values) into bytes, little-endian bit order."""
    return np.packbits(np.asarray(plane, dtype=np.uint8), bitorder="little").tobytes()


def unpack_plane(data: bytes, count: int) -> np.ndarray:
    """Invert :func:`pack_plane`, recovering exactly ``count`` bits."""
    packed = np.frombuffer(data, dtype=np.uint8)
    return np.unpackbits(packed, count=count, bitorder="little")
