"""Public façade of the IPComp compressor.

:class:`IPComp` wires the pipeline of Figure 2 together:

``InterpolationPredictor`` → ``LinearQuantizer`` → ``PredictiveCoder`` →
``IPCompStream`` for compression, and ``ProgressiveRetriever`` (+ the
``OptimizedLoader``) for single-pass decompression at any fidelity.

Configuration is one :class:`~repro.core.profile.CodecProfile`; keyword
arguments are conveniences that override profile fields and are validated
against them — an unknown option raises instead of being silently ignored.

Typical use::

    from repro import CodecProfile, IPComp

    comp = IPComp(error_bound=1e-6, relative=True)
    blob = comp.compress(field)

    # full-precision decompression
    full = comp.decompress(blob)

    # progressive retrieval
    retriever = comp.retriever(blob)
    coarse = retriever.retrieve(error_bound=1e-2)
    finer  = retriever.retrieve(error_bound=1e-4)      # loads only the delta
    exact  = retriever.retrieve(bitrate=4.0)           # or budget the I/O

    # or hand the whole configuration over as one object
    profile = CodecProfile(error_bound=1e-5, plane_coders=("zlib", "huffman"))
    comp = IPComp(profile=profile)
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.interpolation import InterpolationPredictor
from repro.core.predictive_coder import PredictiveCoder
from repro.core.profile import CodecProfile
from repro.core.progressive import ProgressiveRetriever, RetrievalResult
from repro.core.quantizer import LinearQuantizer
from repro.core.stream import IPCompStream, StreamHeader
from repro.errors import ConfigurationError

#: The v1-era per-compressor configuration class is the unified codec
#: profile now; the old name still resolves, but the field set is the
#: profile's (``backend=`` survives only as a keyword shim in
#: :meth:`CodecProfile.from_options` / ``IPComp(**...)``, and ``kernel=``
#: moved from retriever/dataset signatures into the profile) — a breaking
#: release, reflected in the package version.
IPCompConfig = CodecProfile


class IPComp:
    """Interpolation-based progressive lossy compressor (the paper's IPComp)."""

    def __init__(
        self,
        error_bound: Optional[float] = None,
        relative: Optional[bool] = None,
        profile: Optional[CodecProfile] = None,
        **options,
    ) -> None:
        self.profile = CodecProfile.from_options(
            profile, error_bound=error_bound, relative=relative, **options
        )

    @property
    def config(self) -> CodecProfile:
        """Alias kept for the v1-era attribute name."""
        return self.profile

    # ------------------------------------------------------------- compression

    def absolute_bound(self, data: np.ndarray) -> float:
        """The absolute ``eb`` used for a given field."""
        return self.profile.absolute_bound(data)

    def compress(self, data: np.ndarray) -> bytes:
        """Compress a field into a progressive, block-addressable stream."""
        data = np.asarray(data)
        if data.size == 0:
            raise ConfigurationError("cannot compress an empty array")
        if not np.issubdtype(data.dtype, np.floating):
            raise ConfigurationError("IPComp compresses floating-point fields")
        if not np.isfinite(data).all():
            raise ConfigurationError("IPComp requires finite input values")
        eb = self.absolute_bound(data)
        predictor = InterpolationPredictor(data.shape, self.profile.method)
        quantizer = LinearQuantizer(eb, kernel=self.profile.kernel)
        coder = PredictiveCoder(quantizer, self.profile)

        # Progressive blocks are grouped per interpolation *sweep* (one unit
        # per (level, dimension) pass): at that granularity the Theorem-1
        # propagation factor p^(l−1) is exact, so the optimizer's guarantees
        # stay tight where most of the data lives (the final sweeps).
        anchor_codes, unit_codes, _ = predictor.decompose(
            data, quantizer, granularity="sweep"
        )
        anchor_block = coder.encode_anchor(anchor_codes)
        encodings = [
            coder.encode_level(unit, codes) for unit, codes in unit_codes.items()
        ]
        header = StreamHeader(
            shape=tuple(data.shape),
            dtype=str(data.dtype),
            error_bound=eb,
            method=self.profile.method,
            prefix_bits=self.profile.prefix_bits,
            anchor_coder=self.profile.anchor_coder,
            anchor_count=int(anchor_codes.size),
            anchor_size=len(anchor_block),
            levels=encodings,
        )
        return IPCompStream.serialize(header, anchor_block, encodings)

    # ----------------------------------------------------------- decompression

    def decompress(self, blob: bytes) -> np.ndarray:
        """Full-precision decompression (error ≤ the compression bound)."""
        retriever = self.retriever(blob)
        result = retriever.retrieve(error_bound=retriever.header.error_bound)
        return result.data

    def retriever(self, blob: bytes) -> ProgressiveRetriever:
        """Create a stateful progressive retriever over a compressed stream."""
        return ProgressiveRetriever(blob, profile=self.profile)

    def retrieve(
        self,
        blob: bytes,
        error_bound: Optional[float] = None,
        bitrate: Optional[float] = None,
        byte_budget: Optional[int] = None,
    ) -> RetrievalResult:
        """One-shot partial retrieval (creates a throwaway retriever)."""
        return self.retriever(blob).retrieve(
            error_bound=error_bound, bitrate=bitrate, byte_budget=byte_budget
        )

    # -------------------------------------------------------------- reporting

    @staticmethod
    def compression_ratio(data: np.ndarray, blob: bytes) -> float:
        """Original bytes / compressed bytes."""
        return data.nbytes / len(blob)

    @staticmethod
    def bitrate(data: np.ndarray, blob: bytes) -> float:
        """Average compressed bits per scalar value."""
        return 8.0 * len(blob) / data.size
