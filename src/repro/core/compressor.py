"""Public façade of the IPComp compressor.

:class:`IPComp` wires the pipeline of Figure 2 together:

``InterpolationPredictor`` → ``LinearQuantizer`` → ``PredictiveCoder`` →
``IPCompStream`` for compression, and ``ProgressiveRetriever`` (+ the
``OptimizedLoader``) for single-pass decompression at any fidelity.

Typical use::

    from repro import IPComp

    comp = IPComp(error_bound=1e-6, relative=True)
    blob = comp.compress(field)

    # full-precision decompression
    full = comp.decompress(blob)

    # progressive retrieval
    retriever = comp.retriever(blob)
    coarse = retriever.retrieve(error_bound=1e-2)
    finer  = retriever.retrieve(error_bound=1e-4)      # loads only the delta
    exact  = retriever.retrieve(bitrate=4.0)           # or budget the I/O
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.coders.backend import get_backend
from repro.core.bitplane import DEFAULT_PREFIX_BITS
from repro.core.interpolation import InterpolationPredictor
from repro.core.kernels import DEFAULT_KERNEL, get_kernel
from repro.core.predictive_coder import PredictiveCoder
from repro.core.progressive import ProgressiveRetriever, RetrievalResult
from repro.core.quantizer import LinearQuantizer, relative_to_absolute
from repro.core.stream import IPCompStream, StreamHeader
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class IPCompConfig:
    """Compression configuration.

    Parameters
    ----------
    error_bound:
        The point-wise L∞ bound ``eb``.  Interpreted as absolute unless
        ``relative`` is true, in which case it is multiplied by the value
        range of each field at compression time (the SDRBench convention the
        paper uses).
    relative:
        Whether ``error_bound`` is value-range relative.
    method:
        Interpolation formula: ``"cubic"`` (default) or ``"linear"``.
    prefix_bits:
        Number of prefix bits of the predictive bitplane coder (0–3; 2 is the
        paper's choice, Table 2).
    backend:
        Registered lossless backend name used for every block (default
        ``"zlib"``, the zstd stand-in).
    kernel:
        Registered bit-level kernel name (:mod:`repro.core.kernels`) used for
        quantization, negabinary conversion, and bitplane coding.  Default
        ``"vectorized"``; ``"reference"`` selects the loop-based oracle.
        Both kernels produce byte-identical streams.
    """

    error_bound: float = 1e-6
    relative: bool = True
    method: str = "cubic"
    prefix_bits: int = DEFAULT_PREFIX_BITS
    backend: str = "zlib"
    kernel: str = DEFAULT_KERNEL

    def __post_init__(self) -> None:
        if self.error_bound <= 0 or not np.isfinite(self.error_bound):
            raise ConfigurationError("error_bound must be a positive finite number")
        if self.method not in ("cubic", "linear"):
            raise ConfigurationError("method must be 'cubic' or 'linear'")
        if not 0 <= self.prefix_bits <= 3:
            raise ConfigurationError("prefix_bits must be in [0, 3]")
        get_kernel(self.kernel)  # fail fast on unknown kernel names


class IPComp:
    """Interpolation-based progressive lossy compressor (the paper's IPComp)."""

    def __init__(self, error_bound: float = 1e-6, relative: bool = True, **kwargs) -> None:
        self.config = IPCompConfig(error_bound=error_bound, relative=relative, **kwargs)

    # ------------------------------------------------------------- compression

    def absolute_bound(self, data: np.ndarray) -> float:
        """The absolute ``eb`` used for a given field."""
        if self.config.relative:
            return relative_to_absolute(self.config.error_bound, data)
        return self.config.error_bound

    def compress(self, data: np.ndarray) -> bytes:
        """Compress a field into a progressive, block-addressable stream."""
        data = np.asarray(data)
        if data.size == 0:
            raise ConfigurationError("cannot compress an empty array")
        if not np.issubdtype(data.dtype, np.floating):
            raise ConfigurationError("IPComp compresses floating-point fields")
        if not np.isfinite(data).all():
            raise ConfigurationError("IPComp requires finite input values")
        eb = self.absolute_bound(data)
        predictor = InterpolationPredictor(data.shape, self.config.method)
        quantizer = LinearQuantizer(eb, kernel=self.config.kernel)
        coder = PredictiveCoder(
            quantizer,
            get_backend(self.config.backend),
            self.config.prefix_bits,
            kernel=self.config.kernel,
        )

        # Progressive blocks are grouped per interpolation *sweep* (one unit
        # per (level, dimension) pass): at that granularity the Theorem-1
        # propagation factor p^(l−1) is exact, so the optimizer's guarantees
        # stay tight where most of the data lives (the final sweeps).
        anchor_codes, unit_codes, _ = predictor.decompose(
            data, quantizer, granularity="sweep"
        )
        anchor_block = coder.encode_anchor(anchor_codes)
        encodings = [
            coder.encode_level(unit, codes) for unit, codes in unit_codes.items()
        ]
        header = StreamHeader(
            shape=tuple(data.shape),
            dtype=str(data.dtype),
            error_bound=eb,
            method=self.config.method,
            prefix_bits=self.config.prefix_bits,
            backend=self.config.backend,
            anchor_count=int(anchor_codes.size),
            anchor_size=len(anchor_block),
            levels=encodings,
        )
        return IPCompStream.serialize(header, anchor_block, encodings)

    # ----------------------------------------------------------- decompression

    def decompress(self, blob: bytes) -> np.ndarray:
        """Full-precision decompression (error ≤ the compression bound)."""
        retriever = self.retriever(blob)
        result = retriever.retrieve(error_bound=retriever.header.error_bound)
        return result.data

    def retriever(self, blob: bytes) -> ProgressiveRetriever:
        """Create a stateful progressive retriever over a compressed stream."""
        return ProgressiveRetriever(blob, kernel=self.config.kernel)

    def retrieve(
        self,
        blob: bytes,
        error_bound: Optional[float] = None,
        bitrate: Optional[float] = None,
        byte_budget: Optional[int] = None,
    ) -> RetrievalResult:
        """One-shot partial retrieval (creates a throwaway retriever)."""
        return self.retriever(blob).retrieve(
            error_bound=error_bound, bitrate=bitrate, byte_budget=byte_budget
        )

    # -------------------------------------------------------------- reporting

    @staticmethod
    def compression_ratio(data: np.ndarray, blob: bytes) -> float:
        """Original bytes / compressed bytes."""
        return data.nbytes / len(blob)

    @staticmethod
    def bitrate(data: np.ndarray, blob: bytes) -> float:
        """Average compressed bits per scalar value."""
        return 8.0 * len(blob) / data.size
