"""Multi-level interpolation predictor (§4.1–§4.3, Figure 3).

The predictor decorrelates an N-dimensional field level by level.  Level ``L``
(the coarsest) predicts points half-way between anchor points that are
``2^L`` apart; every following level halves the stride until level ``1``
fills in the odd-index points.  Within a level the dimensions are swept in a
fixed order; after sweeping dimension ``d`` the grid is refined to spacing
``2^(l-1)`` along every dimension ``≤ d``.

Two interpolation formulas are supported (Eq. (1) and (2) of the paper):

* ``linear`` — midpoint average of the two stride-``2^(l-1)`` neighbours,
* ``cubic``  — the 4-point spline ``(−1, 9, 9, −1)/16`` where all four
  neighbours exist, with automatic fallback to linear and then to
  nearest-neighbour copy at the domain boundary.

Crucially the prediction always reads the *lossy reconstruction* ``x̂`` (the
prediction-model formulation of §4.2.2): compression runs reconstruction in
lock-step, which is what confines the point-wise error to the quantizer bound
instead of letting it grow with the data size as a transform model would
(Eq. (3) vs. Eq. (4)).

The reconstruction map from per-level dequantized differences to the output is
*linear* (fixed stencils, additive updates), which is the property Algorithm 2
exploits for incremental refinement: feeding a *delta* of the differences
through :meth:`InterpolationPredictor.reconstruct` yields the delta of the
output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.core.quantizer import LinearQuantizer

#: L∞ operator norm of the interpolation stencils (Theorem 1's ``p``).
STENCIL_NORMS = {"linear": 1.0, "cubic": 1.25}


@dataclass(frozen=True)
class _DimPass:
    """One (level, dimension) sweep: the open-mesh target indices."""

    level: int
    dim: int
    axis_indices: Tuple[np.ndarray, ...]
    target_shape: Tuple[int, ...]

    @property
    def size(self) -> int:
        return int(np.prod(self.target_shape)) if self.target_shape else 0


class InterpolationPredictor:
    """Shared decorrelation engine of IPComp and the SZ3 baseline.

    Parameters
    ----------
    shape:
        Shape of the fields this predictor will process (1-D to 4-D supported,
        higher dimensions work but are untested against the paper).
    method:
        ``"cubic"`` (default, the paper's choice) or ``"linear"``.
    """

    def __init__(self, shape: Sequence[int], method: str = "cubic") -> None:
        shape = tuple(int(s) for s in shape)
        if not shape or any(s < 1 for s in shape):
            raise ConfigurationError(f"invalid shape {shape!r}")
        if method not in STENCIL_NORMS:
            raise ConfigurationError(
                f"method must be one of {sorted(STENCIL_NORMS)}, got {method!r}"
            )
        self.shape = shape
        self.ndim = len(shape)
        self.method = method
        max_dim = max(shape)
        #: Number of interpolation levels (coarsest = ``num_levels``).
        self.num_levels = max(1, int(np.ceil(np.log2(max_dim))) if max_dim > 1 else 1)
        self._anchor_indices = tuple(
            np.arange(0, s, 2 ** self.num_levels, dtype=np.intp) for s in shape
        )
        self._passes: Dict[int, List[_DimPass]] = {}
        for level in range(self.num_levels, 0, -1):
            self._passes[level] = self._build_level_passes(level)
        # Sweep-granular ("unit") numbering: every (level, dim) pass gets its
        # own number, processed from ``num_units`` (coarsest sweep) down to 1
        # (the final, finest sweep).  IPComp's progressive blocks are grouped
        # per unit because the paper's p^(l−1) propagation bound is exact at
        # this granularity: the loss of unit ``u`` passes through exactly
        # ``u − 1`` later prediction sweeps.
        ordered = [
            p for level in range(self.num_levels, 0, -1) for p in self._passes[level]
        ]
        self.num_units = len(ordered)
        self._unit_passes: Dict[int, _DimPass] = {
            self.num_units - index: p for index, p in enumerate(ordered)
        }

    def _groups(self, granularity: str) -> List[Tuple[int, List[_DimPass]]]:
        """Processing-order grouping of passes, keyed per level or per sweep."""
        if granularity == "level":
            return [
                (level, self._passes[level])
                for level in range(self.num_levels, 0, -1)
            ]
        if granularity == "sweep":
            return [
                (unit, [self._unit_passes[unit]])
                for unit in range(self.num_units, 0, -1)
            ]
        raise ConfigurationError(f"granularity must be 'level' or 'sweep', got {granularity!r}")

    # ------------------------------------------------------------------ setup

    def _build_level_passes(self, level: int) -> List[_DimPass]:
        stride = 2**level
        half = stride // 2
        passes: List[_DimPass] = []
        for dim in range(self.ndim):
            axis_indices: List[np.ndarray] = []
            for axis, size in enumerate(self.shape):
                if axis < dim:
                    idx = np.arange(0, size, half, dtype=np.intp)
                elif axis == dim:
                    idx = np.arange(half, size, stride, dtype=np.intp)
                else:
                    idx = np.arange(0, size, stride, dtype=np.intp)
                axis_indices.append(idx)
            if axis_indices[dim].size == 0:
                continue
            passes.append(
                _DimPass(
                    level=level,
                    dim=dim,
                    axis_indices=tuple(axis_indices),
                    target_shape=tuple(idx.size for idx in axis_indices),
                )
            )
        return passes

    # --------------------------------------------------------------- geometry

    @property
    def anchor_shape(self) -> Tuple[int, ...]:
        """Shape of the anchor-point grid (points spaced ``2^L`` apart)."""
        return tuple(idx.size for idx in self._anchor_indices)

    @property
    def anchor_count(self) -> int:
        """Number of anchor points (always fully loaded, never progressive)."""
        return int(np.prod(self.anchor_shape))

    def level_sizes(self, granularity: str = "level") -> Dict[int, int]:
        """Number of predicted points per group, keyed by level or sweep unit."""
        return {
            key: sum(p.size for p in passes)
            for key, passes in self._groups(granularity)
        }

    def total_points(self) -> int:
        """Anchors plus all predicted points — must equal ``prod(shape)``."""
        return self.anchor_count + sum(self.level_sizes().values())

    @property
    def stencil_norm(self) -> float:
        """Theorem 1's propagation factor ``p`` for the configured method."""
        return STENCIL_NORMS[self.method]

    # ------------------------------------------------------------- prediction

    def _gather(self, buffer: np.ndarray, axis_indices: Sequence[np.ndarray]) -> np.ndarray:
        return buffer[np.ix_(*axis_indices)]

    def _predict_pass(self, buffer: np.ndarray, p: _DimPass) -> np.ndarray:
        """Predict the target points of one (level, dim) sweep from ``buffer``."""
        half = 2 ** (p.level - 1)
        dim = p.dim
        size_d = self.shape[dim]
        targets = p.axis_indices[dim]

        def values_at(offset_indices: np.ndarray) -> np.ndarray:
            axes = list(p.axis_indices)
            axes[dim] = offset_indices
            return self._gather(buffer, axes)

        left1 = targets - half
        right1 = targets + half
        right1_valid = right1 < size_d
        v_left1 = values_at(left1)
        v_right1 = values_at(np.where(right1_valid, right1, left1))

        # Broadcast per-target validity masks along axis ``dim``.
        mask_shape = [1] * self.ndim
        mask_shape[dim] = targets.size
        right1_mask = right1_valid.reshape(mask_shape)

        linear = 0.5 * (v_left1 + v_right1)
        prediction = np.where(right1_mask, linear, v_left1)

        if self.method == "cubic":
            left3 = targets - 3 * half
            right3 = targets + 3 * half
            cubic_valid = (left3 >= 0) & (right3 < size_d) & right1_valid
            if cubic_valid.any():
                v_left3 = values_at(np.clip(left3, 0, size_d - 1))
                v_right3 = values_at(np.clip(right3, 0, size_d - 1))
                cubic = (
                    -v_left3 / 16.0
                    + 9.0 * v_left1 / 16.0
                    + 9.0 * v_right1 / 16.0
                    - v_right3 / 16.0
                )
                cubic_mask = cubic_valid.reshape(mask_shape)
                prediction = np.where(cubic_mask, cubic, prediction)
        return prediction

    # ------------------------------------------------------------ compression

    def decompose(
        self,
        data: np.ndarray,
        quantizer: LinearQuantizer,
        granularity: str = "level",
    ) -> Tuple[np.ndarray, Dict[int, np.ndarray], np.ndarray]:
        """Predict + quantize every point, running reconstruction in lock-step.

        Returns
        -------
        anchor_codes:
            ``int64`` quantized anchor values (prediction 0), flattened.
        level_codes:
            Mapping level → flat ``int64`` quantization integers of every
            (dim sweep) of that level, concatenated in sweep order.
        reconstruction:
            The lossy reconstruction ``x̂`` produced with the full-precision
            codes (what a non-progressive decompression would return).
        """
        data = np.asarray(data, dtype=np.float64)
        if data.shape != self.shape:
            raise ConfigurationError(
                f"data shape {data.shape} does not match predictor shape {self.shape}"
            )
        xhat = np.zeros(self.shape, dtype=np.float64)

        anchor_mesh = np.ix_(*self._anchor_indices)
        anchor_codes, anchor_dequant = quantizer.roundtrip(data[anchor_mesh])
        xhat[anchor_mesh] = anchor_dequant

        level_codes: Dict[int, np.ndarray] = {}
        for key, passes in self._groups(granularity):
            per_pass: List[np.ndarray] = []
            for p in passes:
                mesh = np.ix_(*p.axis_indices)
                prediction = self._predict_pass(xhat, p)
                codes, dequant = quantizer.roundtrip(data[mesh] - prediction)
                xhat[mesh] = prediction + dequant
                per_pass.append(codes.ravel())
            level_codes[key] = (
                np.concatenate(per_pass) if per_pass else np.zeros(0, dtype=np.int64)
            )
        return anchor_codes.ravel(), level_codes, xhat

    def transform(
        self, data: np.ndarray, granularity: str = "level"
    ) -> Tuple[np.ndarray, Dict[int, np.ndarray]]:
        """Hierarchical-basis *transform* variant of :meth:`decompose`.

        Unlike :meth:`decompose`, predictions read the **original** values of
        previously processed points, so the output coefficients are a lossless
        linear transform of the input (the multigrid/hierarchical-basis view
        used by the MGARD-like baseline).  :meth:`reconstruct` is its exact
        inverse.  Quantization error behaviour therefore follows the transform
        model of §4.2.1 — errors accumulate across levels — which is exactly
        the contrast with IPComp's prediction model the paper analyses.

        Returns ``(anchor_values, level_coefficients)`` as float arrays in the
        same flattened sweep order as :meth:`decompose`.
        """
        data = np.asarray(data, dtype=np.float64)
        if data.shape != self.shape:
            raise ConfigurationError(
                f"data shape {data.shape} does not match predictor shape {self.shape}"
            )
        anchor_mesh = np.ix_(*self._anchor_indices)
        anchor_values = data[anchor_mesh].ravel().copy()
        level_coeffs: Dict[int, np.ndarray] = {}
        for key, passes in self._groups(granularity):
            per_pass: List[np.ndarray] = []
            for p in passes:
                mesh = np.ix_(*p.axis_indices)
                prediction = self._predict_pass(data, p)
                per_pass.append((data[mesh] - prediction).ravel())
            level_coeffs[key] = (
                np.concatenate(per_pass) if per_pass else np.zeros(0, dtype=np.float64)
            )
        return anchor_values, level_coeffs

    # ---------------------------------------------------------- reconstruction

    def reconstruct(
        self,
        anchor_values: np.ndarray,
        level_diffs: Mapping[int, np.ndarray],
        granularity: str = "level",
    ) -> np.ndarray:
        """Rebuild a field from dequantized anchor values and per-level diffs.

        ``level_diffs[level]`` must hold the dequantized prediction differences
        of that level in the same flattened sweep order :meth:`decompose`
        produced them.  Missing levels are treated as all-zero diffs, which is
        exactly the semantics of not having loaded any bitplane of that level.

        The map is linear in its inputs, so calling it with *delta* diffs
        yields the delta of the reconstruction (Algorithm 2).
        """
        xhat = np.zeros(self.shape, dtype=np.float64)
        anchor_mesh = np.ix_(*self._anchor_indices)
        xhat[anchor_mesh] = np.asarray(anchor_values, dtype=np.float64).reshape(
            self.anchor_shape
        )
        sizes = self.level_sizes(granularity)
        for key, passes in self._groups(granularity):
            diffs = level_diffs.get(key)
            if diffs is None:
                diffs = np.zeros(sizes[key], dtype=np.float64)
            else:
                diffs = np.asarray(diffs, dtype=np.float64).ravel()
                if diffs.size != sizes[key]:
                    raise ConfigurationError(
                        f"group {key} expects {sizes[key]} diffs, got {diffs.size}"
                    )
            offset = 0
            for p in passes:
                mesh = np.ix_(*p.axis_indices)
                prediction = self._predict_pass(xhat, p)
                block = diffs[offset : offset + p.size].reshape(p.target_shape)
                xhat[mesh] = prediction + block
                offset += p.size
        return xhat

    # ------------------------------------------------------------------ misc

    def describe(self) -> Dict[int, Dict[str, object]]:
        """Human-readable summary of the level layout (used by the CLI)."""
        summary: Dict[int, Dict[str, object]] = {}
        for level, passes in self._passes.items():
            summary[level] = {
                "stride": 2**level,
                "points": sum(p.size for p in passes),
                "sweeps": [(p.dim, p.target_shape) for p in passes],
            }
        return summary
