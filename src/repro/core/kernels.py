"""Kernel dispatch layer for the bit-level hot paths of IPComp.

Every operation on the critical encode/decode path — bitplane
transposition, XOR-prefix predictive coding, negabinary conversion,
error-bounded quantization, bit packing, and the Huffman code-bit scatter
— is expressed here as a method of a :class:`Kernel` and resolved through a
registry, mirroring the pluggable lossless-backend registry of
:mod:`repro.coders.backend`:

* ``"vectorized"`` (the default) implements every operation as a constant
  number of NumPy bulk passes: one ``np.unpackbits`` per bitplane
  transpose instead of one shift/mask pass per plane, one ``np.packbits``
  per reassembly, and at most ``prefix_bits`` whole-matrix XORs for the
  predictive coder.
* ``"reference"`` spells the same operations out as straightforward
  Python loops that follow the paper's pseudocode bit by bit.  It exists
  as a correctness oracle: the differential tests assert that both
  kernels produce **byte-identical** streams, and the Figure 8 benchmark
  reports the throughput gap between them.

Both kernels are stateless; :func:`get_kernel` caches one instance per
registered name.  New kernels (e.g. a future C/Cython or GPU backend) are
added with :func:`register_kernel` and become selectable everywhere a
``kernel=`` argument is threaded through — :class:`repro.IPComp`,
:class:`repro.ProgressiveRetriever`, the predictive coder, the Huffman
coder, and the ``ipcomp`` CLI.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.coders.bitio import BitReader, BitWriter  # reference kernel substrate
from repro.core.negabinary import from_negabinary as _nb_decode
from repro.core.negabinary import to_negabinary as _nb_encode
from repro.errors import ConfigurationError

#: Name of the kernel used when none is requested explicitly.
DEFAULT_KERNEL = "vectorized"

_U64_MASK = (1 << 64) - 1


def _check_nbits(nbits: int) -> None:
    if nbits < 1 or nbits > 64:
        raise ConfigurationError("nbits must be in [1, 64]")


def _check_prefix_bits(prefix_bits: int) -> None:
    if not 0 <= prefix_bits <= 3:
        raise ConfigurationError("prefix_bits must be in [0, 3]")


class Kernel:
    """Abstract bit-level kernel; see the module docstring for the contract.

    All array arguments/returns follow the conventions of
    :mod:`repro.core.bitplane`: planes are ``uint8`` matrices of shape
    ``(nplanes, n)`` with row 0 the most significant plane, packed bits use
    little-endian bit order within each byte, and negabinary codes are
    ``uint64`` with value semantics identical to the alternating-mask maps
    of :mod:`repro.core.negabinary`.
    """

    name: str

    # ------------------------------------------------------------ bitplanes

    def extract_bitplanes(self, codes: np.ndarray, nbits: int) -> np.ndarray:
        """Split unsigned codes into ``nbits`` planes, most significant first."""
        raise NotImplementedError

    def assemble_bitplanes(self, planes: np.ndarray, nbits: int) -> np.ndarray:
        """Rebuild codes from the loaded (most significant) planes."""
        raise NotImplementedError

    def predictive_encode(self, planes: np.ndarray, prefix_bits: int) -> np.ndarray:
        """XOR-predict every plane from its ``prefix_bits`` predecessors."""
        raise NotImplementedError

    def predictive_decode(self, encoded: np.ndarray, prefix_bits: int) -> np.ndarray:
        """Invert :meth:`predictive_encode` plane by plane, top to bottom."""
        raise NotImplementedError

    # ------------------------------------------------------------- bit pack

    def pack_bits(self, bits: np.ndarray) -> bytes:
        """Pack 0/1 values into bytes, little-endian bit order."""
        raise NotImplementedError

    def unpack_bits(self, data: bytes, count: int) -> np.ndarray:
        """Invert :meth:`pack_bits`, recovering exactly ``count`` bits."""
        raise NotImplementedError

    def scatter_code_bits(
        self,
        sym_codes: np.ndarray,
        sym_lengths: np.ndarray,
        offsets: np.ndarray,
        total_bits: int,
    ) -> np.ndarray:
        """Write variable-length codes (MSB first) into a flat bit array.

        Symbol ``i`` occupies bit positions ``offsets[i] … offsets[i] +
        sym_lengths[i] − 1``; this is the hot scatter of the canonical
        Huffman encoder (:mod:`repro.coders.huffman`).
        """
        raise NotImplementedError

    # ----------------------------------------------------------- negabinary

    def to_negabinary(self, values: np.ndarray) -> np.ndarray:
        """Signed integers → negabinary codes (``uint64``)."""
        raise NotImplementedError

    def from_negabinary(self, codes: np.ndarray) -> np.ndarray:
        """Negabinary codes → signed integers (``int64``)."""
        raise NotImplementedError

    # --------------------------------------------------------- quantization

    def quantize(self, values: np.ndarray, bin_width: float) -> np.ndarray:
        """Mid-tread quantization: ``round(values / bin_width)`` as int64."""
        raise NotImplementedError

    def dequantize(self, codes: np.ndarray, bin_width: float) -> np.ndarray:
        """Bin index → bin-centre value (float64)."""
        raise NotImplementedError


class VectorizedKernel(Kernel):
    """NumPy bulk-operation kernel: constant number of C passes per call."""

    name = "vectorized"

    # ------------------------------------------------------------ bitplanes

    def extract_bitplanes(self, codes: np.ndarray, nbits: int) -> np.ndarray:
        _check_nbits(nbits)
        codes = np.ascontiguousarray(np.asarray(codes).ravel(), dtype="<u8")
        n = codes.size
        if n == 0:
            return np.empty((nbits, 0), dtype=np.uint8)
        nbytes = (nbits + 7) // 8
        # One C pass: low `nbytes` bytes of each code → per-value bit rows.
        byte_view = codes.view(np.uint8).reshape(n, 8)[:, :nbytes]
        bits = np.unpackbits(byte_view, axis=1, bitorder="little")
        return np.ascontiguousarray(bits[:, nbits - 1 :: -1].T)

    def assemble_bitplanes(self, planes: np.ndarray, nbits: int) -> np.ndarray:
        planes = np.asarray(planes, dtype=np.uint8)
        loaded = planes.shape[0]
        if loaded > nbits:
            raise ConfigurationError("more planes supplied than the level width")
        n = planes.shape[1] if planes.ndim == 2 else 0
        if n == 0:
            return np.zeros(0, dtype=np.uint64)
        nbytes = (nbits + 7) // 8
        bits = np.zeros((n, 8 * nbytes), dtype=np.uint8)
        if loaded:
            bits[:, nbits - 1 - np.arange(loaded)] = planes.T
        packed = np.packbits(bits, axis=1, bitorder="little")
        out = np.zeros((n, 8), dtype=np.uint8)
        out[:, :nbytes] = packed
        return out.reshape(-1).view("<u8").astype(np.uint64, copy=False)

    def predictive_encode(self, planes: np.ndarray, prefix_bits: int) -> np.ndarray:
        _check_prefix_bits(prefix_bits)
        planes = np.asarray(planes, dtype=np.uint8)
        encoded = planes.copy()
        for j in range(1, prefix_bits + 1):
            if planes.shape[0] > j:
                encoded[j:] ^= planes[:-j]
        return encoded

    def predictive_decode(self, encoded: np.ndarray, prefix_bits: int) -> np.ndarray:
        _check_prefix_bits(prefix_bits)
        encoded = np.asarray(encoded, dtype=np.uint8)
        if prefix_bits == 0 or encoded.shape[0] <= 1:
            return encoded.copy()
        if prefix_bits == 1:
            # The recurrence collapses to a cumulative XOR down the planes.
            return np.bitwise_xor.accumulate(encoded, axis=0)
        planes = encoded.copy()
        for k in range(1, planes.shape[0]):
            for j in range(1, prefix_bits + 1):
                if k - j >= 0:
                    planes[k] ^= planes[k - j]
        return planes

    # ------------------------------------------------------------- bit pack

    def pack_bits(self, bits: np.ndarray) -> bytes:
        # Same bytes as BitWriter.write_bit_array on a fresh writer, minus
        # the writer's buffer copies — this is the hot per-plane path.
        return np.packbits(np.asarray(bits, dtype=np.uint8), bitorder="little").tobytes()

    def unpack_bits(self, data: bytes, count: int) -> np.ndarray:
        packed = np.frombuffer(data, dtype=np.uint8)
        return np.unpackbits(packed, count=count, bitorder="little")

    def scatter_code_bits(
        self,
        sym_codes: np.ndarray,
        sym_lengths: np.ndarray,
        offsets: np.ndarray,
        total_bits: int,
    ) -> np.ndarray:
        sym_codes = np.asarray(sym_codes, dtype=np.uint64)
        sym_lengths = np.asarray(sym_lengths, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        bits = np.zeros(int(total_bits), dtype=np.uint8)
        if sym_codes.size == 0:
            return bits
        # One vector pass per code-bit position instead of one per symbol:
        # the i-th emitted bit of a code is bit (length-1-i) of its value.
        for bit in range(int(sym_lengths.max())):
            active = sym_lengths > bit
            if not active.any():
                continue
            shift = (sym_lengths[active] - 1 - bit).astype(np.uint64)
            bit_vals = ((sym_codes[active] >> shift) & np.uint64(1)).astype(np.uint8)
            bits[offsets[active] + bit] = bit_vals
        return bits

    # ----------------------------------------------------------- negabinary

    def to_negabinary(self, values: np.ndarray) -> np.ndarray:
        return _nb_encode(values)

    def from_negabinary(self, codes: np.ndarray) -> np.ndarray:
        return _nb_decode(codes)

    # --------------------------------------------------------- quantization

    def quantize(self, values: np.ndarray, bin_width: float) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        codes = np.rint(values / bin_width).astype(np.int64)
        # Rounding in the divide can land on the wrong side of a half-bin
        # boundary when |value| / bin_width approaches 2^52, so the decoder's
        # reconstruction (codes · bin_width, computed in float64) could
        # overshoot the half-bin error bound by a few ulps.  Nudge offending
        # codes until the bound holds in the decoder's own arithmetic.
        half = 0.5 * bin_width
        for _ in range(2):
            err = values - codes.astype(np.float64) * bin_width
            mask = np.abs(err) > half
            if not mask.any():
                break
            codes = codes + np.where(mask, np.sign(err).astype(np.int64), 0)
        return codes

    def dequantize(self, codes: np.ndarray, bin_width: float) -> np.ndarray:
        return np.asarray(codes, dtype=np.float64) * bin_width


class ReferenceKernel(Kernel):
    """Loop-based oracle kernel: the paper's pseudocode, one bit at a time.

    Deliberately naive — per-plane shifts, per-bit packing, per-element
    base-(−2) digit expansion — so its correctness is auditable by eye.
    The differential tests hold :class:`VectorizedKernel` to byte-exact
    agreement with this implementation.
    """

    name = "reference"

    # ------------------------------------------------------------ bitplanes

    def extract_bitplanes(self, codes: np.ndarray, nbits: int) -> np.ndarray:
        _check_nbits(nbits)
        codes = np.asarray(codes, dtype=np.uint64).ravel()
        planes = np.empty((nbits, codes.size), dtype=np.uint8)
        for row, bit_position in enumerate(range(nbits - 1, -1, -1)):
            planes[row] = ((codes >> np.uint64(bit_position)) & np.uint64(1)).astype(
                np.uint8
            )
        return planes

    def assemble_bitplanes(self, planes: np.ndarray, nbits: int) -> np.ndarray:
        planes = np.asarray(planes, dtype=np.uint8)
        loaded = planes.shape[0]
        if loaded > nbits:
            raise ConfigurationError("more planes supplied than the level width")
        n = planes.shape[1] if planes.ndim == 2 else 0
        codes = np.zeros(n, dtype=np.uint64)
        for row in range(loaded):
            bit_position = nbits - 1 - row
            codes |= planes[row].astype(np.uint64) << np.uint64(bit_position)
        return codes

    def predictive_encode(self, planes: np.ndarray, prefix_bits: int) -> np.ndarray:
        _check_prefix_bits(prefix_bits)
        planes = np.asarray(planes, dtype=np.uint8)
        encoded = planes.copy()
        for k in range(planes.shape[0]):
            for j in range(1, prefix_bits + 1):
                if k - j >= 0:
                    encoded[k] ^= planes[k - j]
        return encoded

    def predictive_decode(self, encoded: np.ndarray, prefix_bits: int) -> np.ndarray:
        _check_prefix_bits(prefix_bits)
        encoded = np.asarray(encoded, dtype=np.uint8)
        planes = encoded.copy()
        for k in range(encoded.shape[0]):
            for j in range(1, prefix_bits + 1):
                if k - j >= 0:
                    planes[k] ^= planes[k - j]
        return planes

    # ------------------------------------------------------------- bit pack

    def pack_bits(self, bits: np.ndarray) -> bytes:
        writer = BitWriter()
        for bit in np.asarray(bits, dtype=np.uint8).ravel().tolist():
            writer.write_bit(bit)
        return writer.getvalue()

    def unpack_bits(self, data: bytes, count: int) -> np.ndarray:
        reader = BitReader(data)
        return np.array([reader.read_bit() for _ in range(count)], dtype=np.uint8)

    def scatter_code_bits(
        self,
        sym_codes: np.ndarray,
        sym_lengths: np.ndarray,
        offsets: np.ndarray,
        total_bits: int,
    ) -> np.ndarray:
        bits = np.zeros(int(total_bits), dtype=np.uint8)
        pairs = zip(
            np.asarray(sym_codes).tolist(),
            np.asarray(sym_lengths).tolist(),
            np.asarray(offsets).tolist(),
        )
        for code, length, offset in pairs:
            for i in range(length):
                bits[offset + i] = (code >> (length - 1 - i)) & 1
        return bits

    # ----------------------------------------------------------- negabinary

    def to_negabinary(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        out = np.empty(values.size, dtype=np.uint64)
        for i, v in enumerate(values.ravel().tolist()):
            code = 0
            # Classic base-(−2) digit expansion, truncated to 64 digits to
            # match the modulo-2^64 alternating-mask bijection.
            for position in range(64):
                if v == 0:
                    break
                digit = v & 1
                code |= digit << position
                v = (v - digit) // -2
            out[i] = code & _U64_MASK
        return out.reshape(values.shape)

    def from_negabinary(self, codes: np.ndarray) -> np.ndarray:
        codes = np.asarray(codes, dtype=np.uint64)
        out = np.empty(codes.size, dtype=np.int64)
        for i, code in enumerate(codes.ravel().tolist()):
            total = 0
            position = 0
            while code:
                if code & 1:
                    total += (-2) ** position
                code >>= 1
                position += 1
            total &= _U64_MASK
            if total >= 1 << 63:
                total -= 1 << 64
            out[i] = total
        return out.reshape(codes.shape)

    # --------------------------------------------------------- quantization

    def quantize(self, values: np.ndarray, bin_width: float) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        # Python's round() is round-half-to-even on floats, same as np.rint.
        half = 0.5 * bin_width
        quantized = []
        for v in values.ravel().tolist():
            q = round(v / bin_width)
            # Same half-bin correction as the vectorized kernel (the two
            # must stay byte-identical): enforce |v − q·w| ≤ w/2 in the
            # decoder's float64 arithmetic.
            for _ in range(2):
                err = v - q * bin_width
                if err > half:
                    q += 1
                elif err < -half:
                    q -= 1
                else:
                    break
            quantized.append(q)
        return np.array(quantized, dtype=np.int64).reshape(values.shape)

    def dequantize(self, codes: np.ndarray, bin_width: float) -> np.ndarray:
        codes = np.asarray(codes)
        dequantized = [c * bin_width for c in codes.ravel().tolist()]
        return np.array(dequantized, dtype=np.float64).reshape(codes.shape)


# --------------------------------------------------------------------- registry

_REGISTRY: Dict[str, Callable[[], Kernel]] = {}
_INSTANCES: Dict[str, Kernel] = {}


def register_kernel(name: str, factory: Callable[[], Kernel]) -> None:
    """Register a kernel factory under ``name`` (replacing any previous one)."""
    if not name:
        raise ConfigurationError("kernel name must be a non-empty string")
    _REGISTRY[name] = factory
    _INSTANCES.pop(name, None)


def available_kernels() -> tuple:
    """Names of all registered kernels, sorted."""
    return tuple(sorted(_REGISTRY))


def get_kernel(kernel: Optional[Union[str, Kernel]] = None) -> Kernel:
    """Resolve a kernel by name (``None`` → :data:`DEFAULT_KERNEL`).

    Accepts an already-instantiated :class:`Kernel` unchanged so call sites
    can thread either a registry name or a custom instance.
    """
    if isinstance(kernel, Kernel):
        return kernel
    name = kernel if kernel is not None else DEFAULT_KERNEL
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown kernel {name!r}; available: {available_kernels()}"
        )
    if name not in _INSTANCES:
        _INSTANCES[name] = _REGISTRY[name]()
    return _INSTANCES[name]


register_kernel("vectorized", VectorizedKernel)
register_kernel("reference", ReferenceKernel)
