"""Kernel dispatch layer for the bit-level hot paths of IPComp.

Every operation on the critical encode/decode path — bitplane
transposition, XOR-prefix predictive coding, negabinary conversion,
error-bounded quantization, bit packing, and the Huffman code-bit scatter
— is expressed here as a method of a :class:`Kernel` and resolved through a
registry, mirroring the pluggable lossless-backend registry of
:mod:`repro.coders.backend`:

* ``"vectorized"`` (the default) implements every operation as a constant
  number of NumPy bulk passes: one ``np.unpackbits`` per bitplane
  transpose instead of one shift/mask pass per plane, one ``np.packbits``
  per reassembly, and at most ``prefix_bits`` whole-matrix XORs for the
  predictive coder.
* ``"reference"`` spells the same operations out as straightforward
  Python loops that follow the paper's pseudocode bit by bit.  It exists
  as a correctness oracle: the differential tests assert that both
  kernels produce **byte-identical** streams, and the Figure 8 benchmark
  reports the throughput gap between them.
* ``"fused"`` runs the whole per-level encode chain — negabinary →
  bitplane transpose → XOR prediction → per-plane packing — as **one
  sweep in the packed byte domain** (:meth:`Kernel.encode_planes` /
  :meth:`Kernel.decode_planes`), reusing a per-instance buffer arena
  across levels and planes instead of materialising fresh intermediates.
  The trick is that XOR prediction commutes with bit packing (pad bits
  are zero on both sides), so prediction runs on the 8×-smaller packed
  rows and the whole level needs a single ``np.packbits`` call.  Output
  bytes are asserted identical to both other kernels.
* ``"compiled"`` (optional, the ``[compiled]`` pip extra) is the numba
  ``@njit(parallel=True)`` port of the fused sweep
  (:mod:`repro.core.kernels_compiled`): the same carry-free 8×8 bit-block
  transpose, compiled to machine code with the independent byte columns
  parallelised across cores.  It is registered behind a lazy import — on
  a machine without numba, requesting it raises a
  :class:`~repro.errors.ConfigurationError` naming the extra.
* ``"auto"`` resolves, at first use, to the fastest backend available on
  the machine — ``compiled`` > ``fused`` > ``vectorized`` (see
  :func:`resolve_auto_kernel`) — so profiles and CLI invocations can opt
  into the best kernel without knowing what is installed.

The simple kernels are stateless and the arena-backed kernels (fused,
compiled) keep their grow-only scratch *per thread*
(:class:`ArenaKernel`); :func:`get_kernel` caches one instance per
registered name, and that shared instance is decoded on concurrently by
``RetrievalService --threads``, so per-thread scratch is a correctness
requirement, not an optimisation.  New kernels (e.g. a future C/Cython or
GPU backend) are added with :func:`register_kernel` and become selectable
everywhere a ``kernel=`` argument is threaded through —
:class:`repro.IPComp`, :class:`repro.ProgressiveRetriever`, the predictive
coder, the Huffman coder, and the ``ipcomp`` CLI.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.coders.bitio import BitReader, BitWriter  # reference kernel substrate
from repro.core.negabinary import from_negabinary as _nb_decode
from repro.core.negabinary import required_bits_from_codes as _nb_required_bits
from repro.core.negabinary import to_negabinary as _nb_encode
from repro.errors import ConfigurationError

#: Name of the kernel used when none is requested explicitly.
DEFAULT_KERNEL = "vectorized"

_U64_MASK = (1 << 64) - 1


def _check_nbits(nbits: int) -> None:
    if nbits < 1 or nbits > 64:
        raise ConfigurationError("nbits must be in [1, 64]")


def _check_prefix_bits(prefix_bits: int) -> None:
    if not 0 <= prefix_bits <= 3:
        raise ConfigurationError("prefix_bits must be in [0, 3]")


class Kernel:
    """Abstract bit-level kernel; see the module docstring for the contract.

    All array arguments/returns follow the conventions of
    :mod:`repro.core.bitplane`: planes are ``uint8`` matrices of shape
    ``(nplanes, n)`` with row 0 the most significant plane, packed bits use
    little-endian bit order within each byte, and negabinary codes are
    ``uint64`` with value semantics identical to the alternating-mask maps
    of :mod:`repro.core.negabinary`.
    """

    name: str

    # ------------------------------------------------------------ bitplanes

    def extract_bitplanes(self, codes: np.ndarray, nbits: int) -> np.ndarray:
        """Split unsigned codes into ``nbits`` planes, most significant first."""
        raise NotImplementedError

    def assemble_bitplanes(self, planes: np.ndarray, nbits: int) -> np.ndarray:
        """Rebuild codes from the loaded (most significant) planes."""
        raise NotImplementedError

    def predictive_encode(self, planes: np.ndarray, prefix_bits: int) -> np.ndarray:
        """XOR-predict every plane from its ``prefix_bits`` predecessors."""
        raise NotImplementedError

    def predictive_decode(self, encoded: np.ndarray, prefix_bits: int) -> np.ndarray:
        """Invert :meth:`predictive_encode` plane by plane, top to bottom."""
        raise NotImplementedError

    # ------------------------------------------------------------- bit pack

    def pack_bits(self, bits: np.ndarray) -> bytes:
        """Pack 0/1 values into bytes, little-endian bit order."""
        raise NotImplementedError

    def unpack_bits(self, data: bytes, count: int) -> np.ndarray:
        """Invert :meth:`pack_bits`, recovering exactly ``count`` bits."""
        raise NotImplementedError

    def scatter_code_bits(
        self,
        sym_codes: np.ndarray,
        sym_lengths: np.ndarray,
        offsets: np.ndarray,
        total_bits: int,
    ) -> np.ndarray:
        """Write variable-length codes (MSB first) into a flat bit array.

        Symbol ``i`` occupies bit positions ``offsets[i] … offsets[i] +
        sym_lengths[i] − 1``; this is the hot scatter of the canonical
        Huffman encoder (:mod:`repro.coders.huffman`).
        """
        raise NotImplementedError

    # ----------------------------------------------------------- negabinary

    def to_negabinary(self, values: np.ndarray) -> np.ndarray:
        """Signed integers → negabinary codes (``uint64``)."""
        raise NotImplementedError

    def from_negabinary(self, codes: np.ndarray) -> np.ndarray:
        """Negabinary codes → signed integers (``int64``)."""
        raise NotImplementedError

    # --------------------------------------------------------- quantization

    def quantize(self, values: np.ndarray, bin_width: float) -> np.ndarray:
        """Mid-tread quantization: ``round(values / bin_width)`` as int64."""
        raise NotImplementedError

    def dequantize(self, codes: np.ndarray, bin_width: float) -> np.ndarray:
        """Bin index → bin-centre value (float64)."""
        raise NotImplementedError

    # ------------------------------------------------------- fused pipelines

    def encode_planes(
        self, codes: np.ndarray, prefix_bits: int
    ) -> Tuple[int, List[bytes]]:
        """One level's full plane-encode chain: codes → packed plane blocks.

        Runs negabinary conversion, bitplane transposition, XOR prediction
        and per-plane bit packing; returns ``(nbits, blocks)`` with one
        packed byte string per plane, most significant first.  The default
        implementation composes the four primitive kernel methods, so every
        kernel gets the hook for free; :class:`FusedKernel` overrides it
        with a single-sweep implementation.  All implementations must emit
        byte-identical blocks.
        """
        codes = np.asarray(codes, dtype=np.int64).ravel()
        negabinary = self.to_negabinary(codes)
        nbits = _nb_required_bits(negabinary)
        planes = self.extract_bitplanes(negabinary, nbits)
        predicted = self.predictive_encode(planes, prefix_bits)
        return nbits, [self.pack_bits(plane) for plane in predicted]

    def decode_planes(
        self,
        raw_planes: Sequence[bytes],
        count: int,
        nbits: int,
        prefix_bits: int,
    ) -> np.ndarray:
        """Invert :meth:`encode_planes` for the loaded plane prefix.

        ``raw_planes`` are the losslessly *decoded* packed plane byte
        strings (most significant first); unloaded low planes are treated
        as zero.  Returns the ``int64`` quantization codes.
        """
        keep = len(raw_planes)
        if count == 0 or keep == 0:
            return np.zeros(count, dtype=np.int64)
        encoded = np.empty((keep, count), dtype=np.uint8)
        for row, raw in enumerate(raw_planes):
            encoded[row] = self.unpack_bits(raw, count)
        planes = self.predictive_decode(encoded, prefix_bits)
        return self.from_negabinary(self.assemble_bitplanes(planes, nbits))


class VectorizedKernel(Kernel):
    """NumPy bulk-operation kernel: constant number of C passes per call."""

    name = "vectorized"

    # ------------------------------------------------------------ bitplanes

    def extract_bitplanes(self, codes: np.ndarray, nbits: int) -> np.ndarray:
        _check_nbits(nbits)
        codes = np.ascontiguousarray(np.asarray(codes).ravel(), dtype="<u8")
        n = codes.size
        if n == 0:
            return np.empty((nbits, 0), dtype=np.uint8)
        nbytes = (nbits + 7) // 8
        # One C pass: low `nbytes` bytes of each code → per-value bit rows.
        byte_view = codes.view(np.uint8).reshape(n, 8)[:, :nbytes]
        bits = np.unpackbits(byte_view, axis=1, bitorder="little")
        return np.ascontiguousarray(bits[:, nbits - 1 :: -1].T)

    def assemble_bitplanes(self, planes: np.ndarray, nbits: int) -> np.ndarray:
        planes = np.asarray(planes, dtype=np.uint8)
        loaded = planes.shape[0]
        if loaded > nbits:
            raise ConfigurationError("more planes supplied than the level width")
        n = planes.shape[1] if planes.ndim == 2 else 0
        if n == 0:
            return np.zeros(0, dtype=np.uint64)
        nbytes = (nbits + 7) // 8
        bits = np.zeros((n, 8 * nbytes), dtype=np.uint8)
        if loaded:
            bits[:, nbits - 1 - np.arange(loaded)] = planes.T
        packed = np.packbits(bits, axis=1, bitorder="little")
        out = np.zeros((n, 8), dtype=np.uint8)
        out[:, :nbytes] = packed
        return out.reshape(-1).view("<u8").astype(np.uint64, copy=False)

    def predictive_encode(self, planes: np.ndarray, prefix_bits: int) -> np.ndarray:
        _check_prefix_bits(prefix_bits)
        planes = np.asarray(planes, dtype=np.uint8)
        encoded = planes.copy()
        for j in range(1, prefix_bits + 1):
            if planes.shape[0] > j:
                encoded[j:] ^= planes[:-j]
        return encoded

    def predictive_decode(self, encoded: np.ndarray, prefix_bits: int) -> np.ndarray:
        _check_prefix_bits(prefix_bits)
        encoded = np.asarray(encoded, dtype=np.uint8)
        if prefix_bits == 0 or encoded.shape[0] <= 1:
            return encoded.copy()
        if prefix_bits == 1:
            # The recurrence collapses to a cumulative XOR down the planes.
            return np.bitwise_xor.accumulate(encoded, axis=0)
        planes = encoded.copy()
        for k in range(1, planes.shape[0]):
            for j in range(1, prefix_bits + 1):
                if k - j >= 0:
                    planes[k] ^= planes[k - j]
        return planes

    # ------------------------------------------------------------- bit pack

    def pack_bits(self, bits: np.ndarray) -> bytes:
        # Same bytes as BitWriter.write_bit_array on a fresh writer, minus
        # the writer's buffer copies — this is the hot per-plane path.
        return np.packbits(np.asarray(bits, dtype=np.uint8), bitorder="little").tobytes()

    def unpack_bits(self, data: bytes, count: int) -> np.ndarray:
        packed = np.frombuffer(data, dtype=np.uint8)
        return np.unpackbits(packed, count=count, bitorder="little")

    def scatter_code_bits(
        self,
        sym_codes: np.ndarray,
        sym_lengths: np.ndarray,
        offsets: np.ndarray,
        total_bits: int,
    ) -> np.ndarray:
        sym_codes = np.asarray(sym_codes, dtype=np.uint64)
        sym_lengths = np.asarray(sym_lengths, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        bits = np.zeros(int(total_bits), dtype=np.uint8)
        if sym_codes.size == 0:
            return bits
        # One vector pass per code-bit position instead of one per symbol:
        # the i-th emitted bit of a code is bit (length-1-i) of its value.
        for bit in range(int(sym_lengths.max())):
            active = sym_lengths > bit
            if not active.any():
                continue
            shift = (sym_lengths[active] - 1 - bit).astype(np.uint64)
            bit_vals = ((sym_codes[active] >> shift) & np.uint64(1)).astype(np.uint8)
            bits[offsets[active] + bit] = bit_vals
        return bits

    # ----------------------------------------------------------- negabinary

    def to_negabinary(self, values: np.ndarray) -> np.ndarray:
        return _nb_encode(values)

    def from_negabinary(self, codes: np.ndarray) -> np.ndarray:
        return _nb_decode(codes)

    # --------------------------------------------------------- quantization

    def quantize(self, values: np.ndarray, bin_width: float) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        codes = np.rint(values / bin_width).astype(np.int64)
        # Rounding in the divide can land on the wrong side of a half-bin
        # boundary when |value| / bin_width approaches 2^52, so the decoder's
        # reconstruction (codes · bin_width, computed in float64) could
        # overshoot the half-bin error bound by a few ulps.  Nudge offending
        # codes until the bound holds in the decoder's own arithmetic.
        half = 0.5 * bin_width
        for _ in range(2):
            err = values - codes.astype(np.float64) * bin_width
            mask = np.abs(err) > half
            if not mask.any():
                break
            codes = codes + np.where(mask, np.sign(err).astype(np.int64), 0)
        return codes

    def dequantize(self, codes: np.ndarray, bin_width: float) -> np.ndarray:
        return np.asarray(codes, dtype=np.float64) * bin_width


class ReferenceKernel(Kernel):
    """Loop-based oracle kernel: the paper's pseudocode, one bit at a time.

    Deliberately naive — per-plane shifts, per-bit packing, per-element
    base-(−2) digit expansion — so its correctness is auditable by eye.
    The differential tests hold :class:`VectorizedKernel` to byte-exact
    agreement with this implementation.
    """

    name = "reference"

    # ------------------------------------------------------------ bitplanes

    def extract_bitplanes(self, codes: np.ndarray, nbits: int) -> np.ndarray:
        _check_nbits(nbits)
        codes = np.asarray(codes, dtype=np.uint64).ravel()
        planes = np.empty((nbits, codes.size), dtype=np.uint8)
        for row, bit_position in enumerate(range(nbits - 1, -1, -1)):
            planes[row] = ((codes >> np.uint64(bit_position)) & np.uint64(1)).astype(
                np.uint8
            )
        return planes

    def assemble_bitplanes(self, planes: np.ndarray, nbits: int) -> np.ndarray:
        planes = np.asarray(planes, dtype=np.uint8)
        loaded = planes.shape[0]
        if loaded > nbits:
            raise ConfigurationError("more planes supplied than the level width")
        n = planes.shape[1] if planes.ndim == 2 else 0
        codes = np.zeros(n, dtype=np.uint64)
        for row in range(loaded):
            bit_position = nbits - 1 - row
            codes |= planes[row].astype(np.uint64) << np.uint64(bit_position)
        return codes

    def predictive_encode(self, planes: np.ndarray, prefix_bits: int) -> np.ndarray:
        _check_prefix_bits(prefix_bits)
        planes = np.asarray(planes, dtype=np.uint8)
        encoded = planes.copy()
        for k in range(planes.shape[0]):
            for j in range(1, prefix_bits + 1):
                if k - j >= 0:
                    encoded[k] ^= planes[k - j]
        return encoded

    def predictive_decode(self, encoded: np.ndarray, prefix_bits: int) -> np.ndarray:
        _check_prefix_bits(prefix_bits)
        encoded = np.asarray(encoded, dtype=np.uint8)
        planes = encoded.copy()
        for k in range(encoded.shape[0]):
            for j in range(1, prefix_bits + 1):
                if k - j >= 0:
                    planes[k] ^= planes[k - j]
        return planes

    # ------------------------------------------------------------- bit pack

    def pack_bits(self, bits: np.ndarray) -> bytes:
        writer = BitWriter()
        for bit in np.asarray(bits, dtype=np.uint8).ravel().tolist():
            writer.write_bit(bit)
        return writer.getvalue()

    def unpack_bits(self, data: bytes, count: int) -> np.ndarray:
        reader = BitReader(data)
        return np.array([reader.read_bit() for _ in range(count)], dtype=np.uint8)

    def scatter_code_bits(
        self,
        sym_codes: np.ndarray,
        sym_lengths: np.ndarray,
        offsets: np.ndarray,
        total_bits: int,
    ) -> np.ndarray:
        bits = np.zeros(int(total_bits), dtype=np.uint8)
        pairs = zip(
            np.asarray(sym_codes).tolist(),
            np.asarray(sym_lengths).tolist(),
            np.asarray(offsets).tolist(),
        )
        for code, length, offset in pairs:
            for i in range(length):
                bits[offset + i] = (code >> (length - 1 - i)) & 1
        return bits

    # ----------------------------------------------------------- negabinary

    def to_negabinary(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        out = np.empty(values.size, dtype=np.uint64)
        for i, v in enumerate(values.ravel().tolist()):
            code = 0
            # Classic base-(−2) digit expansion, truncated to 64 digits to
            # match the modulo-2^64 alternating-mask bijection.
            for position in range(64):
                if v == 0:
                    break
                digit = v & 1
                code |= digit << position
                v = (v - digit) // -2
            out[i] = code & _U64_MASK
        return out.reshape(values.shape)

    def from_negabinary(self, codes: np.ndarray) -> np.ndarray:
        codes = np.asarray(codes, dtype=np.uint64)
        out = np.empty(codes.size, dtype=np.int64)
        for i, code in enumerate(codes.ravel().tolist()):
            total = 0
            position = 0
            while code:
                if code & 1:
                    total += (-2) ** position
                code >>= 1
                position += 1
            total &= _U64_MASK
            if total >= 1 << 63:
                total -= 1 << 64
            out[i] = total
        return out.reshape(codes.shape)

    # --------------------------------------------------------- quantization

    def quantize(self, values: np.ndarray, bin_width: float) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        # Python's round() is round-half-to-even on floats, same as np.rint.
        half = 0.5 * bin_width
        quantized = []
        for v in values.ravel().tolist():
            q = round(v / bin_width)
            # Same half-bin correction as the vectorized kernel (the two
            # must stay byte-identical): enforce |v − q·w| ≤ w/2 in the
            # decoder's float64 arithmetic.
            for _ in range(2):
                err = v - q * bin_width
                if err > half:
                    q += 1
                elif err < -half:
                    q -= 1
                else:
                    break
            quantized.append(q)
        return np.array(quantized, dtype=np.int64).reshape(values.shape)

    def dequantize(self, codes: np.ndarray, bin_width: float) -> np.ndarray:
        codes = np.asarray(codes)
        dequantized = [c * bin_width for c in codes.ravel().tolist()]
        return np.array(dequantized, dtype=np.float64).reshape(codes.shape)


class _BufferArena:
    """Grow-only scratch buffers, keyed by role.

    The fused kernel reuses one arena across every level and plane it
    encodes, so the hot path allocates only when a level is larger than any
    level seen before.  Buffers are pure scratch: nothing returned to a
    caller aliases an arena buffer (block bytes are materialised with
    ``tobytes``; decoded codes come out of ``packbits``/``view`` copies).
    :class:`FusedKernel` keeps one arena *per thread* — ``get_kernel``
    caches a single process-wide instance, and two threads sweeping the
    same buffers would silently corrupt each other's streams.
    """

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}

    def take(self, key: str, shape: Tuple[int, ...], dtype=np.uint8) -> np.ndarray:
        needed = 1
        for extent in shape:
            needed *= int(extent)
        buf = self._buffers.get(key)
        if buf is None or buf.size < needed or buf.dtype != np.dtype(dtype):
            buf = np.empty(max(needed, 1), dtype=dtype)
            self._buffers[key] = buf
        return buf[:needed].reshape(shape)


class ArenaKernel(VectorizedKernel):
    """Base for kernels that sweep over grow-only scratch buffers.

    :func:`get_kernel` caches **one** instance per registered name and the
    serving layer (``RetrievalService --threads``) decodes concurrently on
    that shared instance, so arena state must be per thread: two threads
    sweeping the same buffers would silently corrupt each other's streams.
    Subclasses reach their scratch exclusively through :attr:`_arena`,
    which lazily creates one :class:`_BufferArena` per thread; nothing a
    subclass returns may alias an arena buffer (materialise block bytes
    with ``tobytes`` and decoded arrays with a copying conversion).
    """

    def __init__(self) -> None:
        self._thread_state = threading.local()

    @property
    def _arena(self) -> _BufferArena:
        arena = getattr(self._thread_state, "arena", None)
        if arena is None:
            arena = self._thread_state.arena = _BufferArena()
        return arena


#: Per-byte LSB mask / bit-gather multiplier of the 8×8 bit-block
#: transpose (Hacker's Delight ``transpose8``): with ``t`` holding one
#: 0/1 bit in every byte's LSB, ``(t * _TRANSPOSE_MAGIC) >> 56`` packs
#: byte ``i``'s bit into output bit ``i`` — carry-free, because each
#: output bit position receives exactly one contribution.
_TRANSPOSE_MASK = np.uint64(0x0101010101010101)
_TRANSPOSE_MAGIC = np.uint64(0x0102040810204080)
_U64_SHIFTS = [np.uint64(s) for s in range(64)]


class FusedKernel(ArenaKernel):
    """Single-sweep plane pipeline over a reusable buffer arena.

    The primitive operations are inherited from :class:`VectorizedKernel`
    (they already are single bulk passes), but the per-level pipelines are
    overridden to run entirely in the *packed* byte domain.  The insight is
    that ``extract_bitplanes`` + ``pack_bits`` (and their inverses) compose
    to a **bit-matrix transpose** — ``n × nbits`` value-major bits to
    ``nbits × n`` plane-major bits — and an 8×8 bit-block transpose has a
    carry-free multiply implementation that never materialises the
    ``n × nbits`` bit matrix at all:

    * **encode** — for every code byte, the 8 values of a block collapse
      into one ``uint64``; eight shift/mask/multiply passes emit the eight
      packed plane rows directly.  The XOR prediction then runs on the
      packed rows — 8× less data than the bit-domain XOR — and every
      intermediate lives in the arena, reused across levels.
    * **decode** — the losslessly-decoded plane bytes are laid into one
      arena matrix, un-predicted in the packed domain, and pushed through
      the same (involutive) block transpose straight back into value
      bytes; the reconstructed codes never pass through a bit matrix
      either.

    Byte identity with the other kernels holds because the block transpose
    reproduces ``np.packbits``'s little-endian bit placement exactly and
    the zero padding of the trailing partial block matches ``packbits``'s
    zero-filled pad bits (and XOR before or after packing is the same
    operation: 0⊕0 pads stay 0).
    """

    name = "fused"

    # ------------------------------------------------------- fused pipelines

    def encode_planes(
        self, codes: np.ndarray, prefix_bits: int
    ) -> Tuple[int, List[bytes]]:
        _check_prefix_bits(prefix_bits)
        codes = np.asarray(codes, dtype=np.int64).ravel()
        negabinary = _nb_encode(codes)
        nbits = _nb_required_bits(negabinary)
        n = codes.size
        if n == 0:
            return nbits, [b""] * nbits
        arena = self._arena
        row_bytes = (n + 7) // 8  # packed plane row length
        npad = 8 * row_bytes
        padded = arena.take("encode.codes", (npad,), np.uint64)
        padded[:n] = negabinary
        padded[n:] = 0
        packed = arena.take("encode.packed", (nbits, row_bytes))
        shifted = arena.take("encode.shifted", (npad,), np.uint64)
        block_bytes = arena.take("encode.block", (npad,), np.uint8)
        gathered = arena.take("encode.gather", (row_bytes,), np.uint64)
        for j in range((nbits + 7) // 8):
            # One uint64 per block of 8 values, holding code byte j of each.
            np.right_shift(padded, _U64_SHIFTS[8 * j], out=shifted)
            np.copyto(block_bytes, shifted, casting="unsafe")  # low bytes
            blocks = block_bytes.view("<u8")
            for k in range(8):
                position = 8 * j + k
                if position >= nbits:
                    break
                np.right_shift(blocks, _U64_SHIFTS[k], out=gathered)
                gathered &= _TRANSPOSE_MASK
                gathered *= _TRANSPOSE_MAGIC
                np.right_shift(gathered, _U64_SHIFTS[56], out=gathered)
                np.copyto(packed[nbits - 1 - position], gathered, casting="unsafe")
        predicted = arena.take("encode.predicted", (nbits, row_bytes))
        np.copyto(predicted, packed)
        for j in range(1, prefix_bits + 1):
            if nbits > j:
                np.bitwise_xor(packed[:-j], predicted[j:], out=predicted[j:])
        return nbits, [predicted[row].tobytes() for row in range(nbits)]

    def decode_planes(
        self,
        raw_planes: Sequence[bytes],
        count: int,
        nbits: int,
        prefix_bits: int,
    ) -> np.ndarray:
        _check_prefix_bits(prefix_bits)
        keep = len(raw_planes)
        if count == 0 or keep == 0:
            return np.zeros(count, dtype=np.int64)
        arena = self._arena
        row_bytes = (count + 7) // 8
        packed = arena.take("decode.packed", (keep, row_bytes))
        for row, raw in enumerate(raw_planes):
            buf = np.frombuffer(raw, dtype=np.uint8)
            if buf.size < row_bytes:
                # Short block: surface the same error the per-plane
                # unpack path raises (np.unpackbits count > available).
                self.unpack_bits(raw, count)
            packed[row] = buf[:row_bytes]
        if prefix_bits == 1:
            np.bitwise_xor.accumulate(packed, axis=0, out=packed)
        elif prefix_bits:
            for k in range(1, keep):
                for j in range(1, prefix_bits + 1):
                    if k - j >= 0:
                        packed[k] ^= packed[k - j]
        # Inverse block transpose: plane rows → per-value code bytes.
        npad = 8 * row_bytes
        value_bytes = arena.take("decode.values", (npad, 8))
        value_bytes[:] = 0
        value_blocks = value_bytes.reshape(row_bytes, 8, 8)
        blocks = arena.take("decode.blocks", (row_bytes,), np.uint64)
        gathered = arena.take("decode.gather", (row_bytes,), np.uint64)
        lifted = arena.take("decode.lift", (row_bytes,), np.uint64)
        for j in range((nbits + 7) // 8):
            blocks[:] = 0
            for k in range(8):
                position = 8 * j + k
                row = nbits - 1 - position
                if position >= nbits or row >= keep:
                    continue  # beyond the level width / not loaded → zero
                np.copyto(lifted, packed[row], casting="unsafe")
                lifted <<= _U64_SHIFTS[8 * k]
                blocks |= lifted
            for i in range(8):
                np.right_shift(blocks, _U64_SHIFTS[i], out=gathered)
                gathered &= _TRANSPOSE_MASK
                gathered *= _TRANSPOSE_MAGIC
                np.right_shift(gathered, _U64_SHIFTS[56], out=gathered)
                np.copyto(value_blocks[:, i, j], gathered, casting="unsafe")
        codes = value_bytes.reshape(-1).view("<u8")[:count]
        return self.from_negabinary(codes.astype(np.uint64))


# --------------------------------------------------------------------- registry

_REGISTRY: Dict[str, Callable[[], Kernel]] = {}
_INSTANCES: Dict[str, Kernel] = {}


def register_kernel(name: str, factory: Callable[[], Kernel]) -> None:
    """Register a kernel factory under ``name`` (replacing any previous one)."""
    if not name:
        raise ConfigurationError("kernel name must be a non-empty string")
    _REGISTRY[name] = factory
    _INSTANCES.pop(name, None)


def available_kernels() -> tuple:
    """Names of all registered kernels, sorted."""
    return tuple(sorted(_REGISTRY))


def get_kernel(kernel: Optional[Union[str, Kernel]] = None) -> Kernel:
    """Resolve a kernel by name (``None`` → :data:`DEFAULT_KERNEL`).

    Accepts an already-instantiated :class:`Kernel` unchanged so call sites
    can thread either a registry name or a custom instance.
    """
    if isinstance(kernel, Kernel):
        return kernel
    name = kernel if kernel is not None else DEFAULT_KERNEL
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown kernel {name!r}; available: {available_kernels()}"
        )
    if name not in _INSTANCES:
        _INSTANCES[name] = _REGISTRY[name]()
    return _INSTANCES[name]


def _compiled_factory() -> Kernel:
    """Lazy-import factory for the optional numba backend.

    The import (and therefore the hard numba dependency) only happens when
    ``kernel="compiled"`` is actually requested; without numba installed,
    :class:`~repro.core.kernels_compiled.CompiledKernel` raises a
    :class:`~repro.errors.ConfigurationError` naming the ``[compiled]``
    extra, and nothing is cached — installing numba later in the same
    process makes the next request succeed.
    """
    from repro.core.kernels_compiled import CompiledKernel

    return CompiledKernel()


#: Name of the self-resolving kernel: the fastest available backend.
AUTO_KERNEL = "auto"

#: Auto-selection preference, fastest first.  The last entry is the
#: unconditional fallback (always constructible).
_AUTO_PREFERENCE = ("compiled", "fused", "vectorized")


def resolve_auto_kernel() -> str:
    """The name ``kernel="auto"`` resolves to on this machine.

    Tries the preference order ``compiled`` > ``fused`` > ``vectorized``
    and returns the first backend that actually constructs — a missing
    optional dependency (numba) degrades to the next-best backend instead
    of failing, so ``auto`` never raises.
    """
    for name in _AUTO_PREFERENCE[:-1]:
        if name not in _REGISTRY:
            continue
        try:
            get_kernel(name)
        except ConfigurationError:
            continue
        return name
    return _AUTO_PREFERENCE[-1]


def _auto_factory() -> Kernel:
    return get_kernel(resolve_auto_kernel())


register_kernel("vectorized", VectorizedKernel)
register_kernel("reference", ReferenceKernel)
register_kernel("fused", FusedKernel)
register_kernel("compiled", _compiled_factory)
register_kernel(AUTO_KERNEL, _auto_factory)
