"""Compiled kernel backend: numba-JIT parallel bit-block transpose sweeps.

This module provides the ``"compiled"`` kernel — a :mod:`numba`
``@njit(parallel=True, cache=True)`` port of the fused kernel's per-level
pipelines (:meth:`~repro.core.kernels.Kernel.encode_planes` /
:meth:`~repro.core.kernels.Kernel.decode_planes`).  Where
:class:`~repro.core.kernels.FusedKernel` expresses the carry-free 8×8
bit-block transpose as a handful of whole-array NumPy passes (one shift,
one mask, one multiply per plane row), the compiled kernel collapses the
whole level into **one** nopython sweep with an outer ``prange`` over the
packed byte columns: every 8-value block is gathered, transposed,
XOR-predicted and stored without ever touching an intermediate array, and
the blocks are independent, so the sweep parallelises across cores with no
synchronisation.

The emitted bytes are identical to the fused kernel's (and therefore to
every other kernel's) by construction:

* the bit placement reproduces ``np.packbits(..., bitorder="little")`` —
  value ``8·b + k``'s plane bit lands in bit ``k`` of packed byte ``b``;
* the zero padding of a trailing partial block matches ``packbits``'s
  zero-filled pad bits;
* XOR prediction commutes with packing, and running it bottom-up in place
  (descending plane rows) reads only untouched, unpredicted rows — the
  exact values the matrix formulation uses.

``numba`` is an *optional* dependency (the ``[compiled]`` extra).  The
module itself imports without it — the sweep functions below then run as
plain Python, which is how the differential tests pin them byte-identical
to the fused kernel even on numba-less machines — but constructing
:class:`CompiledKernel` (and therefore resolving ``kernel="compiled"``
through the registry) raises :class:`~repro.errors.ConfigurationError`
with the install hint.  ``kernel="auto"`` (see
:func:`repro.core.kernels.resolve_auto_kernel`) degrades to ``"fused"``
on such machines instead of failing.

JIT compilation happens on the first call per argument-type signature
(``cache=True`` persists the compiled machine code across processes, so a
warm ``NUMBA_CACHE_DIR`` skips recompilation entirely); the stream bytes
are identical before and after compilation, and :meth:`CompiledKernel.warmup`
exposes the one-off compile cost so benchmarks can report it separately
from steady-state throughput.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.kernels import ArenaKernel, _check_prefix_bits
from repro.core.negabinary import from_negabinary as _nb_decode
from repro.core.negabinary import required_bits_from_codes as _nb_required_bits
from repro.core.negabinary import to_negabinary as _nb_encode
from repro.errors import ConfigurationError

#: Install hint surfaced by the lazy-import guard.
COMPILED_INSTALL_HINT = (
    'pip install "ipcomp-repro[compiled]" (or: pip install "numba>=0.59")'
)

try:  # pragma: no cover - the numba branch only runs with numba installed
    from numba import njit, prange

    _NUMBA_IMPORT_ERROR: Optional[ImportError] = None
except ImportError as exc:
    _NUMBA_IMPORT_ERROR = exc
    prange = range

    def njit(*args, **kwargs):
        """No-op stand-in so the sweeps below stay importable and testable."""

        if args and callable(args[0]) and not kwargs:
            return args[0]

        def wrap(fn):
            return fn

        return wrap


def numba_available() -> bool:
    """Whether the ``[compiled]`` extra's JIT dependency is importable."""
    return _NUMBA_IMPORT_ERROR is None


def numba_version() -> Optional[str]:
    """The installed numba version, or ``None`` without the extra."""
    if not numba_available():
        return None
    import numba

    return numba.__version__


def threading_layer() -> Optional[str]:
    """The active (or, before any parallel call, requested) threading layer."""
    if not numba_available():
        return None
    import numba

    try:
        return str(numba.threading_layer())
    except ValueError:  # no parallel function has executed yet
        return str(numba.config.THREADING_LAYER)


# ------------------------------------------------------------------ sweeps
#
# Both sweeps are written against the intersection of numba-nopython and
# NumPy-scalar semantics: every value crossing a bit operation is cast to
# ``np.uint64`` explicitly (mixed signed/unsigned shifts type differently
# under the two executors), no operation can overflow (shift counts stay
# below 64, accumulated plane bytes below 256), and ``prange`` iterations
# touch disjoint byte columns, so the parallel schedule is race-free.  The
# same function objects therefore produce identical bytes whether numba
# compiled them or Python is interpreting them.

_ONE = np.uint64(1)


@njit(parallel=True, cache=True)
def _encode_planes_sweep(negabinary, nbits, prefix_bits, packed):
    """negabinary codes → XOR-predicted packed plane rows, one pass.

    ``negabinary``: ``uint64[n]``; ``packed``: ``uint8[nbits, row_bytes]``
    output, row 0 the most significant plane, little-endian bit order
    within each byte (the ``np.packbits`` convention).
    """
    n = negabinary.shape[0]
    row_bytes = packed.shape[1]
    for b in prange(row_bytes):
        base = 8 * b
        block = min(8, n - base)
        for position in range(nbits):
            acc = np.uint64(0)
            for k in range(block):
                bit = (negabinary[base + k] >> np.uint64(position)) & _ONE
                acc |= bit << np.uint64(k)
            packed[nbits - 1 - position, b] = acc
    # XOR prediction on the packed rows, bottom-up in place: row ``r`` only
    # reads rows ``< r``, which a descending sweep has not yet modified, so
    # they still hold the unpredicted planes the prediction is defined on.
    for b in prange(row_bytes):
        for row in range(nbits - 1, 0, -1):
            acc = packed[row, b]
            limit = min(prefix_bits, row)
            for j in range(1, limit + 1):
                acc ^= packed[row - j, b]
            packed[row, b] = acc


@njit(parallel=True, cache=True)
def _decode_planes_sweep(packed, count, nbits, prefix_bits, codes):
    """Loaded packed plane rows → negabinary codes, one pass.

    ``packed``: ``uint8[keep, row_bytes]`` (clobbered: un-predicted in
    place); ``codes``: ``uint64[count]`` output.  Planes beyond ``keep``
    are treated as zero, matching a partial (progressive) load.
    """
    keep = packed.shape[0]
    row_bytes = packed.shape[1]
    for b in prange(row_bytes):
        # Un-prediction is the ascending recurrence: row ``r`` XORs the
        # already-decoded rows above it, column by column.
        for row in range(1, keep):
            acc = packed[row, b]
            limit = min(prefix_bits, row)
            for j in range(1, limit + 1):
                acc ^= packed[row - j, b]
            packed[row, b] = acc
        # Inverse transpose of the same column: plane row ``r`` holds bit
        # position ``nbits − 1 − r`` of every value in the block.
        base = 8 * b
        block = min(8, count - base)
        for k in range(block):
            code = np.uint64(0)
            for row in range(keep):
                bit = (np.uint64(packed[row, b]) >> np.uint64(k)) & _ONE
                code |= bit << np.uint64(nbits - 1 - row)
            codes[base + k] = code


# ------------------------------------------------------------------ kernel


class CompiledKernel(ArenaKernel):
    """numba-JIT single-sweep plane pipeline (see the module docstring).

    The primitive operations are inherited from
    :class:`~repro.core.kernels.VectorizedKernel` (they are off the hot
    path once the pipeline hooks are fused); the per-level hooks run the
    nopython sweeps above over the per-thread buffer arena of
    :class:`~repro.core.kernels.ArenaKernel`, so the registry's shared
    instance is safe under concurrent decode (``RetrievalService
    --threads``).  Negabinary conversion stays on the vectorized
    alternating-mask map — a single constant-time NumPy pass whose uint64
    wraparound semantics would otherwise have to be re-proven under both
    executors.
    """

    name = "compiled"

    def __init__(self) -> None:
        if not numba_available():
            raise ConfigurationError(
                "kernel='compiled' requires numba, which is not installed; "
                f"install the [compiled] extra: {COMPILED_INSTALL_HINT}"
            ) from _NUMBA_IMPORT_ERROR
        super().__init__()

    # ----------------------------------------------------------- pipelines

    def encode_planes(
        self, codes: np.ndarray, prefix_bits: int
    ) -> Tuple[int, List[bytes]]:
        _check_prefix_bits(prefix_bits)
        codes = np.asarray(codes, dtype=np.int64).ravel()
        negabinary = _nb_encode(codes)
        nbits = _nb_required_bits(negabinary)
        n = codes.size
        if n == 0:
            return nbits, [b""] * nbits
        row_bytes = (n + 7) // 8
        packed = self._arena.take("encode.packed", (nbits, row_bytes))
        _encode_planes_sweep(negabinary, nbits, prefix_bits, packed)
        return nbits, [packed[row].tobytes() for row in range(nbits)]

    def decode_planes(
        self,
        raw_planes: Sequence[bytes],
        count: int,
        nbits: int,
        prefix_bits: int,
    ) -> np.ndarray:
        _check_prefix_bits(prefix_bits)
        keep = len(raw_planes)
        if count == 0 or keep == 0:
            return np.zeros(count, dtype=np.int64)
        arena = self._arena
        row_bytes = (count + 7) // 8
        packed = arena.take("decode.packed", (keep, row_bytes))
        for row, raw in enumerate(raw_planes):
            buf = np.frombuffer(raw, dtype=np.uint8)
            if buf.size < row_bytes:
                # Short block: surface the same error the per-plane unpack
                # path raises (np.unpackbits count > available).
                self.unpack_bits(raw, count)
            packed[row] = buf[:row_bytes]
        negabinary = arena.take("decode.codes", (count,), np.uint64)
        _decode_planes_sweep(packed, count, nbits, prefix_bits, negabinary)
        return _nb_decode(negabinary)

    # -------------------------------------------------------------- warmup

    def warmup(self) -> float:
        """Force JIT compilation of both sweeps; returns the seconds spent.

        The first call per process compiles (unless ``cache=True`` found a
        warm on-disk cache, e.g. a CI-persisted ``NUMBA_CACHE_DIR``), every
        later call reuses the machine code.  Benchmarks call this once so
        steady-state throughput excludes the one-off compile cost — which
        this method reports so it can be recorded alongside.
        """
        sample = np.arange(-32, 33, dtype=np.int64)
        start = time.perf_counter()
        nbits, blocks = self.encode_planes(sample, 2)
        self.decode_planes(blocks, sample.size, nbits, 2)
        return time.perf_counter() - start
