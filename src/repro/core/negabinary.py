"""Negabinary (base −2) representation of signed quantization integers.

Progressive coding splits integers into bitplanes and may drop the least
significant planes.  §4.4.2 of the paper selects negabinary over two's
complement and sign-magnitude because (a) values fluctuating around zero keep
their high-order negabinary bits at 0, producing highly compressible
high-order bitplanes, and (b) the reconstruction uncertainty after dropping
the ``d`` lowest planes is only about two thirds of sign-magnitude's ``2^d − 1``.

The conversion uses the classic alternating-mask trick (also used by ZFP):

``nb = (v + MASK) ^ MASK``  and  ``v = (nb ^ MASK) − MASK``

where ``MASK = 0xAAAA...AAAA`` has ones in every odd bit position.  Both maps
are bijections between ``int64`` and ``uint64`` and are fully vectorised.
"""

from __future__ import annotations

import numpy as np

#: Alternating bit mask ``0b...10101010`` for 64-bit words.
NEGABINARY_MASK = np.uint64(0xAAAAAAAAAAAAAAAA)


def to_negabinary(values: np.ndarray) -> np.ndarray:
    """Map signed integers to their negabinary code, returned as ``uint64``.

    The code of ``v`` is the unsigned integer whose base-2 digits equal the
    base-(−2) digits of ``v``; e.g. −1 → 0b11, +1 → 0b01, −2 → 0b10.
    """
    v = np.asarray(values, dtype=np.int64).astype(np.uint64)
    with np.errstate(over="ignore"):
        return (v + NEGABINARY_MASK) ^ NEGABINARY_MASK


def from_negabinary(codes: np.ndarray) -> np.ndarray:
    """Invert :func:`to_negabinary`, returning ``int64`` values."""
    u = np.asarray(codes, dtype=np.uint64)
    with np.errstate(over="ignore"):
        return ((u ^ NEGABINARY_MASK) - NEGABINARY_MASK).astype(np.int64)


def required_bits_from_codes(codes: np.ndarray) -> int:
    """Minimal number of bitplanes covering already-converted negabinary codes.

    Returns at least 1 so that an all-zero level still produces a (trivially
    compressible) plane, which keeps the stream layout uniform.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    if codes.size == 0:
        return 1
    return max(1, int(codes.max()).bit_length())


def required_bits(values: np.ndarray) -> int:
    """Minimal number of negabinary bitplanes needed to represent ``values``."""
    return required_bits_from_codes(to_negabinary(values))


def truncate_low_planes(values: np.ndarray, dropped: int) -> np.ndarray:
    """Zero the ``dropped`` least significant negabinary planes of ``values``.

    This models exactly what a partial retrieval reconstructs for a level when
    only the high planes were loaded, and is used to precompute the per-level
    information-loss table ``δy_l(b)`` during compression.
    """
    if dropped <= 0:
        return np.asarray(values, dtype=np.int64).copy()
    codes = to_negabinary(values)
    if dropped >= 64:
        return np.zeros_like(np.asarray(values, dtype=np.int64))
    mask = ~np.uint64((np.uint64(1) << np.uint64(dropped)) - np.uint64(1))
    return from_negabinary(codes & mask)


def truncation_uncertainty(dropped: int, scheme: str = "negabinary") -> float:
    """Worst-case integer error from dropping ``dropped`` low planes (§4.4.2).

    For negabinary the bound is ``2/3·2^d − 1/3`` (d odd) or ``2/3·2^d − 2/3``
    (d even); for sign-magnitude it is ``2^d − 1``.  Exposed mainly for the
    analytical comparison in the tests and the theory module — the optimizer
    uses exact per-level tables instead of this worst case.
    """
    if dropped <= 0:
        return 0.0
    if scheme == "negabinary":
        if dropped % 2 == 1:
            return (2.0 / 3.0) * (1 << dropped) - 1.0 / 3.0
        return (2.0 / 3.0) * (1 << dropped) - 2.0 / 3.0
    if scheme == "sign-magnitude":
        return float((1 << dropped) - 1)
    raise ValueError(f"unknown scheme {scheme!r}")
