"""Optimized data loading (§5): pick the cheapest set of bitplanes to load.

Both retrieval modes of the paper are implemented:

* **Error-bound mode (§5.2)** — given a retrieval bound ``E ≥ eb``, load the
  fewest bytes such that Theorem 1 still guarantees
  ``Σ_l p^(l−1)·δy_l(b_l) + eb ≤ E``.
* **Fixed-rate / size mode (§5.3)** — given a byte (or bitrate) budget, load
  the set of planes that minimises the Theorem-1 error bound while fitting in
  the budget.

Both are knapsack problems over the per-level choice "keep the ``k`` most
significant planes"; they are solved with the discretized dynamic program the
paper describes.  Error (resp. size) contributions are rounded *up* to the
next bin so discretization can never produce a plan that violates the
constraint; the price is a marginally conservative plan, which matches the
paper's "negligible overhead, strictly bounded" framing.

The DP state is a vector over budget bins and each level's transition is a
vectorised minimum over shifted copies, so the whole optimization costs a few
hundred microseconds even for 60+ planes per level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.stream import StreamHeader, header_plane_sizes
from repro.core.theory import propagation_factor
from repro.errors import ConfigurationError, RetrievalError

#: Number of discretization bins of the knapsack DP.
DEFAULT_BINS = 1024


@dataclass(frozen=True)
class LoadingPlan:
    """Result of the optimizer: how many MSB planes to load per level.

    ``predicted_error`` is the Theorem-1 bound of the plan (``≥`` the actual
    error); ``payload_bytes`` counts only plane blocks, while ``total_bytes``
    adds the mandatory header + anchor overhead.
    """

    keep: Dict[int, int]
    predicted_error: float
    payload_bytes: int
    overhead_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.payload_bytes + self.overhead_bytes

    def bitrate(self, n_elements: int) -> float:
        """Average bits loaded per scalar value."""
        if n_elements <= 0:
            raise ConfigurationError("n_elements must be positive")
        return 8.0 * self.total_bytes / n_elements


class OptimizedLoader:
    """Plan minimal-volume retrievals from a stream header alone."""

    def __init__(self, header: StreamHeader, overhead_bytes: int = 0, bins: int = DEFAULT_BINS):
        if bins < 8:
            raise ConfigurationError("bins must be at least 8")
        self.header = header
        self.overhead_bytes = int(overhead_bytes)
        self.bins = int(bins)
        self._levels = sorted(header.levels, key=lambda enc: enc.level)
        self._plane_sizes = {
            enc.level: np.asarray(header_plane_sizes(enc), dtype=np.int64)
            for enc in self._levels
        }
        self._choice_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        for enc in self._levels:
            sizes = self._plane_sizes[enc.level]
            nbits = enc.nbits
            # cost[k] = bytes loaded when keeping the k most significant planes.
            cost = np.concatenate(([0], np.cumsum(sizes)))
            # error[k] = propagated Theorem-1 error when keeping k planes.
            # Stream groups are per interpolation sweep, so the information
            # loss of group ``l`` passes through exactly ``l − 1`` later
            # prediction sweeps and the paper's p^(l−1) factor is exact.
            delta = np.asarray(enc.delta_table, dtype=np.float64)
            err = propagation_factor(header.method, enc.level) * delta[::-1]
            self._choice_cache[enc.level] = (cost.astype(np.float64), err)

    # ----------------------------------------------------------------- helpers

    def _full_plan(self) -> LoadingPlan:
        keep = {enc.level: enc.nbits for enc in self._levels}
        payload = int(sum(self._plane_sizes[level].sum() for level in keep))
        return LoadingPlan(
            keep=keep,
            predicted_error=self.header.error_bound,
            payload_bytes=payload,
            overhead_bytes=self.overhead_bytes,
        )

    def _empty_plan(self) -> LoadingPlan:
        keep = {enc.level: 0 for enc in self._levels}
        error = self.plan_error(keep)
        return LoadingPlan(
            keep=keep,
            predicted_error=error,
            payload_bytes=0,
            overhead_bytes=self.overhead_bytes,
        )

    def plan_error(self, keep: Dict[int, int]) -> float:
        """Theorem-1 error bound of an arbitrary keep-assignment."""
        total = self.header.error_bound
        for enc in self._levels:
            k = keep.get(enc.level, 0)
            _, err = self._choice_cache[enc.level]
            total += float(err[k])
        return total

    def plan_payload(self, keep: Dict[int, int]) -> int:
        """Plane bytes loaded by an arbitrary keep-assignment."""
        payload = 0
        for enc in self._levels:
            k = keep.get(enc.level, 0)
            cost, _ = self._choice_cache[enc.level]
            payload += int(cost[k])
        return payload

    def _make_plan(self, keep: Dict[int, int]) -> LoadingPlan:
        return LoadingPlan(
            keep=dict(keep),
            predicted_error=self.plan_error(keep),
            payload_bytes=self.plan_payload(keep),
            overhead_bytes=self.overhead_bytes,
        )

    # ------------------------------------------------------------- error mode

    def plan_for_error_bound(self, target_error: float) -> LoadingPlan:
        """§5.2: minimise loaded bytes subject to the Theorem-1 bound ≤ target.

        A target below the compression bound ``eb`` is unreachable; the full
        plan (whose bound is exactly ``eb``) is returned in that case, which is
        the paper's behaviour of clamping retrieval at the compression bound.
        """
        if target_error <= 0 or not np.isfinite(target_error):
            raise ConfigurationError("target_error must be a positive finite number")
        budget = target_error - self.header.error_bound
        if budget <= 0:
            return self._full_plan()

        bins = self.bins
        infinity = np.float64(np.inf)
        # dp[b] = minimal payload bytes with total error ≤ (b / bins) * budget.
        dp = np.zeros(bins + 1, dtype=np.float64)
        choices: List[np.ndarray] = []

        for enc in self._levels:
            cost, err = self._choice_cache[enc.level]
            err_bins = np.ceil(err / budget * bins).astype(np.int64)
            new_dp = np.full(bins + 1, infinity)
            new_choice = np.zeros(bins + 1, dtype=np.int64)
            for k in range(enc.nbits, -1, -1):
                shift = int(err_bins[k])
                if shift > bins:
                    continue
                candidate = np.full(bins + 1, infinity)
                if shift == 0:
                    candidate = dp + cost[k]
                else:
                    candidate[shift:] = dp[:-shift] + cost[k]
                better = candidate < new_dp
                new_dp = np.where(better, candidate, new_dp)
                new_choice = np.where(better, k, new_choice)
            dp = new_dp
            choices.append(new_choice)

        if not np.isfinite(dp[bins]):
            return self._full_plan()

        # Backtrack: walk levels in reverse, re-deriving the budget consumed.
        keep: Dict[int, int] = {}
        remaining = bins
        for enc, choice in zip(reversed(self._levels), reversed(choices)):
            k = int(choice[remaining])
            keep[enc.level] = k
            _, err = self._choice_cache[enc.level]
            err_bins = int(np.ceil(err[k] / budget * bins))
            remaining -= err_bins
            remaining = max(remaining, 0)
        return self._make_plan(keep)

    # ----------------------------------------------------------- bitrate mode

    def plan_for_size(self, byte_budget: int) -> LoadingPlan:
        """§5.3: minimise the error bound subject to a total byte budget."""
        if byte_budget <= 0:
            raise ConfigurationError("byte_budget must be positive")
        budget = byte_budget - self.overhead_bytes
        if budget <= 0:
            raise RetrievalError(
                f"budget of {byte_budget} B cannot cover the mandatory "
                f"{self.overhead_bytes} B of header + anchor data"
            )
        full = self._full_plan()
        if full.payload_bytes <= budget:
            return full

        bins = self.bins
        infinity = np.float64(np.inf)
        # dp[b] = minimal error with payload ≤ (b / bins) * budget.
        dp = np.zeros(bins + 1, dtype=np.float64)
        choices: List[np.ndarray] = []

        for enc in self._levels:
            cost, err = self._choice_cache[enc.level]
            cost_bins = np.ceil(cost / budget * bins).astype(np.int64)
            new_dp = np.full(bins + 1, infinity)
            new_choice = np.zeros(bins + 1, dtype=np.int64)
            for k in range(enc.nbits, -1, -1):
                shift = int(cost_bins[k])
                if shift > bins:
                    continue
                candidate = np.full(bins + 1, infinity)
                if shift == 0:
                    candidate = dp + err[k]
                else:
                    candidate[shift:] = dp[:-shift] + err[k]
                better = candidate < new_dp
                new_dp = np.where(better, candidate, new_dp)
                new_choice = np.where(better, k, new_choice)
            dp = new_dp
            choices.append(new_choice)

        keep: Dict[int, int] = {}
        remaining = bins
        for enc, choice in zip(reversed(self._levels), reversed(choices)):
            k = int(choice[remaining])
            keep[enc.level] = k
            cost, _ = self._choice_cache[enc.level]
            cost_bins = int(np.ceil(cost[k] / budget * bins))
            remaining -= cost_bins
            remaining = max(remaining, 0)
        return self._make_plan(keep)

    def plan_for_bitrate(self, bitrate: float) -> LoadingPlan:
        """Convenience wrapper: budget expressed in bits per scalar value."""
        if bitrate <= 0:
            raise ConfigurationError("bitrate must be positive")
        byte_budget = int(np.floor(bitrate * self.header.n_elements / 8.0))
        return self.plan_for_size(max(byte_budget, 1))
