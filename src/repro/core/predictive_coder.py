"""Per-level predictive bitplane encoder (§4.3 + §4.4).

This module turns the quantization integers of one interpolation level into a
sequence of *independently decodable blocks*, one per bitplane:

1. signed integers → negabinary codes (:mod:`repro.core.negabinary`);
2. codes → bitplanes, most significant first (:mod:`repro.core.bitplane`);
3. planes → XOR-predicted planes using the two previously loaded planes;
4. every predicted plane → packed bits → a lossless coder chosen by the
   profile's **backend negotiation**: under the default ``"smallest"``
   (a.k.a. *full*) policy each candidate coder trial-encodes the whole
   packed plane and the smallest output wins (ties break toward the earlier
   candidate, so the choice — and therefore the stream — is deterministic).
   The ``"sampled"`` policy trial-encodes only a deterministic prefix of
   the packed plane — autotuned per plane as ≈1/8 of the plane's bytes,
   clamped to ``[MIN_NEGOTIATION_PROBE, profile.negotiation_sample]`` — to
   pick the winner and then encodes the full plane once with it —
   O(candidates × probe) instead of O(candidates × plane) work.  Either way the winning
   coder's name is recorded per plane in
   :attr:`LevelEncoding.plane_coders` and travels in the stream-v2 header,
   so decoding dispatches per ``(level, plane)`` without any out-of-band
   configuration: sampled streams are just as self-describing and
   deterministic as fully negotiated ones (they may merely pick a
   different — still valid — coder for a plane whose prefix is not
   representative).

Steps 1–4 run on a pluggable bit-level kernel (:mod:`repro.core.kernels`)
through its :meth:`~repro.core.kernels.Kernel.encode_planes` /
:meth:`~repro.core.kernels.Kernel.decode_planes` pipeline hooks: the default
``"vectorized"`` kernel performs the stages as separate NumPy bulk passes,
the ``"fused"`` kernel as one sweep over a reusable buffer arena, and the
``"reference"`` kernel as auditable Python loops; all yield byte-identical
blocks (coder negotiation only sees the packed bytes, which are identical).

Alongside the blocks the encoder records the *exact* information-loss table
``δy_l(b)`` — the largest value-domain error introduced at this level when the
``b`` least significant planes are not loaded — which is what the optimized
data loader of §5 consumes.  Using exact per-level tables (instead of the
worst-case negabinary uncertainty formula) tightens the retrieval plans
noticeably on smooth fields where low planes are mostly zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.coders.backend import Backend, get_backend
from repro.core.kernels import DEFAULT_KERNEL, get_kernel
from repro.core.negabinary import truncate_low_planes
from repro.core.profile import DEFAULT_NEGOTIATION_SAMPLE, CodecProfile
from repro.core.quantizer import LinearQuantizer
from repro.errors import ConfigurationError, StreamFormatError


@dataclass
class LevelEncoding:
    """Encoded form of one interpolation level.

    Attributes
    ----------
    level:
        Level number (finest = 1).
    count:
        Number of quantization integers in the level.
    nbits:
        Number of bitplanes (width of the widest negabinary code).
    plane_blocks:
        Losslessly compressed blocks, most significant plane first.
    plane_coders:
        Name of the lossless coder each plane block was encoded with,
        parallel to ``plane_blocks`` (and to the header's plane sizes).
    delta_table:
        ``delta_table[b]`` is the exact maximum value-domain error introduced
        at this level when the ``b`` lowest planes are dropped
        (``b = 0 … nbits``); monotonically non-decreasing.
    """

    level: int
    count: int
    nbits: int
    plane_blocks: List[bytes] = field(default_factory=list)
    plane_coders: List[str] = field(default_factory=list)
    delta_table: np.ndarray = field(default_factory=lambda: np.zeros(1))

    @property
    def plane_sizes(self) -> List[int]:
        """Compressed size in bytes of every plane block."""
        return [len(block) for block in self.plane_blocks]

    @property
    def total_bytes(self) -> int:
        return sum(self.plane_sizes)

    def coder_for_plane(self, plane: int) -> str:
        try:
            return self.plane_coders[plane]
        except IndexError:
            raise StreamFormatError(
                f"level {self.level} has no coder recorded for plane {plane}"
            ) from None


#: Floor of the autotuned per-plane probe under ``sampled`` negotiation:
#: below this, prefix statistics are too thin to separate the candidates
#: reliably (and the probe overhead is negligible anyway).
MIN_NEGOTIATION_PROBE = 4096

#: Fraction of the plane the autotuned probe covers: probe ≈ plane/8,
#: clamped to [:data:`MIN_NEGOTIATION_PROBE`, ``negotiation_sample``].
NEGOTIATION_PROBE_FRACTION = 8


def effective_negotiation_sample(nbytes: int, configured: int) -> int:
    """The autotuned per-plane probe size under ``sampled`` negotiation.

    ``configured`` (the profile's ``negotiation_sample``) is an *upper
    bound*; the probe actually used for a plane of ``nbytes`` is::

        min(configured, max(MIN_NEGOTIATION_PROBE, nbytes // 8))

    Large planes probe a fixed fraction (1/8) of their bytes instead of the
    conservative fixed default, so mid-size planes (say 32 KiB) pay a 4 KiB
    probe rather than a full trial, while the probe never exceeds the
    configured cap.  Planes that fit inside the resulting probe keep the
    tiny-plane behaviour: they are fully negotiated (the prefix *is* the
    payload, so probing would cost more than trialling).
    """
    return max(
        1,
        min(int(configured), max(MIN_NEGOTIATION_PROBE, nbytes // NEGOTIATION_PROBE_FRACTION)),
    )


def negotiate_encode(
    data: bytes,
    candidates: Sequence[str],
    coders: Optional[Dict[str, Backend]] = None,
    *,
    policy: str = "smallest",
    sample: int = DEFAULT_NEGOTIATION_SAMPLE,
) -> Tuple[str, bytes]:
    """Encode ``data`` with the best candidate coder; return ``(name, blob)``.

    Under ``policy="smallest"`` (full negotiation) every candidate
    trial-encodes the whole payload and the smallest output wins; ties break
    toward the earlier candidate.  With a single candidate this degenerates
    to a plain encode (the ``"fixed"`` negotiation policy).

    Under ``policy="sampled"`` each candidate trial-encodes two
    deterministic payload prefixes (``probe // 2`` and ``probe`` bytes,
    where the probe is :func:`effective_negotiation_sample` of the payload
    size capped by ``sample``) and its full-payload size is *extrapolated*
    from the affine fit ``size(n) ≈ a + b·n`` — the two-point fit cancels
    per-stream fixed costs (e.g. a Huffman symbol table) that would
    otherwise bias short probes against coders with large headers but low
    per-byte rates.  The predicted winner then encodes the full payload
    exactly once.  Prefixes are deterministic and ties break toward the
    earlier candidate, so the chosen coder — and therefore the stream — is
    deterministic too.  Payloads no longer than the probe fall back to full
    negotiation (the prefix *is* the payload, so probing would cost more
    than trialling).
    """
    if not candidates:
        raise StreamFormatError("no candidate coders to negotiate between")

    def _resolve(name: str) -> Backend:
        return coders[name] if coders is not None else get_backend(name)

    sample = effective_negotiation_sample(len(data), sample)
    if policy == "sampled" and len(candidates) > 1 and len(data) > sample:
        half = max(1, sample // 2)
        best_name: Optional[str] = None
        best_predicted = 0.0
        for name in candidates:
            coder = _resolve(name)
            size_half = len(coder.encode(data[:half]))
            size_sample = len(coder.encode(data[:sample]))
            slope = (size_sample - size_half) / max(1, sample - half)
            predicted = size_sample + slope * (len(data) - sample)
            if best_name is None or predicted < best_predicted:
                best_name, best_predicted = name, predicted
        assert best_name is not None
        return best_name, _resolve(best_name).encode(data)

    best_name = None
    best_blob: Optional[bytes] = None
    for name in candidates:
        blob = _resolve(name).encode(data)
        if best_blob is None or len(blob) < len(best_blob):
            best_name, best_blob = name, blob
    assert best_name is not None and best_blob is not None
    return best_name, best_blob


class PredictiveCoder:
    """Stateless encoder/decoder shared by compression and retrieval.

    The encode path is configured by a :class:`~repro.core.profile.CodecProfile`
    (candidate coders + negotiation policy + prefix bits + kernel); the decode
    path needs no profile — per-plane coder names arrive with the stream
    metadata — so retrieval constructs the coder via :meth:`for_header`.
    """

    def __init__(self, quantizer: LinearQuantizer, profile: Optional[CodecProfile] = None) -> None:
        if profile is None:
            profile = CodecProfile()
        self.quantizer = quantizer
        self.profile = profile
        self.prefix_bits = profile.prefix_bits
        self.anchor_coder = profile.anchor_coder
        self.candidates = profile.candidates
        self.kernel = get_kernel(profile.kernel)
        # One shared instance cache for every stage; the encode candidates
        # (and anchor coder) are resolved once, not per plane.
        self._coders: Dict[str, Backend] = {
            name: get_backend(name) for name in {self.anchor_coder, *self.candidates}
        }

    @classmethod
    def for_header(cls, header, quantizer: LinearQuantizer, kernel: Optional[str] = None) -> "PredictiveCoder":
        """A decode-side coder for a parsed stream header.

        ``kernel`` is the runtime kernel choice; everything that shapes the
        bytes (prefix bits, anchor coder, per-plane coders) comes from the
        header itself — streams are self-describing.  The synthesized profile
        pins the header's anchor coder as the only (fixed) candidate, so the
        coder is fully initialised: re-encoding through it stays coherent
        and ``coder.profile`` is always a real profile.
        """
        get_kernel(kernel)  # a bad kernel is the *caller's* mistake: config error
        try:
            profile = CodecProfile(
                error_bound=header.error_bound,
                relative=False,
                method=header.method,
                prefix_bits=header.prefix_bits,
                kernel=kernel if kernel is not None else DEFAULT_KERNEL,
                anchor_coder=header.anchor_coder,
                plane_coders=(header.anchor_coder,),
                negotiation="fixed",
            )
        except ConfigurationError as exc:
            # Out-of-range header fields are stream corruption, not a caller
            # configuration mistake — keep the errors.py taxonomy honest.
            raise StreamFormatError(f"stream header invalid: {exc}") from None
        return cls(quantizer, profile)

    def _coder(self, name: str) -> Backend:
        try:
            return self._coders[name]
        except KeyError:
            pass
        # The encode-side coders are prefetched from the validated profile in
        # __init__, so a lazy miss can only come from a *stream's* per-plane
        # coder table — an unknown name there is stream corruption (or a
        # foreign coder), not a caller configuration mistake.
        try:
            backend = get_backend(name)
        except ConfigurationError:
            raise StreamFormatError(
                f"stream names unknown lossless coder {name!r}"
            ) from None
        self._coders[name] = backend
        return backend

    # ------------------------------------------------------------------ encode

    def encode_level(self, level: int, codes: np.ndarray) -> LevelEncoding:
        """Encode the quantization integers of one level into plane blocks."""
        codes = np.asarray(codes, dtype=np.int64).ravel()
        # The whole negabinary → bitplane → XOR-predict → pack chain is one
        # kernel pipeline call, so the fused kernel can run it as a single
        # sweep over its buffer arena.
        nbits, packed_planes = self.kernel.encode_planes(codes, self.prefix_bits)
        blocks: List[bytes] = []
        chosen: List[str] = []
        for packed in packed_planes:
            name, block = negotiate_encode(
                packed,
                self.candidates,
                self._coders,
                policy=self.profile.negotiation,
                sample=self.profile.negotiation_sample,
            )
            blocks.append(block)
            chosen.append(name)

        delta = np.zeros(nbits + 1, dtype=np.float64)
        for dropped in range(1, nbits + 1):
            truncated = truncate_low_planes(codes, dropped)
            if codes.size:
                delta[dropped] = float(
                    np.abs(codes - truncated).max() * self.quantizer.bin_width
                )
        return LevelEncoding(
            level=level,
            count=codes.size,
            nbits=nbits,
            plane_blocks=blocks,
            plane_coders=chosen,
            delta_table=delta,
        )

    def encode_anchor(self, codes: np.ndarray) -> bytes:
        """Encode the (small, always fully loaded) anchor integers."""
        codes = np.asarray(codes, dtype=np.int64).ravel()
        return self._coder(self.anchor_coder).encode(codes.tobytes())

    # ------------------------------------------------------------------ decode

    def decode_anchor(self, block: bytes, count: int) -> np.ndarray:
        """Recover dequantized anchor values from their block."""
        raw = self._coder(self.anchor_coder).decode(block)
        codes = np.frombuffer(raw, dtype=np.int64)
        if codes.size != count:
            raise StreamFormatError(
                f"anchor block holds {codes.size} integers, expected {count}"
            )
        return self.quantizer.dequantize(codes)

    def decode_plane_bits(self, encoding_meta: "LevelEncoding", plane: int, block: bytes) -> np.ndarray:
        """Decode one plane block to its (still XOR-predicted) bit row."""
        backend = self._coder(encoding_meta.coder_for_plane(plane))
        return self.kernel.unpack_bits(backend.decode(block), encoding_meta.count)

    def decode_level(
        self,
        encoding_meta: "LevelEncoding",
        loaded_blocks: Sequence[bytes],
    ) -> np.ndarray:
        """Decode the first ``len(loaded_blocks)`` planes of a level.

        Returns the dequantized prediction differences with all unloaded
        planes treated as zero — exactly what Algorithm 1 feeds into the
        interpolation reconstruction.
        """
        count = encoding_meta.count
        keep = len(loaded_blocks)
        if keep > encoding_meta.nbits:
            raise StreamFormatError("more plane blocks supplied than the level width")
        if count == 0 or keep == 0:
            return np.zeros(count, dtype=np.float64)
        return self.quantizer.dequantize(
            self.decode_level_codes(encoding_meta, loaded_blocks)
        )

    def decode_level_codes(
        self,
        encoding_meta: "LevelEncoding",
        loaded_blocks: Sequence[bytes],
    ) -> np.ndarray:
        """Like :meth:`decode_level` but returning integer codes.

        The progressive retriever keeps the integer codes of the current
        fidelity so that incremental refinement (Algorithm 2) can compute the
        exact integer delta contributed by newly loaded planes.
        """
        count = encoding_meta.count
        nbits = encoding_meta.nbits
        keep = len(loaded_blocks)
        if count == 0 or keep == 0:
            return np.zeros(count, dtype=np.int64)
        # Lossless decoding dispatches per plane (the header names a coder
        # for each); the bit-level inverse chain is one kernel pipeline call.
        raw_planes = [
            self._coder(encoding_meta.coder_for_plane(row)).decode(block)
            for row, block in enumerate(loaded_blocks)
        ]
        return self.kernel.decode_planes(raw_planes, count, nbits, self.prefix_bits)
