"""Per-level predictive bitplane encoder (§4.3 + §4.4).

This module turns the quantization integers of one interpolation level into a
sequence of *independently decodable blocks*, one per bitplane:

1. signed integers → negabinary codes (:mod:`repro.core.negabinary`);
2. codes → bitplanes, most significant first (:mod:`repro.core.bitplane`);
3. planes → XOR-predicted planes using the two previously loaded planes;
4. every predicted plane → packed bits → lossless backend (zstd stand-in).

Steps 1–4 run on a pluggable bit-level kernel (:mod:`repro.core.kernels`):
the default ``"vectorized"`` kernel performs them as NumPy bulk passes, the
``"reference"`` kernel as auditable Python loops; both yield byte-identical
blocks.

Alongside the blocks the encoder records the *exact* information-loss table
``δy_l(b)`` — the largest value-domain error introduced at this level when the
``b`` least significant planes are not loaded — which is what the optimized
data loader of §5 consumes.  Using exact per-level tables (instead of the
worst-case negabinary uncertainty formula) tightens the retrieval plans
noticeably on smooth fields where low planes are mostly zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.coders.backend import Backend
from repro.core.bitplane import DEFAULT_PREFIX_BITS
from repro.core.kernels import Kernel, get_kernel
from repro.core.negabinary import required_bits_from_codes, truncate_low_planes
from repro.core.quantizer import LinearQuantizer
from repro.errors import StreamFormatError


@dataclass
class LevelEncoding:
    """Encoded form of one interpolation level.

    Attributes
    ----------
    level:
        Level number (finest = 1).
    count:
        Number of quantization integers in the level.
    nbits:
        Number of bitplanes (width of the widest negabinary code).
    plane_blocks:
        Losslessly compressed blocks, most significant plane first.
    delta_table:
        ``delta_table[b]`` is the exact maximum value-domain error introduced
        at this level when the ``b`` lowest planes are dropped
        (``b = 0 … nbits``); monotonically non-decreasing.
    """

    level: int
    count: int
    nbits: int
    plane_blocks: List[bytes] = field(default_factory=list)
    delta_table: np.ndarray = field(default_factory=lambda: np.zeros(1))

    @property
    def plane_sizes(self) -> List[int]:
        """Compressed size in bytes of every plane block."""
        return [len(block) for block in self.plane_blocks]

    @property
    def total_bytes(self) -> int:
        return sum(self.plane_sizes)


class PredictiveCoder:
    """Stateless encoder/decoder shared by compression and retrieval."""

    def __init__(
        self,
        quantizer: LinearQuantizer,
        backend: Backend,
        prefix_bits: int = DEFAULT_PREFIX_BITS,
        kernel: "str | Kernel | None" = None,
    ) -> None:
        self.quantizer = quantizer
        self.backend = backend
        self.prefix_bits = prefix_bits
        self.kernel = get_kernel(kernel)

    # ------------------------------------------------------------------ encode

    def encode_level(self, level: int, codes: np.ndarray) -> LevelEncoding:
        """Encode the quantization integers of one level into plane blocks."""
        codes = np.asarray(codes, dtype=np.int64).ravel()
        negabinary = self.kernel.to_negabinary(codes)
        nbits = required_bits_from_codes(negabinary)
        planes = self.kernel.extract_bitplanes(negabinary, nbits)
        predicted = self.kernel.predictive_encode(planes, self.prefix_bits)
        blocks = [
            self.backend.encode(self.kernel.pack_bits(plane)) for plane in predicted
        ]

        delta = np.zeros(nbits + 1, dtype=np.float64)
        for dropped in range(1, nbits + 1):
            truncated = truncate_low_planes(codes, dropped)
            if codes.size:
                delta[dropped] = float(
                    np.abs(codes - truncated).max() * self.quantizer.bin_width
                )
        return LevelEncoding(
            level=level,
            count=codes.size,
            nbits=nbits,
            plane_blocks=blocks,
            delta_table=delta,
        )

    def encode_anchor(self, codes: np.ndarray) -> bytes:
        """Encode the (small, always fully loaded) anchor integers."""
        codes = np.asarray(codes, dtype=np.int64).ravel()
        return self.backend.encode(codes.tobytes())

    # ------------------------------------------------------------------ decode

    def decode_anchor(self, block: bytes, count: int) -> np.ndarray:
        """Recover dequantized anchor values from their block."""
        raw = self.backend.decode(block)
        codes = np.frombuffer(raw, dtype=np.int64)
        if codes.size != count:
            raise StreamFormatError(
                f"anchor block holds {codes.size} integers, expected {count}"
            )
        return self.quantizer.dequantize(codes)

    def decode_level(
        self,
        encoding_meta: "LevelEncoding",
        loaded_blocks: Sequence[bytes],
    ) -> np.ndarray:
        """Decode the first ``len(loaded_blocks)`` planes of a level.

        Returns the dequantized prediction differences with all unloaded
        planes treated as zero — exactly what Algorithm 1 feeds into the
        interpolation reconstruction.
        """
        count = encoding_meta.count
        nbits = encoding_meta.nbits
        keep = len(loaded_blocks)
        if keep > nbits:
            raise StreamFormatError("more plane blocks supplied than the level width")
        if count == 0 or keep == 0:
            return np.zeros(count, dtype=np.float64)
        encoded = np.empty((keep, count), dtype=np.uint8)
        for row, block in enumerate(loaded_blocks):
            encoded[row] = self.kernel.unpack_bits(self.backend.decode(block), count)
        planes = self.kernel.predictive_decode(encoded, self.prefix_bits)
        codes = self.kernel.from_negabinary(self.kernel.assemble_bitplanes(planes, nbits))
        return self.quantizer.dequantize(codes)

    def decode_level_codes(
        self,
        encoding_meta: "LevelEncoding",
        loaded_blocks: Sequence[bytes],
    ) -> np.ndarray:
        """Like :meth:`decode_level` but returning integer codes.

        The progressive retriever keeps the integer codes of the current
        fidelity so that incremental refinement (Algorithm 2) can compute the
        exact integer delta contributed by newly loaded planes.
        """
        count = encoding_meta.count
        nbits = encoding_meta.nbits
        keep = len(loaded_blocks)
        if count == 0 or keep == 0:
            return np.zeros(count, dtype=np.int64)
        encoded = np.empty((keep, count), dtype=np.uint8)
        for row, block in enumerate(loaded_blocks):
            encoded[row] = self.kernel.unpack_bits(self.backend.decode(block), count)
        planes = self.kernel.predictive_decode(encoded, self.prefix_bits)
        return self.kernel.from_negabinary(self.kernel.assemble_bitplanes(planes, nbits))
