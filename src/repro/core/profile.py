"""CodecProfile: the single configuration object of the whole system.

Every layer — :class:`repro.IPComp`, the progressive retriever, the
block-parallel compressor, the file-backed :class:`repro.io.ChunkedDataset`,
the baselines adapter, and the CLI — is configured by one frozen dataclass
instead of ad-hoc ``kernel=`` / ``error_bound=`` keyword plumbing.  A profile
bundles:

* the **lossy stage** — error bound (+ relative flag), interpolation method,
  prefix bits of the predictive bitplane coder;
* the **runtime kernel** — which bit-level implementation moves the bits
  (never changes the stream bytes);
* the **per-stage lossless coders** — the anchor-block coder and the
  candidate set for the plane blocks;
* the **backend-negotiation policy** — how a plane block's coder is chosen
  from the candidates at compression time.

With ``negotiation="smallest"`` (the default, also accepted as ``"full"``)
every packed plane block is trial-encoded against each candidate and the
smallest output wins (ties go to the earlier candidate, so the choice is
deterministic); the winning coder name is recorded per ``(level, plane)`` in
the stream-v2 header, making streams self-describing.
``negotiation="sampled"`` probes two deterministic plane prefixes (half and
all of ``negotiation_sample`` bytes) per candidate, extrapolates each
candidate's full-plane size from the affine fit, and encodes the plane once
with the predicted winner — O(candidates × sample) negotiation cost instead
of O(candidates × plane), which is what makes wide candidate sets
affordable on large fields; the choice is still deterministic and still
recorded in the header, so sampled streams decode exactly like full ones.
``negotiation="fixed"`` skips the trials and uses the first candidate
everywhere — the v1-era single-backend behaviour.

Profiles are immutable, hashable, picklable (they cross process boundaries in
:mod:`repro.parallel`), and JSON round-trippable (they are embedded in
dataset manifests and loaded from ``--profile`` files by the CLI).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from repro.core.bitplane import DEFAULT_PREFIX_BITS
from repro.core.kernels import DEFAULT_KERNEL, get_kernel
from repro.errors import ConfigurationError

#: Negotiation policies understood by :class:`CodecProfile`.
NEGOTIATION_POLICIES = ("smallest", "sampled", "fixed")

#: Accepted spellings that normalise to a canonical policy name.
NEGOTIATION_ALIASES = {"full": "smallest"}

#: Default number of packed-plane prefix bytes trial-encoded per candidate
#: under ``negotiation="sampled"``.  64 KiB keeps the probe cheap while
#: covering several compression-window lengths of every built-in coder.
DEFAULT_NEGOTIATION_SAMPLE = 65536

#: Default plane-coder candidate set (ordered: ties pick the earliest).
#: Deliberately small: ``zlib`` wins on compressible planes, ``raw`` on
#: incompressible ones, and both trial-encodes are cheap — wider sets
#: (``huffman``, ``rle``, ``lz77``) trade compression speed for rarely-won
#: planes and are opt-in via the profile.
DEFAULT_PLANE_CODERS = ("zlib", "raw")


@dataclass(frozen=True)
class CodecProfile:
    """Unified codec configuration.

    Parameters
    ----------
    error_bound:
        The point-wise L∞ bound ``eb``.  Interpreted as absolute unless
        ``relative`` is true, in which case it is multiplied by the value
        range of each field at compression time (the SDRBench convention the
        paper uses).
    relative:
        Whether ``error_bound`` is value-range relative.
    method:
        Interpolation formula: ``"cubic"`` (default) or ``"linear"``.
    prefix_bits:
        Number of prefix bits of the predictive bitplane coder (0–3; 2 is
        the paper's choice, Table 2).
    kernel:
        Registered bit-level kernel name (:mod:`repro.core.kernels`).  A pure
        runtime choice — every kernel reads and writes identical bytes.
        ``"auto"`` resolves at first use to the fastest backend available
        on the machine (``compiled`` > ``fused`` > ``vectorized``);
        ``"compiled"`` requires the optional ``[compiled]`` extra (numba)
        and raises :class:`~repro.errors.ConfigurationError` with the
        install hint when it is missing.
    anchor_coder:
        Registered lossless coder used for the (small, always fully loaded)
        anchor block.
    plane_coders:
        Ordered candidate coders for the bitplane blocks.  With
        ``negotiation="fixed"`` only the first entry is used.
    negotiation:
        ``"smallest"`` (accepted alias: ``"full"``) trial-encodes every
        plane against all candidates and keeps the smallest output;
        ``"sampled"`` picks the winner on a ``negotiation_sample``-byte
        plane prefix and encodes once with it; ``"fixed"`` always uses
        ``plane_coders[0]``.
    negotiation_sample:
        **Upper bound** on the packed-plane prefix bytes trial-encoded per
        candidate under the ``"sampled"`` policy; the effective probe is
        autotuned per plane from the plane's size (see
        :func:`repro.core.predictive_coder.effective_negotiation_sample`).
        Ignored by the other policies (and by planes that fit inside the
        probe, which are fully negotiated).
    prefetch:
        Retrieval-side knob: number of planned byte ranges kept in flight
        by the retrieval engine's background prefetcher (0 = synchronous
        reads).  A pure runtime choice — like ``kernel``, it never changes
        any byte, reported byte count, or range trace.
    workers:
        Retrieval-side knob: pool-decode worker processes for stateless
        container reads (0/1 = in-process decode).  Runtime-only, output
        bitwise-identical either way.
    cache_bytes:
        Serving-side knob: byte budget of the
        :class:`~repro.service.RetrievalService` tiered cache (decoded slabs
        + resident plane rungs).  ``0`` means the service default.  Like
        ``kernel`` / ``prefetch`` / ``workers`` it is runtime-only: it never
        changes any served byte, reported byte count, or range trace — only
        how much physical I/O a warm request can skip.
    cache_verify:
        Serving-side knob: verify the checksum of a cached decoded slab on
        every hit, so a poisoned cache entry is invalidated and recomputed
        instead of served.  Runtime-only.
    io_backend:
        Retrieval-side knob: how range reads reach storage — ``"auto"``
        (async event-loop multiplexing for http(s) sources when available,
        threads otherwise), ``"async"``, ``"threads"``, or ``"sync"``
        (prefetching disabled).  Runtime-only: every backend reads and
        reports identical bytes; only concurrency differs.
    """

    error_bound: float = 1e-6
    relative: bool = True
    method: str = "cubic"
    prefix_bits: int = DEFAULT_PREFIX_BITS
    kernel: str = DEFAULT_KERNEL
    anchor_coder: str = "zlib"
    plane_coders: Tuple[str, ...] = DEFAULT_PLANE_CODERS
    negotiation: str = "smallest"
    negotiation_sample: int = DEFAULT_NEGOTIATION_SAMPLE
    prefetch: int = 0
    workers: int = 0
    cache_bytes: int = 0
    cache_verify: bool = True
    io_backend: str = "auto"

    def __post_init__(self) -> None:
        from repro.coders.backend import available_backends

        if self.error_bound <= 0 or not np.isfinite(self.error_bound):
            raise ConfigurationError("error_bound must be a positive finite number")
        if self.method not in ("cubic", "linear"):
            raise ConfigurationError("method must be 'cubic' or 'linear'")
        if not 0 <= self.prefix_bits <= 3:
            raise ConfigurationError("prefix_bits must be in [0, 3]")
        get_kernel(self.kernel)  # fail fast on unknown kernel names
        object.__setattr__(
            self,
            "negotiation",
            NEGOTIATION_ALIASES.get(self.negotiation, self.negotiation),
        )
        if self.negotiation not in NEGOTIATION_POLICIES:
            raise ConfigurationError(
                f"negotiation must be one of {NEGOTIATION_POLICIES} "
                f"(or an alias {tuple(NEGOTIATION_ALIASES)}), "
                f"got {self.negotiation!r}"
            )
        if not isinstance(self.negotiation_sample, int) or isinstance(
            self.negotiation_sample, bool
        ):
            raise ConfigurationError("negotiation_sample must be an integer")
        if self.negotiation_sample < 1:
            raise ConfigurationError("negotiation_sample must be positive")
        for name in ("prefetch", "workers", "cache_bytes"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigurationError(f"{name} must be an integer")
            if value < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if not isinstance(self.cache_verify, bool):
            raise ConfigurationError("cache_verify must be a boolean")
        if self.io_backend not in ("auto", "async", "threads", "sync"):
            raise ConfigurationError(
                "io_backend must be one of ('auto', 'async', 'threads', "
                f"'sync'), got {self.io_backend!r}"
            )
        # Coerce list/single-string plane coders to a tuple so profiles built
        # from JSON (or sloppy callers) stay hashable and picklable.
        coders = self.plane_coders
        if isinstance(coders, str):
            coders = (coders,)
        object.__setattr__(self, "plane_coders", tuple(coders))
        if not self.plane_coders:
            raise ConfigurationError("plane_coders must name at least one coder")
        known = available_backends()
        for name in (self.anchor_coder, *self.plane_coders):
            if name not in known:
                raise ConfigurationError(
                    f"unknown lossless coder {name!r}; available: {known}"
                )

    # -------------------------------------------------------------- derived

    @property
    def candidates(self) -> Tuple[str, ...]:
        """The effective plane-coder candidate set under the policy."""
        if self.negotiation == "fixed":
            return (self.plane_coders[0],)
        return self.plane_coders

    def absolute_bound(self, data: np.ndarray) -> float:
        """The absolute ``eb`` this profile implies for a given field."""
        from repro.core.quantizer import relative_to_absolute

        if self.relative:
            return relative_to_absolute(self.error_bound, data)
        return self.error_bound

    def resolve(self, data: np.ndarray) -> "CodecProfile":
        """A copy with the range-relative bound resolved to an absolute one.

        Block-parallel and sharded compression resolve the bound once from
        the *global* field so every slab honours the same absolute bound.
        """
        if not self.relative:
            return self
        return self.replace(error_bound=self.absolute_bound(data), relative=False)

    def replace(self, **changes) -> "CodecProfile":
        """A copy of this profile with ``changes`` applied (and validated)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------ construction

    @classmethod
    def fixed(cls, coder: str, **overrides) -> "CodecProfile":
        """A single-coder profile (no negotiation), e.g. ``fixed("huffman")``."""
        overrides.setdefault("anchor_coder", coder)
        return cls(plane_coders=(coder,), negotiation="fixed", **overrides)

    @classmethod
    def from_options(
        cls,
        profile: "CodecProfile | None" = None,
        *,
        error_bound: "float | None" = None,
        relative: "bool | None" = None,
        **overrides,
    ) -> "CodecProfile":
        """Build a profile from an optional base plus field overrides.

        This is the one place keyword configuration enters the system: every
        façade (``IPComp``, ``BlockParallelCompressor``,
        ``ChunkedDataset.write``, the baselines adapter) funnels its kwargs
        through here.  Unknown names raise :class:`ConfigurationError` (a
        ``ValueError``) listing the valid fields, so a typo like ``kernal=``
        fails loudly instead of being silently swallowed.

        ``error_bound`` and ``relative`` are named so the façades' optional
        parameters flow through directly: ``None`` means *unspecified* —
        defer to the base profile (or the field default) — which is what
        lets an explicitly passed profile keep its bound.

        The legacy ``backend=`` keyword of the v1-era configuration is
        accepted as shorthand for a fixed single-coder profile.
        """
        if error_bound is not None:
            overrides["error_bound"] = error_bound
        if relative is not None:
            overrides["relative"] = relative
        if "backend" in overrides:
            legacy = overrides.pop("backend")
            overrides.setdefault("anchor_coder", legacy)
            overrides.setdefault("plane_coders", (legacy,))
            overrides.setdefault("negotiation", "fixed")
        valid = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(overrides) - valid)
        if unknown:
            raise ConfigurationError(
                f"unknown codec option(s) {unknown}; valid fields: {sorted(valid)} "
                "(plus legacy 'backend')"
            )
        if profile is None:
            return cls(**overrides)
        if not isinstance(profile, cls):
            raise ConfigurationError(
                f"profile must be a CodecProfile, got {type(profile).__name__}"
            )
        return profile.replace(**overrides) if overrides else profile

    # ------------------------------------------------------------------ JSON

    def to_json(self, *, runtime: bool = True) -> dict:
        """JSON form of the profile.

        ``runtime=False`` omits the runtime-only fields — ``kernel``,
        ``prefetch``, ``workers``, ``cache_bytes``, ``cache_verify``,
        ``io_backend`` — which never change the bytes, so on-disk
        artefacts (dataset manifests) exclude them to stay byte-identical
        across runtime configurations; ``--profile`` files keep them.
        """
        obj = {
            "error_bound": float(self.error_bound),
            "relative": bool(self.relative),
            "method": self.method,
            "prefix_bits": int(self.prefix_bits),
            "kernel": self.kernel,
            "anchor_coder": self.anchor_coder,
            "plane_coders": list(self.plane_coders),
            "negotiation": self.negotiation,
            "negotiation_sample": int(self.negotiation_sample),
            "prefetch": int(self.prefetch),
            "workers": int(self.workers),
            "cache_bytes": int(self.cache_bytes),
            "cache_verify": bool(self.cache_verify),
            "io_backend": self.io_backend,
        }
        if not runtime:
            for name in (
                "kernel",
                "prefetch",
                "workers",
                "cache_bytes",
                "cache_verify",
                "io_backend",
            ):
                del obj[name]
        return obj

    @classmethod
    def from_json(cls, obj: dict) -> "CodecProfile":
        if not isinstance(obj, dict):
            raise ConfigurationError("codec profile JSON must be an object")
        return cls.from_options(None, **obj)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "CodecProfile":
        """Load a profile from a JSON file (the CLI's ``--profile``)."""
        try:
            obj = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise ConfigurationError(f"cannot read codec profile {path}: {exc}") from None
        return cls.from_json(obj)

    def dump(self, path: Union[str, Path]) -> None:
        """Write the profile as readable JSON."""
        Path(path).write_text(json.dumps(self.to_json(), indent=2) + "\n", encoding="utf-8")
