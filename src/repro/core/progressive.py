"""Progressive retrieval: Algorithm 1 (from scratch) and Algorithm 2 (refine).

A :class:`ProgressiveRetriever` wraps a :class:`repro.core.stream.CompressedStore`
and serves any number of retrieval requests against it.  Each request is
expressed either as an error bound or as a bitrate / byte budget; the
:class:`repro.core.optimizer.OptimizedLoader` turns the request into a
per-level plane selection, and the retriever then:

* **first request (Algorithm 1)** — loads the anchor block plus the selected
  plane blocks, decodes every level once, and runs one interpolation
  reconstruction pass;
* **subsequent requests (Algorithm 2)** — loads only the plane blocks that the
  new plan adds on top of what is already in memory, decodes the *integer
  delta* those planes contribute, pushes the delta through the (linear)
  interpolation reconstruction, and adds it to the previous output.  No block
  is ever read twice and no full decompression pass is repeated — the property
  that distinguishes IPComp from residual-based progressive schemes.

Every request reports exactly how many compressed bytes it had to touch,
which is the quantity Figures 6 and 7 of the paper plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.interpolation import InterpolationPredictor
from repro.core.optimizer import LoadingPlan, OptimizedLoader
from repro.core.predictive_coder import PredictiveCoder
from repro.core.profile import CodecProfile
from repro.core.quantizer import LinearQuantizer
from repro.core.stream import CompressedStore
from repro.errors import ConfigurationError, RetrievalError, StreamFormatError
from repro.retrieval.plan import FetchOp, plan_stream_ops


@dataclass
class RetrievalResult:
    """One progressive retrieval: reconstructed data plus its cost/quality."""

    data: np.ndarray
    plan: LoadingPlan
    bytes_loaded: int
    cumulative_bytes: int
    error_bound: float

    def bitrate(self, n_elements: Optional[int] = None) -> float:
        """Bits per value touched by *this* request."""
        n = n_elements if n_elements is not None else self.data.size
        return 8.0 * self.bytes_loaded / n

    def cumulative_bitrate(self, n_elements: Optional[int] = None) -> float:
        """Bits per value touched since the retriever was created."""
        n = n_elements if n_elements is not None else self.data.size
        return 8.0 * self.cumulative_bytes / n


class ProgressiveRetriever:
    """Stateful multi-fidelity reader of one IPComp stream.

    ``blob`` is either the in-memory stream bytes or a *byte-range source*
    (``size`` + ``read_range(offset, length)``, see
    :class:`repro.core.stream.BytesSource`).  With a file-backed source —
    e.g. one shard block of a :class:`repro.io.ChunkedDataset` container —
    every retrieval, including Algorithm-2 refinement, touches exactly the
    byte ranges of the blocks it needs and nothing else.

    ``profile`` supplies the only decode-time knob — the bit-level kernel
    (:mod:`repro.core.kernels`) used for plane decoding.  Everything that
    shaped the bytes (prefix bits, per-plane lossless coders) comes from the
    stream's own header: streams are self-describing, so any profile reads
    any stream.
    """

    def __init__(self, blob, profile: Optional[CodecProfile] = None) -> None:
        kernel = profile.kernel if profile is not None else None
        # ``blob`` may also be a ready CompressedStore (possibly built from a
        # pre-parsed header) — the serving layer pins parsed headers across
        # requests and hands the store in directly.
        self.store = blob if isinstance(blob, CompressedStore) else CompressedStore(blob)
        header = self.store.header
        self.header = header
        try:
            # These constructors validate their inputs, but here every input
            # comes from the stream's own header — an out-of-range value is
            # stream corruption, not a caller configuration mistake (the
            # kernel is the one caller-supplied piece, pre-validated by the
            # profile).
            self.predictor = InterpolationPredictor(header.shape, header.method)
            self.quantizer = LinearQuantizer(header.error_bound, kernel=kernel)
            self.coder = PredictiveCoder.for_header(header, self.quantizer, kernel=kernel)
        except ConfigurationError as exc:
            raise StreamFormatError(f"stream header invalid: {exc}") from None
        self.loader = OptimizedLoader(header, overhead_bytes=self.store.overhead_bytes)
        # Retrieval state (Algorithm 2 needs all three).
        self._current_keep: Dict[int, int] = {enc.level: 0 for enc in header.levels}
        self._current_codes: Dict[int, np.ndarray] = {}
        self._current_output: Optional[np.ndarray] = None
        self._anchor_values: Optional[np.ndarray] = None
        # True while the resident output is bit-for-bit what a from-scratch
        # retrieval at the current keep would reconstruct (Algorithm-1 and
        # rebuilt-refine paths keep it; a delta-add refine clears it).
        self._output_exact = True
        self.cumulative_bytes = 0

    # ----------------------------------------------------------------- planning

    def _plan(
        self,
        error_bound: Optional[float],
        bitrate: Optional[float],
        byte_budget: Optional[int],
    ) -> LoadingPlan:
        requested = [v is not None for v in (error_bound, bitrate, byte_budget)]
        if sum(requested) != 1:
            raise ConfigurationError(
                "specify exactly one of error_bound, bitrate, byte_budget"
            )
        if error_bound is not None:
            return self.loader.plan_for_error_bound(error_bound)
        if bitrate is not None:
            return self.loader.plan_for_bitrate(bitrate)
        assert byte_budget is not None
        return self.loader.plan_for_size(byte_budget)

    def plan_request(
        self,
        error_bound: Optional[float] = None,
        bitrate: Optional[float] = None,
        byte_budget: Optional[int] = None,
    ) -> LoadingPlan:
        """Stage-1 planning only: the loading plan a request would use."""
        return self._plan(error_bound, bitrate, byte_budget)

    def pending_ops(
        self,
        error_bound: Optional[float] = None,
        bitrate: Optional[float] = None,
        byte_budget: Optional[int] = None,
        *,
        plan: Optional[LoadingPlan] = None,
    ) -> List[FetchOp]:
        """The coalesced fetch ops a request would read, given current state.

        The exact byte ranges :meth:`retrieve` is about to touch — the
        anchor plus planned planes from scratch, only the *new* planes on
        refinement (fidelity never decreases, mirroring Algorithm 2's keep
        merge).  The retrieval engine primes these through the prefetcher;
        the CLI's ``info`` prints them.
        """
        if plan is None:
            plan = self._plan(error_bound, bitrate, byte_budget)
        fresh = self._current_output is None
        if fresh:
            target = {enc.level: plan.keep.get(enc.level, 0) for enc in self.header.levels}
            current: Optional[Dict[int, int]] = None
        else:
            target = {
                level: max(plan.keep.get(level, 0), self._current_keep.get(level, 0))
                for level in self._current_keep
            }
            current = self._current_keep
        return plan_stream_ops(self.store, current, target, include_anchor=fresh)

    def _prime(self, plan: LoadingPlan) -> None:
        """Hand the planned ranges to the source's prefetcher, if it has one."""
        prime = getattr(self.store.source, "prime", None)
        if prime is not None:
            prime([(op.offset, op.length) for op in self.pending_ops(plan=plan)])

    # ---------------------------------------------------------------- retrieval

    def retrieve(
        self,
        error_bound: Optional[float] = None,
        bitrate: Optional[float] = None,
        byte_budget: Optional[int] = None,
    ) -> RetrievalResult:
        """Serve one retrieval request, reusing previously loaded data.

        The first call runs Algorithm 1; later calls run Algorithm 2 and only
        ever *add* precision: if the new request is coarser than what is
        already reconstructed, the existing (finer) output is returned and no
        data is loaded at all.
        """
        plan = self._plan(error_bound, bitrate, byte_budget)
        # Stage 2: overlap the planned range reads with decoding whenever
        # the source supports priming (a no-op on plain in-memory blobs).
        self._prime(plan)
        if self._current_output is None:
            return self._retrieve_from_scratch(plan)
        return self._refine(plan)

    def retrieve_rebuilt(
        self,
        error_bound: Optional[float] = None,
        bitrate: Optional[float] = None,
        byte_budget: Optional[int] = None,
    ) -> RetrievalResult:
        """Refine with Algorithm-2 I/O but from-scratch reconstruction bits.

        Reads exactly the plane blocks :meth:`retrieve` would read (only the
        delta above the resident keep — never a byte twice), merges them into
        the resident integer codes (exact bit-plane arithmetic), then runs
        **one full reconstruction pass** over the merged codes instead of
        adding a delta reconstruction to the previous output.  Summing two
        reconstructions is within rounding of the single pass but not
        bit-identical to it; the single pass *is* — so the returned array is
        bitwise what a fresh retrieval at the achieved plane selection
        produces.  This is the property the serving layer's rung cache needs
        to answer stateless requests from refined state.  Costs a full
        reconstruction of compute per call; saves the same bytes as
        :meth:`retrieve`.
        """
        plan = self._plan(error_bound, bitrate, byte_budget)
        self._prime(plan)
        if self._current_output is None:
            return self._retrieve_from_scratch(plan)
        assert self._anchor_values is not None
        self.store.reset_accounting()
        target_keep = self._merged_target(plan)
        any_new = bool(self._load_new_planes(target_keep))
        if any_new or not self._output_exact:
            level_diffs = {
                enc.level: self.quantizer.dequantize(
                    self._current_codes.get(
                        enc.level, np.zeros(enc.count, dtype=np.int64)
                    )
                )
                for enc in self.header.levels
            }
            self._current_output = self.predictor.reconstruct(
                self._anchor_values, level_diffs, granularity="sweep"
            )
            self._output_exact = True
        bytes_loaded = self.store.bytes_read
        self.cumulative_bytes += bytes_loaded
        achieved_keep = dict(self._current_keep)
        return RetrievalResult(
            data=self._cast(self._current_output),
            plan=plan,
            bytes_loaded=bytes_loaded,
            cumulative_bytes=self.cumulative_bytes,
            # When the merge landed exactly on the plan's selection, report
            # the plan's own bound so the result is indistinguishable from a
            # fresh retrieval at this target; a finer resident rung keeps the
            # Theorem-1 bound of what is actually resident.
            error_bound=(
                plan.predicted_error
                if all(
                    achieved_keep.get(enc.level, 0) == plan.keep.get(enc.level, 0)
                    for enc in self.header.levels
                )
                else self.loader.plan_error(achieved_keep)
            ),
        )

    def _retrieve_from_scratch(self, plan: LoadingPlan) -> RetrievalResult:
        """Algorithm 1: single decoding + reconstruction pass."""
        self.store.reset_accounting()
        anchor_block = self.store.read_anchor()
        self._anchor_values = self.coder.decode_anchor(
            anchor_block, self.header.anchor_count
        )
        level_diffs: Dict[int, np.ndarray] = {}
        for enc in self.header.levels:
            keep = plan.keep.get(enc.level, 0)
            blocks = self.store.read_planes(enc.level, keep)
            codes = self.coder.decode_level_codes(enc, blocks)
            self._current_codes[enc.level] = codes
            self._current_keep[enc.level] = keep
            level_diffs[enc.level] = self.quantizer.dequantize(codes)
        output = self.predictor.reconstruct(
            self._anchor_values, level_diffs, granularity="sweep"
        )
        self._current_output = output
        bytes_loaded = self.store.bytes_read + self.store.header_bytes
        self.cumulative_bytes += bytes_loaded
        return RetrievalResult(
            data=self._cast(output),
            plan=plan,
            bytes_loaded=bytes_loaded,
            cumulative_bytes=self.cumulative_bytes,
            error_bound=plan.predicted_error,
        )

    def _load_new_planes(self, target_keep: Dict[int, int]) -> Dict[int, np.ndarray]:
        """Read + merge every plane above the current keep, per level.

        Advances ``_current_codes`` / ``_current_keep`` to ``target_keep``
        and returns the *previous* integer codes of each level that gained
        planes (what Algorithm 2 needs to form its delta).  All merging is
        integer bit-plane arithmetic — the updated codes are bit-for-bit the
        codes a from-scratch decode at ``target_keep`` would produce.
        """
        old_codes_by_level: Dict[int, np.ndarray] = {}
        for enc in self.header.levels:
            old_keep = self._current_keep[enc.level]
            new_keep = target_keep[enc.level]
            if new_keep <= old_keep:
                continue
            blocks = [
                self.store.read_block(enc.level, plane) for plane in range(new_keep)
                if plane >= old_keep
            ]
            # Decoding plane k needs planes < k for the XOR prediction; those
            # are already decoded in ``_current_codes`` so we re-derive the new
            # integer codes from old codes + freshly loaded planes.
            new_codes = self._merge_codes(enc, old_keep, new_keep, blocks)
            old_codes_by_level[enc.level] = self._current_codes.get(
                enc.level, np.zeros(enc.count, dtype=np.int64)
            )
            self._current_codes[enc.level] = new_codes
            self._current_keep[enc.level] = new_keep
        return old_codes_by_level

    def _merged_target(self, plan: LoadingPlan) -> Dict[int, int]:
        """Never drop precision that is already in memory."""
        return {
            level: max(plan.keep.get(level, 0), self._current_keep.get(level, 0))
            for level in self._current_keep
        }

    def _refine(self, plan: LoadingPlan) -> RetrievalResult:
        """Algorithm 2: load only the new planes and add their contribution."""
        assert self._current_output is not None and self._anchor_values is not None
        self.store.reset_accounting()
        target_keep = self._merged_target(plan)
        old_codes_by_level = self._load_new_planes(target_keep)
        delta_diffs: Dict[int, np.ndarray] = {
            level: self.quantizer.dequantize(self._current_codes[level] - old_codes)
            for level, old_codes in old_codes_by_level.items()
        }
        any_new = bool(old_codes_by_level)
        if any_new:
            zero_anchor = np.zeros(self.header.anchor_count, dtype=np.float64)
            delta_output = self.predictor.reconstruct(
                zero_anchor, delta_diffs, granularity="sweep"
            )
            self._current_output = self._current_output + delta_output
            # Adding reconstructed deltas is within rounding of — but not
            # bit-identical to — a from-scratch pass at the merged keep.
            self._output_exact = False
        bytes_loaded = self.store.bytes_read
        self.cumulative_bytes += bytes_loaded
        achieved_keep = dict(self._current_keep)
        return RetrievalResult(
            data=self._cast(self._current_output),
            plan=plan,
            bytes_loaded=bytes_loaded,
            cumulative_bytes=self.cumulative_bytes,
            error_bound=self.loader.plan_error(achieved_keep),
        )

    # ------------------------------------------------------------------ helpers

    def _merge_codes(self, enc, old_keep: int, new_keep: int, new_blocks) -> np.ndarray:
        """Rebuild integer codes when planes ``old_keep … new_keep-1`` arrive.

        The XOR-predictive decoding of plane ``k`` requires the decoded planes
        ``k−1`` and ``k−2``.  Rather than caching raw planes we recompute them
        from the stored integer codes (a cheap vectorised bit extraction),
        decode the new planes on top, and assemble the result.
        """
        kernel = self.coder.kernel
        count = enc.count
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        old_codes = self._current_codes.get(enc.level)
        if old_codes is None or old_codes.size == 0:
            old_codes = np.zeros(count, dtype=np.int64)
        # Reconstruct the decoded (true) planes 0..old_keep-1 from old codes.
        old_negabinary = kernel.to_negabinary(old_codes)
        decoded = np.zeros((new_keep, count), dtype=np.uint8)
        if old_keep:
            decoded[:old_keep] = kernel.extract_bitplanes(old_negabinary, enc.nbits)[
                :old_keep
            ]
        # Decode the newly loaded planes using the already-known prefix planes
        # (each plane block dispatches to the coder its header entry names).
        for offset, block in enumerate(new_blocks):
            k = old_keep + offset
            plane = self.coder.decode_plane_bits(enc, k, block).copy()
            for j in range(1, self.coder.prefix_bits + 1):
                if k - j >= 0:
                    plane ^= decoded[k - j]
            decoded[k] = plane
        return kernel.from_negabinary(
            kernel.assemble_bitplanes(decoded[:new_keep], enc.nbits)
        )

    def _cast(self, output: np.ndarray) -> np.ndarray:
        return output.astype(self.header.dtype, copy=True).reshape(self.header.shape)

    # ------------------------------------------------------------------- state

    @property
    def current_keep(self) -> Dict[int, int]:
        """Planes currently resident per level (diagnostics / tests)."""
        return dict(self._current_keep)

    @property
    def current_output(self) -> Optional[np.ndarray]:
        """The most recent reconstruction, or ``None`` before the first request."""
        if self._current_output is None:
            return None
        return self._cast(self._current_output)

    @property
    def resident_nbytes(self) -> int:
        """Decoded bytes this retriever keeps resident (cache accounting).

        The reconstruction, the per-level integer codes, and the anchor
        values — what a byte-budgeted cache should charge for keeping this
        retriever's rung warm.
        """
        total = 0
        if self._current_output is not None:
            total += self._current_output.nbytes
        if self._anchor_values is not None:
            total += self._anchor_values.nbytes
        total += sum(codes.nbytes for codes in self._current_codes.values())
        return total
