"""Error-bounded linear-scale quantization (Figure 1's ``Q`` stage).

The quantizer maps a prediction difference ``y`` to the integer
``q = round(y / (2·eb))`` and back to ``ŷ = q · 2·eb``.  Mid-tread rounding
guarantees the point-wise property ``|y − ŷ| ≤ eb`` that the prediction-model
error analysis of §4.2.2 relies on, level by level.

A reproduction note on bin width: SZ-family compressors quantize with bins of
width ``2·eb`` so that rounding to the bin centre keeps the error within
``eb``; the same convention is used here.

A floating-point note: the kernels verify the chosen code against the
decoder's own ``float64`` arithmetic and nudge it when the rounded division
landed a bin off (possible when ``|y| / (2·eb)`` approaches ``2^52``), so the
bound holds up to the unavoidable half-ulp of representing the bin centre
``q · 2·eb`` as a ``float64``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.kernels import get_kernel
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LinearQuantizer:
    """Uniform mid-tread quantizer with half-bin error bound ``error_bound``.

    ``kernel`` selects the arithmetic kernel (see :mod:`repro.core.kernels`)
    by registry name; ``None`` uses the default vectorized kernel.
    """

    error_bound: float
    kernel: Optional[str] = None

    def __post_init__(self) -> None:
        if not np.isfinite(self.error_bound) or self.error_bound <= 0:
            raise ConfigurationError(
                f"error_bound must be a positive finite number, got {self.error_bound!r}"
            )
        get_kernel(self.kernel)  # fail fast on unknown kernel names

    @property
    def bin_width(self) -> float:
        """Width of a quantization bin (``2·eb``)."""
        return 2.0 * self.error_bound

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Quantize floating-point differences to ``int64`` bin indices."""
        return get_kernel(self.kernel).quantize(values, self.bin_width)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        """Map bin indices back to the bin-centre floating point values."""
        return get_kernel(self.kernel).dequantize(codes, self.bin_width)

    def roundtrip(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Quantize then dequantize; convenience used by the compressors.

        Returns ``(codes, reconstructed)`` where
        ``|values − reconstructed| ≤ error_bound`` element-wise.
        """
        codes = self.quantize(values)
        return codes, self.dequantize(codes)


def relative_to_absolute(relative_bound: float, data: np.ndarray) -> float:
    """Convert a value-range-relative bound to an absolute one.

    The paper (and SDRBench practice) specifies bounds like ``1e-6`` as a
    fraction of the field's value range; an all-constant field degenerates to
    a tiny positive bound so the quantizer stays well defined.
    """
    if relative_bound <= 0:
        raise ConfigurationError("relative bound must be positive")
    data = np.asarray(data)
    value_range = float(data.max() - data.min()) if data.size else 0.0
    if value_range == 0.0:
        value_range = 1.0
    return relative_bound * value_range
