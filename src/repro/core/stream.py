"""IPComp stream format and block-addressable store (Figure 2's block layout).

A compressed IPComp object is a single byte string laid out as::

    magic "IPC1" | version:u16 | header_len:u32 | header (JSON, UTF-8)
    | anchor block | level L planes (MSB→LSB) | level L−1 planes | ... | level 1 planes

The header is deliberately self-describing JSON: it carries everything the
*optimized data loader* needs to make a retrieval plan without touching any
payload block — per-plane compressed sizes and the per-level information-loss
tables ``δy_l(b)``.  Only after planning are the selected blocks actually read,
which is what lets :class:`CompressedStore` report the exact retrieval volume
plotted in Figures 6 and 7.

Two header versions exist (the binary ``version`` word distinguishes them):

* **v1** — one implicit lossless backend for the whole stream, named by the
  header's ``"backend"`` field.
* **v2** (current) — per-``(level, plane)`` codec dispatch: the header holds
  a ``"codecs"`` name table (the coders actually used), the anchor block's
  coder, and per level a ``"plane_codecs"`` index array parallel to the
  plane sizes.  This is what backend negotiation records, and it makes every
  stream self-describing — no compression-time configuration is needed to
  decode one.  The *negotiation policy* never appears in the stream: whether
  a plane's coder was chosen by a full trial encode (``"smallest"``) or by
  probing a deterministic plane prefix (``"sampled"``), only the winner's
  name travels, so sampled streams parse and decode exactly like full ones.

Readers accept both: a v1 header is normalised at parse time into the same
in-memory :class:`StreamHeader` (every plane coded by the single backend), so
all downstream code — store, optimizer, retriever — sees one representation.
Writers always produce v2.

The JSON header costs a few kilobytes; for the multi-megabyte scientific
fields the format targets this is negligible and it keeps the format easy to
inspect and to evolve.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.core.predictive_coder import LevelEncoding
from repro.errors import StreamFormatError

MAGIC = b"IPC1"
VERSION = 2
SUPPORTED_VERSIONS = (1, 2)


class BytesSource:
    """In-memory :class:`CompressedStore` source: byte-range reads of a blob.

    Any object with the same two members — ``size`` and
    ``read_range(offset, length)`` — can back a store, which is how the
    on-disk container (:mod:`repro.io`) serves IPComp streams without ever
    materialising them: the retriever asks for exactly the block ranges its
    plan selected and the source translates them into file reads.
    """

    def __init__(self, blob: bytes) -> None:
        self._blob = blob
        self.size = len(blob)

    def read_range(self, offset: int, length: int) -> bytes:
        if offset < 0 or offset + length > self.size:
            raise StreamFormatError(
                f"read of [{offset}, {offset + length}) past stream end {self.size}"
            )
        return self._blob[offset : offset + length]


@dataclass
class StreamHeader:
    """Decoded header of an IPComp stream (v1 and v2 normalise to this)."""

    shape: Tuple[int, ...]
    dtype: str
    error_bound: float
    method: str
    prefix_bits: int
    anchor_coder: str
    anchor_count: int
    anchor_size: int
    levels: List[LevelEncoding] = field(default_factory=list)
    version: int = VERSION

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def n_elements(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 0

    def level(self, number: int) -> LevelEncoding:
        for enc in self.levels:
            if enc.level == number:
                return enc
        raise StreamFormatError(f"stream has no level {number}")

    def payload_bytes(self) -> int:
        """Total size of anchor + all plane blocks (excluding the header)."""
        return self.anchor_size + sum(
            sum(header_plane_sizes(enc)) for enc in self.levels
        )

    def codec_names(self) -> Tuple[str, ...]:
        """Every lossless coder this stream uses (anchor + planes), sorted."""
        used = {self.anchor_coder}
        for enc in self.levels:
            used.update(enc.plane_coders)
        return tuple(sorted(used))

    def to_json(self) -> dict:
        codecs = list(self.codec_names())
        index = {name: i for i, name in enumerate(codecs)}
        return {
            "shape": list(self.shape),
            "dtype": self.dtype,
            "error_bound": self.error_bound,
            "method": self.method,
            "prefix_bits": self.prefix_bits,
            "codecs": codecs,
            "anchor_coder": index[self.anchor_coder],
            "anchor_count": self.anchor_count,
            "anchor_size": self.anchor_size,
            "levels": [
                {
                    "level": enc.level,
                    "count": enc.count,
                    "nbits": enc.nbits,
                    "plane_sizes": header_plane_sizes(enc),
                    "plane_codecs": [index[name] for name in enc.plane_coders],
                    # Stored rounded *up* to 5 significant digits: keeps the
                    # header small without ever under-stating the information
                    # loss (the optimizer's guarantee stays valid).
                    "delta_table": [
                        float(f"{float(v) * 1.0001:.4e}") if v else 0.0
                        for v in enc.delta_table
                    ],
                }
                for enc in self.levels
            ],
        }

    @classmethod
    def from_json(cls, obj: dict) -> "StreamHeader":
        """Decode a header object — either the v2 or the legacy v1 shape.

        Every malformed shape — missing keys, wrong types, codec indices
        outside the name table — surfaces as :class:`StreamFormatError`.
        """
        try:
            return cls._from_json(obj)
        except (IndexError, KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, StreamFormatError):
                raise
            raise StreamFormatError(f"malformed stream header: {exc!r}") from None

    @classmethod
    def _from_json(cls, obj: dict) -> "StreamHeader":
        if "codecs" in obj:
            codecs = [str(name) for name in obj["codecs"]]
            version = 2

            def resolve(index) -> str:
                index = int(index)
                if not 0 <= index < len(codecs):
                    raise StreamFormatError(
                        f"codec index {index} outside the name table "
                        f"of {len(codecs)} entries"
                    )
                return codecs[index]

            anchor_coder = resolve(obj["anchor_coder"])

            def plane_coders(item: dict) -> List[str]:
                return [resolve(i) for i in item["plane_codecs"]]

        else:  # v1: one implicit backend for anchor and every plane
            backend = str(obj["backend"])
            anchor_coder = backend
            version = 1

            def plane_coders(item: dict) -> List[str]:
                return [backend] * len(item["plane_sizes"])

        levels = []
        for item in obj["levels"]:
            sizes = [int(s) for s in item["plane_sizes"]]
            coders = plane_coders(item)
            if len(coders) != len(sizes):
                raise StreamFormatError(
                    f"level {item['level']}: {len(coders)} plane codecs "
                    f"for {len(sizes)} plane sizes"
                )
            enc = LevelEncoding(
                level=int(item["level"]),
                count=int(item["count"]),
                nbits=int(item["nbits"]),
                plane_blocks=[],
                plane_coders=coders,
                delta_table=np.asarray(item["delta_table"], dtype=np.float64),
            )
            # Plane blocks are not stored in the header; only their sizes.
            enc._header_plane_sizes = sizes  # type: ignore[attr-defined]
            levels.append(enc)
        return cls(
            shape=tuple(int(s) for s in obj["shape"]),
            dtype=str(obj["dtype"]),
            error_bound=float(obj["error_bound"]),
            method=str(obj["method"]),
            prefix_bits=int(obj["prefix_bits"]),
            anchor_coder=anchor_coder,
            anchor_count=int(obj["anchor_count"]),
            anchor_size=int(obj["anchor_size"]),
            levels=levels,
            version=version,
        )


def header_plane_sizes(enc: LevelEncoding) -> List[int]:
    """Plane sizes of a level, whether it came from an encoder or a header."""
    if enc.plane_blocks:
        return enc.plane_sizes
    return list(getattr(enc, "_header_plane_sizes", []))


class IPCompStream:
    """Serializer: assemble header + blocks into one byte string and back."""

    @staticmethod
    def serialize(
        header: StreamHeader,
        anchor_block: bytes,
        level_encodings: List[LevelEncoding],
    ) -> bytes:
        header_json = json.dumps(header.to_json(), separators=(",", ":")).encode("utf-8")
        header_json = zlib.compress(header_json, 9)
        out = bytearray()
        out += MAGIC
        out += struct.pack("<HI", VERSION, len(header_json))
        out += header_json
        out += anchor_block
        for enc in sorted(level_encodings, key=lambda e: -e.level):
            for block in enc.plane_blocks:
                out += block
        return bytes(out)

    @staticmethod
    def parse_header(blob: bytes) -> Tuple[StreamHeader, int]:
        """Return ``(header, payload_offset)`` without touching payload bytes."""
        return IPCompStream.parse_header_source(BytesSource(blob))

    @staticmethod
    def parse_header_source(source) -> Tuple[StreamHeader, int]:
        """Parse the header via byte-range reads of any ``BytesSource``-like.

        Reads only the prefix of the stream (magic + length word + header
        JSON), so a file- or network-backed source pays for exactly the
        header bytes — the payload blocks stay untouched until a retrieval
        plan asks for them.
        """
        if source.size < 10:
            raise StreamFormatError("truncated IPComp header")
        prefix = source.read_range(0, 10)
        if prefix[:4] != MAGIC:
            raise StreamFormatError("not an IPComp stream (bad magic)")
        version, header_len = struct.unpack_from("<HI", prefix, 4)
        if version not in SUPPORTED_VERSIONS:
            raise StreamFormatError(
                f"unsupported stream version {version} "
                f"(supported: {SUPPORTED_VERSIONS})"
            )
        start = 10
        end = start + header_len
        if end > source.size:
            raise StreamFormatError("truncated IPComp header")
        try:
            header_json = zlib.decompress(source.read_range(start, header_len))
        except zlib.error as exc:
            raise StreamFormatError(f"corrupted IPComp header: {exc}") from None
        try:
            obj = json.loads(header_json.decode("utf-8"))
        except ValueError as exc:  # bad UTF-8 or bad JSON
            raise StreamFormatError(f"malformed stream header: {exc!r}") from None
        header = StreamHeader.from_json(obj)  # normalises its own errors
        if header.version != version:
            raise StreamFormatError(
                f"stream version word says {version} but the header body "
                f"is version {header.version}"
            )
        return header, end


class CompressedStore:
    """Random access to the blocks of a serialized IPComp stream.

    ``blob`` is either the in-memory byte string or any *byte-range source*
    (``size`` attribute + ``read_range(offset, length)`` method, see
    :class:`BytesSource`); a file-backed source lets the progressive
    retriever pull individual plane blocks straight off disk.

    The store tracks how many payload bytes have actually been read
    (``bytes_read``), which is the quantity the paper's retrieval-volume
    figures report, plus the unavoidable header/anchor overhead
    (``overhead_bytes``).
    """

    def __init__(self, blob, *, parsed: "Tuple[StreamHeader, int] | None" = None) -> None:
        self._source = BytesSource(blob) if isinstance(blob, (bytes, bytearray)) else blob
        if parsed is None:
            self.header, payload_start = IPCompStream.parse_header_source(self._source)
        else:
            # A pre-parsed ``(header, payload_offset)`` pair skips the header
            # reads entirely — the serving layer parses each shard's header
            # once per session and pins the result, so re-opening a stream
            # for a later request touches zero header bytes.
            self.header, payload_start = parsed
        self.header_bytes = payload_start
        self._anchor_offset = payload_start
        self._offsets: Dict[Tuple[int, int], Tuple[int, int]] = {}
        cursor = payload_start + self.header.anchor_size
        for enc in sorted(self.header.levels, key=lambda e: -e.level):
            for plane_index, size in enumerate(header_plane_sizes(enc)):
                self._offsets[(enc.level, plane_index)] = (cursor, size)
                cursor += size
        if cursor > self._source.size:
            raise StreamFormatError("stream shorter than its block directory")
        self._payload_end = cursor
        self.bytes_read = 0

    # ------------------------------------------------------------------ sizes

    @property
    def total_bytes(self) -> int:
        """Size of the whole compressed object."""
        return self._source.size

    @property
    def overhead_bytes(self) -> int:
        """Header + anchor block: always loaded regardless of fidelity."""
        return self.header_bytes + self.header.anchor_size

    @property
    def source(self):
        """The byte-range source backing this store (planner/prefetch hook)."""
        return self._source

    def block_size(self, level: int, plane: int) -> int:
        return self._offsets[(level, plane)][1]

    # ---------------------------------------------------------------- extents

    def anchor_extent(self) -> Tuple[int, int]:
        """``(offset, size)`` of the anchor block within the stream."""
        return self._anchor_offset, self.header.anchor_size

    def block_extent(self, level: int, plane: int) -> Tuple[int, int]:
        """``(offset, size)`` of one plane block — the planner's substrate."""
        try:
            return self._offsets[(level, plane)]
        except KeyError:
            raise StreamFormatError(
                f"no block for level {level}, plane {plane}"
            ) from None

    # ------------------------------------------------------------------ reads

    def read_anchor(self) -> bytes:
        self.bytes_read += self.header.anchor_size
        return self._source.read_range(self._anchor_offset, self.header.anchor_size)

    def read_block(self, level: int, plane: int) -> bytes:
        try:
            offset, size = self._offsets[(level, plane)]
        except KeyError:
            raise StreamFormatError(f"no block for level {level}, plane {plane}") from None
        self.bytes_read += size
        return self._source.read_range(offset, size)

    def read_planes(self, level: int, count: int) -> List[bytes]:
        """Read the ``count`` most significant planes of ``level``."""
        return [self.read_block(level, plane) for plane in range(count)]

    def reset_accounting(self) -> None:
        """Zero the ``bytes_read`` counter (used between retrieval requests)."""
        self.bytes_read = 0
