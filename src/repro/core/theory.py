"""Analytical error models (§4.2 and Theorem 1 of §5.1).

Two results from the paper are implemented here so that both the optimizer and
the test-suite can check reconstructions against the guaranteed bounds:

* **Transform vs. prediction amplification (§4.2).**  For a transform model
  the reconstruction error is bounded by ``‖T⁻¹‖∞ · ‖ŷ − y‖∞`` which for the
  running-difference transform grows like the data size ``n`` (Eq. (3)),
  whereas the interpolation *prediction* model keeps the error at the
  quantizer bound ``eb`` independent of ``n`` (Eq. (4)).

* **Theorem 1 (progressive retrieval bound).**  When only some bitplanes are
  loaded, the remaining information loss ``δy_l`` at level ``l`` propagates
  down the level hierarchy, amplified by the interpolation stencil norm ``p``
  per level, giving

  ``‖x − x̂‖∞ ≤ Σ_l p^(l−1) · ‖δy_l‖∞ + eb``

  with ``p = 1`` for linear and ``p = 1.25`` for cubic interpolation.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.interpolation import STENCIL_NORMS
from repro.errors import ConfigurationError


def stencil_norm(method: str) -> float:
    """Return Theorem 1's propagation factor ``p`` for an interpolation method."""
    try:
        return STENCIL_NORMS[method]
    except KeyError:
        raise ConfigurationError(f"unknown interpolation method {method!r}") from None


def propagation_factor(method: str, level: int) -> float:
    """Amplification applied to level ``l``'s information loss: ``p^(l−1)``."""
    if level < 1:
        raise ConfigurationError("levels are numbered from 1 (finest)")
    return stencil_norm(method) ** (level - 1)


def retrieval_error_bound(
    deltas: Mapping[int, float],
    error_bound: float,
    method: str = "cubic",
) -> float:
    """Theorem 1: upper bound of the L∞ error of a partial retrieval.

    Parameters
    ----------
    deltas:
        Mapping level → ``‖δy_l‖∞`` (value-domain information loss of the
        planes *not* loaded at that level).
    error_bound:
        The compression-time quantizer bound ``eb``.
    method:
        Interpolation method, selecting ``p``.
    """
    total = float(error_bound)
    for level, delta in deltas.items():
        total += propagation_factor(method, level) * float(delta)
    return total


def level_sweep_counts(shape: Sequence[int], num_levels: int) -> dict:
    """Number of dimension sweeps actually performed at each level.

    Level ``l`` sweeps dimension ``d`` only if the grid has at least one
    target index along that dimension, i.e. ``shape[d] > 2^(l-1)``.
    """
    counts = {}
    for level in range(1, num_levels + 1):
        half = 2 ** (level - 1)
        counts[level] = sum(1 for size in shape if size > half)
    return counts


def propagation_weights(shape: Sequence[int], num_levels: int, method: str) -> dict:
    """Guaranteed per-level amplification of the information loss ``δy_l``.

    The paper's Theorem 1 models each level as a single prediction step and
    uses ``p^(l−1)``.  The actual interpolation sweeps every dimension in turn
    and later sweeps of the *same* level read values produced by earlier
    sweeps, so the loss introduced at level ``l`` can additionally be
    amplified inside the level.  Tracking the deviation from the
    compression-time reconstruction sweep by sweep gives the safe weight

    ``w_l = (Σ_{j<s_l} p^j) · Π_{m<l} p^{s_m}``

    where ``s_m`` is the number of sweeps of level ``m``.  For linear
    interpolation (``p = 1``) this reduces to ``w_l = s_l`` and for a 1-D
    field to the paper's ``p^(l−1)``.  The optimizer uses these weights so
    the error guarantee holds unconditionally; the cost is a slightly more
    conservative (larger) retrieval volume than the idealized bound.
    """
    p = stencil_norm(method)
    counts = level_sweep_counts(shape, num_levels)
    weights = {}
    below = 1.0
    for level in range(1, num_levels + 1):
        sweeps = counts[level]
        within = sum(p**j for j in range(sweeps)) if sweeps else 0.0
        weights[level] = within * below if sweeps else below
        below *= p ** max(sweeps, 0)
    return weights


def guaranteed_retrieval_bound(
    deltas: Mapping[int, float],
    error_bound: float,
    shape: Sequence[int],
    num_levels: int,
    method: str = "cubic",
) -> float:
    """Sweep-aware version of :func:`retrieval_error_bound` (always valid)."""
    weights = propagation_weights(shape, num_levels, method)
    total = float(error_bound)
    for level, delta in deltas.items():
        total += weights.get(level, 1.0) * float(delta)
    return total


def transform_amplification(n: int) -> float:
    """Worst-case error amplification of the running-difference transform.

    §4.2.1 shows ``‖T⁻¹‖∞ = n`` for the prefix-sum inverse, i.e. a distortion
    in the transformed domain can be amplified by the data size — the reason
    IPComp rejects transform models for progressive compression.
    """
    if n < 1:
        raise ConfigurationError("n must be positive")
    return float(n)


def prediction_amplification(n: int) -> float:
    """The prediction-model counterpart of :func:`transform_amplification`.

    Eq. (4): the bound is ``eb`` regardless of ``n``, i.e. amplification 1.
    """
    if n < 1:
        raise ConfigurationError("n must be positive")
    return 1.0


def running_difference_matrix(n: int) -> np.ndarray:
    """The lower-bidiagonal transform ``T`` of §4.2.1 (for tests/demos)."""
    t = np.eye(n)
    t[np.arange(1, n), np.arange(n - 1)] = -1.0
    return t


def running_difference_inverse(n: int) -> np.ndarray:
    """``T⁻¹``: the prefix-sum (lower triangular all-ones) matrix."""
    return np.tril(np.ones((n, n)))


def linf_operator_norm(matrix: np.ndarray) -> float:
    """L∞ operator norm = maximum absolute row sum."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ConfigurationError("operator norm needs a 2-D matrix")
    return float(np.abs(matrix).sum(axis=1).max()) if matrix.size else 0.0


def negabinary_vs_signmagnitude_uncertainty(dropped: Sequence[int]) -> dict:
    """Tabulate the §4.4.2 truncation-uncertainty comparison.

    Returns a dict with the worst-case integer uncertainty of negabinary and
    sign-magnitude encodings for each number of dropped low bits, plus their
    ratio (→ 2/3 as ``d`` grows).
    """
    from repro.core.negabinary import truncation_uncertainty

    rows = {}
    for d in dropped:
        nb = truncation_uncertainty(d, "negabinary")
        sm = truncation_uncertainty(d, "sign-magnitude")
        rows[int(d)] = {
            "negabinary": nb,
            "sign_magnitude": sm,
            "ratio": nb / sm if sm else 0.0,
        }
    return rows
