"""Synthetic stand-ins for the six SDRBench fields of Table 3.

The paper evaluates on six real-world fields (Miranda turbulence density /
pressure / velocity, an RTM seismic wavefield, SCALE-LETKF wind speed, and an
S3D CH4 mass fraction).  Those archives are multi-gigabyte downloads that are
not available in this offline environment, so :mod:`repro.datasets.synthetic`
generates deterministic fields with the same statistical character (spectral
decay, smoothness, anisotropy, sparsity) at configurable shapes, and
:mod:`repro.datasets.registry` maps the paper's dataset names to generators
plus the Table 3 metadata.  See DESIGN.md §1.3 for the substitution rationale.
"""

from __future__ import annotations

from repro.datasets.loaders import load_raw, save_raw
from repro.datasets.registry import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    dataset_table,
    load_dataset,
)
from repro.datasets.synthetic import (
    combustion_mass_fraction,
    seismic_wavefield,
    turbulence_field,
    weather_wind_speed,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "dataset_table",
    "load_dataset",
    "load_raw",
    "save_raw",
    "turbulence_field",
    "seismic_wavefield",
    "weather_wind_speed",
    "combustion_mass_fraction",
]
