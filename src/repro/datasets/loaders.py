"""Raw binary dataset I/O in the SDRBench layout.

SDRBench distributes fields as headerless little-endian binary files
(``.f32`` / ``.d64``), shape given out of band.  These helpers read and write
that layout so users who *do* have the real archives can drop them in and
rerun every benchmark against the authentic data.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence, Union

import numpy as np

from repro.errors import ConfigurationError

_SUFFIX_DTYPES = {
    ".f32": np.float32,
    ".f64": np.float64,
    ".d64": np.float64,
    ".dat": np.float64,
}


def save_raw(path: Union[str, Path], data: np.ndarray) -> Path:
    """Write a field as headerless little-endian binary (SDRBench layout)."""
    path = Path(path)
    data = np.asarray(data)
    if not np.issubdtype(data.dtype, np.floating):
        raise ConfigurationError("save_raw expects a floating point array")
    path.parent.mkdir(parents=True, exist_ok=True)
    data.astype(data.dtype.newbyteorder("<")).tofile(path)
    return path


def load_raw(
    path: Union[str, Path],
    shape: Sequence[int],
    dtype: Union[str, np.dtype, None] = None,
) -> np.ndarray:
    """Read a headerless binary field of the given shape.

    The dtype defaults from the file suffix (``.f32`` → float32, ``.d64`` /
    ``.f64`` → float64) and can be overridden explicitly.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"dataset file {path} does not exist")
    if dtype is None:
        try:
            dtype = _SUFFIX_DTYPES[path.suffix.lower()]
        except KeyError:
            raise ConfigurationError(
                f"cannot infer dtype from suffix {path.suffix!r}; pass dtype="
            ) from None
    shape = tuple(int(s) for s in shape)
    expected = int(np.prod(shape))
    data = np.fromfile(path, dtype=np.dtype(dtype).newbyteorder("<"))
    if data.size != expected:
        raise ConfigurationError(
            f"{path} holds {data.size} values, expected {expected} for shape {shape}"
        )
    return data.reshape(shape).astype(dtype)
