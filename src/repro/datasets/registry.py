"""Registry mapping the paper's dataset names (Table 3) to generators.

``load_dataset`` accepts the paper's names case-insensitively and returns a
deterministic synthetic field.  The default shapes are scaled down from the
paper's (e.g. 256×384×384 → 64×96×96) so the full benchmark matrix runs on a
laptop-scale machine in minutes; pass ``shape=`` to override, and
``paper_shape=True`` to request the original resolution if you have the time
and memory for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.datasets import synthetic
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata of one evaluation dataset (mirrors Table 3)."""

    name: str
    explanation: str
    domain: str
    precision: int
    paper_shape: Tuple[int, ...]
    default_shape: Tuple[int, ...]
    generator: Callable[..., np.ndarray]
    generator_kwargs: Dict[str, object]

    def generate(self, shape: Optional[Sequence[int]] = None, seed: int = 2025) -> np.ndarray:
        shape = tuple(shape) if shape is not None else self.default_shape
        return self.generator(shape=shape, seed=seed, **self.generator_kwargs)


DATASETS: Dict[str, DatasetSpec] = {
    "density": DatasetSpec(
        name="Density",
        explanation="mass per unit volume in turbulence",
        domain="turbulence",
        precision=64,
        paper_shape=(256, 384, 384),
        default_shape=(64, 96, 96),
        generator=synthetic.turbulence_field,
        generator_kwargs={"kind": "density"},
    ),
    "pressure": DatasetSpec(
        name="Pressure",
        explanation="thermodynamic pressure in turbulence",
        domain="turbulence",
        precision=64,
        paper_shape=(256, 384, 384),
        default_shape=(64, 96, 96),
        generator=synthetic.turbulence_field,
        generator_kwargs={"kind": "pressure"},
    ),
    "velocityx": DatasetSpec(
        name="VelocityX",
        explanation="x-direction velocity in turbulence",
        domain="turbulence",
        precision=64,
        paper_shape=(256, 384, 384),
        default_shape=(64, 96, 96),
        generator=synthetic.turbulence_field,
        generator_kwargs={"kind": "velocityx"},
    ),
    "wave": DatasetSpec(
        name="Wave",
        explanation="wavefield evolution in seismic",
        domain="seismic",
        precision=64,
        paper_shape=(1008, 1008, 352),
        default_shape=(112, 112, 40),
        generator=synthetic.seismic_wavefield,
        generator_kwargs={},
    ),
    "speedx": DatasetSpec(
        name="SpeedX",
        explanation="x-direction wind speed in weather",
        domain="weather",
        precision=64,
        paper_shape=(100, 500, 500),
        default_shape=(32, 96, 96),
        generator=synthetic.weather_wind_speed,
        generator_kwargs={},
    ),
    "ch4": DatasetSpec(
        name="CH4",
        explanation="mass fraction of CH4 in combustion",
        domain="combustion",
        precision=64,
        paper_shape=(500, 500, 500),
        default_shape=(80, 80, 80),
        generator=synthetic.combustion_mass_fraction,
        generator_kwargs={},
    ),
}


def dataset_names() -> Tuple[str, ...]:
    """Lower-case registry keys, in the order the paper lists them."""
    return tuple(DATASETS.keys())


def load_dataset(
    name: str,
    shape: Optional[Sequence[int]] = None,
    seed: int = 2025,
    paper_shape: bool = False,
) -> np.ndarray:
    """Generate (deterministically) the named dataset.

    Parameters
    ----------
    name:
        One of Table 3's names, case insensitive ("Density", "CH4", ...).
    shape:
        Override the scaled-down default shape.
    seed:
        Random seed; the default reproduces the repository's benchmarks.
    paper_shape:
        Use the full-resolution shape from the paper (slow, memory hungry).
    """
    key = name.strip().lower()
    if key not in DATASETS:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    spec = DATASETS[key]
    if paper_shape and shape is not None:
        raise ConfigurationError("pass either shape or paper_shape, not both")
    if paper_shape:
        shape = spec.paper_shape
    return spec.generate(shape=shape, seed=seed)


def dataset_table(shape_override: Optional[Dict[str, Sequence[int]]] = None) -> str:
    """Format the Table 3 inventory (used by ``bench_table3`` and the CLI)."""
    rows = ["Name        Domain       Precision  Paper shape        Repro shape"]
    for key, spec in DATASETS.items():
        shape = tuple(shape_override.get(key, spec.default_shape)) if shape_override else spec.default_shape
        rows.append(
            f"{spec.name:<11} {spec.domain:<12} {spec.precision:<10} "
            f"{'x'.join(map(str, spec.paper_shape)):<18} {'x'.join(map(str, shape))}"
        )
    return "\n".join(rows)
