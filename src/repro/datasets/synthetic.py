"""Deterministic synthetic scientific fields.

Each generator mimics the statistical character that drives compressor
behaviour on the corresponding SDRBench field:

* ``turbulence_field`` — homogeneous turbulence-like scalar with a power-law
  (Kolmogorov-ish) spectrum; `kind` selects density (strictly positive,
  log-normal-ish), pressure (smoother spectrum) or a velocity component
  (zero-mean, richer small scales).
* ``seismic_wavefield`` — superposition of propagating, band-limited wave
  packets over a smooth background velocity model, i.e. oscillatory with
  sharp localized fronts (hard for interpolation at coarse levels).
* ``weather_wind_speed`` — anisotropic field with strong vertical shear and
  synoptic-scale horizontal structures (SCALE-LETKF's ``U`` component).
* ``combustion_mass_fraction`` — plume-like blobs of CH4 on a nearly zero
  background, bounded to ``[0, 1]`` and spatially sparse (S3D-like).

All generators are deterministic given ``seed`` and return C-contiguous
``float64`` arrays (the paper's fields are all double precision).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


def _validate_shape(shape: Sequence[int]) -> Tuple[int, ...]:
    shape = tuple(int(s) for s in shape)
    if not shape or any(s < 1 for s in shape):
        raise ConfigurationError(f"invalid shape {shape!r}")
    return shape


def _spectral_field(
    shape: Tuple[int, ...],
    spectral_slope: float,
    seed: int,
    low_cut: float = 1.0,
) -> np.ndarray:
    """Gaussian random field with isotropic power-law spectrum ``k^-slope``."""
    rng = np.random.default_rng(seed)
    freqs = np.meshgrid(
        *[np.fft.fftfreq(s) * s for s in shape], indexing="ij", sparse=True
    )
    k2 = sum(f**2 for f in freqs)
    k = np.sqrt(k2)
    amplitude = np.zeros_like(k)
    nonzero = k >= low_cut
    amplitude[nonzero] = k[nonzero] ** (-spectral_slope / 2.0)
    phases = rng.uniform(0.0, 2.0 * np.pi, size=k.shape)
    noise = amplitude * np.exp(1j * phases)
    field = np.fft.ifftn(noise).real
    std = field.std()
    if std > 0:
        field = field / std
    return np.ascontiguousarray(field)


def turbulence_field(
    shape: Sequence[int] = (64, 96, 96),
    kind: str = "density",
    seed: int = 2025,
) -> np.ndarray:
    """Turbulence-like scalar field (Miranda density / pressure / velocity)."""
    shape = _validate_shape(shape)
    kinds = {
        # (spectral slope, positivity transform)
        "density": (5.0 / 3.0 + 2.0, True),
        "pressure": (7.0 / 3.0 + 2.0, True),
        "velocityx": (5.0 / 3.0, False),
        "velocityy": (5.0 / 3.0, False),
        "velocityz": (5.0 / 3.0, False),
    }
    if kind not in kinds:
        raise ConfigurationError(f"unknown turbulence kind {kind!r}")
    slope, positive = kinds[kind]
    offset = {"velocityy": 7, "velocityz": 13}.get(kind, 0)
    field = _spectral_field(shape, slope, seed + offset)
    if positive:
        # Log-normal-like positive field around a mean of ~1 (mass density).
        field = np.exp(0.35 * field)
    else:
        field = 2.0 * field
    return field.astype(np.float64)


def seismic_wavefield(
    shape: Sequence[int] = (112, 112, 40),
    n_sources: int = 6,
    seed: int = 2025,
) -> np.ndarray:
    """RTM-style wavefield snapshot: expanding band-limited wavefronts."""
    shape = _validate_shape(shape)
    rng = np.random.default_rng(seed)
    grids = np.meshgrid(
        *[np.linspace(0.0, 1.0, s) for s in shape], indexing="ij", sparse=True
    )
    field = np.zeros(shape, dtype=np.float64)
    for _ in range(n_sources):
        center = rng.uniform(0.15, 0.85, size=len(shape))
        radius = rng.uniform(0.1, 0.45)
        wavelength = rng.uniform(0.03, 0.08)
        amplitude = rng.uniform(0.5, 1.5)
        r2 = sum((g - c) ** 2 for g, c in zip(grids, center))
        r = np.sqrt(r2)
        envelope = np.exp(-((r - radius) ** 2) / (2 * (wavelength * 1.5) ** 2))
        field += amplitude * envelope * np.sin(2 * np.pi * (r - radius) / wavelength)
    background = _spectral_field(shape, 4.0, seed + 101)
    return (field + 0.05 * background).astype(np.float64)


def weather_wind_speed(
    shape: Sequence[int] = (32, 96, 96),
    seed: int = 2025,
) -> np.ndarray:
    """SCALE-LETKF-like x-direction wind speed: layered, anisotropic field.

    The first axis is treated as the vertical direction: a shear profile makes
    the mean wind grow with height, while horizontal planes carry smooth
    synoptic structures plus weaker small-scale weather noise.
    """
    shape = _validate_shape(shape)
    if len(shape) < 2:
        raise ConfigurationError("weather field needs at least 2 dimensions")
    vertical = np.linspace(0.0, 1.0, shape[0]).reshape((-1,) + (1,) * (len(shape) - 1))
    shear = 4.0 + 18.0 * vertical**1.3
    synoptic = _spectral_field(shape, 4.5, seed + 3)
    gusts = _spectral_field(shape, 2.2, seed + 4)
    field = shear + 3.0 * synoptic + 0.8 * gusts
    return field.astype(np.float64)


def combustion_mass_fraction(
    shape: Sequence[int] = (80, 80, 80),
    n_plumes: int = 8,
    seed: int = 2025,
) -> np.ndarray:
    """S3D-like CH4 mass fraction: sparse plumes on a near-zero background."""
    shape = _validate_shape(shape)
    rng = np.random.default_rng(seed)
    grids = np.meshgrid(
        *[np.linspace(0.0, 1.0, s) for s in shape], indexing="ij", sparse=True
    )
    field = np.zeros(shape, dtype=np.float64)
    for _ in range(n_plumes):
        center = rng.uniform(0.1, 0.9, size=len(shape))
        widths = rng.uniform(0.04, 0.16, size=len(shape))
        amplitude = rng.uniform(0.2, 0.9)
        exponent = sum(
            ((g - c) / w) ** 2 for g, c, w in zip(grids, center, widths)
        )
        field += amplitude * np.exp(-exponent)
    wrinkle = _spectral_field(shape, 3.0, seed + 11)
    field *= 1.0 + 0.15 * wrinkle
    return np.clip(field, 0.0, 1.0).astype(np.float64)
