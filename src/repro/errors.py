"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming from this package with a single ``except`` clause
while still being able to distinguish configuration mistakes from corrupted
streams.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter was supplied (bad error bound, shape, mode...)."""


class StreamFormatError(ReproError, ValueError):
    """A compressed stream is malformed, truncated, or has a bad magic/version."""


class RetrievalError(ReproError, RuntimeError):
    """A progressive retrieval request cannot be satisfied.

    Raised for example when a bitrate budget is smaller than the mandatory
    header + anchor payload, or when an incremental refinement asks for a
    *looser* fidelity than what was already reconstructed.
    """


class NotCompressedError(ReproError, RuntimeError):
    """An operation that requires a compressed stream was called too early."""
