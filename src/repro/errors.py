"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming from this package with a single ``except`` clause
while still being able to distinguish configuration mistakes from corrupted
streams.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter was supplied (bad error bound, shape, mode...)."""


class StreamFormatError(ReproError, ValueError):
    """A compressed stream is malformed, truncated, or has a bad magic/version."""


class RetrievalError(ReproError, RuntimeError):
    """A progressive retrieval request cannot be satisfied.

    Raised for example when a bitrate budget is smaller than the mandatory
    header + anchor payload, or when an incremental refinement asks for a
    *looser* fidelity than what was already reconstructed.
    """


class RemoteSourceError(ReproError, OSError):
    """A remote byte-range backend failed at the transport level.

    Covers connection failures, unexpected HTTP statuses, ``Content-Range``
    mismatches, open circuit breakers, and exceeded retry deadlines.
    Subclasses :class:`OSError` so every existing retry ladder (the
    service's, :class:`~repro.io.remote.RetryingSource`'s) already treats
    it as transient, while staying distinct from
    :class:`StreamFormatError` — the *stream* may be fine, the *network*
    was not.
    """


class RemoteIntegrityError(RemoteSourceError):
    """A fetched payload failed its per-fetch checksum.

    The bytes arrived but do not match the checksum the server declared
    for the range — in-flight corruption, a mid-rewrite mirror, a broken
    proxy.  Retryable (a re-fetch usually heals it) and deliberately *not*
    a :class:`StreamFormatError`: the stored stream is presumed intact.
    """


class NotCompressedError(ReproError, RuntimeError):
    """An operation that requires a compressed stream was called too early."""
