"""On-disk containers with partial (block-range) reads and chunked datasets."""

from __future__ import annotations

from repro.io.container import (
    BlockContainerReader,
    BlockContainerWriter,
    BlockSource,
    is_container,
)
from repro.io.dataset import ChunkedDataset, DatasetReadResult, DatasetShard

__all__ = [
    "BlockContainerWriter",
    "BlockContainerReader",
    "BlockSource",
    "is_container",
    "ChunkedDataset",
    "DatasetReadResult",
    "DatasetShard",
]
