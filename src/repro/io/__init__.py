"""On-disk containers with partial (block-range) reads."""

from __future__ import annotations

from repro.io.container import BlockContainerReader, BlockContainerWriter

__all__ = ["BlockContainerWriter", "BlockContainerReader"]
