"""Async multiplexed byte-range retrieval (event-loop I/O backend).

The sync remote stack (:mod:`repro.io.remote`) maps every FetchOp onto a
ranged GET over **one** persistent connection, lock-serialised — so on a
high-latency link the pipeline is round-trip-bound no matter how many
prefetch threads queue behind the lock.  This module replaces the
transport with an asyncio event loop running in a single daemon thread:

* :class:`AsyncHTTPRangeSource` — the async transport: a pool of up to
  ``connections`` persistent HTTP/1.1 connections per endpoint, a bounded
  in-flight ``window`` (semaphore), and the same strict 206/200 +
  ``Content-Range`` validation as the sync transport.  Each request
  returns ``(payload, declared_crc)`` — under multiplexing a ``last_crc``
  attribute handoff would race, so the CRC travels with the payload.
* async resilience layers mirroring the sync stack semantics exactly:
  :class:`_AsyncVerify` (CRC gate), :class:`_AsyncRetry` (jittered-backoff
  ladder + retry budget + deadline), :class:`_AsyncMirror` (health-ranked
  failover; hedged reads become cheap ``asyncio`` races — the loser is a
  cancelled task, not a thread holding the wire).
* :class:`AsyncRangeSource` — the synchronous facade: exposes the plain
  ``size``/``read_range`` duck type by submitting coroutines to the loop
  thread, so the container reader, prefetch source, engine, service and
  scheduler all work unchanged.
* :class:`AsyncPrefetcher` — drop-in for
  :class:`~repro.retrieval.prefetch.Prefetcher`: ``submit()`` returns a
  ``concurrent.futures.Future``, but instead of queueing thread work it
  batches the ops submitted by one ``prime()`` call, coalesces adjacent
  ranges into single contiguous GETs (split back per-op client-side), and
  dispatches them as concurrent tasks on the shared loop.

Everything above the facade is bitwise-identical to the sync path:
consumed-range accounting lives in ``PrefetchSource`` and never changes,
and coalescing only merges *physical* fetches.  One process-wide loop
thread (:meth:`EventLoopThread.shared`) is reused by every source and
prefetcher; closing a prefetcher never stops a shared loop.
"""

from __future__ import annotations

import asyncio
import threading
import time
import zlib
from concurrent.futures import Future
from typing import Callable, Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from repro.errors import (
    ConfigurationError,
    RemoteIntegrityError,
    RemoteSourceError,
    StreamFormatError,
)
from repro.io.remote import (
    CRC_HEADER,
    RETRYABLE_ERRORS,
    CircuitBreaker,
    _FINGERPRINT_TAIL,
    _merge_stats,
    _Mirror,
    _parse_content_range,
    is_url,
    jittered_backoff,
)

__all__ = [
    "AsyncHTTPRangeSource",
    "AsyncPrefetcher",
    "AsyncRangeSource",
    "EventLoopThread",
    "async_available",
    "coalesce_ops",
    "open_async_source",
    "resolve_io_backend",
]

#: Persistent connections per endpoint (pool ceiling, opened lazily).
DEFAULT_CONNECTIONS = 6

#: In-flight requests per endpoint (window semaphore).  A little above the
#: pool size so a request is already queued when a connection frees up.
DEFAULT_WINDOW = 8

#: Gap (bytes) two prefetch ops may be apart and still coalesce into one
#: contiguous GET.  0 = only touching/overlapping ops merge, which is the
#: conservative default: plans already coalesce, so prime-time neighbours
#: are genuinely adjacent and merging never over-fetches.
DEFAULT_COALESCE_GAP = 0

#: Ceiling on one coalesced GET, so a huge merged run still pipelines
#: across connections instead of serialising into one monster request.
DEFAULT_MAX_BATCH = 8 << 20

#: Valid ``--io`` / profile ``io_backend`` choices.
IO_BACKENDS = ("auto", "async", "threads", "sync")


def async_available() -> bool:
    """True when the asyncio backend can run (stdlib-only; always true on
    CPython ≥ 3.10 — kept as a function so exotic platforms can stub it)."""
    return True


def resolve_io_backend(choice: Optional[str], path_or_url) -> str:
    """Resolve an ``--io`` choice to a concrete backend.

    ``auto`` (or ``None``) picks ``async`` for http(s) URLs when the
    asyncio backend is available and ``threads`` otherwise; explicit
    choices pass through after validation.
    """
    if choice in (None, "auto"):
        return "async" if is_url(path_or_url) and async_available() else "threads"
    if choice not in IO_BACKENDS:
        raise ConfigurationError(
            f"io backend must be one of {IO_BACKENDS}, got {choice!r}"
        )
    return choice


# --------------------------------------------------------------- loop thread


class EventLoopThread:
    """One asyncio event loop running in a daemon thread.

    The bridge between the synchronous retrieval stack and the async
    transport: :meth:`run` submits a coroutine from any thread and returns
    a ``concurrent.futures.Future`` (exactly what ``PrefetchSource``
    already consumes).  :meth:`shared` hands out one process-wide instance
    that sources and prefetchers reuse — asyncio primitives bind to their
    loop, so everything that talks to one another must live on the same
    loop.  The shared loop is never stopped by its users; private loops
    (tests) own :meth:`close`.
    """

    _shared: Optional["EventLoopThread"] = None
    _shared_lock = threading.Lock()

    def __init__(self, name: str = "repro-aio") -> None:
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._thread.start()
        self._started.wait()

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._started.set()
        self._loop.run_forever()

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return self._loop

    @property
    def alive(self) -> bool:
        return self._thread.is_alive() and not self._loop.is_closed()

    def run(self, coro) -> Future:
        """Schedule ``coro`` on the loop; returns a concurrent Future."""
        if not self.alive:
            coro.close()
            raise RuntimeError("event-loop thread is not running")
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def call(self, coro, timeout: Optional[float] = None):
        """Run ``coro`` on the loop and block for its result."""
        return self.run(coro).result(timeout)

    def call_soon(self, fn: Callable[..., None], *args) -> None:
        self._loop.call_soon_threadsafe(fn, *args)

    def close(self, timeout: float = 5.0) -> None:
        """Stop a *private* loop (never called on the shared instance)."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout)
        if not self._thread.is_alive() and not self._loop.is_closed():
            self._loop.close()

    @classmethod
    def shared(cls) -> "EventLoopThread":
        with cls._shared_lock:
            if cls._shared is None or not cls._shared.alive:
                cls._shared = cls(name="repro-aio-shared")
            return cls._shared


# ----------------------------------------------------------------- transport


class _AioConn:
    """One pooled connection: stream pair + freshness marker."""

    __slots__ = ("reader", "writer", "fresh")

    def __init__(self, reader, writer) -> None:
        self.reader = reader
        self.writer = writer
        self.fresh = True


#: Failures that mark a *reused* keep-alive connection as stale (server
#: closed it between requests) — retried once on a fresh connection, the
#: async analogue of the sync transport's RemoteDisconnected handling.
_STALE_ERRORS = (
    asyncio.IncompleteReadError,
    ConnectionResetError,
    BrokenPipeError,
)


class AsyncHTTPRangeSource:
    """Async byte-range transport over one HTTP(S) endpoint.

    A pool of up to ``connections`` persistent HTTP/1.1 connections
    (opened lazily, reused LIFO) and a ``window`` semaphore bounding
    in-flight requests.  :meth:`aget` returns ``(payload, declared_crc)``
    — the CRC travels with the payload because a ``last_crc`` attribute
    would race under multiplexing.  Validation matches the sync transport:
    206 must carry an exact ``Content-Range`` and full-length payload, a
    200 (server ignored ``Range``) is sliced with the over-fetch counted
    as egress, anything else raises.  Every request is gated and fed by a
    per-endpoint :class:`~repro.io.remote.CircuitBreaker`.

    All state mutation happens on the loop thread, so no locks; counters
    are plain ints readable from any thread.  Construct via
    :meth:`open` (async) or let :func:`open_async_source` do it.
    """

    is_remote_source = True

    def __init__(
        self,
        url: str,
        *,
        connections: int = DEFAULT_CONNECTIONS,
        window: int = DEFAULT_WINDOW,
        timeout: float = 10.0,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        parts = urlsplit(url)
        if parts.scheme not in ("http", "https") or not parts.hostname:
            raise ConfigurationError(f"not a usable http(s) URL: {url!r}")
        self.url = url
        self.timeout = float(timeout)
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.connections = max(1, int(connections))
        self.window = max(1, int(window))
        self._ssl = parts.scheme == "https"
        self._host = parts.hostname
        self._port = parts.port or (443 if self._ssl else 80)
        self._path = parts.path or "/"
        if parts.query:
            self._path += "?" + parts.query
        host_header = parts.hostname
        if parts.port is not None:
            host_header += f":{parts.port}"
        self._host_header = host_header
        self.endpoint = f"{self._host}:{self._port}"
        self._closed = False
        # Loop-bound primitives are created in open() (they must be born
        # on the running loop for 3.10 compatibility).
        self._idle: Optional[asyncio.LifoQueue] = None
        self._sem: Optional[asyncio.Semaphore] = None
        self._conn_count = 0
        self.size: Optional[int] = None
        self.n_requests = 0
        self.egress_bytes = 0
        self.connections_opened = 0
        self._inflight = 0
        self.inflight_max = 0

    async def open(self) -> "AsyncHTTPRangeSource":
        """Create loop-bound primitives and probe the object size."""
        self._idle = asyncio.LifoQueue()
        self._sem = asyncio.Semaphore(self.window)
        self.size = await self._probe_size()
        return self

    # ------------------------------------------------------------------- pool

    async def _connect(self) -> _AioConn:
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(
                    self._host, self._port, ssl=True if self._ssl else None
                ),
                self.timeout,
            )
        except asyncio.TimeoutError as exc:
            raise RemoteSourceError(
                f"connect to {self.endpoint} timed out after {self.timeout}s"
            ) from exc
        except OSError as exc:
            raise RemoteSourceError(
                f"connect to {self.endpoint} failed: {exc}"
            ) from exc
        self.connections_opened += 1
        return _AioConn(reader, writer)

    async def _acquire(self) -> _AioConn:
        assert self._idle is not None
        try:
            conn = self._idle.get_nowait()
            conn.fresh = False
            return conn
        except asyncio.QueueEmpty:
            pass
        if self._conn_count < self.connections:
            self._conn_count += 1
            try:
                return await self._connect()
            except BaseException:
                self._conn_count -= 1
                raise
        try:
            conn = await asyncio.wait_for(self._idle.get(), self.timeout)
        except asyncio.TimeoutError as exc:
            raise RemoteSourceError(
                f"no pooled connection to {self.endpoint} freed within "
                f"{self.timeout}s"
            ) from exc
        conn.fresh = False
        return conn

    def _discard(self, conn: _AioConn) -> None:
        self._conn_count -= 1
        try:
            conn.writer.close()
        except Exception:  # pragma: no cover - close is best-effort
            pass

    def _release(self, conn: _AioConn, reusable: bool) -> None:
        if self._closed or not reusable:
            self._discard(conn)
        else:
            assert self._idle is not None
            self._idle.put_nowait(conn)

    # -------------------------------------------------------------- wire talk

    async def _exchange(
        self, conn: _AioConn, method: str, headers: Dict[str, str]
    ) -> Tuple[int, Dict[str, str], bytes]:
        lines = [f"{method} {self._path} HTTP/1.1", f"Host: {self._host_header}"]
        lines.extend(f"{key}: {value}" for key, value in headers.items())
        lines.extend(["", ""])
        conn.writer.write("\r\n".join(lines).encode("latin-1"))
        await conn.writer.drain()
        status_line = await conn.reader.readline()
        if not status_line:
            raise asyncio.IncompleteReadError(b"", None)
        parts = status_line.decode("latin-1", "replace").split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise RemoteSourceError(
                f"malformed status line {status_line!r} ({self.url})"
            )
        status = int(parts[1])
        resp_headers: Dict[str, str] = {}
        while True:
            line = await conn.reader.readline()
            if line == b"":
                raise asyncio.IncompleteReadError(b"", None)
            if line in (b"\r\n", b"\n"):
                break
            key, _, value = line.decode("latin-1", "replace").partition(":")
            resp_headers[key.strip().lower()] = value.strip()
        body = b""
        if method != "HEAD" and status not in (204, 304):
            length_text = resp_headers.get("content-length")
            if length_text is None:
                raise RemoteSourceError(
                    f"response without Content-Length ({self.url})"
                )
            body = await conn.reader.readexactly(int(length_text))
        return status, resp_headers, body

    async def _roundtrip(
        self, method: str, headers: Dict[str, str]
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One request/response over a pooled connection.

        A reused keep-alive connection the server already closed surfaces
        as an immediate EOF/reset; that single case is retried once on a
        fresh connection (idempotent GET/HEAD), mirroring the sync
        transport.  A cancelled request discards its connection — its wire
        state is unknown.
        """
        for attempt in (0, 1):
            conn = await self._acquire()
            reused = not conn.fresh
            try:
                status, resp_headers, body = await asyncio.wait_for(
                    self._exchange(conn, method, headers), self.timeout
                )
            except asyncio.CancelledError:
                self._discard(conn)
                raise
            except asyncio.TimeoutError as exc:
                self._discard(conn)
                raise RemoteSourceError(
                    f"{method} {self.url} timed out after {self.timeout}s"
                ) from exc
            except (asyncio.IncompleteReadError, ConnectionError, OSError, EOFError) as exc:
                self._discard(conn)
                if attempt == 0 and reused and isinstance(exc, _STALE_ERRORS):
                    continue
                if isinstance(exc, RemoteSourceError):
                    raise
                raise RemoteSourceError(
                    f"{method} {self.url} failed: {exc}"
                ) from exc
            reusable = resp_headers.get("connection", "").lower() != "close"
            self._release(conn, reusable)
            return status, resp_headers, body
        raise AssertionError("unreachable")  # pragma: no cover

    async def _probe_size(self) -> int:
        try:
            status, headers, _body = await self._windowed("HEAD", {})
            if status == 200 and headers.get("content-length") is not None:
                return int(headers["content-length"])
        except RemoteSourceError:
            pass  # fall through to the ranged probe
        status, headers, body = await self._windowed("GET", {"Range": "bytes=0-0"})
        self.egress_bytes += len(body)
        if status == 206:
            return _parse_content_range(headers.get("content-range"), self.url)[2]
        if status == 200:
            return len(body)
        raise RemoteSourceError(f"cannot size {self.url}: HTTP {status}")

    async def _windowed(
        self, method: str, headers: Dict[str, str]
    ) -> Tuple[int, Dict[str, str], bytes]:
        """A roundtrip under the in-flight window, with depth accounting."""
        assert self._sem is not None
        async with self._sem:
            self._inflight += 1
            self.inflight_max = max(self.inflight_max, self._inflight)
            try:
                self.n_requests += 1
                return await self._roundtrip(method, headers)
            finally:
                self._inflight -= 1

    # ------------------------------------------------------------------ reads

    async def aget(self, offset: int, length: int) -> Tuple[bytes, Optional[int]]:
        """Fetch one range; returns ``(payload, server_declared_crc)``."""
        assert self.size is not None
        if offset < 0 or length < 0 or offset + length > self.size:
            raise StreamFormatError(
                f"read of [{offset}, {offset + length}) past remote object "
                f"end {self.size} ({self.url})"
            )
        if length == 0:
            return b"", None
        if not self.breaker.allow():
            raise RemoteSourceError(
                f"circuit open for {self.endpoint}: failing fast ({self.url})"
            )
        try:
            result = await self._ranged_get(offset, length)
        except RETRYABLE_ERRORS:
            self.breaker.record_failure()
            raise
        except asyncio.CancelledError:
            # A cancelled hedge/prefetch is not an endpoint failure.
            raise
        self.breaker.record_success()
        return result

    async def _ranged_get(
        self, offset: int, length: int
    ) -> Tuple[bytes, Optional[int]]:
        status, headers, body = await self._windowed(
            "GET", {"Range": f"bytes={offset}-{offset + length - 1}"}
        )
        self.egress_bytes += len(body)
        crc_text = headers.get(CRC_HEADER.lower())
        if status == 206:
            start, end, _total = _parse_content_range(
                headers.get("content-range"), self.url
            )
            if start != offset or end != offset + length - 1:
                raise RemoteSourceError(
                    f"Content-Range bytes {start}-{end} does not match "
                    f"requested [{offset}, {offset + length}) ({self.url})"
                )
            if len(body) != length:
                raise RemoteSourceError(
                    f"short payload: wanted {length} B at offset {offset}, "
                    f"got {len(body)} ({self.url})"
                )
            data = body
        elif status == 200:
            if len(body) < offset + length:
                raise RemoteSourceError(
                    f"full-body response of {len(body)} B cannot cover "
                    f"[{offset}, {offset + length}) ({self.url})"
                )
            data = body[offset : offset + length]
            crc_text = None  # a declared CRC covers the full body, not the slice
        else:
            raise RemoteSourceError(
                f"HTTP {status} for range [{offset}, {offset + length}) "
                f"({self.url})"
            )
        crc: Optional[int] = None
        if crc_text is not None:
            try:
                crc = int(crc_text) & 0xFFFFFFFF
            except ValueError:
                crc = None
        return data, crc

    async def aread_range(self, offset: int, length: int) -> bytes:
        return (await self.aget(offset, length))[0]

    async def aread_tail(self, span: int) -> Tuple[int, bytes]:
        span = max(1, int(span))
        if not self.breaker.allow():
            raise RemoteSourceError(
                f"circuit open for {self.endpoint}: failing fast ({self.url})"
            )
        try:
            status, headers, body = await self._windowed(
                "GET", {"Range": f"bytes=-{span}"}
            )
        except RETRYABLE_ERRORS:
            self.breaker.record_failure()
            raise
        self.egress_bytes += len(body)
        self.breaker.record_success()
        if status == 206:
            start, end, total = _parse_content_range(
                headers.get("content-range"), self.url
            )
            if len(body) != end - start + 1:
                raise RemoteSourceError(
                    f"short tail payload: declared {end - start + 1} B, "
                    f"got {len(body)} ({self.url})"
                )
            return total, body
        if status == 200:
            return len(body), body[-span:]
        raise RemoteSourceError(
            f"HTTP {status} for tail probe of {span} B ({self.url})"
        )

    # ------------------------------------------------------------ accounting

    def stats(self) -> dict:
        return {
            "requests": self.n_requests,
            "egress_bytes": self.egress_bytes,
            "breaker": {self.endpoint: self.breaker.state},
            "inflight_max": self.inflight_max,
            "connections_opened": self.connections_opened,
        }

    async def aclose(self) -> None:
        self._closed = True
        if self._idle is None:
            return
        while True:
            try:
                conn = self._idle.get_nowait()
            except asyncio.QueueEmpty:
                break
            self._discard(conn)


# ---------------------------------------------------------- resilience layers


class _AsyncVerify:
    """Async CRC gate: the :class:`~repro.io.remote.VerifyingSource` twin.

    Consumes the transport's ``aget`` (payload + CRC travel together) and
    exposes ``aread_range``; a mismatch raises
    :class:`~repro.errors.RemoteIntegrityError` (retryable), ranges with
    no declared CRC pass through unverified (counted separately).
    """

    is_remote_source = True

    def __init__(self, inner) -> None:
        self._inner = inner
        self.size = inner.size
        self.verified = 0
        self.unverified = 0
        self.mismatches = 0

    async def aread_range(self, offset: int, length: int) -> bytes:
        data, expected = await self._inner.aget(offset, length)
        if expected is None:
            self.unverified += 1
            return data
        actual = zlib.crc32(data)
        if actual != expected:
            self.mismatches += 1
            raise RemoteIntegrityError(
                f"payload CRC mismatch for [{offset}, {offset + length}): "
                f"got {actual:#010x}, server declared {expected:#010x}"
            )
        self.verified += 1
        return data

    async def aread_tail(self, span: int):
        return await self._inner.aread_tail(span)

    def stats(self) -> dict:
        merged = _async_inner_stats(self._inner)
        merged.update(
            crc_verified=merged.get("crc_verified", 0) + self.verified,
            crc_mismatches=merged.get("crc_mismatches", 0) + self.mismatches,
        )
        return merged

    async def aclose(self) -> None:
        await _aclose(self._inner)


class _CrcDropper:
    """Adapter for ``verify=False`` stacks: ``aget`` → plain ``aread_range``."""

    is_remote_source = True

    def __init__(self, inner) -> None:
        self._inner = inner
        self.size = inner.size

    async def aread_range(self, offset: int, length: int) -> bytes:
        return (await self._inner.aget(offset, length))[0]

    async def aread_tail(self, span: int):
        return await self._inner.aread_tail(span)

    def stats(self) -> dict:
        return _async_inner_stats(self._inner)

    async def aclose(self) -> None:
        await _aclose(self._inner)


class _AsyncRetry:
    """Async retry ladder: the :class:`~repro.io.remote.RetryingSource` twin.

    Same semantics — per-read attempts against :data:`RETRYABLE_ERRORS`
    with :func:`jittered_backoff` sleeps, a whole-source retry budget, and
    a monotonic deadline that fails fast and refuses backoffs that would
    cross it.  Backoffs are ``await asyncio.sleep`` — a retrying range
    never blocks the other in-flight ranges.
    """

    is_remote_source = True

    def __init__(
        self,
        inner,
        *,
        retries: int = 3,
        retry_budget: int = 32,
        backoff: float = 0.05,
        backoff_cap: float = 1.0,
        label: str = "",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._inner = inner
        self.size = inner.size
        self.retries = max(0, int(retries))
        self.backoff = max(0.0, float(backoff))
        self.backoff_cap = max(0.0, float(backoff_cap))
        self.label = label or getattr(inner, "url", "") or "remote"
        self._clock = clock
        self.budget_left = max(0, int(retry_budget))
        self.retries_used = 0
        self.retry_delays: List[float] = []
        self.deadline: Optional[float] = None

    def set_deadline(self, deadline: Optional[float]) -> None:
        self.deadline = deadline

    def _expired(self, margin: float = 0.0) -> bool:
        return self.deadline is not None and self._clock() + margin >= self.deadline

    async def aread_range(self, offset: int, length: int) -> bytes:
        if self._expired():
            raise RemoteSourceError(
                f"request deadline exceeded before reading "
                f"[{offset}, {offset + length}) from {self.label}"
            )
        attempt = 0
        while True:
            try:
                return await self._inner.aread_range(offset, length)
            except RETRYABLE_ERRORS as exc:
                attempt += 1
                if attempt > self.retries or self.budget_left <= 0:
                    raise
                self.budget_left -= 1
                self.retries_used += 1
                delay = jittered_backoff(
                    f"{self.label}@{offset}", attempt, self.backoff, self.backoff_cap
                )
                if self._expired(margin=delay):
                    raise exc
                self.retry_delays.append(delay)
                if delay > 0.0:
                    await asyncio.sleep(delay)

    async def aread_tail(self, span: int):
        # No ladder: a failed freshness probe means "freshness unknown".
        return await self._inner.aread_tail(span)

    def stats(self) -> dict:
        merged = _async_inner_stats(self._inner)
        merged.update(
            retries=merged.get("retries", 0) + self.retries_used,
            retry_budget_left=self.budget_left,
        )
        return merged

    async def aclose(self) -> None:
        await _aclose(self._inner)


class _AsyncMirror:
    """Failover + hedged reads across async endpoint stacks.

    Same health model as :class:`~repro.io.remote.MirrorSource` (reuses
    its :class:`~repro.io.remote._Mirror` records), but hedges are
    ``asyncio`` races: the primary read runs as a task, and once it has
    outlived the hedge threshold the same range fires at the backup.
    First payload wins; the loser is **cancelled** — which actually aborts
    the request and recycles its connection, so a hedge costs nothing
    unless the loser finishes in the same tick (those bytes land in
    ``hedge_wasted_bytes`` like the sync path's on-the-wire losers).
    """

    is_remote_source = True

    def __init__(
        self,
        sources: Sequence,
        *,
        hedge_delay: Optional[float] = None,
        hedge_quantile: float = 0.9,
        min_samples: int = 8,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not sources:
            raise ConfigurationError("mirror set needs at least one source")
        sizes = {int(source.size) for source in sources}
        if len(sizes) != 1:
            raise RemoteSourceError(
                f"mirrors disagree on object size: {sorted(sizes)}"
            )
        self._mirrors = [_Mirror(source) for source in sources]
        self.size = sizes.pop()
        self.hedge_delay = hedge_delay
        self.hedge_quantile = float(hedge_quantile)
        self.min_samples = max(2, int(min_samples))
        self._clock = clock
        self._latencies: List[float] = []
        self.failovers = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.hedge_cancelled = 0
        self.hedge_wasted_bytes = 0

    def _ranked(self) -> List[_Mirror]:
        return sorted(self._mirrors, key=_Mirror.health_key)

    def _hedge_threshold(self) -> Optional[float]:
        if self.hedge_delay is not None:
            return self.hedge_delay
        if len(self._latencies) < self.min_samples:
            return None
        ordered = sorted(self._latencies)
        index = min(len(ordered) - 1, int(self.hedge_quantile * len(ordered)))
        return ordered[index]

    def _record(self, mirror: _Mirror, ok: bool, seconds: Optional[float]) -> None:
        mirror.record(ok, seconds)
        if ok and seconds is not None:
            self._latencies.append(seconds)
            if len(self._latencies) > 64:
                del self._latencies[0]

    async def aread_range(self, offset: int, length: int) -> bytes:
        ranked = self._ranked()
        last_error: Optional[BaseException] = None
        for rank, mirror in enumerate(ranked):
            backup = ranked[rank + 1] if rank + 1 < len(ranked) else None
            threshold = self._hedge_threshold()
            try:
                if (
                    threshold is not None
                    and backup is not None
                    and backup.failures == 0
                ):
                    return await self._hedged(mirror, backup, offset, length, threshold)
                return await self._timed(mirror, offset, length)
            except RETRYABLE_ERRORS as exc:
                last_error = exc
                if backup is not None:
                    self.failovers += 1
        assert last_error is not None
        raise last_error

    async def _timed(self, mirror: _Mirror, offset: int, length: int) -> bytes:
        start = self._clock()
        try:
            data = await mirror.source.aread_range(offset, length)
        except RETRYABLE_ERRORS:
            self._record(mirror, False, None)
            raise
        self._record(mirror, True, self._clock() - start)
        return data

    async def _hedged(
        self,
        primary: _Mirror,
        backup: _Mirror,
        offset: int,
        length: int,
        threshold: float,
    ) -> bytes:
        owners: Dict[asyncio.Task, _Mirror] = {}
        primary_task = asyncio.ensure_future(self._timed(primary, offset, length))
        owners[primary_task] = primary
        done, pending = await asyncio.wait({primary_task}, timeout=threshold)
        if not done:
            self.hedges += 1
            backup_task = asyncio.ensure_future(self._timed(backup, offset, length))
            owners[backup_task] = backup
        first_error: Optional[BaseException] = None
        pending = set(owners)
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            winner: Optional[asyncio.Task] = None
            for task in done:
                if task.cancelled():
                    continue
                error = task.exception()
                if error is None and winner is None:
                    winner = task
                elif error is None:
                    # A loser that finished in the same tick: its bytes
                    # hit the wire for nothing.
                    self.hedge_wasted_bytes += length
                elif first_error is None:
                    first_error = error
            if winner is not None:
                if owners[winner] is backup:
                    self.hedge_wins += 1
                for loser in pending:
                    if loser.cancel():
                        self.hedge_cancelled += 1
                if pending:
                    await asyncio.wait(pending)
                return winner.result()
        assert first_error is not None
        if isinstance(first_error, RETRYABLE_ERRORS):
            raise first_error
        raise RemoteSourceError(  # pragma: no cover - non-retryable loser
            f"hedged read failed: {first_error}"
        )

    async def aread_tail(self, span: int):
        last_error: Optional[BaseException] = None
        for mirror in self._ranked():
            probe = getattr(mirror.source, "aread_tail", None)
            if probe is None:
                continue
            try:
                return await probe(span)
            except RETRYABLE_ERRORS as exc:
                last_error = exc
        if last_error is not None:
            raise last_error
        raise RemoteSourceError("no mirror supports tail probes")

    def set_deadline(self, deadline: Optional[float]) -> None:
        for mirror in self._mirrors:
            setter = getattr(mirror.source, "set_deadline", None)
            if setter is not None:
                setter(deadline)

    def stats(self) -> dict:
        merged: dict = {}
        peak = 0
        for mirror in self._mirrors:
            child = _async_inner_stats(mirror.source)
            peak = max(peak, child.get("inflight_max", 0))
            _merge_stats(merged, child)
        # Concurrency depth is a per-endpoint peak, not additive.
        if "inflight_max" in merged:
            merged["inflight_max"] = peak
        merged.update(
            failovers=merged.get("failovers", 0) + self.failovers,
            hedges=self.hedges,
            hedge_wins=self.hedge_wins,
            hedge_cancelled=self.hedge_cancelled,
            hedge_wasted_bytes=self.hedge_wasted_bytes,
            mirrors=[
                {
                    "label": getattr(
                        mirror.source, "label", getattr(mirror.source, "url", "")
                    ),
                    "failures": mirror.failures,
                    "latency_ewma_s": mirror.latency,
                    "reads": mirror.reads,
                }
                for mirror in self._mirrors
            ],
        )
        return merged

    async def aclose(self) -> None:
        for mirror in self._mirrors:
            await _aclose(mirror.source)


def _async_inner_stats(source) -> dict:
    stats = getattr(source, "stats", None)
    return dict(stats()) if callable(stats) else {}


async def _aclose(source) -> None:
    closer = getattr(source, "aclose", None)
    if closer is not None:
        await closer()


# -------------------------------------------------------------------- facade


class AsyncRangeSource:
    """Synchronous facade over an async endpoint stack.

    Speaks the plain byte-range duck type (``size`` / ``read_range`` /
    ``read_tail`` / ``stats`` / ``set_deadline`` / ``close``) by running
    coroutines on the owning :class:`EventLoopThread`, so every existing
    consumer — container reader, prefetch source, engine, service,
    scheduler — works unchanged.  Also exposes the async side
    (``aread_range`` + ``supports_async``) so :class:`AsyncPrefetcher`
    can dispatch *without* a thread hop per range.
    """

    is_remote_source = True
    supports_async = True
    io_backend = "async"

    def __init__(
        self,
        top,
        loop: EventLoopThread,
        *,
        label: str = "",
        owns_loop: bool = False,
    ) -> None:
        self._top = top
        self._loop = loop
        self._owns_loop = owns_loop
        self.size = int(top.size)
        self.label = label
        self.url = label

    @property
    def loop_thread(self) -> EventLoopThread:
        return self._loop

    def read_range(self, offset: int, length: int) -> bytes:
        return self._loop.call(self._top.aread_range(offset, length))

    def aread_range(self, offset: int, length: int):
        """Coroutine view for async-aware callers (no thread hop)."""
        return self._top.aread_range(offset, length)

    def read_tail(self, span: int):
        return self._loop.call(self._top.aread_tail(span))

    def set_deadline(self, deadline: Optional[float]) -> None:
        setter = getattr(self._top, "set_deadline", None)
        if setter is not None:
            setter(deadline)

    def stats(self) -> dict:
        merged = _async_inner_stats(self._top)
        merged["io_backend"] = "async"
        return merged

    def close(self) -> None:
        if self._loop.alive:
            try:
                self._loop.call(_aclose(self._top), timeout=5.0)
            except Exception:  # pragma: no cover - close is best-effort
                pass
        if self._owns_loop:
            self._loop.close()

    def __enter__(self) -> "AsyncRangeSource":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_async_source(
    url: str,
    mirrors: Sequence[str] = (),
    *,
    timeout: float = 10.0,
    verify: bool = True,
    retries: int = 3,
    retry_budget: int = 32,
    backoff: float = 0.05,
    backoff_cap: float = 1.0,
    breaker_threshold: int = 5,
    breaker_cooldown: float = 1.0,
    hedge_delay: Optional[float] = None,
    connections: int = DEFAULT_CONNECTIONS,
    window: int = DEFAULT_WINDOW,
    tamper: Optional[Callable[[str, object], object]] = None,
    clock: Callable[[], float] = time.monotonic,
    loop: Optional[EventLoopThread] = None,
) -> AsyncRangeSource:
    """Build the canonical async stack over one URL (plus replicas).

    Per endpoint: :class:`AsyncHTTPRangeSource` (private breaker) →
    ``tamper`` hook (an async fault wrapper such as
    :meth:`~repro.io.faults.FaultInjector.tamper_async`, sitting *below*
    verification) → :class:`_AsyncVerify` → :class:`_AsyncRetry`; replica
    ``mirrors`` join the stacks under :class:`_AsyncMirror`.  Endpoint
    sizes are probed concurrently; an endpoint dead at open time is
    failover-at-construction (dropped) when replicas exist.  Returns the
    synchronous :class:`AsyncRangeSource` facade bound to ``loop`` (the
    process-shared loop thread by default).
    """
    loop = loop or EventLoopThread.shared()

    async def endpoint_stack(endpoint_url: str):
        transport = AsyncHTTPRangeSource(
            endpoint_url,
            connections=connections,
            window=window,
            timeout=timeout,
            breaker=CircuitBreaker(
                threshold=breaker_threshold, cooldown=breaker_cooldown, clock=clock
            ),
        )
        await transport.open()
        wrapped = tamper(endpoint_url, transport) if tamper is not None else transport
        wrapped = _AsyncVerify(wrapped) if verify else _CrcDropper(wrapped)
        return _AsyncRetry(
            wrapped,
            retries=retries,
            retry_budget=retry_budget,
            backoff=backoff,
            backoff_cap=backoff_cap,
            label=endpoint_url,
            clock=clock,
        )

    async def build():
        endpoints = (url, *tuple(mirrors))
        if len(endpoints) == 1:
            return await endpoint_stack(url)
        outcomes = await asyncio.gather(
            *(endpoint_stack(endpoint) for endpoint in endpoints),
            return_exceptions=True,
        )
        stacks, first_error = [], None
        for outcome in outcomes:
            if isinstance(outcome, (RemoteSourceError, OSError)):
                first_error = first_error or outcome
            elif isinstance(outcome, BaseException):
                raise outcome
            else:
                stacks.append(outcome)
        if not stacks:
            raise first_error
        if len(stacks) == 1:
            return stacks[0]
        return _AsyncMirror(stacks, hedge_delay=hedge_delay, clock=clock)

    top = loop.call(build())
    return AsyncRangeSource(top, loop, label=url)


# ---------------------------------------------------------------- prefetcher


def coalesce_ops(
    ops: Sequence[Tuple],
    gap: int = DEFAULT_COALESCE_GAP,
    max_batch: int = DEFAULT_MAX_BATCH,
) -> List[Tuple[int, int, List[Tuple]]]:
    """Merge ``(offset, length, ...)`` ops into contiguous fetch batches.

    Ops are sorted by offset and merged while the next op starts within
    ``gap`` bytes of the running end and the merged extent stays within
    ``max_batch``.  Returns ``[(start, total_length, [op, ...]), ...]`` —
    each member op's payload is a slice of its batch, so one GET serves
    the whole run and is split back per-op client-side (the loopback
    server answers true multi-range requests with a full 200 body, so
    batches are always a single contiguous range).
    """
    batches: List[Tuple[int, int, List[Tuple]]] = []
    for op in sorted(ops, key=lambda item: (item[0], item[1])):
        offset, length = int(op[0]), int(op[1])
        if batches:
            start, end, members = batches[-1]
            merged_end = max(end, offset + length)
            if offset <= end + gap and merged_end - start <= max_batch:
                members.append(op)
                batches[-1] = (start, merged_end, members)
                continue
        batches.append((offset, offset + length, [op]))
    return [(start, end - start, members) for start, end, members in batches]


async def _call_blocking(fn, args):
    return await asyncio.get_running_loop().run_in_executor(None, lambda: fn(*args))


class AsyncPrefetcher:
    """Event-loop prefetcher speaking the ``Prefetcher`` duck type.

    ``submit(bound_read_range, offset, length)`` returns a
    ``concurrent.futures.Future`` exactly like the thread prefetcher, so
    :class:`~repro.retrieval.prefetch.PrefetchSource` is oblivious.  Ops
    submitted in one burst (a ``prime()`` call lands all its submits
    before the loop thread wakes) are grouped per source, coalesced with
    :func:`coalesce_ops`, and fetched as concurrent tasks — many ranges
    in flight, adjacent ranges as one GET.

    Only bound ``read_range`` methods of async-capable owners
    (``supports_async``) take the fast path; anything else — local
    ``FileSource``, plain sync stacks — runs in the loop's default thread
    pool, preserving semantics.  :meth:`close` cancels queued and
    in-flight work (cancelled/raised futures are exactly what
    ``PrefetchSource`` already handles by refund + direct read) but never
    stops a *shared* loop — other sources and prefetchers keep running.
    """

    io_backend = "async"

    def __init__(
        self,
        depth: int = 4,
        *,
        loop: Optional[EventLoopThread] = None,
        coalesce_gap: int = DEFAULT_COALESCE_GAP,
        max_batch_bytes: int = DEFAULT_MAX_BATCH,
    ) -> None:
        self.depth = max(1, int(depth))
        self.coalesce_gap = max(0, int(coalesce_gap))
        self.max_batch_bytes = max(1, int(max_batch_bytes))
        self._loop = loop or EventLoopThread.shared()
        self._lock = threading.Lock()
        self._pending: List[Tuple[object, int, int, Future]] = []
        self._flush_queued = False
        self._tasks: set = set()  # touched only on the loop thread
        self._closed = False
        self.batches = 0
        self.batched_ops = 0
        self.fallback_ops = 0

    @property
    def loop_thread(self) -> EventLoopThread:
        return self._loop

    @property
    def closed(self) -> bool:
        return self._closed

    def submit(self, fn, *args) -> Future:
        if self._closed or not self._loop.alive:
            # Same contract as a shut-down ThreadPoolExecutor, which
            # PrefetchSource already catches and degrades around.
            raise RuntimeError("cannot schedule new futures after shutdown")
        owner = getattr(fn, "__self__", None)
        if (
            owner is not None
            and getattr(owner, "supports_async", False)
            and getattr(fn, "__name__", "") == "read_range"
            and len(args) == 2
        ):
            future: Future = Future()
            with self._lock:
                self._pending.append((owner, int(args[0]), int(args[1]), future))
                queue_flush = not self._flush_queued
                self._flush_queued = True
            if queue_flush:
                self._loop.call_soon(self._flush)
            return future
        self.fallback_ops += 1
        return self._loop.run(_call_blocking(fn, args))

    def _flush(self) -> None:
        # Runs on the loop thread: drain the burst, batch per owner.
        with self._lock:
            pending, self._pending = self._pending, []
            self._flush_queued = False
        if self._closed:
            for _owner, _offset, _length, future in pending:
                future.cancel()
            return
        groups: Dict[int, Tuple[object, List[Tuple[int, int, Future]]]] = {}
        for owner, offset, length, future in pending:
            groups.setdefault(id(owner), (owner, []))[1].append(
                (offset, length, future)
            )
        loop = asyncio.get_running_loop()
        for owner, ops in groups.values():
            for start, total, members in coalesce_ops(
                ops, self.coalesce_gap, self.max_batch_bytes
            ):
                task = loop.create_task(self._fetch(owner, start, total, members))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
                self.batches += 1
                self.batched_ops += len(members)

    async def _fetch(
        self,
        owner,
        start: int,
        total: int,
        members: List[Tuple[int, int, Future]],
    ) -> None:
        try:
            data = await owner.aread_range(start, total)
        except asyncio.CancelledError:
            for _offset, _length, future in members:
                future.cancel()
            raise
        except BaseException as exc:
            for _offset, _length, future in members:
                try:
                    future.set_exception(exc)
                except Exception:  # already cancelled by close()
                    pass
        else:
            for offset, length, future in members:
                try:
                    future.set_result(data[offset - start : offset - start + length])
                except Exception:  # already cancelled by close()
                    pass

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with self._lock:
            pending, self._pending = self._pending, []
        for _owner, _offset, _length, future in pending:
            future.cancel()
        if self._loop.alive:
            self._loop.call_soon(self._cancel_tasks)

    def _cancel_tasks(self) -> None:
        for task in list(self._tasks):
            task.cancel()


# --------------------------------------------------------------- fingerprint


async def aremote_fingerprint(source) -> Tuple[int, int, int]:
    """Async twin of :func:`repro.io.remote.remote_fingerprint`."""
    probe = getattr(source, "aread_tail", None)
    if probe is not None:
        size, tail = await probe(_FINGERPRINT_TAIL)
        return (int(size), 0, zlib.crc32(tail))
    size = int(source.size)
    span = min(size, _FINGERPRINT_TAIL)
    tail = await source.aread_range(size - span, span)
    return (size, 0, zlib.crc32(tail))
