"""Simple block container file format.

Progressive retrieval only pays off if the storage layer can read *parts* of a
compressed object.  This container stores named binary blocks contiguously and
keeps a JSON directory in the footer, so a reader can open the file, read the
footer, and then fetch exactly the byte ranges of the blocks a retrieval plan
asks for — the same role HDF5 chunked datasets play in the paper's workflow
integration.  The reader counts the bytes it actually touched, which the
examples use to demonstrate end-to-end I/O savings.

Layout::

    block 0 bytes | block 1 bytes | ... | footer JSON | footer_len:u64 | MAGIC
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import StreamFormatError

MAGIC = b"RPRC"


class BlockContainerWriter:
    """Append named blocks to a container file."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._entries: List[Dict[str, object]] = []
        self._handle = open(self.path, "wb")
        self._offset = 0
        self._closed = False

    def add_block(self, name: str, data: bytes, metadata: Optional[dict] = None) -> None:
        """Write one named block; names must be unique within the container."""
        if self._closed:
            raise StreamFormatError("container already finalized")
        if any(entry["name"] == name for entry in self._entries):
            raise StreamFormatError(f"duplicate block name {name!r}")
        self._handle.write(data)
        self._entries.append(
            {
                "name": name,
                "offset": self._offset,
                "size": len(data),
                "metadata": metadata or {},
            }
        )
        self._offset += len(data)

    def close(self) -> None:
        """Write the footer directory and close the file."""
        if self._closed:
            return
        footer = json.dumps({"blocks": self._entries}, separators=(",", ":")).encode()
        self._handle.write(footer)
        self._handle.write(struct.pack("<Q", len(footer)))
        self._handle.write(MAGIC)
        self._handle.close()
        self._closed = True

    def __enter__(self) -> "BlockContainerWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BlockContainerReader:
    """Random access to the blocks of a container file with byte accounting."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = open(self.path, "rb")
        self._handle.seek(0, 2)
        file_size = self._handle.tell()
        if file_size < 12:
            raise StreamFormatError("container too small")
        self._handle.seek(file_size - 12)
        tail = self._handle.read(12)
        footer_len = struct.unpack("<Q", tail[:8])[0]
        if tail[8:] != MAGIC:
            raise StreamFormatError("not a repro block container")
        self._handle.seek(file_size - 12 - footer_len)
        footer = json.loads(self._handle.read(footer_len).decode())
        self.directory: Dict[str, Dict[str, object]] = {
            entry["name"]: entry for entry in footer["blocks"]
        }
        self.bytes_read = 0

    def block_names(self) -> List[str]:
        return list(self.directory)

    def block_size(self, name: str) -> int:
        return int(self.directory[name]["size"])

    def metadata(self, name: str) -> dict:
        return dict(self.directory[name]["metadata"])

    def read_block(self, name: str) -> bytes:
        try:
            entry = self.directory[name]
        except KeyError:
            raise StreamFormatError(f"container has no block {name!r}") from None
        self._handle.seek(int(entry["offset"]))
        data = self._handle.read(int(entry["size"]))
        self.bytes_read += len(data)
        return data

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "BlockContainerReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
