"""Simple block container file format.

Progressive retrieval only pays off if the storage layer can read *parts* of a
compressed object.  This container stores named binary blocks contiguously and
keeps a JSON directory in the footer, so a reader can open the file, read the
footer, and then fetch exactly the byte ranges of the blocks a retrieval plan
asks for — the same role HDF5 chunked datasets play in the paper's workflow
integration.  The reader counts the bytes it actually touched, which the
benchmarks and examples use to demonstrate end-to-end I/O savings.

Beyond whole-block reads, :meth:`BlockContainerReader.read_range` serves a
sub-range of one block, and :class:`BlockSource` adapts a named block to the
byte-range-source interface of :class:`repro.core.stream.CompressedStore` —
together they let a :class:`~repro.core.progressive.ProgressiveRetriever`
pull individual bitplane blocks of an embedded IPComp stream straight from
the file without ever materialising the stream in memory.

Layout::

    block 0 bytes | block 1 bytes | ... | footer JSON | footer_len:u64 | MAGIC

Every malformed input — truncated footer, bad magic, duplicate or overlapping
directory entries, extents past end-of-file — raises
:class:`~repro.errors.StreamFormatError`, never a bare ``struct`` / ``json``
exception.
"""

from __future__ import annotations

import json
import struct
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import StreamFormatError

MAGIC = b"RPRC"
_TAIL = 12  # footer_len:u64 + MAGIC


def is_container(path: Union[str, Path]) -> bool:
    """True if ``path`` ends with the container magic (cheap tail sniff)."""
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            handle.seek(0, 2)
            if handle.tell() < _TAIL:
                return False
            handle.seek(-4, 2)
            return handle.read(4) == MAGIC
    except OSError:
        return False


def sniff_container(source) -> bool:
    """Tail-magic sniff over any byte-range source (remote ``is_container``).

    One 4-byte ranged read — the cheapest way to decide whether an
    ``http(s)://`` object is a block container or a bare stream.
    """
    size = int(source.size)
    if size < _TAIL:
        return False
    return source.read_range(size - 4, 4) == MAGIC


class BlockContainerWriter:
    """Append named blocks to a container file."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._entries: List[Dict[str, object]] = []
        self._handle = open(self.path, "wb")
        self._offset = 0
        self._closed = False

    def add_block(self, name: str, data: bytes, metadata: Optional[dict] = None) -> None:
        """Write one named block; names must be unique within the container."""
        if self._closed:
            raise StreamFormatError("container already finalized")
        if any(entry["name"] == name for entry in self._entries):
            raise StreamFormatError(f"duplicate block name {name!r}")
        self._handle.write(data)
        self._entries.append(
            {
                "name": name,
                "offset": self._offset,
                "size": len(data),
                "metadata": metadata or {},
            }
        )
        self._offset += len(data)

    def close(self) -> None:
        """Write the footer directory and close the file."""
        if self._closed:
            return
        footer = json.dumps({"blocks": self._entries}, separators=(",", ":")).encode()
        self._handle.write(footer)
        self._handle.write(struct.pack("<Q", len(footer)))
        self._handle.write(MAGIC)
        self._handle.close()
        self._closed = True

    def __enter__(self) -> "BlockContainerWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BlockContainerReader:
    """Random access to the blocks of a container with byte accounting.

    Opens either a local path or any **byte-range source** (``size`` +
    ``read_range(offset, length)``) — in particular the resilient remote
    stacks built by :func:`repro.io.remote.open_remote_source`, which is
    how a container served over HTTP is read without any layer above this
    one knowing about networking.  A reader built from a source owns it:
    :meth:`close` closes the source too.
    """

    def __init__(self, source: Union[str, Path, object]) -> None:
        if hasattr(source, "read_range") and hasattr(source, "size"):
            self.path: Optional[Path] = None
            self._source = source
            self._handle = None
            self._file_size = int(source.size)
        else:
            self.path = Path(source)
            self._source = None
            self._handle = open(self.path, "rb")
            self._handle.seek(0, 2)
            self._file_size = self._handle.tell()
        # Range reads may arrive from prefetch threads concurrently with the
        # decoding thread's cache misses; seek+read must stay atomic.
        self._lock = threading.Lock()
        try:
            self._parse_footer()
        except BaseException:
            if self._handle is not None:
                self._handle.close()
            raise
        self.bytes_read = 0
        #: Number of physical ``read_range`` calls served (the serving-layer
        #: tests assert a warm cache repeat performs zero of them).
        self.n_reads = 0
        self._closed = False

    def _read_at(self, offset: int, length: int, context: str) -> bytes:
        """Read ``length`` bytes at absolute ``offset``, or fail loud.

        The single physical-read primitive of the reader: backed by the
        locked file handle or the byte-range source, and always validated
        — a short read raises a :class:`StreamFormatError` naming the
        offset instead of handing truncated bytes to the decoder.
        """
        if self._source is not None:
            data = self._source.read_range(offset, length)
        else:
            with self._lock:
                self._handle.seek(offset)
                data = self._handle.read(length)
        if len(data) != length:
            raise StreamFormatError(
                f"{context}: wanted {length} B at offset {offset}, "
                f"got {len(data)}"
            )
        return data

    def _parse_footer(self) -> None:
        file_size = self._file_size
        if file_size < _TAIL:
            raise StreamFormatError("container too small")
        tail = self._read_at(file_size - _TAIL, _TAIL, "container tail")
        footer_len = struct.unpack("<Q", tail[:8])[0]
        if tail[8:] != MAGIC:
            raise StreamFormatError("not a repro block container")
        if footer_len > file_size - _TAIL:
            raise StreamFormatError("truncated container footer")
        payload_end = file_size - _TAIL - footer_len
        footer_bytes = self._read_at(payload_end, footer_len, "container footer")
        try:
            footer = json.loads(footer_bytes.decode("utf-8"))
            blocks = footer["blocks"]
        except (ValueError, UnicodeDecodeError, KeyError, TypeError) as exc:
            raise StreamFormatError(f"corrupted container footer: {exc}") from None
        self.directory: Dict[str, Dict[str, object]] = {}
        extents: List[Tuple[int, int, str]] = []
        try:
            for entry in blocks:
                name = str(entry["name"])
                offset, size = int(entry["offset"]), int(entry["size"])
                metadata = entry.get("metadata", {})
                if not isinstance(metadata, dict):
                    raise StreamFormatError(f"block {name!r} metadata is not an object")
                if name in self.directory:
                    raise StreamFormatError(f"duplicate block name {name!r} in footer")
                if offset < 0 or size < 0 or offset + size > payload_end:
                    raise StreamFormatError(
                        f"block {name!r} extent [{offset}, {offset + size}) "
                        f"outside payload [0, {payload_end})"
                    )
                self.directory[name] = {
                    "name": name, "offset": offset, "size": size, "metadata": metadata,
                }
                extents.append((offset, size, name))
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, StreamFormatError):
                raise
            raise StreamFormatError(f"malformed container directory: {exc}") from None
        extents.sort()
        for (off_a, size_a, name_a), (off_b, _, name_b) in zip(extents, extents[1:]):
            if off_a + size_a > off_b:
                raise StreamFormatError(
                    f"blocks {name_a!r} and {name_b!r} overlap in the container"
                )

    @property
    def file_size(self) -> int:
        """Total size of the backing file or remote object in bytes."""
        return self._file_size

    def block_names(self) -> List[str]:
        return list(self.directory)

    def block_size(self, name: str) -> int:
        return int(self._entry(name)["size"])

    def metadata(self, name: str) -> dict:
        return dict(self._entry(name)["metadata"])

    def _entry(self, name: str) -> Dict[str, object]:
        try:
            return self.directory[name]
        except KeyError:
            raise StreamFormatError(f"container has no block {name!r}") from None

    def read_block(self, name: str) -> bytes:
        entry = self._entry(name)
        return self.read_range(name, 0, int(entry["size"]))

    def read_range(self, name: str, offset: int, length: int) -> bytes:
        """Read ``length`` bytes starting ``offset`` bytes into block ``name``.

        This is the partial-read primitive progressive retrieval builds on:
        a retriever backed by :class:`BlockSource` fetches exactly the plane
        blocks its plan selected, and ``bytes_read`` accounts for them.
        """
        if self._closed:
            raise StreamFormatError("container reader is closed")
        entry = self._entry(name)
        size = int(entry["size"])
        if offset < 0 or length < 0 or offset + length > size:
            raise StreamFormatError(
                f"range [{offset}, {offset + length}) outside block "
                f"{name!r} of {size} bytes"
            )
        data = self._read_at(
            int(entry["offset"]) + offset,
            length,
            f"container truncated inside block {name!r} (block offset {offset})",
        )
        with self._lock:
            self.bytes_read += length
            self.n_reads += 1
        return data

    @property
    def supports_async(self) -> bool:
        """True when the backing source can serve event-loop range reads
        (the :class:`~repro.io.aio.AsyncPrefetcher` capability probe)."""
        return self._source is not None and getattr(
            self._source, "supports_async", False
        )

    async def aread_range(self, name: str, offset: int, length: int) -> bytes:
        """Async twin of :meth:`read_range` over an async-capable source.

        Same validation and byte accounting; used by the event-loop
        prefetcher to multiplex block reads without a thread hop.
        """
        if self._closed:
            raise StreamFormatError("container reader is closed")
        entry = self._entry(name)
        size = int(entry["size"])
        if offset < 0 or length < 0 or offset + length > size:
            raise StreamFormatError(
                f"range [{offset}, {offset + length}) outside block "
                f"{name!r} of {size} bytes"
            )
        data = await self._source.aread_range(int(entry["offset"]) + offset, length)
        if len(data) != length:
            raise StreamFormatError(
                f"container truncated inside block {name!r} "
                f"(block offset {offset}): wanted {length} B, got {len(data)}"
            )
        with self._lock:
            self.bytes_read += length
            self.n_reads += 1
        return data

    def source(self, name: str) -> "BlockSource":
        """A byte-range source over one block (for ``CompressedStore``)."""
        return BlockSource(self, name)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            if self._handle is not None:
                self._handle.close()
            elif self._source is not None:
                closer = getattr(self._source, "close", None)
                if closer is not None:
                    closer()

    def __enter__(self) -> "BlockContainerReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class FileSource:
    """Byte-range source over a plain (single-stream) file.

    The file-backed analogue of :class:`repro.core.stream.BytesSource`: it
    lets a :class:`~repro.core.progressive.ProgressiveRetriever` — and the
    retrieval engine's prefetcher — pull individual plane blocks of a bare
    ``.ipc`` stream straight off disk instead of materialising the whole
    blob first.  Reads are lock-serialised so prefetch threads can share
    the handle.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = open(self.path, "rb")
        self._lock = threading.Lock()
        self._handle.seek(0, 2)
        self.size = self._handle.tell()
        self.bytes_read = 0
        self.n_reads = 0

    def read_range(self, offset: int, length: int) -> bytes:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise StreamFormatError(
                f"read of [{offset}, {offset + length}) past stream end {self.size}"
            )
        with self._lock:
            self._handle.seek(offset)
            data = self._handle.read(length)
            self.bytes_read += length
            self.n_reads += 1
        if len(data) != length:
            raise StreamFormatError(
                f"stream file truncated at offset {offset}: "
                f"wanted {length} B, got {len(data)}"
            )
        return data

    def close(self) -> None:
        with self._lock:
            self._handle.close()

    def __enter__(self) -> "FileSource":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BlockSource:
    """Byte-range-source view of one container block.

    Implements the ``size`` / ``read_range`` interface of
    :class:`repro.core.stream.BytesSource`, so an IPComp stream stored as a
    container block can back a :class:`~repro.core.stream.CompressedStore`
    directly.  Each read is forwarded to the container (counted in its
    ``bytes_read``) and appended to ``trace`` as an absolute
    ``(offset, length)`` pair within the block — the benchmarks use the
    trace to prove that refinement never re-reads a block range.
    """

    def __init__(self, reader: BlockContainerReader, name: str) -> None:
        self._reader = reader
        self.name = name
        self.size = reader.block_size(name)
        self.trace: List[Tuple[int, int]] = []

    def read_range(self, offset: int, length: int) -> bytes:
        data = self._reader.read_range(self.name, offset, length)
        self.trace.append((offset, length))
        return data

    @property
    def supports_async(self) -> bool:
        return self._reader.supports_async

    async def aread_range(self, offset: int, length: int) -> bytes:
        """Async twin of :meth:`read_range` (event-loop prefetch path).

        Forwards to the container's async primitive and records the same
        trace entry — under prefetch both backends log *physical* reads
        here; the consumed trace lives in ``PrefetchSource``.
        """
        data = await self._reader.aread_range(self.name, offset, length)
        self.trace.append((offset, length))
        return data
