"""File-backed chunked dataset with ROI-progressive retrieval.

:class:`ChunkedDataset` is the storage-layer integration the paper's Figures
6/7 presuppose: a large field is compressed **directly into a block-container
file** — one independent IPComp stream per slab (a *shard*) plus a JSON
manifest — and every retrieval afterwards reads only the byte ranges it
needs:

* ``read(error_bound=...)`` reconstructs the full field, loading from each
  shard only the bitplane blocks the optimized loader's plan selects;
* ``read(roi=..., error_bound=...)`` opens **only the shards intersecting
  the region of interest** — untouched shards cost zero bytes;
* ``refine(...)`` is the stateful path: it keeps one
  :class:`~repro.core.progressive.ProgressiveRetriever` per shard alive, so
  a tighter follow-up request runs Algorithm 2 per shard and loads only the
  *new* plane blocks, never re-reading a byte range it already has.

Requests are served by the :class:`~repro.retrieval.engine.RetrievalEngine`
pipeline — fetch-op planning, optional background prefetch (``prefetch=``)
that overlaps range reads with decode and speculatively primes the next
fidelity rung after a ``refine()``, and an optional pool decode stage
(``workers=``) for stateless reads where worker processes retrieve shards
straight off the file into a shared output segment.  All of it is a pure
runtime choice: decoded output is bitwise-identical, and the reported
accounting is *consumption-based* — the ranges a request's decoding
actually used, identical with and without prefetching.

Every request returns a :class:`DatasetReadResult` carrying the exact bytes
touched (header and anchor included) and the ``(shard, offset, length)``
ranges consumed — the quantities the ROI benchmark asserts on.

File layout (a :mod:`repro.io.container` block container)::

    shard-0000 | shard-0001 | ... | manifest | footer

The manifest (version 2) records shape, dtype, slab slices, the global
absolute error bound, and the full resolved
:class:`~repro.core.profile.CodecProfile` the shards were written with;
version-1 manifests (method / prefix bits / backend as loose fields) are
still read.  The profile's bit-level *kernel* is resolved at write time but
never changes the bytes, so datasets written with different kernels are
byte-identical (enforced by ``tests/test_kernels.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.profile import CodecProfile
from repro.errors import ConfigurationError, StreamFormatError
from repro.io.container import (
    BlockContainerReader,
    BlockContainerWriter,
    BlockSource,
    is_container,
)
from repro.io.aio import async_available, open_async_source
from repro.io.remote import is_url, open_remote_source
from repro.parallel.executor import BlockParallelCompressor, shard_name
from repro.parallel.partition import (
    SliceTuple,
    normalize_roi,
    ranges_to_slices,
    slices_intersect,
    slices_to_ranges,
)
from repro.retrieval.engine import RetrievalEngine
from repro.retrieval.plan import RetrievalPlan

MANIFEST_BLOCK = "manifest"
FORMAT_NAME = "repro-chunked-dataset"
FORMAT_VERSION = 2
SUPPORTED_MANIFEST_VERSIONS = (1, 2)


@dataclass
class DatasetShard:
    """One slab of the domain inside the container."""

    name: str
    slices: SliceTuple

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(s.stop - s.start for s in self.slices)


@dataclass
class DatasetReadResult:
    """One ROI-progressive request: data plus its exact I/O cost."""

    data: np.ndarray
    roi: SliceTuple
    error_bound: float
    bytes_loaded: int
    cumulative_bytes: int
    shards: List[str]
    ranges: List[Tuple[str, int, int]]

    def bitrate(self) -> float:
        """Bits loaded by this request per value it returned."""
        return 8.0 * self.bytes_loaded / self.data.size


class ChunkedDataset:
    """Sharded, file-backed IPComp store with ROI-progressive reads.

    Open an existing file with ``ChunkedDataset(path)`` (context-manager
    friendly) or create one with :meth:`ChunkedDataset.write`.  ``profile``
    supplies the runtime decode knobs — the kernel, plus default
    ``prefetch`` / ``workers`` for the retrieval engine; it does not need
    to match the profile used at write time (shards are self-describing v2
    streams).  The explicit ``prefetch`` / ``workers`` / ``io_backend``
    keywords override the profile's fields; all of these knobs are
    runtime-only and change no reported byte or decoded bit.

    ``io_backend`` picks how remote range reads travel: ``"auto"``
    (default) resolves to the asyncio event-loop backend for http(s)
    datasets — many ranges in flight over a connection pool — and the
    thread prefetcher otherwise; ``"async"`` / ``"threads"`` force a
    backend; ``"sync"`` disables prefetching.  Output and accounting are
    bitwise-identical across all of them.
    """

    def __init__(
        self,
        path: Union[str, Path],
        profile: Optional[CodecProfile] = None,
        *,
        prefetch: Optional[int] = None,
        workers: Optional[int] = None,
        executor=None,
        source=None,
        io_backend: Optional[str] = None,
    ) -> None:
        # ``path`` may be an ``http(s)://`` URL: the container is then read
        # through a resilient remote stack (default one, or the caller's
        # pre-built ``source`` — e.g. with mirrors / fault injection).
        self.is_remote = source is not None or is_url(path)
        if io_backend is None and profile is not None:
            io_backend = profile.io_backend
        if io_backend in (None, "auto"):
            # Auto: event-loop multiplexing when the bytes travel async —
            # a URL we open ourselves, or a caller-built async stack.
            if self.is_remote and (
                source is None or getattr(source, "supports_async", False)
            ) and async_available():
                io_backend = "async"
            else:
                io_backend = "threads"
        elif io_backend not in ("async", "threads", "sync"):
            raise ConfigurationError(
                "io_backend must be one of ('auto', 'async', 'threads', "
                f"'sync'), got {io_backend!r}"
            )
        self.io_backend = io_backend
        if source is None and self.is_remote:
            if io_backend == "async":
                source = open_async_source(str(path))
            else:
                source = open_remote_source(str(path))
        self.path: Union[str, Path] = str(path) if self.is_remote else Path(path)
        self.profile = profile
        self._reader = BlockContainerReader(
            source if source is not None else self.path
        )
        if MANIFEST_BLOCK not in self._reader.directory:
            self._reader.close()
            raise StreamFormatError(f"{self.path} is not a chunked dataset (no manifest)")
        try:
            manifest = json.loads(self._reader.read_block(MANIFEST_BLOCK).decode("utf-8"))
            if not isinstance(manifest, dict) or manifest.get("format") != FORMAT_NAME:
                raise StreamFormatError(f"{self.path} is not a chunked dataset")
            version = int(manifest.get("version", 0))
            if version not in SUPPORTED_MANIFEST_VERSIONS:
                raise StreamFormatError(
                    f"unsupported dataset version {manifest.get('version')} "
                    f"(supported: {SUPPORTED_MANIFEST_VERSIONS})"
                )
            self.manifest = manifest
            self.version = version
            self.shape: Tuple[int, ...] = tuple(int(s) for s in manifest["shape"])
            self.dtype = np.dtype(manifest["dtype"])
            self.absolute_bound = float(manifest["error_bound"])
            if version >= 2 and "profile" not in manifest:
                raise StreamFormatError("dataset manifest v2 has no profile")
            self.shards: List[DatasetShard] = [
                DatasetShard(item["name"], ranges_to_slices(item["slices"]))
                for item in manifest["shards"]
            ]
        except StreamFormatError:
            # Container-level corruption and format mismatches keep their
            # own diagnostics (StreamFormatError subclasses ValueError, so
            # this clause must come first).
            self._reader.close()
            raise
        except (KeyError, TypeError, ValueError, UnicodeDecodeError) as exc:
            self._reader.close()
            raise StreamFormatError(f"malformed dataset manifest: {exc!r}") from None
        if prefetch is None:
            prefetch = profile.prefetch if profile is not None else 0
        if workers is None:
            workers = profile.workers if profile is not None else 0
        if self.io_backend == "sync":
            prefetch = 0
        # The plan → prefetch → pool-decode pipeline serving every request
        # (it owns the stateful per-shard retrievers of the refine() path).
        self._engine = RetrievalEngine(
            lambda name: BlockSource(self._reader, name),
            shape=self.shape,
            dtype=self.dtype,
            stored_bound=self.absolute_bound,
            profile=profile,
            prefetch=prefetch,
            workers=workers,
            # Pool workers re-open the container by path in their own
            # process; a remote dataset has no local path, so pool decode
            # is disabled and requests run serial/prefetch (bitwise-
            # identical by construction).
            path=None if self.is_remote else self.path,
            executor=executor,
            io_backend="async" if self.io_backend == "async" else "threads",
        )
        self._write_profile: Optional[CodecProfile] = None

    @property
    def write_profile(self) -> CodecProfile:
        """The codec profile the shards were written with (informational).

        Built lazily so that *opening and reading* a dataset never validates
        it: the profile names the writer's **candidate** coders, which a
        reader need not have registered to decode the shards (streams are
        self-describing and only record coders that actually won a plane).
        Accessing this property does validate against the local registry and
        raises :class:`~repro.errors.ConfigurationError` when the writer
        used candidates this process lacks.
        """
        if self._write_profile is None:
            if self.version >= 2:
                self._write_profile = CodecProfile.from_json(self.manifest["profile"])
            else:
                # v1 manifests spell out the stream parameters as loose
                # fields with one implicit backend for every stage.
                self._write_profile = CodecProfile.from_options(
                    None,
                    error_bound=self.absolute_bound,
                    relative=False,
                    method=str(self.manifest["method"]),
                    prefix_bits=int(self.manifest["prefix_bits"]),
                    backend=str(self.manifest["backend"]),
                )
        return self._write_profile

    # ------------------------------------------------------------------ write

    @classmethod
    def write(
        cls,
        path: Union[str, Path],
        data: np.ndarray,
        *,
        profile: Optional[CodecProfile] = None,
        n_blocks: int = 4,
        workers: Optional[int] = None,
        **profile_overrides,
    ) -> dict:
        """Compress ``data`` into a new dataset file; returns the manifest.

        Configuration is one :class:`~repro.core.profile.CodecProfile`
        (``profile`` plus field overrides such as ``error_bound=`` /
        ``relative=`` / ``kernel=``).  One IPComp stream per slab is produced
        (process-parallel via
        :class:`~repro.parallel.executor.BlockParallelCompressor`) and the
        slab's absolute bound is derived from the *global* value range, so
        the reassembled field honours the bound globally.  The resolved
        profile is embedded in the manifest.
        """
        data = np.asarray(data)
        # Resolve the range-relative bound once (one min/max scan of the
        # field) and hand the compressor the already-absolute profile.
        resolved = CodecProfile.from_options(profile, **profile_overrides).resolve(data)
        compressor = BlockParallelCompressor(
            n_blocks=n_blocks, workers=workers, profile=resolved
        )
        with BlockContainerWriter(path) as writer:
            # Shards stream straight into the container as each slab's
            # stream is produced; the manifest only needs the slab extents,
            # so the compressed payloads are not retained in memory.
            blocks = compressor.compress_into(writer, data, keep_blobs=False)
            manifest = {
                "format": FORMAT_NAME,
                "version": FORMAT_VERSION,
                "shape": [int(s) for s in data.shape],
                "dtype": str(data.dtype),
                "error_bound": float(resolved.error_bound),
                # runtime=False: the kernel never changes bytes, and the
                # manifest must stay byte-identical across write kernels.
                "profile": resolved.to_json(runtime=False),
                "shards": [
                    {
                        "name": shard_name(index),
                        "slices": slices_to_ranges(block.slices, data.shape),
                    }
                    for index, block in enumerate(blocks)
                ],
            }
            writer.add_block(
                MANIFEST_BLOCK,
                json.dumps(manifest, separators=(",", ":"), sort_keys=True).encode(),
            )
        return manifest

    @staticmethod
    def is_dataset(path: Union[str, Path]) -> bool:
        """Cheap check: is ``path`` a block container (and so possibly a dataset)?"""
        return is_container(path)

    # ------------------------------------------------------------------- reads

    def read(
        self,
        error_bound: Optional[float] = None,
        roi=None,
    ) -> DatasetReadResult:
        """One-shot retrieval of the full field or a region of interest.

        ``error_bound`` is the *absolute* L∞ target (``None`` retrieves at
        the dataset's stored bound, i.e. full precision).  Only the shards
        whose slabs intersect ``roi`` are opened; each contributes exactly
        the plane blocks its loader plan selects.  Stateless: a later
        ``read`` starts from scratch — use :meth:`refine` for incremental
        refinement.  With ``workers > 1`` the decode runs in the pool
        stage (bitwise-identical output, same per-shard range accounting).
        """
        roi_slices, selected = self.select(roi)
        target = self._validated_target(error_bound)
        result = self._engine.read(selected, roi_slices, target)
        return self._to_read_result(result, roi_slices)

    def refine(
        self,
        error_bound: Optional[float] = None,
        roi=None,
    ) -> DatasetReadResult:
        """Stateful ROI-progressive retrieval (Algorithm 2 per shard).

        Per-shard retrievers persist across calls: a shard touched before
        only loads the plane blocks the tighter target adds (never
        re-reading a byte range), and a shard entering the ROI for the first
        time is retrieved from scratch.  Fidelity never decreases.  With
        prefetching enabled the engine also primes the *next* fidelity rung
        in the background after each call; a speculative read is physically
        performed at most once and is only ever reported by the request
        that consumes it.
        """
        roi_slices, selected = self.select(roi)
        target = self._validated_target(error_bound)
        result = self._engine.refine(selected, roi_slices, target)
        return self._to_read_result(result, roi_slices)

    def plan(self, error_bound: Optional[float] = None, roi=None) -> RetrievalPlan:
        """Stage-1 planning only: the fetch ops a stateless request would run.

        The coalesced ``(shard, byte-range, planes)`` op list plus predicted
        bytes — what the CLI's ``info --roi`` prints.  Reads only the shard
        headers; no payload is touched and no refine() state is disturbed.
        """
        _, selected = self.select(roi)
        return self._engine.plan(selected, self._validated_target(error_bound))

    # ------------------------------------------------------------------ guts

    def _validated_target(self, error_bound: Optional[float]) -> float:
        target = self.absolute_bound if error_bound is None else float(error_bound)
        if target <= 0 or not np.isfinite(target):
            raise ConfigurationError("error_bound must be a positive finite number")
        return target

    def select(self, roi) -> Tuple[SliceTuple, List[DatasetShard]]:
        """Normalize ``roi`` and list the shards whose slabs intersect it.

        Public because the serving layer plans per-shard work itself: it
        needs the same ``(normalized roi, selected shards)`` answer the
        internal read paths use, without issuing a read.
        """
        if roi is None:
            roi_slices = tuple(slice(0, s) for s in self.shape)
            return roi_slices, list(self.shards)
        roi_slices = normalize_roi(roi, self.shape)
        selected = [s for s in self.shards if slices_intersect(s.slices, roi_slices)]
        return roi_slices, selected

    def _to_read_result(self, result, roi_slices: SliceTuple) -> DatasetReadResult:
        return DatasetReadResult(
            data=result.data,
            roi=roi_slices,
            error_bound=result.error_bound,
            bytes_loaded=result.bytes_loaded,
            cumulative_bytes=result.cumulative_bytes,
            shards=result.shards,
            ranges=result.ranges,
        )

    # ------------------------------------------------------------- properties

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_source(self, name: str) -> BlockSource:
        """A byte-range source over one shard's embedded IPComp stream.

        Reuses the dataset's open container reader, so inspection tools
        (e.g. the CLI's ``info``) can parse per-shard stream headers without
        opening the file a second time.
        """
        return BlockSource(self._reader, name)

    @property
    def bytes_read(self) -> int:
        """Total container bytes touched since the dataset was opened."""
        return self._reader.bytes_read

    @property
    def physical_reads(self) -> int:
        """Physical ``read_range`` calls on the container since open.

        Consumption-based accounting reports what a request *used*; this
        counter reports what actually hit the file — the serving layer's
        warm-cache tests assert it stays flat across a cache hit.
        """
        return self._reader.n_reads

    @property
    def fingerprint(self) -> Tuple[int, int]:
        """(size, mtime_ns) identity of the backing file.

        The serving layer keys its per-dataset sessions on this: a rewrite
        of the file changes the fingerprint, so pinned readers and cached
        slabs for the old bytes are never served against the new ones.
        Remote objects expose no mtime; their identity is the size alone
        here (the serving layer strengthens it with a tail CRC).
        """
        if self.is_remote:
            return (self._reader.file_size, 0)
        stat = self.path.stat()
        return (int(stat.st_size), int(stat.st_mtime_ns))

    @property
    def file_bytes(self) -> int:
        if self.is_remote:
            return self._reader.file_size
        return self.path.stat().st_size

    def current_keep(self) -> Dict[str, Dict[int, int]]:
        """Resident planes per stateful shard retriever (diagnostics)."""
        return self._engine.current_keep()

    def close(self) -> None:
        self._engine.close()
        self._reader.close()

    def __enter__(self) -> "ChunkedDataset":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
