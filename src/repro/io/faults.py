"""First-class fault injection for byte-range sources.

The robustness suite used to hand-roll ad-hoc flaky wrappers inside each
test file; this module promotes them into one shared, deterministic
vocabulary that tests, the CLI (``serve/retrieve --inject-faults
PLAN.json``) and the CI remote-retrieval smoke all consume:

* a :class:`Fault` is one injected misbehaviour — ``raise`` (transport
  error), ``short`` (truncated payload), ``corrupt`` (bit-flipped
  payload), ``latency`` (slow but correct), ``stall`` (hang, then fail
  like a read timeout);
* a :class:`FaultPlan` decides, per global 1-based read number, which
  fault (if any) fires.  Plans are built from simple rules —
  :meth:`~FaultPlan.every` k-th read, an explicit :meth:`~FaultPlan.at`
  set, the :meth:`~FaultPlan.first` n reads, :meth:`~FaultPlan.always`,
  or CRC-seeded per-read :meth:`~FaultPlan.seeded` rates — all
  deterministic (same plan + same read sequence → same faults, no RNG
  state) and JSON round-trippable for the CLI flag;
* a :class:`FaultInjector` owns the global read counter (one policy spans
  every source the serving layer wraps, exactly like the old shared-list
  idiom) and wraps sources via :meth:`~FaultInjector.wrap` or the
  :class:`~repro.service.RetrievalService` ``source_filter`` hook
  (:meth:`~FaultInjector.source_filter`);
* a :class:`FaultInjectingSource` applies the drawn fault to one
  ``read_range`` while delegating everything else (``last_crc``,
  ``close``…) to the wrapped source, so it can sit anywhere in a remote
  stack — in particular *between* the HTTP transport and
  :class:`~repro.io.remote.VerifyingSource`, where injected corruption is
  caught exactly like wire corruption.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import zlib
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, RemoteSourceError

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "FaultInjectingSource",
    "FaultInjector",
    "FaultPlan",
]

#: Recognised misbehaviours, in the order seeded draws consider them.
FAULT_KINDS = ("raise", "short", "corrupt", "latency", "stall")


class Fault:
    """One injected misbehaviour: a ``kind`` plus its delay, if any."""

    __slots__ = ("kind", "seconds")

    def __init__(self, kind: str, seconds: float = 0.0) -> None:
        if kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
            )
        self.kind = kind
        self.seconds = float(seconds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Fault({self.kind!r}, seconds={self.seconds})"

    def to_json(self) -> dict:
        payload: dict = {"kind": self.kind}
        if self.seconds:
            payload["seconds"] = self.seconds
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "Fault":
        return cls(payload["kind"], float(payload.get("seconds", 0.0)))


class _Rule:
    """One (matcher, fault) pair; matchers are data, never callables, so a
    plan serialises losslessly.  ``at`` keeps the caller's container by
    reference — tests mutate the set mid-run to poison one future read."""

    __slots__ = ("match", "fault")

    def __init__(self, match: Tuple, fault: Fault) -> None:
        self.match = match
        self.fault = fault

    def applies(self, read_number: int) -> bool:
        kind = self.match[0]
        if kind == "every":
            return read_number % self.match[1] == 0
        if kind == "at":
            return read_number in self.match[1]
        if kind == "first":
            return read_number <= self.match[1]
        if kind == "always":
            return True
        if kind == "rate":
            rate, seed = self.match[1], self.match[2]
            draw = zlib.crc32(
                f"{seed}:{self.fault.kind}:{read_number}".encode("utf-8")
            )
            return (draw & 0xFFFFFFFF) / float(1 << 32) < rate
        raise AssertionError(f"unknown matcher {kind!r}")  # pragma: no cover

    def to_json(self) -> dict:
        kind = self.match[0]
        if kind == "every":
            match: dict = {"type": "every", "k": self.match[1]}
        elif kind == "at":
            match = {"type": "at", "reads": sorted(self.match[1])}
        elif kind == "first":
            match = {"type": "first", "n": self.match[1]}
        elif kind == "always":
            match = {"type": "always"}
        else:
            match = {"type": "rate", "rate": self.match[1], "seed": self.match[2]}
        return {"match": match, "fault": self.fault.to_json()}

    @classmethod
    def from_json(cls, payload: dict) -> "_Rule":
        match = payload["match"]
        kind = match["type"]
        if kind == "every":
            parsed: Tuple = ("every", int(match["k"]))
        elif kind == "at":
            parsed = ("at", set(int(n) for n in match["reads"]))
        elif kind == "first":
            parsed = ("first", int(match["n"]))
        elif kind == "always":
            parsed = ("always",)
        elif kind == "rate":
            parsed = ("rate", float(match["rate"]), str(match.get("seed", "")))
        else:
            raise ConfigurationError(f"unknown fault matcher type {kind!r}")
        return cls(parsed, Fault.from_json(payload["fault"]))


class FaultPlan:
    """A deterministic schedule mapping read numbers to faults.

    The first rule matching a read wins; a plan with no matching rule
    leaves the read untouched.  Plans compose with ``+``.  Everything is
    pure data: :meth:`fault_for` is a function of the read number alone,
    so identical runs inject identically — the property every
    byte-identity-under-faults test leans on.
    """

    def __init__(self, rules: Sequence[_Rule] = ()) -> None:
        self.rules: List[_Rule] = list(rules)

    # ------------------------------------------------------------- builders

    @classmethod
    def never(cls) -> "FaultPlan":
        """A plan that injects nothing (pure read counting)."""
        return cls()

    @classmethod
    def every(cls, k: int, kind: str = "raise", seconds: float = 0.0) -> "FaultPlan":
        """Fault every ``k``-th global read (k, 2k, 3k, …)."""
        if k < 1:
            raise ConfigurationError(f"every() needs k >= 1, got {k}")
        return cls([_Rule(("every", int(k)), Fault(kind, seconds))])

    @classmethod
    def at(
        cls, reads: Iterable[int], kind: str = "raise", seconds: float = 0.0
    ) -> "FaultPlan":
        """Fault exactly the given global read numbers.  A ``set`` is kept
        by reference, so callers may poison future reads mid-run."""
        container = reads if isinstance(reads, set) else set(int(n) for n in reads)
        return cls([_Rule(("at", container), Fault(kind, seconds))])

    @classmethod
    def first(cls, n: int, kind: str = "raise", seconds: float = 0.0) -> "FaultPlan":
        """Fault the first ``n`` global reads."""
        return cls([_Rule(("first", int(n)), Fault(kind, seconds))])

    @classmethod
    def always(cls, kind: str = "raise", seconds: float = 0.0) -> "FaultPlan":
        """Fault every read."""
        return cls([_Rule(("always",), Fault(kind, seconds))])

    @classmethod
    def seeded(
        cls, seed: str, rates: Dict[str, float], seconds: float = 0.0
    ) -> "FaultPlan":
        """Independent per-read draws: each ``kind -> rate`` rule fires when
        ``crc32(seed:kind:n) / 2^32 < rate`` (first kind in
        :data:`FAULT_KINDS` order wins).  Deterministic across runs and
        processes — a seeded plan in a JSON file reproduces exactly."""
        rules = []
        for kind in FAULT_KINDS:
            if kind in rates:
                rate = float(rates[kind])
                if not 0.0 <= rate <= 1.0:
                    raise ConfigurationError(
                        f"rate for {kind!r} must be in [0, 1], got {rate}"
                    )
                rules.append(_Rule(("rate", rate, seed), Fault(kind, seconds)))
        return cls(rules)

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        return FaultPlan(self.rules + other.rules)

    # ------------------------------------------------------------ evaluation

    def fault_for(self, read_number: int) -> Optional[Fault]:
        for rule in self.rules:
            if rule.applies(read_number):
                return rule.fault
        return None

    # ----------------------------------------------------------------- (de)ser

    def to_json(self) -> dict:
        return {"rules": [rule.to_json() for rule in self.rules]}

    @classmethod
    def from_json(cls, payload: dict) -> "FaultPlan":
        return cls([_Rule.from_json(entry) for entry in payload.get("rules", [])])

    def to_file(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_json(), indent=2) + "\n")

    @classmethod
    def from_file(cls, path) -> "FaultPlan":
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"cannot load fault plan {path}: {exc}") from exc
        return cls.from_json(payload)


class FaultInjector:
    """Applies one :class:`FaultPlan` across every source it wraps.

    The read counter is global and 1-based — one policy spans all shards
    of a container, matching how the serving layer's ``source_filter``
    wraps each block source separately but failures are scheduled against
    the request's whole read sequence.  Thread-safe; ``sleep`` is
    injectable so latency/stall faults stay instant in tests.
    """

    def __init__(self, plan: FaultPlan, *, sleep=time.sleep) -> None:
        self.plan = plan
        self._sleep = sleep
        self._lock = threading.Lock()
        self.total_reads = 0
        #: Number of injected faults per kind.
        self.injected: Dict[str, int] = {}
        #: Every source this injector wrapped (per-source ``reads`` counters
        #: survive here for calibration).
        self.sources: List["FaultInjectingSource"] = []

    def _draw(self) -> Tuple[int, Optional[Fault]]:
        with self._lock:
            self.total_reads += 1
            number = self.total_reads
            fault = self.plan.fault_for(number)
            if fault is not None:
                self.injected[fault.kind] = self.injected.get(fault.kind, 0) + 1
        return number, fault

    @property
    def faults_injected(self) -> int:
        with self._lock:
            return sum(self.injected.values())

    def wrap(self, source, name: str = "") -> "FaultInjectingSource":
        wrapped = FaultInjectingSource(source, self, name=name)
        with self._lock:
            self.sources.append(wrapped)
        return wrapped

    def source_filter(self, name: str, source):
        """The :class:`~repro.service.RetrievalService` ``source_filter``
        hook: ``RetrievalService(source_filter=injector.source_filter)``."""
        return self.wrap(source, name=name)

    def tamper(self, url: str, source):
        """The ``tamper`` hook for both stack builders: wraps the raw
        transport *below* CRC verification, dispatching on the transport's
        duck type — an async transport (coroutine ``aget``) gets the async
        wrapper, so one ``tamper=injector.tamper`` works under either
        ``io_backend``."""
        if asyncio.iscoroutinefunction(getattr(source, "aget", None)):
            return self.wrap_async(source, name=url)
        return self.wrap(source, name=url)

    def wrap_async(self, source, name: str = "") -> "AsyncFaultInjectingSource":
        """Wrap an async transport (``aget`` duck type) with this plan."""
        wrapped = AsyncFaultInjectingSource(source, self, name=name)
        with self._lock:
            self.sources.append(wrapped)
        return wrapped

    def tamper_async(self, url: str, source):
        """The :func:`~repro.io.aio.open_async_source` ``tamper`` hook:
        same plan and global read counter as :meth:`tamper`, applied to
        the async transport below CRC verification."""
        return self.wrap_async(source, name=url)

    def stats(self) -> dict:
        with self._lock:
            return {
                "total_reads": self.total_reads,
                "faults_injected": sum(self.injected.values()),
                "injected": dict(self.injected),
            }


class FaultInjectingSource:
    """One wrapped byte-range source; applies the injector's drawn fault.

    * ``raise``/``stall`` raise :class:`~repro.errors.RemoteSourceError`
      (an :class:`OSError`, so every retry ladder treats it as transient);
      ``stall`` sleeps its delay first, like a read that hung until a
      timeout;
    * ``short`` truncates the real payload by one byte (stricter layers
      convert that into a ``StreamFormatError``);
    * ``corrupt`` flips every bit of the payload's first byte — the
      server-declared CRC (``last_crc``, forwarded from the wrapped
      source) no longer matches, which is exactly what
      :class:`~repro.io.remote.VerifyingSource` exists to catch;
    * ``latency`` sleeps, then serves correctly.

    Unknown attributes delegate to the wrapped source so the wrapper is
    transparent wherever it sits in a stack.
    """

    def __init__(self, inner, injector: FaultInjector, name: str = "") -> None:
        self._inner = inner
        self._injector = injector
        self.name = name
        self.size = inner.size
        #: Reads served by *this* source (the injector counts globally).
        self.reads = 0

    def read_range(self, offset: int, length: int) -> bytes:
        self.reads += 1
        number, fault = self._injector._draw()
        if fault is None:
            return self._inner.read_range(offset, length)
        kind = fault.kind
        if kind == "raise":
            raise RemoteSourceError(
                f"injected failure on read #{number}"
                + (f" ({self.name})" if self.name else "")
            )
        if kind == "stall":
            if fault.seconds:
                self._injector._sleep(fault.seconds)
            raise RemoteSourceError(
                f"injected stall timed out on read #{number}"
                + (f" ({self.name})" if self.name else "")
            )
        if kind == "latency" and fault.seconds:
            self._injector._sleep(fault.seconds)
        data = self._inner.read_range(offset, length)
        if kind == "short":
            return data[: max(0, length - 1)]
        if kind == "corrupt" and data:
            return bytes([data[0] ^ 0xFF]) + data[1:]
        return data

    def __getattr__(self, attribute: str):
        return getattr(self._inner, attribute)


class AsyncFaultInjectingSource:
    """Async twin of :class:`FaultInjectingSource` for event-loop stacks.

    Wraps an async transport's ``aget(offset, length) -> (bytes, crc)``
    with the same fault vocabulary and the same injector-global 1-based
    read counter, so a fault plan means the same thing on either backend.
    ``latency``/``stall`` delays are ``await asyncio.sleep`` — an injected
    slow read never blocks the other in-flight ranges.  ``corrupt`` flips
    the payload's first byte while forwarding the server-declared CRC
    untouched, which is exactly what the async verification layer exists
    to catch.
    """

    is_remote_source = True

    def __init__(self, inner, injector: FaultInjector, name: str = "") -> None:
        self._inner = inner
        self._injector = injector
        self.name = name
        self.size = inner.size
        #: Reads served by *this* source (the injector counts globally).
        self.reads = 0

    async def aget(self, offset: int, length: int):
        self.reads += 1
        number, fault = self._injector._draw()
        if fault is None:
            return await self._inner.aget(offset, length)
        kind = fault.kind
        if kind == "raise":
            raise RemoteSourceError(
                f"injected failure on read #{number}"
                + (f" ({self.name})" if self.name else "")
            )
        if kind == "stall":
            if fault.seconds:
                await asyncio.sleep(fault.seconds)
            raise RemoteSourceError(
                f"injected stall timed out on read #{number}"
                + (f" ({self.name})" if self.name else "")
            )
        if kind == "latency" and fault.seconds:
            await asyncio.sleep(fault.seconds)
        data, crc = await self._inner.aget(offset, length)
        if kind == "short":
            return data[: max(0, length - 1)], crc
        if kind == "corrupt" and data:
            return bytes([data[0] ^ 0xFF]) + data[1:], crc
        return data, crc

    async def aread_range(self, offset: int, length: int) -> bytes:
        return (await self.aget(offset, length))[0]

    async def aread_tail(self, span: int):
        return await self._inner.aread_tail(span)

    def stats(self) -> dict:
        inner_stats = getattr(self._inner, "stats", None)
        return dict(inner_stats()) if callable(inner_stats) else {}

    async def aclose(self) -> None:
        closer = getattr(self._inner, "aclose", None)
        if closer is not None:
            await closer()
