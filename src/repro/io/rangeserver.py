"""Loopback HTTP Range server for tests, benchmarks, and quickstarts.

A minimal threaded ``http.server`` that serves the files under one
directory with proper byte-range semantics — ``Accept-Ranges``, ``206`` +
``Content-Range`` replies, ``HEAD`` sizing — plus the knobs the
robustness suite needs:

* every ranged reply carries :data:`~repro.io.remote.CRC_HEADER`, the
  CRC32 of the payload the server *intended* to send, computed **before**
  any server-side corruption is applied — so an injected ``corrupt``
  fault looks exactly like in-flight corruption and
  :class:`~repro.io.remote.VerifyingSource` can catch it;
* a server-side :class:`~repro.io.faults.FaultPlan` (``plan=``) applied
  per ranged read: ``raise``/``stall`` → HTTP 500 (after the stall's
  delay), ``short`` → a body shorter than the declared ``Content-Length``
  (the client surfaces ``IncompleteRead``), ``corrupt`` → a bit-flipped
  payload under a truthful CRC header, ``latency`` → a slow but correct
  reply;
* ``ignore_range=True`` answers ranged GETs with a plain ``200`` full
  body, exercising the client's slice-the-200 fallback;
* connection hygiene knobs: ``handler_timeout`` reaps idle keep-alive
  sockets (a dead or stalled client cannot pin a handler thread
  forever), ``max_connections`` bounds concurrently *handled*
  connections behind a semaphore, and ``backlog`` sets the TCP listen
  queue — so a ``stall`` fault on one connection never wedges other
  in-flight connections.

Intended for loopback use only (tests, CI smokes, the README's
"serve a container over HTTP" quickstart via ``python -m
repro.io.rangeserver``) — there is no TLS, auth, or path hardening beyond
refusing to escape the served directory.
"""

from __future__ import annotations

import argparse
import threading
import time
import zlib
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Tuple

from repro.io.faults import FaultPlan
from repro.io.remote import CRC_HEADER

__all__ = ["RangeServer"]


def _parse_range(header: str, size: int) -> Optional[Tuple[int, int]]:
    """``bytes=a-b`` / ``bytes=a-`` / ``bytes=-n`` → inclusive (start, end)."""
    if not header.startswith("bytes="):
        return None
    span = header[len("bytes=") :].strip()
    if "," in span:  # multi-range: not supported, serve full body
        return None
    start_text, _, end_text = span.partition("-")
    try:
        if start_text == "":
            suffix = int(end_text)
            if suffix <= 0:
                return None
            return max(0, size - suffix), size - 1
        start = int(start_text)
        end = int(end_text) if end_text else size - 1
    except ValueError:
        return None
    if start > end or start >= size:
        return None
    return start, min(end, size - 1)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    # Headers and body land in separate send()s; without TCP_NODELAY the
    # second waits out the peer's delayed ACK (~40 ms per loopback request).
    disable_nagle_algorithm = True
    server: "_Server"

    def setup(self) -> None:
        # Socket-level timeout: an idle keep-alive peer (or one that went
        # away without FIN) trips it, handle_one_request marks the
        # connection closed, and the handler thread — plus its
        # max-connections slot — is reaped instead of pinned forever.
        self.timeout = self.server.handler_timeout
        super().setup()

    def log_message(self, *args) -> None:  # noqa: D102 - silence test noise
        pass

    def _resolve(self) -> Optional[Path]:
        name = self.path.lstrip("/").split("?", 1)[0]
        candidate = (self.server.root / name).resolve()
        root = self.server.root.resolve()
        if root not in candidate.parents and candidate != root:
            return None
        return candidate if candidate.is_file() else None

    def do_HEAD(self) -> None:  # noqa: N802 - http.server API
        target = self._resolve()
        if target is None:
            self.send_error(404)
            return
        self.send_response(200)
        self.send_header("Content-Length", str(target.stat().st_size))
        self.send_header("Accept-Ranges", "bytes")
        self.end_headers()

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        target = self._resolve()
        if target is None:
            self.send_error(404)
            return
        data = target.read_bytes()
        srv = self.server
        span = None
        if not srv.ignore_range:
            header = self.headers.get("Range")
            if header is not None:
                span = _parse_range(header, len(data))
        if span is None:
            self._reply(200, data, content_range=None, total=len(data))
            return
        start, end = span
        payload = data[start : end + 1]
        self._reply(
            206, payload, content_range=f"bytes {start}-{end}/{len(data)}",
            total=len(data),
        )

    def _reply(
        self, status: int, payload: bytes, *, content_range: Optional[str], total: int
    ) -> None:
        srv = self.server
        fault = None
        if status == 206:  # faults are scheduled against ranged reads only
            with srv.lock:
                srv.range_requests += 1
                if srv.plan is not None:
                    fault = srv.plan.fault_for(srv.range_requests)
                    if fault is not None:
                        srv.faults_served += 1
        crc = zlib.crc32(payload)  # the *intended* payload, pre-corruption
        if fault is not None:
            if fault.kind in ("raise", "stall"):
                if fault.kind == "stall" and fault.seconds:
                    time.sleep(fault.seconds)
                self.send_error(500, "injected server fault")
                # A faulted connection's wire state is suspect; dropping it
                # keeps the stall confined to this one connection instead of
                # wedging a keep-alive pipeline behind it.
                self.close_connection = True
                return
            if fault.kind == "latency" and fault.seconds:
                time.sleep(fault.seconds)
            if fault.kind == "corrupt" and payload:
                payload = bytes([payload[0] ^ 0xFF]) + payload[1:]
        declared = len(payload)
        if fault is not None and fault.kind == "short" and payload:
            payload = payload[:-1]  # body under-runs Content-Length
        self.send_response(status)
        self.send_header("Content-Length", str(declared))
        self.send_header("Accept-Ranges", "bytes")
        if content_range is not None:
            self.send_header("Content-Range", content_range)
        if srv.send_crc and status == 206:
            self.send_header(CRC_HEADER, str(crc))
        if declared != len(payload):
            self.send_header("Connection", "close")  # don't wedge keep-alive
        self.end_headers()
        self.wfile.write(payload)
        with srv.lock:
            srv.bytes_sent += len(payload)
        if declared != len(payload):
            self.close_connection = True


class _Server(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(
        self,
        address,
        root: Path,
        plan,
        ignore_range: bool,
        send_crc: bool,
        max_connections: Optional[int] = None,
        backlog: Optional[int] = None,
        handler_timeout: Optional[float] = 30.0,
    ):
        if backlog is not None:
            # Instance attribute shadows the class default before
            # server_activate() calls socket.listen() during __init__.
            self.request_queue_size = int(backlog)
        super().__init__(address, _Handler)
        self.root = root
        self.plan = plan
        self.ignore_range = ignore_range
        self.send_crc = send_crc
        self.handler_timeout = handler_timeout
        self.max_connections = max_connections
        self._slots = (
            threading.BoundedSemaphore(int(max_connections))
            if max_connections
            else None
        )
        self.lock = threading.Lock()
        self.range_requests = 0
        self.faults_served = 0
        self.bytes_sent = 0
        self.open_connections = 0
        self.peak_connections = 0

    def process_request_thread(self, request, client_address):
        # Each accepted connection gets its own thread (ThreadingMixIn), so
        # a stalled handler only ever blocks its own connection; the
        # optional semaphore bounds how many are *handled* at once, with
        # the TCP backlog absorbing the overflow.
        if self._slots is not None:
            self._slots.acquire()
        with self.lock:
            self.open_connections += 1
            if self.open_connections > self.peak_connections:
                self.peak_connections = self.open_connections
        try:
            super().process_request_thread(request, client_address)
        finally:
            with self.lock:
                self.open_connections -= 1
            if self._slots is not None:
                self._slots.release()


class RangeServer:
    """Serve ``root``'s files over loopback HTTP with Range support.

    Context-managed: binds an ephemeral port on ``host`` at construction,
    serves from a daemon thread, and :meth:`close` shuts it down.  See the
    module docstring for the fault-injection and Range-handling knobs.
    """

    def __init__(
        self,
        root,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        plan: Optional[FaultPlan] = None,
        ignore_range: bool = False,
        send_crc: bool = True,
        max_connections: Optional[int] = None,
        backlog: Optional[int] = None,
        handler_timeout: Optional[float] = 30.0,
    ) -> None:
        self.root = Path(root)
        self._server = _Server(
            (host, port), self.root, plan, ignore_range, send_crc,
            max_connections=max_connections, backlog=backlog,
            handler_timeout=handler_timeout,
        )
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-rangeserver", daemon=True
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def url_for(self, name: str) -> str:
        """URL of one file under the served root (e.g. ``field.rprc``)."""
        return f"{self.url}/{name}"

    @property
    def range_requests(self) -> int:
        with self._server.lock:
            return self._server.range_requests

    @property
    def faults_served(self) -> int:
        with self._server.lock:
            return self._server.faults_served

    @property
    def bytes_sent(self) -> int:
        with self._server.lock:
            return self._server.bytes_sent

    @property
    def open_connections(self) -> int:
        with self._server.lock:
            return self._server.open_connections

    @property
    def peak_connections(self) -> int:
        with self._server.lock:
            return self._server.peak_connections

    def close(self) -> None:
        self._server.shutdown()
        self._thread.join(timeout=5.0)
        self._server.server_close()

    def __enter__(self) -> "RangeServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def main(argv=None) -> int:
    """``python -m repro.io.rangeserver PATH`` — serve a file or directory."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.io.rangeserver",
        description="Serve files over loopback HTTP with byte-range support.",
    )
    parser.add_argument("path", type=Path, help="file or directory to serve")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    parser.add_argument(
        "--inject-faults", type=Path, default=None, metavar="PLAN.json",
        help="apply a repro.io.faults.FaultPlan to every ranged read",
    )
    parser.add_argument(
        "--no-crc", action="store_true",
        help=f"omit the {CRC_HEADER} payload-checksum header",
    )
    parser.add_argument(
        "--max-connections", type=int, default=None, metavar="N",
        help="bound concurrently handled connections (default: unbounded)",
    )
    parser.add_argument(
        "--backlog", type=int, default=None, metavar="N",
        help="TCP listen queue depth (default: http.server's)",
    )
    args = parser.parse_args(argv)
    target = args.path
    root = target if target.is_dir() else target.parent
    plan = FaultPlan.from_file(args.inject_faults) if args.inject_faults else None
    server = RangeServer(
        root, host=args.host, port=args.port, plan=plan,
        send_crc=not args.no_crc, max_connections=args.max_connections,
        backlog=args.backlog,
    )
    try:
        if target.is_dir():
            print(f"serving {root}/ at {server.url}")
        else:
            print(f"serving {target} at {server.url_for(target.name)}")
        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(main())
