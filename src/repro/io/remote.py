"""Resilient remote byte-range sources (HTTP range retrieval).

The whole retrieval stack — planner, prefetcher, pool decode, service,
scheduler — talks to storage through the two-method byte-range interface
(``size`` + ``read_range``), so serving a stream or container over a
network needs exactly one thing: a byte-range source whose backend is a
URL.  This module provides it, plus the robustness layers real networks
demand that local files never exercise:

* :class:`HTTPRangeSource` — the raw transport: one persistent
  ``http.client`` connection per endpoint, every coalesced
  :class:`~repro.retrieval.plan.FetchOp` mapping 1:1 onto a ranged GET,
  strict 200-vs-206 / ``Content-Range`` validation, and (when the server
  declares one) the per-response payload CRC recorded for the verifying
  layer;
* :class:`VerifyingSource` — opt-in per-fetch integrity: compares each
  payload against the server-declared CRC and classifies corruption as
  :class:`~repro.errors.RemoteIntegrityError` — retryable, and distinct
  from :class:`~repro.errors.StreamFormatError` (the stream is presumed
  intact; the wire was not);
* :class:`CircuitBreaker` — per-endpoint failure gate: after ``threshold``
  consecutive failures the endpoint is *open* (reads fail fast without
  touching the network) until a cooldown elapses and a half-open probe is
  allowed through;
* :class:`RetryingSource` — per-read retry ladder with the capped
  exponential + deterministic-jitter backoff scheme the service uses
  (:func:`jittered_backoff`), a whole-source retry *budget* so a dying
  backend cannot multiply load, and a whole-request ``deadline`` the
  scheduler propagates (expiry mid-retry stops the ladder);
* :class:`MirrorSource` — failover across replica endpoints with health
  scoring (consecutive failures + latency EWMA) and optional *hedged
  reads*: a primary read slower than the slowest-decile latency fires the
  same range at the next-healthiest mirror, first payload wins, and the
  loser's bytes are accounted separately (``hedge_wasted_bytes``).

The canonical stack (:func:`open_remote_source`) is::

    HTTPRangeSource -> [fault injection] -> Verifying -> Retrying -> Mirror

with :class:`~repro.retrieval.prefetch.PrefetchSource` layered above by
the engine exactly as for local files.  Every layer exposes ``stats()``;
:func:`find_remote_source` walks a wrapper chain (prefetch sources,
container readers, block sources) down to the remote stack so the serving
layer can report retries, hedges, failovers, breaker states and egress
bytes in each request's trace.  All layers are thread-safe: prefetch
threads share the stack, and the HTTP connection is lock-serialised like
:class:`~repro.io.container.FileSource`'s file handle.
"""

from __future__ import annotations

import http.client
import threading
import time
import zlib
from concurrent.futures import FIRST_COMPLETED, Future, wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from repro.errors import (
    ConfigurationError,
    RemoteIntegrityError,
    RemoteSourceError,
    StreamFormatError,
)

__all__ = [
    "CRC_HEADER",
    "CircuitBreaker",
    "HTTPRangeSource",
    "MirrorSource",
    "RetryingSource",
    "VerifyingSource",
    "find_remote_source",
    "is_url",
    "jittered_backoff",
    "open_remote_source",
    "remote_fingerprint",
]

#: Response header carrying the CRC32 of the (intended) payload bytes.
#: Emitted by :mod:`repro.io.rangeserver`; any mirror may add it.
CRC_HEADER = "X-Range-Crc32"

#: Errors a retry can plausibly heal: transport failures (`OSError` covers
#: :class:`RemoteSourceError`, timeouts, resets) and short/corrupt payloads
#: surfaced as :class:`StreamFormatError` by stricter layers above.
#: Configuration mistakes are excluded — they fail identically every time.
RETRYABLE_ERRORS = (StreamFormatError, OSError)

#: Tail bytes hashed by :func:`remote_fingerprint` (the container footer /
#: manifest window — same rationale as the service's local fingerprint).
_FINGERPRINT_TAIL = 4096


def is_url(path) -> bool:
    """True for ``http(s)://`` strings (the CLI/service remote switch)."""
    return isinstance(path, str) and path.startswith(("http://", "https://"))


def jittered_backoff(key: str, attempt: int, base: float, cap: float) -> float:
    """Backoff before retry ``attempt`` (1-based): capped exponential,
    deterministically jittered.

    ``base * 2^(attempt-1)`` clamped to ``cap``, scaled into ``[0.5, 1.0]``
    by a CRC of ``key:attempt`` — reproducible traces and assertable tests,
    yet spread across keys so a burst of failures does not retry in
    lockstep.  The single backoff scheme shared by the service's retry
    ladder and :class:`RetryingSource`.
    """
    if base <= 0.0:
        return 0.0
    raw = min(cap, base * (2.0 ** (attempt - 1)))
    seed = zlib.crc32(f"{key}:{attempt}".encode("utf-8")) & 0xFFFF
    return raw * (0.5 + 0.5 * (seed / 0xFFFF))


class CircuitBreaker:
    """Per-endpoint failure gate with half-open probing.

    ``threshold`` consecutive failures *open* the breaker: :meth:`allow`
    returns False (callers fail fast with zero network cost) until
    ``cooldown`` seconds pass, when exactly one probe is let through
    (*half-open*).  A successful probe closes the breaker; a failed one
    re-opens it for another cooldown.  Thread-safe; ``clock`` is
    injectable so tests drive the cooldown without sleeping.
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.threshold = max(1, int(threshold))
        self.cooldown = float(cooldown)
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        """``"closed"`` | ``"open"`` | ``"half-open"`` (diagnostic view)."""
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if self._probing or self._clock() - self._opened_at >= self.cooldown:
                return "half-open"
            return "open"

    def allow(self) -> bool:
        """True if a request may proceed (claims the probe when half-open)."""
        with self._lock:
            if self._opened_at is None:
                return True
            if self._probing:
                return False  # one probe at a time
            if self._clock() - self._opened_at >= self.cooldown:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            self._probing = False
            if self._failures >= self.threshold:
                self._opened_at = self._clock()


class HTTPRangeSource:
    """Byte-range source over one HTTP(S) endpoint (stdlib ``http.client``).

    One persistent connection, lock-serialised (prefetch threads share it;
    a stale keep-alive connection is transparently reopened once).  Each
    ``read_range`` is a ranged GET:

    * a **206** response must carry a ``Content-Range`` matching the
      request exactly and a full-length payload;
    * a **200** response (server ignored ``Range``) is honoured by slicing
      the full body — correct, but the whole object counts as egress;
    * anything else raises :class:`~repro.errors.RemoteSourceError`.

    ``size`` is probed once at construction (HEAD, falling back to a
    1-byte ranged GET parsed from ``Content-Range``).  When the server
    declares a payload CRC (:data:`CRC_HEADER`) it is recorded in
    ``last_crc`` for :class:`VerifyingSource`; this class itself never
    verifies, so fault-injection layers can sit between the two.  A
    ``breaker`` (shared or private :class:`CircuitBreaker`) gates every
    request and is fed each outcome.
    """

    is_remote_source = True

    def __init__(
        self,
        url: str,
        *,
        timeout: float = 10.0,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        parts = urlsplit(url)
        if parts.scheme not in ("http", "https") or not parts.hostname:
            raise ConfigurationError(f"not a usable http(s) URL: {url!r}")
        self.url = url
        self.timeout = float(timeout)
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._host = parts.hostname
        self._port = parts.port
        self._path = parts.path or "/"
        if parts.query:
            self._path += "?" + parts.query
        self._conn_cls = (
            http.client.HTTPSConnection
            if parts.scheme == "https"
            else http.client.HTTPConnection
        )
        self._conn: Optional[http.client.HTTPConnection] = None
        self._lock = threading.Lock()
        self.endpoint = f"{self._host}:{self._port or (443 if parts.scheme == 'https' else 80)}"
        #: Ranged GETs issued (success or failure), the 1:1 FetchOp image.
        self.n_requests = 0
        #: Body bytes actually received — the egress figure (over-fetch
        #: from a Range-ignoring 200 included).
        self.egress_bytes = 0
        #: Server-declared CRC32 of the last payload (None if undeclared).
        self.last_crc: Optional[int] = None
        self.size = self._probe_size()

    # ------------------------------------------------------------- transport

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = self._conn_cls(
                self._host, self._port, timeout=self.timeout
            )
        return self._conn

    def _drop_connection(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._conn = None

    def _roundtrip(self, method: str, headers: Dict[str, str]):
        """One request/response on the persistent connection.

        A reused keep-alive connection the server already closed surfaces
        as ``RemoteDisconnected``/``ConnectionError`` before any response
        bytes; that single case is transparently retried on a fresh
        connection (idempotent GET/HEAD).  Returns ``(status, headers,
        body)`` with the response fully drained so the connection stays
        reusable.
        """
        for fresh in (False, True):
            conn = self._connection()
            reused = self._conn is not None and not fresh
            try:
                conn.request(method, self._path, headers=headers)
                response = conn.getresponse()
                body = response.read()
                return response.status, response.headers, body
            except (http.client.HTTPException, ConnectionError, OSError) as exc:
                self._drop_connection()
                stale = isinstance(
                    exc,
                    (
                        http.client.RemoteDisconnected,
                        http.client.BadStatusLine,
                        ConnectionResetError,
                        BrokenPipeError,
                    ),
                )
                if fresh or not (reused and stale):
                    raise RemoteSourceError(
                        f"{method} {self.url} failed: {exc}"
                    ) from exc
        raise AssertionError("unreachable")  # pragma: no cover

    def _probe_size(self) -> int:
        try:
            status, headers, _body = self._roundtrip("HEAD", {})
            if status == 200 and headers.get("Content-Length") is not None:
                return int(headers["Content-Length"])
        except RemoteSourceError:
            pass  # fall through to the ranged probe
        status, headers, body = self._roundtrip("GET", {"Range": "bytes=0-0"})
        self.egress_bytes += len(body)
        if status == 206:
            total = _parse_content_range(headers.get("Content-Range"), self.url)[2]
            return total
        if status == 200:
            return len(body)
        raise RemoteSourceError(f"cannot size {self.url}: HTTP {status}")

    # ----------------------------------------------------------------- reads

    def read_range(self, offset: int, length: int) -> bytes:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise StreamFormatError(
                f"read of [{offset}, {offset + length}) past remote object "
                f"end {self.size} ({self.url})"
            )
        if length == 0:
            return b""
        if not self.breaker.allow():
            raise RemoteSourceError(
                f"circuit open for {self.endpoint}: failing fast ({self.url})"
            )
        try:
            data = self._ranged_get(offset, length)
        except RETRYABLE_ERRORS:
            self.breaker.record_failure()
            raise
        self.breaker.record_success()
        return data

    def _ranged_get(self, offset: int, length: int) -> bytes:
        with self._lock:
            self.n_requests += 1
            self.last_crc = None
            status, headers, body = self._roundtrip(
                "GET", {"Range": f"bytes={offset}-{offset + length - 1}"}
            )
            self.egress_bytes += len(body)
            crc_text = headers.get(CRC_HEADER)
            if status == 206:
                start, end, _total = _parse_content_range(
                    headers.get("Content-Range"), self.url
                )
                if start != offset or end != offset + length - 1:
                    raise RemoteSourceError(
                        f"Content-Range bytes {start}-{end} does not match "
                        f"requested [{offset}, {offset + length}) ({self.url})"
                    )
                if len(body) != length:
                    raise RemoteSourceError(
                        f"short payload: wanted {length} B at offset {offset}, "
                        f"got {len(body)} ({self.url})"
                    )
                data = body
            elif status == 200:
                # Server ignored Range: the full object arrived.  Slice the
                # requested window; the over-fetch is already in egress.
                if len(body) < offset + length:
                    raise RemoteSourceError(
                        f"full-body response of {len(body)} B cannot cover "
                        f"[{offset}, {offset + length}) ({self.url})"
                    )
                data = body[offset : offset + length]
                crc_text = None  # a declared CRC covers the full body, not the slice
            else:
                raise RemoteSourceError(
                    f"HTTP {status} for range [{offset}, {offset + length}) "
                    f"({self.url})"
                )
            if crc_text is not None:
                try:
                    self.last_crc = int(crc_text) & 0xFFFFFFFF
                except ValueError:
                    self.last_crc = None
            return data

    def read_tail(self, span: int) -> Tuple[int, bytes]:
        """Current ``(total_size, tail_bytes)`` via one suffix-range GET.

        The freshness probe's view: a suffix range (``bytes=-N``) is
        answered against whatever the server holds *now*, so a replaced
        object reports its new size and tail even though ``self.size`` is
        pinned at construction.
        """
        span = max(1, int(span))
        if not self.breaker.allow():
            raise RemoteSourceError(
                f"circuit open for {self.endpoint}: failing fast ({self.url})"
            )
        try:
            result = self._suffix_get(span)
        except RETRYABLE_ERRORS:
            self.breaker.record_failure()
            raise
        self.breaker.record_success()
        return result

    def _suffix_get(self, span: int) -> Tuple[int, bytes]:
        with self._lock:
            self.n_requests += 1
            status, headers, body = self._roundtrip(
                "GET", {"Range": f"bytes=-{span}"}
            )
            self.egress_bytes += len(body)
            if status == 206:
                start, end, total = _parse_content_range(
                    headers.get("Content-Range"), self.url
                )
                if len(body) != end - start + 1:
                    raise RemoteSourceError(
                        f"short tail payload: declared {end - start + 1} B, "
                        f"got {len(body)} ({self.url})"
                    )
                return total, body
            if status == 200:
                return len(body), body[-span:]
            raise RemoteSourceError(
                f"HTTP {status} for tail probe of {span} B ({self.url})"
            )

    # ------------------------------------------------------------ accounting

    def stats(self) -> dict:
        return {
            "requests": self.n_requests,
            "egress_bytes": self.egress_bytes,
            "breaker": {self.endpoint: self.breaker.state},
        }

    def close(self) -> None:
        with self._lock:
            self._drop_connection()

    def __enter__(self) -> "HTTPRangeSource":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _parse_content_range(value: Optional[str], url: str) -> Tuple[int, int, int]:
    """``bytes start-end/total`` → ``(start, end, total)`` or raise."""
    if value is None:
        raise RemoteSourceError(f"206 response without Content-Range ({url})")
    try:
        unit, _, extent = value.strip().partition(" ")
        span, _, total_text = extent.partition("/")
        start_text, _, end_text = span.partition("-")
        if unit != "bytes":
            raise ValueError(unit)
        return int(start_text), int(end_text), int(total_text)
    except ValueError:
        raise RemoteSourceError(
            f"unparseable Content-Range {value!r} ({url})"
        ) from None


class VerifyingSource:
    """Opt-in per-fetch CRC gate between the transport and the retry ladder.

    After every read it compares ``crc32(payload)`` against the CRC the
    transport recorded from the server's :data:`CRC_HEADER` (duck-typed
    ``last_crc`` on the wrapped source — fault-injection wrappers forward
    it).  A mismatch raises :class:`~repro.errors.RemoteIntegrityError`:
    retryable — re-fetching usually heals in-flight corruption — and
    deliberately **not** a :class:`StreamFormatError`, because the stored
    stream is presumed intact.  Ranges without a declared CRC pass through
    unverified (counted separately).
    """

    is_remote_source = True

    def __init__(self, inner) -> None:
        self._inner = inner
        self.size = inner.size
        self.verified = 0
        self.unverified = 0
        self.mismatches = 0

    def read_range(self, offset: int, length: int) -> bytes:
        data = self._inner.read_range(offset, length)
        expected = getattr(self._inner, "last_crc", None)
        if expected is None:
            self.unverified += 1
            return data
        actual = zlib.crc32(data)
        if actual != expected:
            self.mismatches += 1
            raise RemoteIntegrityError(
                f"payload CRC mismatch for [{offset}, {offset + length}): "
                f"got {actual:#010x}, server declared {expected:#010x}"
            )
        self.verified += 1
        return data

    def read_tail(self, span: int):
        # Freshness probes bypass CRC verification: the caller compares
        # fingerprints, which already hash the payload.
        return self._inner.read_tail(span)

    def stats(self) -> dict:
        merged = _inner_stats(self._inner)
        merged.update(
            crc_verified=merged.get("crc_verified", 0) + self.verified,
            crc_mismatches=merged.get("crc_mismatches", 0) + self.mismatches,
        )
        return merged

    def close(self) -> None:
        _close(self._inner)


class RetryingSource:
    """Retry ladder around one byte-range source.

    Each read is attempted up to ``1 + retries`` times against
    :data:`RETRYABLE_ERRORS`, sleeping :func:`jittered_backoff` between
    attempts.  Two guards bound the ladder:

    * a whole-source **retry budget** — once ``retry_budget`` retries have
      been spent (across all reads), further failures propagate
      immediately, so a dying backend degrades to fail-fast instead of
      multiplying its own load ``retries``-fold;
    * a whole-request **deadline** (monotonic timestamp via
      :meth:`set_deadline`, propagated by the scheduler/service) — a read
      arriving after expiry fails fast, and a retry whose backoff would
      cross the deadline re-raises the underlying error instead of
      sleeping.

    ``sleep`` / ``clock`` are injectable for deterministic tests.
    """

    is_remote_source = True

    def __init__(
        self,
        inner,
        *,
        retries: int = 3,
        retry_budget: int = 32,
        backoff: float = 0.05,
        backoff_cap: float = 1.0,
        label: str = "",
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._inner = inner
        self.size = inner.size
        self.retries = max(0, int(retries))
        self.backoff = max(0.0, float(backoff))
        self.backoff_cap = max(0.0, float(backoff_cap))
        self.label = label or getattr(inner, "url", "") or "remote"
        self._sleep = sleep
        self._clock = clock
        self._lock = threading.Lock()
        self.budget_left = max(0, int(retry_budget))
        self.retries_used = 0
        self.retry_delays: List[float] = []
        self.deadline: Optional[float] = None

    def set_deadline(self, deadline: Optional[float]) -> None:
        """Install (or clear) the whole-request monotonic deadline."""
        self.deadline = deadline

    def _expired(self, margin: float = 0.0) -> bool:
        return self.deadline is not None and self._clock() + margin >= self.deadline

    def read_range(self, offset: int, length: int) -> bytes:
        if self._expired():
            raise RemoteSourceError(
                f"request deadline exceeded before reading "
                f"[{offset}, {offset + length}) from {self.label}"
            )
        attempt = 0
        while True:
            try:
                return self._inner.read_range(offset, length)
            except RETRYABLE_ERRORS as exc:
                attempt += 1
                with self._lock:
                    if attempt > self.retries or self.budget_left <= 0:
                        raise
                    self.budget_left -= 1
                    self.retries_used += 1
                delay = jittered_backoff(
                    f"{self.label}@{offset}", attempt, self.backoff, self.backoff_cap
                )
                if self._expired(margin=delay):
                    # Backing off would cross the deadline: surface the
                    # real failure now instead of sleeping past it.
                    raise exc
                with self._lock:
                    self.retry_delays.append(delay)
                if delay > 0.0:
                    self._sleep(delay)

    def read_tail(self, span: int):
        # No ladder: a failed freshness probe means "freshness unknown",
        # which the caller handles more cheaply than retries would.
        return self._inner.read_tail(span)

    def stats(self) -> dict:
        merged = _inner_stats(self._inner)
        with self._lock:
            merged.update(
                retries=merged.get("retries", 0) + self.retries_used,
                retry_budget_left=self.budget_left,
            )
        return merged

    def close(self) -> None:
        _close(self._inner)


class _Mirror:
    """Health record of one replica: consecutive failures + latency EWMA."""

    __slots__ = ("source", "failures", "latency", "reads")

    def __init__(self, source) -> None:
        self.source = source
        self.failures = 0
        self.latency: Optional[float] = None
        self.reads = 0

    def record(self, ok: bool, seconds: Optional[float]) -> None:
        if ok:
            self.failures = 0
            self.reads += 1
            if seconds is not None:
                self.latency = (
                    seconds
                    if self.latency is None
                    else 0.8 * self.latency + 0.2 * seconds
                )
        else:
            self.failures += 1

    def health_key(self) -> Tuple[int, float]:
        return (self.failures, self.latency if self.latency is not None else 0.0)


class MirrorSource:
    """Failover + hedged reads across replica byte-range sources.

    Mirrors are ranked by health — consecutive failures first, then
    latency EWMA — and a read walks the ranking: the healthiest mirror
    serves, a retryable failure *fails over* to the next (counted), only
    total failure propagates (the last error).  All mirrors must agree on
    ``size``.

    **Hedged reads** bound tail latency: when the primary read has run
    longer than the hedge threshold — ``hedge_delay`` if given, else the
    observed slowest-decile (p90) latency once ``min_samples`` reads have
    been timed — the same range is fired at the next-healthiest mirror and
    the first payload wins.  The loser is cancelled if still queued;
    a loser that already holds the wire finishes in the background and its
    payload is accounted to ``hedge_wasted_bytes`` (never to the consumed
    trace).  Hedging engages only while at least two mirrors are healthy.

    Hedge worker threads are tracked individually and joined on
    :meth:`close` with a bounded ``shutdown_timeout`` — a loser wedged on
    a stalled connection cannot hang shutdown; it is counted in
    ``hedge_threads_leaked`` (and left to die with its daemon thread)
    instead.  After ``close()`` no new hedges fire: reads degrade to the
    plain timed walk.
    """

    is_remote_source = True

    def __init__(
        self,
        sources: Sequence,
        *,
        hedge_delay: Optional[float] = None,
        hedge_quantile: float = 0.9,
        min_samples: int = 8,
        clock: Callable[[], float] = time.monotonic,
        shutdown_timeout: float = 5.0,
    ) -> None:
        if not sources:
            raise ConfigurationError("MirrorSource needs at least one source")
        sizes = {int(source.size) for source in sources}
        if len(sizes) != 1:
            raise RemoteSourceError(
                f"mirrors disagree on object size: {sorted(sizes)}"
            )
        self._mirrors = [_Mirror(source) for source in sources]
        self.size = sizes.pop()
        self.hedge_delay = hedge_delay
        self.hedge_quantile = float(hedge_quantile)
        self.min_samples = max(2, int(min_samples))
        self.shutdown_timeout = max(0.0, float(shutdown_timeout))
        self._clock = clock
        self._lock = threading.Lock()
        self._latencies: List[float] = []
        self._threads: List[threading.Thread] = []
        self._closed = False
        self.failovers = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.hedge_wasted_bytes = 0
        self.hedge_threads_leaked = 0

    # ---------------------------------------------------------------- policy

    def _ranked(self) -> List[_Mirror]:
        with self._lock:
            return sorted(self._mirrors, key=_Mirror.health_key)

    def _hedge_threshold(self) -> Optional[float]:
        if self.hedge_delay is not None:
            return self.hedge_delay
        with self._lock:
            if len(self._latencies) < self.min_samples:
                return None
            ordered = sorted(self._latencies)
            index = min(
                len(ordered) - 1, int(self.hedge_quantile * len(ordered))
            )
            return ordered[index]

    def _record(self, mirror: _Mirror, ok: bool, seconds: Optional[float]) -> None:
        with self._lock:
            mirror.record(ok, seconds)
            if ok and seconds is not None:
                self._latencies.append(seconds)
                if len(self._latencies) > 64:
                    del self._latencies[0]

    def _spawn(self, fn, *args) -> Future:
        """Run ``fn`` on a tracked hedge thread; returns its Future.

        One thread per in-flight hedge leg (they are rare and short by
        construction) keeps every worker individually joinable — the
        property the lazy shared executor lacked: its ``shutdown(wait=
        True)`` hung forever on a wedged loser and missed threads spawned
        concurrently with close.
        """
        future: Future = Future()

        def runner() -> None:
            if not future.set_running_or_notify_cancel():
                return  # pragma: no cover - cancelled before start
            try:
                future.set_result(fn(*args))
            except BaseException as exc:
                future.set_exception(exc)

        thread = threading.Thread(
            target=runner, name="repro-hedge", daemon=True
        )
        with self._lock:
            self._threads = [t for t in self._threads if t.is_alive()]
            self._threads.append(thread)
        thread.start()
        return future

    def alive_hedge_threads(self) -> int:
        """Hedge worker threads still running (regression-test probe)."""
        with self._lock:
            self._threads = [t for t in self._threads if t.is_alive()]
            return len(self._threads)

    # ----------------------------------------------------------------- reads

    def read_range(self, offset: int, length: int) -> bytes:
        ranked = self._ranked()
        last_error: Optional[BaseException] = None
        for rank, mirror in enumerate(ranked):
            backup = ranked[rank + 1] if rank + 1 < len(ranked) else None
            threshold = self._hedge_threshold()
            try:
                if (
                    threshold is not None
                    and backup is not None
                    and backup.failures == 0
                    and not self._closed
                ):
                    return self._hedged_read(
                        mirror, backup, offset, length, threshold
                    )
                return self._timed_read(mirror, offset, length)
            except RETRYABLE_ERRORS as exc:
                last_error = exc
                if backup is not None:
                    with self._lock:
                        self.failovers += 1
        assert last_error is not None
        raise last_error

    def _timed_read(self, mirror: _Mirror, offset: int, length: int) -> bytes:
        start = self._clock()
        try:
            data = mirror.source.read_range(offset, length)
        except RETRYABLE_ERRORS:
            self._record(mirror, False, None)
            raise
        self._record(mirror, True, self._clock() - start)
        return data

    def _hedged_read(
        self,
        primary: _Mirror,
        backup: _Mirror,
        offset: int,
        length: int,
        threshold: float,
    ) -> bytes:
        futures: Dict[Future, _Mirror] = {
            self._spawn(self._timed_read, primary, offset, length): primary
        }
        done, pending = wait(futures, timeout=threshold)
        if not done:
            # Slowest-decile territory: fire the hedge at the backup.
            with self._lock:
                self.hedges += 1
            futures[self._spawn(self._timed_read, backup, offset, length)] = backup
        first_error: Optional[BaseException] = None
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                mirror = futures[future]
                error = future.exception()
                if error is None:
                    if mirror is backup:
                        with self._lock:
                            self.hedge_wins += 1
                    self._settle_losers(
                        [f for f in pending], futures, length
                    )
                    return future.result()
                if first_error is None:
                    first_error = error
        assert first_error is not None
        if isinstance(first_error, RETRYABLE_ERRORS):
            raise first_error
        raise RemoteSourceError(f"hedged read failed: {first_error}")  # pragma: no cover

    def _settle_losers(
        self, losers: List[Future], futures: Dict[Future, _Mirror], length: int
    ) -> None:
        """Cancel queued losers; account bytes of ones already on the wire."""
        for loser in losers:
            if loser.cancel():
                continue

            def _account(done: Future, nbytes: int = length) -> None:
                if not done.cancelled() and done.exception() is None:
                    with self._lock:
                        self.hedge_wasted_bytes += nbytes

            loser.add_done_callback(_account)

    def read_tail(self, span: int):
        """Tail probe from the healthiest mirror that can answer it."""
        last_error: Optional[BaseException] = None
        for mirror in self._ranked():
            probe = getattr(mirror.source, "read_tail", None)
            if probe is None:
                continue
            try:
                return probe(span)
            except RETRYABLE_ERRORS as exc:
                last_error = exc
        if last_error is not None:
            raise last_error
        raise RemoteSourceError("no mirror supports tail probes")

    # ------------------------------------------------------------- lifecycle

    def set_deadline(self, deadline: Optional[float]) -> None:
        for mirror in self._mirrors:
            setter = getattr(mirror.source, "set_deadline", None)
            if setter is not None:
                setter(deadline)

    def drain(self, timeout: Optional[float] = None) -> int:
        """Join in-flight hedge threads (tests settle accounting here).

        With a ``timeout`` the join budget is shared across all live
        threads (deadline-based); returns the number still alive when it
        ran out — 0 means a fully settled, deterministic shutdown.
        """
        with self._lock:
            threads = list(self._threads)
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in threads:
            if deadline is None:
                thread.join()
            else:
                remaining = deadline - time.monotonic()
                if remaining > 0:
                    thread.join(timeout=remaining)
        with self._lock:
            self._threads = [t for t in self._threads if t.is_alive()]
            return len(self._threads)

    def stats(self) -> dict:
        merged: dict = {}
        for mirror in self._mirrors:
            _merge_stats(merged, _inner_stats(mirror.source))
        with self._lock:
            merged.update(
                failovers=merged.get("failovers", 0) + self.failovers,
                hedges=self.hedges,
                hedge_wins=self.hedge_wins,
                hedge_wasted_bytes=self.hedge_wasted_bytes,
                hedge_threads_leaked=self.hedge_threads_leaked,
                mirrors=[
                    {
                        "label": getattr(
                            mirror.source, "label", getattr(mirror.source, "url", "")
                        ),
                        "failures": mirror.failures,
                        "latency_ewma_s": mirror.latency,
                        "reads": mirror.reads,
                    }
                    for mirror in self._mirrors
                ],
            )
        return merged

    def close(self) -> None:
        """Deterministic shutdown: stop hedging, join workers, close mirrors.

        The join is bounded by ``shutdown_timeout`` so a loser wedged on a
        stalled connection cannot hang the caller; survivors are counted
        in ``hedge_threads_leaked`` and abandoned to their daemon threads
        (closing the mirror sources below unblocks most of them anyway).
        """
        self._closed = True
        leaked = self.drain(timeout=self.shutdown_timeout)
        with self._lock:
            self.hedge_threads_leaked += leaked
        for mirror in self._mirrors:
            _close(mirror.source)


# ---------------------------------------------------------------- utilities


def _inner_stats(source) -> dict:
    stats = getattr(source, "stats", None)
    return dict(stats()) if callable(stats) else {}


def _merge_stats(into: dict, child: dict) -> dict:
    """Fold one layer's stats into an aggregate (sums, breaker-dict union)."""
    for key, value in child.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            into[key] = into.get(key, 0) + value
        elif isinstance(value, dict):
            merged = dict(into.get(key, {}))
            merged.update(value)
            into[key] = merged
        else:
            into.setdefault(key, value)
    return into


def _close(source) -> None:
    close = getattr(source, "close", None)
    if close is not None:
        close()


def find_remote_source(obj):
    """Walk a wrapper chain down to the remote stack (or ``None``).

    Follows the conventional private links — ``_inner`` (prefetch / traced
    / fault wrappers), ``_reader`` (block sources), ``_source`` (container
    readers) — until an object marked ``is_remote_source`` appears.  The
    serving layer uses this to harvest ``stats()`` deltas for traces
    without every intermediate layer having to know about networking.
    """
    seen = set()
    while obj is not None and id(obj) not in seen:
        seen.add(id(obj))
        if getattr(obj, "is_remote_source", False):
            return obj
        obj = (
            getattr(obj, "_inner", None)
            or getattr(obj, "_reader", None)
            or getattr(obj, "_source", None)
        )
    return None


def remote_fingerprint(source) -> Tuple[int, int, int]:
    """Session identity of a remote object: ``(size, 0, tail_crc)``.

    The remote analogue of the service's ``file_fingerprint``: no mtime
    exists over HTTP, so the witness is the CRC of the footer/manifest
    tail window alone (one bounded ranged GET).

    Stacks exposing :meth:`HTTPRangeSource.read_tail` are probed with a
    suffix range, which the server answers against the object it holds
    *now* — so a replaced object with a **different size** still yields a
    cleanly different fingerprint instead of an out-of-bounds read error
    against the stack's construction-time size.
    """
    probe = getattr(source, "read_tail", None)
    if probe is not None:
        size, tail = probe(_FINGERPRINT_TAIL)
        return (int(size), 0, zlib.crc32(tail))
    size = int(source.size)
    span = min(size, _FINGERPRINT_TAIL)
    tail = source.read_range(size - span, span)
    return (size, 0, zlib.crc32(tail))


def open_remote_source(
    url: str,
    mirrors: Sequence[str] = (),
    *,
    timeout: float = 10.0,
    verify: bool = True,
    retries: int = 3,
    retry_budget: int = 32,
    backoff: float = 0.05,
    backoff_cap: float = 1.0,
    breaker_threshold: int = 5,
    breaker_cooldown: float = 1.0,
    hedge_delay: Optional[float] = None,
    tamper: Optional[Callable[[str, object], object]] = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
):
    """Build the canonical resilient stack over one URL (plus replicas).

    Per endpoint: ``HTTPRangeSource`` (private circuit breaker) →
    ``tamper`` hook (fault injection wraps *below* verification, so
    injected corruption is caught exactly like wire corruption) →
    :class:`VerifyingSource` (``verify=True``) → :class:`RetryingSource`.
    With replica ``mirrors``, the per-endpoint stacks are joined under one
    :class:`MirrorSource` (failover + hedging); a single URL returns the
    bare retrying stack.  The result speaks plain ``size``/``read_range``
    — everything upstream (prefetcher, container reader, service) is
    oblivious to the networking underneath.
    """

    def endpoint_stack(endpoint_url: str):
        source = HTTPRangeSource(
            endpoint_url,
            timeout=timeout,
            breaker=CircuitBreaker(
                threshold=breaker_threshold, cooldown=breaker_cooldown, clock=clock
            ),
        )
        wrapped = tamper(endpoint_url, source) if tamper is not None else source
        if verify:
            wrapped = VerifyingSource(wrapped)
        return RetryingSource(
            wrapped,
            retries=retries,
            retry_budget=retry_budget,
            backoff=backoff,
            backoff_cap=backoff_cap,
            label=endpoint_url,
            sleep=sleep,
            clock=clock,
        )

    endpoints = (url, *tuple(mirrors))
    if len(endpoints) == 1:
        return endpoint_stack(url)
    # With replicas, an endpoint that is already dead at open time (size
    # probe fails) is failover-at-construction: drop it and carry on with
    # the survivors.  Only every endpoint failing propagates.
    stacks, first_error = [], None
    for endpoint_url in endpoints:
        try:
            stacks.append(endpoint_stack(endpoint_url))
        except (RemoteSourceError, OSError) as exc:
            first_error = first_error or exc
    if not stacks:
        raise first_error
    if len(stacks) == 1:
        return stacks[0]
    return MirrorSource(stacks, hedge_delay=hedge_delay, clock=clock)
