"""Block-decomposed parallel compression substrate.

Scientific compressors are deployed per-rank on HPC systems: the domain is
decomposed into blocks and every block is compressed independently, which
preserves the point-wise error bound and lets retrieval be block-local.  This
subpackage provides that execution substrate with the Python standard
library's process pool (no MPI dependency is available offline; the block
interface mirrors what an mpi4py-based driver would scatter/gather).
"""

from __future__ import annotations

from repro.parallel.executor import BlockParallelCompressor, CompressedBlock, shard_name
from repro.parallel.partition import (
    block_slices,
    intersect_slab_roi,
    normalize_roi,
    partition_shape,
    ranges_to_slices,
    reassemble,
    slices_intersect,
    slices_to_ranges,
)

__all__ = [
    "BlockParallelCompressor",
    "CompressedBlock",
    "shard_name",
    "partition_shape",
    "block_slices",
    "reassemble",
    "normalize_roi",
    "intersect_slab_roi",
    "slices_intersect",
    "slices_to_ranges",
    "ranges_to_slices",
]
