"""Block-decomposed parallel compression substrate.

Scientific compressors are deployed per-rank on HPC systems: the domain is
decomposed into blocks and every block is compressed independently, which
preserves the point-wise error bound and lets retrieval be block-local.  This
subpackage provides that execution substrate with the Python standard
library's process pool (no MPI dependency is available offline; the block
interface mirrors what an mpi4py-based driver would scatter/gather).
"""

from __future__ import annotations

from repro.parallel.executor import BlockParallelCompressor, CompressedBlock
from repro.parallel.partition import block_slices, partition_shape, reassemble

__all__ = [
    "BlockParallelCompressor",
    "CompressedBlock",
    "partition_shape",
    "block_slices",
    "reassemble",
]
