"""Process-pool block compressor with shared-memory slab transport.

``BlockParallelCompressor`` decomposes a field into slabs, compresses every
slab with an independent IPComp stream (workers are separate processes, so the
NumPy work genuinely runs in parallel), and reassembles on decompression.
Because each block carries its own error-bounded stream the global L∞ bound
is preserved, and progressive retrieval can be served block by block.

**Slab transport.**  The parallel compress path places the field in one
:mod:`multiprocessing.shared_memory` segment and sends workers only
``(profile, segment name, shape, dtype, slab extents)`` — a few hundred
bytes per task instead of a pickled copy of every slab crossing the process
boundary twice.  Workers attach a read-only NumPy view and compress their
slabs in place.  Consecutive small slabs are **batched** into one task
(:data:`MIN_TASK_BYTES`) so a finely sharded field does not drown in
per-task dispatch overhead.  When shared memory is unavailable (no
``/dev/shm``, sealed sandbox) the payloads fall back to pickled slab
arrays, and ``workers=0`` — or an environment without ``fork``/spawn
support — falls back to serial execution; every route produces
byte-identical streams.  A pool that cannot start — or that loses its
worker processes — triggers the serial fallback; an exception *raised by
the worker function itself* is a real error and propagates to the caller
(the ladder lives in :mod:`repro.parallel.poolmap`, shared with the decode
direction).

**Decode direction.**  :meth:`~BlockParallelCompressor.decompress` and
:meth:`~BlockParallelCompressor.retrieve` run the mirror transport — the
pool decode stage of :mod:`repro.retrieval.pooldecode`: workers write
reconstructed slabs directly into one shared-memory *output* segment keyed
by the slab extents, so reassembly is zero-copy (no result array is ever
pickled back), with the same fallback ladder and bitwise-identical output.

The compressor also speaks the on-disk container dialect of
:mod:`repro.io`: :meth:`~BlockParallelCompressor.compress_into` **streams**
one ``shard-NNNN`` entry per slab to any block-container writer as each
slab's stream is produced (no intermediate list of all streams is built
before the first byte reaches the container), and
:meth:`~BlockParallelCompressor.blocks_from_entries` reads them back — the
substrate :class:`repro.io.ChunkedDataset` builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic builds without _posixshmem
    _shared_memory = None

from repro.core.compressor import IPComp
from repro.core.profile import CodecProfile
from repro.core.progressive import ProgressiveRetriever
from repro.errors import ConfigurationError, StreamFormatError
from repro.parallel.partition import (
    SliceTuple,
    batch_slabs,
    block_slices,
    ranges_to_slices,
    slices_to_ranges,
)
from repro.parallel.poolmap import create_segment, imap_fallback

#: Container entries produced by :meth:`BlockParallelCompressor.compress_into`.
SHARD_PREFIX = "shard-"

#: Minimum slab bytes a parallel task should carry: consecutive smaller
#: slabs are batched into one task to amortise dispatch overhead.
MIN_TASK_BYTES = 1 << 20


def shard_name(index: int) -> str:
    """Canonical container-entry name of slab ``index``."""
    return f"{SHARD_PREFIX}{index:04d}"


def _compress_block(payload: Tuple[CodecProfile, np.ndarray]) -> bytes:
    """Worker: compress one slab with a fresh IPComp instance."""
    profile, block = payload
    return IPComp(profile=profile).compress(block)


def _compress_batch_shm(payload) -> List[bytes]:
    """Worker: compress a batch of slabs read from a shared-memory field.

    The payload carries no array data — just the segment name plus the
    global shape/dtype and each slab's extents — so task pickling cost is
    independent of the field size.  The same function also runs in-process
    on the serial fallback paths (attaching to a segment from the creating
    process is valid and free).
    """
    profile, segment_name, shape, dtype, batch_ranges = payload
    segment = _shared_memory.SharedMemory(name=segment_name)
    field = None
    try:
        field = np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=segment.buf)
        return [
            IPComp(profile=profile).compress(
                np.ascontiguousarray(field[ranges_to_slices(ranges)])
            )
            for ranges in batch_ranges
        ]
    finally:
        # The ndarray view must release the buffer before the segment
        # handle can close (ascontiguousarray copies, so nothing else
        # holds it).
        del field
        segment.close()


@dataclass
class CompressedBlock:
    """One slab of the domain and its compressed stream."""

    slices: SliceTuple
    blob: bytes

    @property
    def nbytes(self) -> int:
        return len(self.blob)


class BlockParallelCompressor:
    """Compress a large field as independent, optionally parallel, slabs."""

    def __init__(
        self,
        error_bound: Optional[float] = None,
        relative: Optional[bool] = None,
        n_blocks: int = 4,
        workers: Optional[int] = None,
        profile: Optional[CodecProfile] = None,
        **profile_overrides,
    ) -> None:
        if n_blocks < 1:
            raise ConfigurationError("n_blocks must be positive")
        self.profile = CodecProfile.from_options(
            profile, error_bound=error_bound, relative=relative, **profile_overrides
        )
        self.n_blocks = n_blocks
        self.workers = workers

    # ------------------------------------------------------------------ utils

    def _effective_workers(self) -> int:
        if self.workers is None:
            return min(self.n_blocks, 4)
        return self.workers or 0

    def _imap(self, function, payloads: Sequence) -> Iterator:
        """Apply ``function`` to every payload, yielding results *in order*.

        Results are yielded as soon as they (and all their predecessors)
        complete, so consumers can stream them — e.g. write shard ``k`` to
        a container while shard ``k+1`` is still compressing.  The fallback
        ladder (shared with the decode side, see
        :func:`repro.parallel.poolmap.imap_fallback`): a pool that cannot
        start, a submit-time fork/spawn denial, or worker *processes* dying
        mid-run all degrade to in-process execution with bit-identical
        results, while an exception raised by ``function`` itself is a real
        error and propagates.
        """
        yield from imap_fallback(function, payloads, self._effective_workers())

    def _map(self, function, payloads: Sequence) -> List:
        return list(self._imap(function, payloads))

    # ------------------------------------------------------------- public API

    def resolved_profile(self, data: np.ndarray) -> CodecProfile:
        """The per-block codec profile for ``data``, bound resolved.

        The per-block absolute bound is derived from the *global* field when
        the profile is range-relative, so every block honours the same
        absolute bound and the reassembled field satisfies it globally.
        """
        return self.profile.resolve(np.asarray(data))

    def compress(self, data: np.ndarray) -> List[CompressedBlock]:
        """Compress ``data`` into ``n_blocks`` independent IPComp streams."""
        return list(self.compress_iter(data))

    def compress_iter(self, data: np.ndarray) -> Iterator[CompressedBlock]:
        """Compress ``data`` slab by slab, yielding blocks in slab order.

        The parallel path ships the field to workers through one
        shared-memory segment (see the module docstring); blocks are
        yielded as soon as they — and their predecessors — finish, so a
        consumer can stream them to disk while later slabs still compress.
        Every execution mode yields byte-identical blocks.
        """
        data = np.ascontiguousarray(data)
        profile = self.resolved_profile(data)
        slabs = block_slices(data.shape, self.n_blocks)
        if len(slabs) > 1 and self._effective_workers() > 1 and _shared_memory is not None:
            segment = self._create_segment(data.nbytes)
            if segment is not None:
                yield from self._compress_iter_shm(segment, data, profile, slabs)
                return
        payloads = [(profile, np.ascontiguousarray(data[slc])) for slc in slabs]
        for slc, blob in zip(slabs, self._imap(_compress_block, payloads)):
            yield CompressedBlock(slc, blob)

    @staticmethod
    def _create_segment(nbytes: int):
        """A fresh shared-memory segment, or ``None`` where unsupported.

        ``None`` routes to the pickled slab transport — slower but always
        available (see :func:`repro.parallel.poolmap.create_segment`).
        """
        if _shared_memory is None:
            return None
        return create_segment(nbytes)

    def _compress_iter_shm(
        self, segment, data: np.ndarray, profile: CodecProfile, slabs: List[SliceTuple]
    ) -> Iterator[CompressedBlock]:
        try:
            view = np.ndarray(data.shape, dtype=data.dtype, buffer=segment.buf)
            view[...] = data
            del view  # workers hold their own attachments; release ours
            batches = batch_slabs(
                slabs,
                data.shape,
                data.dtype.itemsize,
                self._effective_workers(),
                MIN_TASK_BYTES,
            )
            payloads = [
                (
                    profile,
                    segment.name,
                    tuple(data.shape),
                    str(data.dtype),
                    [slices_to_ranges(slc, data.shape) for slc in batch],
                )
                for batch in batches
            ]
            for batch, blobs in zip(batches, self._imap(_compress_batch_shm, payloads)):
                for slc, blob in zip(batch, blobs):
                    yield CompressedBlock(slc, blob)
        finally:
            try:
                segment.close()
                segment.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    # ----------------------------------------------------- container entries

    def compress_into(
        self, writer, data: np.ndarray, *, keep_blobs: bool = True
    ) -> List[CompressedBlock]:
        """Compress ``data``, streaming one ``shard-NNNN`` entry per slab.

        ``writer`` is any object with the
        :meth:`repro.io.BlockContainerWriter.add_block` interface (duck-typed
        so this module needs no dependency on :mod:`repro.io`).  Each entry's
        metadata records the slab's global slice extents.  Shards are written
        **as they are produced** — the container receives shard ``k`` while
        later slabs are still compressing, and no list of all streams is
        materialised first.  The blocks are also returned for callers that
        want to keep them in memory; ``keep_blobs=False`` returns them with
        empty payloads (slab extents only) so writing a large dataset does
        not retain every compressed stream.
        """
        data = np.asarray(data)
        blocks: List[CompressedBlock] = []
        for index, block in enumerate(self.compress_iter(data)):
            writer.add_block(
                shard_name(index),
                block.blob,
                {"slices": slices_to_ranges(block.slices, data.shape)},
            )
            blocks.append(block if keep_blobs else CompressedBlock(block.slices, b""))
        return blocks

    @staticmethod
    def blocks_from_entries(reader, names: Optional[Sequence[str]] = None) -> List[CompressedBlock]:
        """Rehydrate :class:`CompressedBlock` objects from container entries.

        ``reader`` is any object with the
        :meth:`repro.io.BlockContainerReader.read_block` / ``metadata`` /
        ``block_names`` interface.  ``names`` defaults to every
        ``shard-NNNN`` entry in directory order.
        """
        if names is None:
            names = [n for n in reader.block_names() if n.startswith(SHARD_PREFIX)]
        blocks = []
        for name in names:
            meta = reader.metadata(name)
            try:
                slices = ranges_to_slices(meta["slices"])
            except (KeyError, TypeError, ValueError):
                raise StreamFormatError(
                    f"container entry {name!r} has no slab extents"
                ) from None
            blocks.append(CompressedBlock(slices, reader.read_block(name)))
        return blocks

    # ------------------------------------------------------------- retrieval

    def decompress(
        self, blocks: Sequence[CompressedBlock], shape: Sequence[int], dtype=np.float64
    ) -> np.ndarray:
        """Fully decompress and reassemble the original field.

        Runs the pool decode stage (:mod:`repro.retrieval.pooldecode`):
        with ``workers > 1`` and shared memory available, workers write the
        reconstructed slabs straight into one shared output segment and the
        returned array is a zero-copy view of it; every fallback (no shared
        memory → pickled results, no pool → in-process) is bit-identical.
        """
        return self._pooled_reassemble(blocks, shape, dtype, None)

    def retrieve(
        self,
        blocks: Sequence[CompressedBlock],
        shape: Sequence[int],
        error_bound: float,
        dtype=np.float64,
    ) -> np.ndarray:
        """Progressively retrieve every slab at ``error_bound`` and reassemble."""
        return self._pooled_reassemble(blocks, shape, dtype, float(error_bound))

    def _pooled_reassemble(
        self,
        blocks: Sequence[CompressedBlock],
        shape: Sequence[int],
        dtype,
        error_bound: Optional[float],
    ) -> np.ndarray:
        from repro.retrieval.pooldecode import pooled_reassemble

        return pooled_reassemble(
            blocks,
            shape,
            dtype,
            workers=self._effective_workers(),
            error_bound=error_bound,
        )

    @staticmethod
    def compressed_bytes(blocks: Sequence[CompressedBlock]) -> int:
        """Total compressed size across all slabs."""
        return sum(b.nbytes for b in blocks)
