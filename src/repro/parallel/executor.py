"""Process-pool block compressor.

``BlockParallelCompressor`` decomposes a field into slabs, compresses every
slab with an independent IPComp stream (workers are separate processes, so the
NumPy work genuinely runs in parallel), and reassembles on decompression.
Because each block carries its own error-bounded stream the global L∞ bound
is preserved, and progressive retrieval can be served block by block.

Workers receive ``(config kwargs, slab array)`` and return bytes; the
top-level :func:`_compress_block` / :func:`_decompress_block` functions exist
so the payloads are picklable by the standard :mod:`concurrent.futures`
machinery.  ``workers=0`` (or an environment without ``fork``/spawn support)
falls back to serial execution with identical results.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.compressor import IPComp
from repro.core.progressive import ProgressiveRetriever
from repro.errors import ConfigurationError
from repro.parallel.partition import SliceTuple, block_slices, reassemble


def _compress_block(payload: Tuple[dict, np.ndarray]) -> bytes:
    """Worker: compress one slab with a fresh IPComp instance."""
    config, block = payload
    return IPComp(**config).compress(block)


def _decompress_block(blob: bytes) -> np.ndarray:
    """Worker: fully decompress one slab."""
    retriever = ProgressiveRetriever(blob)
    return retriever.retrieve(error_bound=retriever.header.error_bound).data


def _retrieve_block(payload: Tuple[bytes, float]) -> np.ndarray:
    """Worker: partially retrieve one slab at the requested error bound."""
    blob, error_bound = payload
    return ProgressiveRetriever(blob).retrieve(error_bound=error_bound).data


@dataclass
class CompressedBlock:
    """One slab of the domain and its compressed stream."""

    slices: SliceTuple
    blob: bytes

    @property
    def nbytes(self) -> int:
        return len(self.blob)


class BlockParallelCompressor:
    """Compress a large field as independent, optionally parallel, slabs."""

    def __init__(
        self,
        error_bound: float = 1e-6,
        relative: bool = True,
        n_blocks: int = 4,
        workers: Optional[int] = None,
        **ipcomp_kwargs,
    ) -> None:
        if n_blocks < 1:
            raise ConfigurationError("n_blocks must be positive")
        self.config = dict(error_bound=error_bound, relative=relative, **ipcomp_kwargs)
        self.n_blocks = n_blocks
        self.workers = workers

    # ------------------------------------------------------------------ utils

    def _map(self, function, payloads: Sequence) -> List:
        workers = self.workers
        if workers is None:
            workers = min(self.n_blocks, 4)
        if workers and workers > 1 and len(payloads) > 1:
            try:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    return list(pool.map(function, payloads))
            except (OSError, ValueError, RuntimeError):
                # Restricted environments (no /dev/shm, no spawn) fall back to
                # serial execution; results are bit-identical either way.
                pass
        return [function(p) for p in payloads]

    # ------------------------------------------------------------- public API

    def compress(self, data: np.ndarray) -> List[CompressedBlock]:
        """Compress ``data`` into ``n_blocks`` independent IPComp streams.

        The per-block absolute bound is derived from the *global* field when
        the configuration is range-relative, so every block honours the same
        absolute bound and the reassembled field satisfies it globally.
        """
        data = np.asarray(data)
        config = dict(self.config)
        if config.get("relative", True):
            comp = IPComp(**config)
            config["error_bound"] = comp.absolute_bound(data)
            config["relative"] = False
        slabs = block_slices(data.shape, self.n_blocks)
        payloads = [(config, np.ascontiguousarray(data[slc])) for slc in slabs]
        blobs = self._map(_compress_block, payloads)
        return [CompressedBlock(slc, blob) for slc, blob in zip(slabs, blobs)]

    def decompress(
        self, blocks: Sequence[CompressedBlock], shape: Sequence[int], dtype=np.float64
    ) -> np.ndarray:
        """Fully decompress and reassemble the original field."""
        blobs = [b.blob for b in blocks]
        pieces = self._map(_decompress_block, blobs)
        return reassemble(
            shape, [(b.slices, piece) for b, piece in zip(blocks, pieces)], dtype
        )

    def retrieve(
        self,
        blocks: Sequence[CompressedBlock],
        shape: Sequence[int],
        error_bound: float,
        dtype=np.float64,
    ) -> np.ndarray:
        """Progressively retrieve every slab at ``error_bound`` and reassemble."""
        payloads = [(b.blob, float(error_bound)) for b in blocks]
        pieces = self._map(_retrieve_block, payloads)
        return reassemble(
            shape, [(b.slices, piece) for b, piece in zip(blocks, pieces)], dtype
        )

    @staticmethod
    def compressed_bytes(blocks: Sequence[CompressedBlock]) -> int:
        """Total compressed size across all slabs."""
        return sum(b.nbytes for b in blocks)
