"""Process-pool block compressor.

``BlockParallelCompressor`` decomposes a field into slabs, compresses every
slab with an independent IPComp stream (workers are separate processes, so the
NumPy work genuinely runs in parallel), and reassembles on decompression.
Because each block carries its own error-bounded stream the global L∞ bound
is preserved, and progressive retrieval can be served block by block.

Workers receive ``(CodecProfile, slab array)`` and return bytes; the profile
is a frozen dataclass of primitives, so it pickles across the process
boundary unchanged, and the top-level :func:`_compress_block` /
:func:`_decompress_block` functions exist so the payloads are picklable by
the standard :mod:`concurrent.futures` machinery.  ``workers=0`` (or an environment without ``fork``/spawn support)
falls back to serial execution with identical results.  A pool that cannot
start — or that loses its worker processes — triggers the serial fallback;
an exception *raised by the worker function itself* is a real error and
propagates to the caller.

The compressor also speaks the on-disk container dialect of
:mod:`repro.io`: :meth:`~BlockParallelCompressor.compress_into` writes one
``shard-NNNN`` entry per slab to any block-container writer, and
:meth:`~BlockParallelCompressor.blocks_from_entries` reads them back — the
substrate :class:`repro.io.ChunkedDataset` builds on.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.compressor import IPComp
from repro.core.profile import CodecProfile
from repro.core.progressive import ProgressiveRetriever
from repro.errors import ConfigurationError, StreamFormatError
from repro.parallel.partition import (
    SliceTuple,
    block_slices,
    ranges_to_slices,
    reassemble,
    slices_to_ranges,
)

#: Container entries produced by :meth:`BlockParallelCompressor.compress_into`.
SHARD_PREFIX = "shard-"


def shard_name(index: int) -> str:
    """Canonical container-entry name of slab ``index``."""
    return f"{SHARD_PREFIX}{index:04d}"


def _compress_block(payload: Tuple[CodecProfile, np.ndarray]) -> bytes:
    """Worker: compress one slab with a fresh IPComp instance."""
    profile, block = payload
    return IPComp(profile=profile).compress(block)


def _decompress_block(blob: bytes) -> np.ndarray:
    """Worker: fully decompress one slab."""
    retriever = ProgressiveRetriever(blob)
    return retriever.retrieve(error_bound=retriever.header.error_bound).data


def _retrieve_block(payload: Tuple[bytes, float]) -> np.ndarray:
    """Worker: partially retrieve one slab at the requested error bound."""
    blob, error_bound = payload
    return ProgressiveRetriever(blob).retrieve(error_bound=error_bound).data


@dataclass
class CompressedBlock:
    """One slab of the domain and its compressed stream."""

    slices: SliceTuple
    blob: bytes

    @property
    def nbytes(self) -> int:
        return len(self.blob)


class BlockParallelCompressor:
    """Compress a large field as independent, optionally parallel, slabs."""

    def __init__(
        self,
        error_bound: Optional[float] = None,
        relative: Optional[bool] = None,
        n_blocks: int = 4,
        workers: Optional[int] = None,
        profile: Optional[CodecProfile] = None,
        **profile_overrides,
    ) -> None:
        if n_blocks < 1:
            raise ConfigurationError("n_blocks must be positive")
        self.profile = CodecProfile.from_options(
            profile, error_bound=error_bound, relative=relative, **profile_overrides
        )
        self.n_blocks = n_blocks
        self.workers = workers

    # ------------------------------------------------------------------ utils

    def _map(self, function, payloads: Sequence) -> List:
        workers = self.workers
        if workers is None:
            workers = min(self.n_blocks, 4)
        if not workers or workers <= 1 or len(payloads) <= 1:
            return [function(p) for p in payloads]
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
        except (OSError, ValueError, RuntimeError, NotImplementedError):
            # The pool itself could not start (no /dev/shm, no spawn method):
            # fall back to serial execution, results are bit-identical.
            return [function(p) for p in payloads]
        with pool:
            try:
                # Worker processes are spawned lazily at submit time, so
                # fork/spawn denial (sandboxes) surfaces here — still an
                # environment problem, still the serial fallback.
                futures = [pool.submit(function, p) for p in payloads]
            except (OSError, ValueError, RuntimeError, NotImplementedError):
                return [function(p) for p in payloads]
            try:
                return [future.result() for future in futures]
            except BrokenProcessPool:
                # Worker *processes* died while running (sandboxed fork,
                # OOM-killed child) — an environment problem, so retry
                # serially.  Exceptions raised by ``function`` itself arrive
                # as their original type and fall through to the caller: a
                # worker error is a real error, not a cue to silently
                # recompute.
                return [function(p) for p in payloads]

    # ------------------------------------------------------------- public API

    def resolved_profile(self, data: np.ndarray) -> CodecProfile:
        """The per-block codec profile for ``data``, bound resolved.

        The per-block absolute bound is derived from the *global* field when
        the profile is range-relative, so every block honours the same
        absolute bound and the reassembled field satisfies it globally.
        """
        return self.profile.resolve(np.asarray(data))

    def compress(self, data: np.ndarray) -> List[CompressedBlock]:
        """Compress ``data`` into ``n_blocks`` independent IPComp streams."""
        data = np.asarray(data)
        profile = self.resolved_profile(data)
        slabs = block_slices(data.shape, self.n_blocks)
        payloads = [(profile, np.ascontiguousarray(data[slc])) for slc in slabs]
        blobs = self._map(_compress_block, payloads)
        return [CompressedBlock(slc, blob) for slc, blob in zip(slabs, blobs)]

    # ----------------------------------------------------- container entries

    def compress_into(self, writer, data: np.ndarray) -> List[CompressedBlock]:
        """Compress ``data`` and write one ``shard-NNNN`` entry per slab.

        ``writer`` is any object with the
        :meth:`repro.io.BlockContainerWriter.add_block` interface (duck-typed
        so this module needs no dependency on :mod:`repro.io`).  Each entry's
        metadata records the slab's global slice extents; the blocks are also
        returned for callers that want to keep them in memory.
        """
        data = np.asarray(data)
        blocks = self.compress(data)
        for index, block in enumerate(blocks):
            writer.add_block(
                shard_name(index),
                block.blob,
                {"slices": slices_to_ranges(block.slices, data.shape)},
            )
        return blocks

    @staticmethod
    def blocks_from_entries(reader, names: Optional[Sequence[str]] = None) -> List[CompressedBlock]:
        """Rehydrate :class:`CompressedBlock` objects from container entries.

        ``reader`` is any object with the
        :meth:`repro.io.BlockContainerReader.read_block` / ``metadata`` /
        ``block_names`` interface.  ``names`` defaults to every
        ``shard-NNNN`` entry in directory order.
        """
        if names is None:
            names = [n for n in reader.block_names() if n.startswith(SHARD_PREFIX)]
        blocks = []
        for name in names:
            meta = reader.metadata(name)
            try:
                slices = ranges_to_slices(meta["slices"])
            except (KeyError, TypeError, ValueError):
                raise StreamFormatError(
                    f"container entry {name!r} has no slab extents"
                ) from None
            blocks.append(CompressedBlock(slices, reader.read_block(name)))
        return blocks

    # ------------------------------------------------------------- retrieval

    def decompress(
        self, blocks: Sequence[CompressedBlock], shape: Sequence[int], dtype=np.float64
    ) -> np.ndarray:
        """Fully decompress and reassemble the original field."""
        blobs = [b.blob for b in blocks]
        pieces = self._map(_decompress_block, blobs)
        return reassemble(
            shape, [(b.slices, piece) for b, piece in zip(blocks, pieces)], dtype
        )

    def retrieve(
        self,
        blocks: Sequence[CompressedBlock],
        shape: Sequence[int],
        error_bound: float,
        dtype=np.float64,
    ) -> np.ndarray:
        """Progressively retrieve every slab at ``error_bound`` and reassemble."""
        payloads = [(b.blob, float(error_bound)) for b in blocks]
        pieces = self._map(_retrieve_block, payloads)
        return reassemble(
            shape, [(b.slices, piece) for b, piece in zip(blocks, pieces)], dtype
        )

    @staticmethod
    def compressed_bytes(blocks: Sequence[CompressedBlock]) -> int:
        """Total compressed size across all slabs."""
        return sum(b.nbytes for b in blocks)
