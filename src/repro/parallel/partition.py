"""Domain decomposition helpers.

``partition_shape`` splits an N-dimensional index space into roughly equal
axis-aligned blocks; ``block_slices`` turns the partition into concrete slice
tuples; ``reassemble`` is the inverse scatter.  The decomposition is purely
geometric — no ghost layers are needed because every compressor in this
repository is block-independent.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

SliceTuple = Tuple[slice, ...]


def partition_shape(shape: Sequence[int], max_block: Sequence[int] | int) -> List[SliceTuple]:
    """Split ``shape`` into blocks no larger than ``max_block`` per axis.

    ``max_block`` may be a single integer (applied to every axis) or one value
    per axis.  Returns the slice tuples in C (row-major block) order.
    """
    shape = tuple(int(s) for s in shape)
    if isinstance(max_block, (int, np.integer)):
        max_block = (int(max_block),) * len(shape)
    max_block = tuple(int(b) for b in max_block)
    if len(max_block) != len(shape):
        raise ConfigurationError("max_block must match the number of dimensions")
    if any(b < 1 for b in max_block):
        raise ConfigurationError("block extents must be positive")

    per_axis: List[List[slice]] = []
    for size, block in zip(shape, max_block):
        starts = list(range(0, size, block))
        per_axis.append([slice(s, min(s + block, size)) for s in starts])

    blocks: List[SliceTuple] = []
    grid_shape = tuple(len(ax) for ax in per_axis)
    for flat_index in range(int(np.prod(grid_shape))):
        coords = np.unravel_index(flat_index, grid_shape)
        blocks.append(tuple(per_axis[axis][c] for axis, c in enumerate(coords)))
    return blocks


def block_slices(shape: Sequence[int], n_blocks: int) -> List[SliceTuple]:
    """Split along the slowest axis into at most ``n_blocks`` contiguous slabs."""
    shape = tuple(int(s) for s in shape)
    if n_blocks < 1:
        raise ConfigurationError("n_blocks must be positive")
    leading = shape[0]
    n_blocks = min(n_blocks, leading)
    edges = np.linspace(0, leading, n_blocks + 1, dtype=int)
    slabs = []
    for i in range(n_blocks):
        if edges[i + 1] > edges[i]:
            slabs.append((slice(int(edges[i]), int(edges[i + 1])),) + tuple(
                slice(None) for _ in shape[1:]
            ))
    return slabs


def slices_to_ranges(slices: SliceTuple, shape: Sequence[int]) -> List[List[int]]:
    """Serialize a slice tuple as JSON-friendly ``[[start, stop], ...]`` pairs."""
    shape = tuple(int(s) for s in shape)
    if len(slices) != len(shape):
        raise ConfigurationError("slice tuple must match the number of dimensions")
    ranges = []
    for slc, size in zip(slices, shape):
        start, stop, step = slc.indices(size)
        if step != 1:
            raise ConfigurationError("only contiguous (step-1) slices are supported")
        ranges.append([int(start), int(stop)])
    return ranges


def ranges_to_slices(ranges: Sequence[Sequence[int]]) -> SliceTuple:
    """Inverse of :func:`slices_to_ranges`."""
    return tuple(slice(int(start), int(stop)) for start, stop in ranges)


def normalize_roi(roi, shape: Sequence[int]) -> SliceTuple:
    """Normalize a region-of-interest spec into a concrete slice tuple.

    ``roi`` may be a single slice, a tuple of slices, a tuple of
    ``(start, stop)`` pairs, or integers (one index, keeping the axis);
    missing trailing axes default to the full extent.  The result always has
    one step-1 slice with concrete, in-bounds endpoints per axis, and every
    axis must select at least one point.
    """
    shape = tuple(int(s) for s in shape)
    if isinstance(roi, slice):
        roi = (roi,)
    roi = tuple(roi)
    if len(roi) > len(shape):
        raise ConfigurationError(
            f"roi has {len(roi)} axes but the field has {len(shape)}"
        )
    roi = roi + tuple(slice(None) for _ in range(len(shape) - len(roi)))
    out = []
    for axis, (spec, size) in enumerate(zip(roi, shape)):
        if not isinstance(spec, slice):
            if isinstance(spec, (int, np.integer)):
                index = int(spec) + (size if spec < 0 else 0)
                if not 0 <= index < size:
                    raise ConfigurationError(
                        f"roi index {spec} out of range for axis {axis} "
                        f"of size {size}"
                    )
                spec = slice(index, index + 1)
            else:
                try:
                    start, stop = spec
                except (TypeError, ValueError):
                    raise ConfigurationError(
                        f"roi axis {axis} must be a slice, an int, or a "
                        f"(start, stop) pair, got {spec!r}"
                    ) from None
                spec = slice(int(start), int(stop))
        start, stop, step = spec.indices(size)
        if step != 1:
            raise ConfigurationError("roi slices must have step 1")
        if stop <= start:
            raise ConfigurationError(f"roi selects no points along axis {axis}")
        out.append(slice(start, stop))
    return tuple(out)


def slices_intersect(a: SliceTuple, b: SliceTuple) -> bool:
    """True if two concrete (start/stop) slice tuples share any point."""
    return all(
        max(sa.start, sb.start) < min(sa.stop, sb.stop) for sa, sb in zip(a, b)
    )


def intersect_slab_roi(slab: SliceTuple, roi: SliceTuple) -> Tuple[SliceTuple, SliceTuple]:
    """Selectors scattering a slab's data into an ROI-shaped output.

    Returns ``(sel_out, sel_in)``: ``out[sel_out] = slab_data[sel_in]``
    places the slab∩ROI overlap of a decoded slab into an array shaped like
    the ROI.  Both the serial reassembly and the pool-decode workers (which
    write straight into the shared output segment) use this, so the two
    paths scatter identically by construction.
    """
    sel_out, sel_in = [], []
    for slab_axis, roi_axis in zip(slab, roi):
        start = max(slab_axis.start, roi_axis.start)
        stop = min(slab_axis.stop, roi_axis.stop)
        sel_out.append(slice(start - roi_axis.start, stop - roi_axis.start))
        sel_in.append(slice(start - slab_axis.start, stop - slab_axis.start))
    return tuple(sel_out), tuple(sel_in)


def slab_bytes(slc: SliceTuple, shape: Sequence[int], itemsize: int) -> int:
    """Payload bytes of one slab of a field with the given shape/itemsize."""
    n = itemsize
    for axis_slice, extent in zip(slc, shape):
        start, stop, _ = axis_slice.indices(extent)
        n *= max(0, stop - start)
    return n


def batch_slabs(
    slabs: Sequence[SliceTuple],
    shape: Sequence[int],
    itemsize: int,
    workers: int,
    min_bytes: int,
) -> List[List[SliceTuple]]:
    """Group consecutive slabs into per-task batches.

    Small slabs are merged until a batch carries at least ``min_bytes`` of
    field data, capped so a field large enough to feed every worker is never
    collapsed below ``workers`` batches: the effective threshold is
    ``min(min_bytes, total_bytes // workers)``.  Both transport directions
    use this — encode tasks over input slabs and pool-decode tasks over
    output slabs.
    """
    total = sum(slab_bytes(slc, shape, itemsize) for slc in slabs)
    target = min(min_bytes, max(1, total // max(workers, 1)))
    batches: List[List[SliceTuple]] = []
    current: List[SliceTuple] = []
    current_bytes = 0
    for slc in slabs:
        current.append(slc)
        current_bytes += slab_bytes(slc, shape, itemsize)
        if current_bytes >= target:
            batches.append(current)
            current, current_bytes = [], 0
    if current:
        batches.append(current)
    return batches


def reassemble(
    shape: Sequence[int],
    pieces: Sequence[Tuple[SliceTuple, np.ndarray]],
    dtype=np.float64,
) -> np.ndarray:
    """Scatter decompressed blocks back into a full field.

    ``pieces`` is a sequence of ``(slice_tuple, block)`` pairs (slice objects
    are not hashable before Python 3.12, so a mapping is deliberately not
    used here).
    """
    out = np.empty(tuple(int(s) for s in shape), dtype=dtype)
    filled = 0
    for slc, piece in pieces:
        out[slc] = piece
        filled += piece.size
    if filled != out.size:
        raise ConfigurationError(
            f"blocks cover {filled} points but the field has {out.size}"
        )
    return out
