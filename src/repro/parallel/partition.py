"""Domain decomposition helpers.

``partition_shape`` splits an N-dimensional index space into roughly equal
axis-aligned blocks; ``block_slices`` turns the partition into concrete slice
tuples; ``reassemble`` is the inverse scatter.  The decomposition is purely
geometric — no ghost layers are needed because every compressor in this
repository is block-independent.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

SliceTuple = Tuple[slice, ...]


def partition_shape(shape: Sequence[int], max_block: Sequence[int] | int) -> List[SliceTuple]:
    """Split ``shape`` into blocks no larger than ``max_block`` per axis.

    ``max_block`` may be a single integer (applied to every axis) or one value
    per axis.  Returns the slice tuples in C (row-major block) order.
    """
    shape = tuple(int(s) for s in shape)
    if isinstance(max_block, (int, np.integer)):
        max_block = (int(max_block),) * len(shape)
    max_block = tuple(int(b) for b in max_block)
    if len(max_block) != len(shape):
        raise ConfigurationError("max_block must match the number of dimensions")
    if any(b < 1 for b in max_block):
        raise ConfigurationError("block extents must be positive")

    per_axis: List[List[slice]] = []
    for size, block in zip(shape, max_block):
        starts = list(range(0, size, block))
        per_axis.append([slice(s, min(s + block, size)) for s in starts])

    blocks: List[SliceTuple] = []
    grid_shape = tuple(len(ax) for ax in per_axis)
    for flat_index in range(int(np.prod(grid_shape))):
        coords = np.unravel_index(flat_index, grid_shape)
        blocks.append(tuple(per_axis[axis][c] for axis, c in enumerate(coords)))
    return blocks


def block_slices(shape: Sequence[int], n_blocks: int) -> List[SliceTuple]:
    """Split along the slowest axis into at most ``n_blocks`` contiguous slabs."""
    shape = tuple(int(s) for s in shape)
    if n_blocks < 1:
        raise ConfigurationError("n_blocks must be positive")
    leading = shape[0]
    n_blocks = min(n_blocks, leading)
    edges = np.linspace(0, leading, n_blocks + 1, dtype=int)
    slabs = []
    for i in range(n_blocks):
        if edges[i + 1] > edges[i]:
            slabs.append((slice(int(edges[i]), int(edges[i + 1])),) + tuple(
                slice(None) for _ in shape[1:]
            ))
    return slabs


def reassemble(
    shape: Sequence[int],
    pieces: Sequence[Tuple[SliceTuple, np.ndarray]],
    dtype=np.float64,
) -> np.ndarray:
    """Scatter decompressed blocks back into a full field.

    ``pieces`` is a sequence of ``(slice_tuple, block)`` pairs (slice objects
    are not hashable before Python 3.12, so a mapping is deliberately not
    used here).
    """
    out = np.empty(tuple(int(s) for s in shape), dtype=dtype)
    filled = 0
    for slc, piece in pieces:
        out[slc] = piece
        filled += piece.size
    if filled != out.size:
        raise ConfigurationError(
            f"blocks cover {filled} points but the field has {out.size}"
        )
    return out
