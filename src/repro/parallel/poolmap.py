"""Generic process-pool mapping with the bit-identical fallback ladder.

Both halves of the parallel substrate — the encode side
(:class:`repro.parallel.executor.BlockParallelCompressor`) and the decode
side (:mod:`repro.retrieval.pooldecode`) — dispatch work to a process pool
with exactly the same degradation contract:

* a pool that cannot *start* (no spawn method, sealed sandbox, resource
  limits) falls back to in-process execution;
* a submit-time fork/spawn denial falls back to in-process execution;
* worker *processes* dying mid-run (:class:`BrokenProcessPool`: sandboxed
  fork, OOM-killed children) finish the remaining payloads in-process;
* an exception raised by the worker **function** itself is a real error and
  propagates to the caller — environment failures degrade, logic failures
  never do.

Every route produces identical results because the worker functions are
pure; the ladder only changes *where* they run.  This module also owns the
shared-memory segment helpers both sides use for their zero-copy
transports.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Iterator, Sequence

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - exotic builds without _posixshmem
    shared_memory = None


def imap_fallback(function, payloads: Sequence, workers: int, executor=None) -> Iterator:
    """Apply ``function`` to every payload, yielding results *in order*.

    Results are yielded as soon as they (and all their predecessors)
    complete, so consumers can stream them — e.g. write shard ``k`` to a
    container while shard ``k+1`` is still compressing.  ``workers <= 1``
    (or a single payload) short-circuits to plain in-process execution.

    ``executor`` lends a caller-owned persistent pool (the serving layer
    keeps one warm across requests); it is never shut down here, and a
    broken lent pool degrades through the same ladder as a private one.
    """
    if not workers or workers <= 1 or len(payloads) <= 1:
        for payload in payloads:
            yield function(payload)
        return
    if executor is not None:
        # A lent pool is the caller's to shut down, never ours.
        yield from _drain_pool(executor, function, payloads)
        return
    try:
        pool = ProcessPoolExecutor(max_workers=workers)
    except (OSError, ValueError, RuntimeError, NotImplementedError):
        # The pool itself could not start (no /dev/shm, no spawn method):
        # fall back to in-process execution, results are bit-identical.
        for payload in payloads:
            yield function(payload)
        return
    with pool:
        yield from _drain_pool(pool, function, payloads)


def _drain_pool(pool, function, payloads: Sequence) -> Iterator:
    """Submit everything, yield in order, degrading per the ladder."""
    try:
        # Worker processes are spawned lazily at submit time, so
        # fork/spawn denial (sandboxes) surfaces here — still an
        # environment problem, still the in-process fallback.
        # (Submitting to an already-broken lent pool raises
        # BrokenProcessPool, a RuntimeError subclass — same clause.)
        futures = [pool.submit(function, p) for p in payloads]
    except (OSError, ValueError, RuntimeError, NotImplementedError):
        for payload in payloads:
            yield function(payload)
        return
    for index, future in enumerate(futures):
        try:
            result = future.result()
        except BrokenProcessPool:
            # Worker *processes* died while running — an environment
            # problem, so finish the remaining payloads in-process.
            # Exceptions raised by ``function`` itself arrive as their
            # original type and fall through to the caller: a worker
            # error is a real error, not a cue to silently recompute.
            for payload in payloads[index:]:
                yield function(payload)
            return
        yield result


def create_segment(nbytes: int):
    """A fresh shared-memory segment, or ``None`` where unsupported.

    ``None`` signals the caller to use its pickled transport instead; the
    two are bit-identical, the segment is merely faster.
    """
    if shared_memory is None:
        return None
    try:
        return shared_memory.SharedMemory(create=True, size=max(1, nbytes))
    except (OSError, ValueError, RuntimeError, NotImplementedError):
        # No /dev/shm (sealed sandbox), size limits, … — the pickled
        # transport is slower but always available.
        return None


def release_segment(segment) -> None:
    """Best-effort close + unlink of a segment this process created."""
    try:
        segment.close()
        segment.unlink()
    except (BufferError, OSError):  # pragma: no cover - best-effort cleanup
        pass
