"""Unified retrieval engine: plan → prefetch → pool-decode pipeline.

Retrieval used to scatter its byte-range logic across three layers — the
progressive retriever read plane blocks one by one, the chunked dataset kept
its own per-shard sources, and the container served every range
synchronously.  This package centralises the pipeline the paper's Figures
6/7 presuppose:

* :mod:`repro.retrieval.plan` — the **planner**: turn an ROI + fidelity
  target into a deduplicated, coalesced list of ``(shard, byte-range,
  planes)`` fetch ops, computed from stream headers alone.
* :mod:`repro.retrieval.prefetch` — the **prefetcher**: a bounded
  thread-backed reader that primes planned ranges in the background so disk
  I/O overlaps per-shard decode (and ``refine()`` can speculatively fetch
  the next fidelity rung).
* :mod:`repro.retrieval.pooldecode` — the **pool decode stage**: worker
  processes write reconstructed slabs straight into one shared-memory
  output segment keyed by partition extents, the decode-side mirror of the
  encode slab transport (same serial/pickled fallback ladder).
* :mod:`repro.retrieval.engine` — :class:`~repro.retrieval.engine.RetrievalEngine`,
  the façade all three consumers drive: ``ChunkedDataset.read/refine``,
  :class:`~repro.core.progressive.ProgressiveRetriever` (which primes its
  own planned ranges whenever its source supports it), and the CLI
  ``retrieve`` command.

Decoded output is bitwise-identical across every path — serial, prefetch,
pool — on v1 and v2 streams and containers alike; the pipeline only changes
*when* and *where* bytes move.

``engine`` and ``pooldecode`` are imported lazily: they depend on
:mod:`repro.core.progressive`, which itself uses the planner, and the lazy
hop keeps the import graph acyclic.
"""

from __future__ import annotations

from repro.retrieval.plan import (
    FetchOp,
    RetrievalPlan,
    ShardPlan,
    coalesce_blocks,
    plan_stream_ops,
)
from repro.retrieval.prefetch import Prefetcher, PrefetchSource

__all__ = [
    "FetchOp",
    "ShardPlan",
    "RetrievalPlan",
    "coalesce_blocks",
    "plan_stream_ops",
    "Prefetcher",
    "PrefetchSource",
    "RetrievalEngine",
    "open_stream_source",
]


def __getattr__(name: str):
    if name == "RetrievalEngine":
        from repro.retrieval.engine import RetrievalEngine

        return RetrievalEngine
    if name == "open_stream_source":
        from repro.retrieval.engine import open_stream_source

        return open_stream_source
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
