"""The retrieval engine: one façade driving plan → prefetch → pool-decode.

:class:`RetrievalEngine` owns everything between "a fidelity request over a
set of shards" and "an assembled array plus its exact I/O accounting":

* **stage 1 (plan)** — every selected shard's
  :meth:`~repro.core.progressive.ProgressiveRetriever.pending_ops` yields
  the deduplicated, coalesced fetch ops of the request
  (:mod:`repro.retrieval.plan`);
* **stage 2 (prefetch)** — with a prefetch depth configured, all shards'
  ops are primed up front through one shared :class:`Prefetcher`, so the
  range reads of shard *k+1* overlap the decode of shard *k*; after a
  stateful ``refine()`` the engine speculatively primes the next fidelity
  rung (``target / rung_factor``) so a follow-up refinement finds its
  blocks already resident — physically read once, attributed to the
  request that consumes them;
* **stage 3 (decode)** — in-process per-shard decode by default; with
  ``workers > 1`` a *stateless* read of a container is dispatched to the
  pool decode stage (:mod:`repro.retrieval.pooldecode`), whose workers do
  the same plan-then-load retrieval against their own reader and write the
  slabs straight into a shared output segment.

Byte accounting is **consumption-based**: each request reports the ranges
its decoding actually consumed (per block, identical to the synchronous
path), never the physical prefetch I/O — so turning prefetching on changes
no reported number, only wall-clock time.  Decoded output is
bitwise-identical across serial / prefetch / pool paths.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.profile import CodecProfile
from repro.core.progressive import ProgressiveRetriever
from repro.errors import StreamFormatError
from repro.parallel.partition import (
    SliceTuple,
    intersect_slab_roi,
    slices_to_ranges,
)
from repro.retrieval.plan import RetrievalPlan, ShardPlan
from repro.retrieval.prefetch import Prefetcher, PrefetchSource

__all__ = ["EngineResult", "RetrievalEngine", "assemble", "open_stream_source"]

#: Default speculation ratio: after serving a refine() at bound E, prefetch
#: the plan for E / DEFAULT_RUNG_FACTOR (the ladder step the benchmarks and
#: examples use) in the background.
DEFAULT_RUNG_FACTOR = 8.0

#: Bytes speculatively primed at the head of each shard before its
#: retriever is constructed (async backend only): the stream header lives
#: there, so header parsing — otherwise a serial round-trip per shard —
#: rides one multiplexed batch.  Consumed-trace accounting is untouched;
#: the over-fetch is ordinary speculation.
DEFAULT_HEADER_PRIME = 8192


def assemble(
    pieces: Sequence[Tuple[SliceTuple, np.ndarray]],
    roi_slices: SliceTuple,
    dtype,
) -> np.ndarray:
    """Scatter decoded slab pieces into a fresh ROI-shaped output array.

    Each ``(slab slices, slab array)`` piece contributes its slab∩ROI
    overlap; the pieces must tile the region exactly (short coverage —
    e.g. a manifest whose slabs miss part of the domain — raises
    :class:`~repro.errors.StreamFormatError`).  Shared by the engine's
    in-process decode stage and the serving layer's cache-mixing reads.
    """
    out_shape = tuple(s.stop - s.start for s in roi_slices)
    out = np.empty(out_shape, dtype=np.dtype(dtype))
    filled = 0
    for slab, data in pieces:
        sel_out, sel_in = intersect_slab_roi(slab, roi_slices)
        piece = data[sel_in]
        out[sel_out] = piece
        filled += piece.size
    if filled != out.size:
        raise StreamFormatError(
            f"shards cover {filled} of the region's {out.size} points"
        )
    return out


@dataclass
class EngineResult:
    """One engine request: per-shard pieces assembled, plus exact I/O cost."""

    data: np.ndarray
    error_bound: float
    bytes_loaded: int
    cumulative_bytes: int
    shards: List[str]
    ranges: List[Tuple[str, int, int]]


class RetrievalEngine:
    """Plan → prefetch → pool-decode pipeline over a set of shard streams.

    ``open_source(name)`` returns a fresh byte-range source for one shard
    (duck-typed, so the engine has no dependency on :mod:`repro.io`; the
    chunked dataset passes container block sources).  ``path`` — when the
    shards live in a container file — enables the pool decode stage for
    stateless reads; without it pool requests fall back to in-process
    decode.  ``stored_bound`` is the fidelity served when a request passes
    no target.
    """

    def __init__(
        self,
        open_source: Callable[[str], object],
        *,
        shape: Sequence[int],
        dtype,
        stored_bound: float,
        profile: Optional[CodecProfile] = None,
        prefetch: int = 0,
        workers: int = 0,
        path=None,
        speculate: bool = True,
        rung_factor: float = DEFAULT_RUNG_FACTOR,
        executor=None,
        io_backend: str = "threads",
        header_prime: Optional[int] = None,
    ) -> None:
        self._open_source = open_source
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.stored_bound = float(stored_bound)
        self.profile = profile
        self.prefetch = max(0, int(prefetch or 0))
        self.workers = max(0, int(workers or 0))
        self.path = path
        self.speculate = bool(speculate)
        self.rung_factor = float(rung_factor)
        #: "async" prefetches through the event-loop backend
        #: (:class:`~repro.io.aio.AsyncPrefetcher`); anything else keeps
        #: the thread prefetcher.  Identical bytes either way.
        self.io_backend = str(io_backend or "threads")
        if header_prime is None:
            header_prime = DEFAULT_HEADER_PRIME if self.io_backend == "async" else 0
        self.header_prime = max(0, int(header_prime))
        # A caller-owned persistent pool for the decode stage (the serving
        # layer keeps one warm across requests); never shut down here.
        self.executor = executor
        self._prefetcher = None  # thread or event-loop prefetcher, lazy
        # Stateful per-shard retrievers + traced sources (refine() path).
        self._retrievers: Dict[str, ProgressiveRetriever] = {}
        self._sources: Dict[str, PrefetchSource] = {}
        self.cumulative_bytes = 0

    # ------------------------------------------------------------------ wiring

    def _prefetcher_or_none(self):
        if self.prefetch <= 0:
            return None
        if self._prefetcher is None:
            if self.io_backend == "async":
                from repro.io.aio import AsyncPrefetcher

                self._prefetcher = AsyncPrefetcher(depth=self.prefetch)
            else:
                self._prefetcher = Prefetcher(depth=self.prefetch)
        return self._prefetcher

    def _make_source(self, name: str) -> PrefetchSource:
        return PrefetchSource(self._open_source(name), self._prefetcher_or_none())

    def _source_for(
        self, name: str, sources: Dict[str, PrefetchSource]
    ) -> PrefetchSource:
        source = sources.get(name)
        if source is None:
            source = self._make_source(name)
            sources[name] = source
        return source

    def _retriever_for(
        self,
        name: str,
        retrievers: Dict[str, ProgressiveRetriever],
        sources: Dict[str, PrefetchSource],
    ) -> ProgressiveRetriever:
        retriever = retrievers.get(name)
        if retriever is None:
            source = self._source_for(name, sources)
            retriever = ProgressiveRetriever(source, profile=self.profile)
            retrievers[name] = retriever
        return retriever

    def _target(self, error_bound: Optional[float]) -> float:
        return self.stored_bound if error_bound is None else float(error_bound)

    # ---------------------------------------------------------------- planning

    def plan(self, shards: Sequence, error_bound: Optional[float] = None) -> RetrievalPlan:
        """Stage 1 only: the fetch ops a *stateless* request would perform.

        Uses throwaway retrievers over plain sources (header reads only —
        no payload is touched and no stateful retriever is disturbed), so
        inspection tools can print a plan without changing any accounting.
        """
        target = self._target(error_bound)
        plans: List[ShardPlan] = []
        for shard in shards:
            source = PrefetchSource(self._open_source(shard.name), None)
            retriever = ProgressiveRetriever(source, profile=self.profile)
            ops = retriever.pending_ops(error_bound=target)
            plans.append(
                ShardPlan(
                    shard=shard.name,
                    ops=[replace(op, shard=shard.name) for op in ops],
                    header_bytes=retriever.store.header_bytes,
                    target_keep=retriever.plan_request(error_bound=target).keep,
                )
            )
            source.close()
        return RetrievalPlan(plans)

    # ---------------------------------------------------------------- requests

    def read(
        self,
        shards: Sequence,
        roi_slices: SliceTuple,
        error_bound: Optional[float] = None,
    ) -> EngineResult:
        """Stateless retrieval: fresh retrievers, optionally pool-decoded."""
        target = self._target(error_bound)
        if self.workers > 1 and self.path is not None and len(shards) > 1:
            return self._pooled_read(shards, roi_slices, target)
        return self._request(shards, roi_slices, target, {}, {}, speculate_next=False)

    def refine(
        self,
        shards: Sequence,
        roi_slices: SliceTuple,
        error_bound: Optional[float] = None,
    ) -> EngineResult:
        """Stateful retrieval (Algorithm 2 per shard) with rung speculation."""
        target = self._target(error_bound)
        return self._request(
            shards, roi_slices, target, self._retrievers, self._sources,
            speculate_next=True,
        )

    # ------------------------------------------------------------------- guts

    def _request(
        self,
        shards: Sequence,
        roi_slices: SliceTuple,
        target: float,
        retrievers: Dict[str, ProgressiveRetriever],
        sources: Dict[str, PrefetchSource],
        *,
        speculate_next: bool,
    ) -> EngineResult:
        trace_start = {name: len(src.trace) for name, src in sources.items()}
        # Header speculation (async backend): prime the head of every new
        # shard *before* any retriever parses a header, so the per-shard
        # header round-trips ride one multiplexed batch instead of
        # serialising — the parses below then hit the prime cache.
        if self.prefetch > 0 and self.header_prime > 0:
            for shard in shards:
                if shard.name not in retrievers:
                    source = self._source_for(shard.name, sources)
                    source.prime([(0, min(self.header_prime, source.size))])
        # Stage 1+2 up front, across *all* shards: once every plan is
        # primed, the background reads for later shards proceed while the
        # first shard decodes.  (ProgressiveRetriever.retrieve re-primes
        # its own ops, which the source dedupes to a no-op.)
        selected = [self._retriever_for(s.name, retrievers, sources) for s in shards]
        if self.prefetch > 0:
            for retriever in selected:
                retriever._prime(retriever.plan_request(error_bound=target))
        pieces: List[Tuple[SliceTuple, np.ndarray]] = []
        achieved = 0.0
        remaining = list(zip(shards, selected))
        while remaining:
            index = 0
            if self.prefetch > 0 and len(remaining) > 1:
                # Streaming handoff: decode a shard whose primed ranges
                # have all landed rather than blocking on plan order — the
                # first shard still fetching overlaps with another shard's
                # decode.  Output and accounting are order-independent.
                index = next(
                    (
                        i
                        for i, (shard, _retriever) in enumerate(remaining)
                        if sources[shard.name].inflight == 0
                    ),
                    0,
                )
            shard, retriever = remaining.pop(index)
            result = retriever.retrieve(error_bound=target)
            achieved = max(achieved, result.error_bound)
            pieces.append((shard.slices, result.data))
        ranges: List[Tuple[str, int, int]] = []
        for shard in shards:
            source = sources[shard.name]
            for offset, length in source.trace[trace_start.get(shard.name, 0):]:
                ranges.append((shard.name, offset, length))
        bytes_loaded = sum(length for _, _, length in ranges)
        self.cumulative_bytes += bytes_loaded
        if speculate_next and self.speculate and self.prefetch > 0:
            self._speculate(shards, retrievers, sources, target)
        return EngineResult(
            data=assemble(pieces, roi_slices, self.dtype),
            error_bound=achieved,
            bytes_loaded=bytes_loaded,
            cumulative_bytes=self.cumulative_bytes,
            shards=[s.name for s in shards],
            ranges=ranges,
        )

    def _speculate(
        self,
        shards: Sequence,
        retrievers: Dict[str, ProgressiveRetriever],
        sources: Dict[str, PrefetchSource],
        target: float,
    ) -> None:
        """Prime the next fidelity rung's blocks in the background.

        A wrong guess costs only background I/O: the primed ranges stay
        cached (physically read once), unreported until a later request
        consumes them.
        """
        next_target = max(self.stored_bound, target / self.rung_factor)
        if next_target >= target:
            return
        for shard in shards:
            retriever = retrievers[shard.name]
            ops = retriever.pending_ops(error_bound=next_target)
            if ops:
                sources[shard.name].prime([(op.offset, op.length) for op in ops])

    def _pooled_read(
        self, shards: Sequence, roi_slices: SliceTuple, target: float
    ) -> EngineResult:
        from repro.retrieval.pooldecode import pooled_container_read

        out_shape = tuple(s.stop - s.start for s in roi_slices)
        tasks = [
            (shard.name, slices_to_ranges(shard.slices, self.shape))
            for shard in shards
        ]
        data, accounting = pooled_container_read(
            self.path,
            tasks,
            slices_to_ranges(roi_slices, self.shape),
            out_shape,
            self.dtype,
            target,
            self.workers,
            kernel=self.profile.kernel if self.profile is not None else None,
            executor=self.executor,
        )
        achieved = max((bound for _, _, bound in accounting), default=0.0)
        ranges = [
            (name, offset, length)
            for name, trace, _ in accounting
            for offset, length in trace
        ]
        bytes_loaded = sum(length for _, _, length in ranges)
        self.cumulative_bytes += bytes_loaded
        return EngineResult(
            data=data,
            error_bound=achieved,
            bytes_loaded=bytes_loaded,
            cumulative_bytes=self.cumulative_bytes,
            shards=[s.name for s in shards],
            ranges=ranges,
        )

    # ------------------------------------------------------------------- state

    def current_keep(self) -> Dict[str, Dict[int, int]]:
        """Resident planes per stateful shard retriever (diagnostics)."""
        return {
            name: retriever.current_keep
            for name, retriever in self._retrievers.items()
        }

    def close(self) -> None:
        self._retrievers.clear()
        for source in self._sources.values():
            source.drop_unconsumed()
        self._sources.clear()
        if self._prefetcher is not None:
            self._prefetcher.close()
            self._prefetcher = None


def open_stream_source(path, prefetch: int = 0, *, source=None, io_backend=None):
    """A byte-range source over a bare ``.ipc`` stream file or URL.

    ``path`` may be a local file or an ``http(s)://`` URL — the latter is
    read through a resilient remote stack
    (:func:`repro.io.remote.open_remote_source` /
    :func:`repro.io.aio.open_async_source`, or a pre-built ``source`` with
    mirrors / fault injection).  ``io_backend`` follows the CLI's ``--io``
    vocabulary: ``auto`` (default) picks ``async`` for URLs, ``threads``
    otherwise; ``sync`` disables prefetching outright.  With
    ``prefetch > 0`` the source owns a private prefetcher — event-loop or
    thread-pool per the backend — and a
    :class:`~repro.core.progressive.ProgressiveRetriever` reading through
    it will overlap its planned range reads with decoding (the retriever
    primes its own pending ops).  ``source.close()`` releases the backing
    handle/connection and the prefetcher.
    """
    from repro.io.aio import AsyncPrefetcher, open_async_source, resolve_io_backend
    from repro.io.container import FileSource
    from repro.io.remote import is_url, open_remote_source

    backend = resolve_io_backend(io_backend, path)
    if source is not None:
        inner = source
    elif is_url(path):
        if backend == "async":
            inner = open_async_source(str(path))
        else:
            inner = open_remote_source(str(path))
    else:
        inner = FileSource(path)
    if prefetch <= 0 or backend == "sync":
        return inner
    if backend == "async":
        prefetcher = AsyncPrefetcher(depth=prefetch)
    else:
        prefetcher = Prefetcher(depth=prefetch)
    source = PrefetchSource(inner, prefetcher)
    if backend == "async" and getattr(inner, "supports_async", False):
        # Header speculation: the retriever's construction-time header
        # reads ride one multiplexed prime instead of serial round-trips.
        source.prime([(0, min(DEFAULT_HEADER_PRIME, inner.size))])
    original_close = source.close

    def close() -> None:
        original_close()
        prefetcher.close()

    source.close = close  # type: ignore[method-assign]
    return source
