"""Stage 1 of the retrieval pipeline: fetch-op planning.

A *fetch op* is one contiguous byte range of one stream (or of one shard
block inside a container) together with the payload blocks it carries.  The
planner turns "refine this region to this fidelity" into the minimal list of
such ops:

* **deduplicated** — blocks already resident in a stateful retriever are
  never planned again (the Algorithm-2 never-re-read property, now enforced
  at the planning layer instead of ad hoc in each reader);
* **coalesced** — physically adjacent blocks (consecutive planes of a
  level, the anchor plus the first planes, a level boundary crossed whole)
  merge into a single range read, so a plan touches the disk once per
  contiguous run instead of once per block.

The planner works from parsed stream headers alone (the block extent table
of a :class:`repro.core.stream.CompressedStore`); it never touches payload
bytes.  Everything downstream — the prefetcher, the pool decode stage, the
CLI's plan inspection — consumes the same :class:`FetchOp` list, which is
what makes the accounting of the three execution paths identical by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "FetchOp",
    "ShardPlan",
    "RetrievalPlan",
    "coalesce_blocks",
    "plan_stream_ops",
]

#: Label of the anchor block inside a fetch op.
ANCHOR_BLOCK = "anchor"


@dataclass(frozen=True)
class FetchOp:
    """One contiguous byte range to fetch and the blocks it carries.

    ``blocks`` labels the payload blocks inside the range, in offset order:
    ``"anchor"`` or ``"L<level>/p<plane>"``.  ``shard`` names the container
    block the range lives in (``None`` for a bare stream).
    """

    offset: int
    length: int
    blocks: Tuple[str, ...]
    shard: Optional[str] = None

    @property
    def end(self) -> int:
        return self.offset + self.length

    def to_json(self) -> dict:
        obj = {
            "offset": self.offset,
            "length": self.length,
            "blocks": list(self.blocks),
        }
        if self.shard is not None:
            obj["shard"] = self.shard
        return obj


@dataclass
class ShardPlan:
    """The planned fetch ops of one stream (one shard of a dataset)."""

    shard: Optional[str]
    ops: List[FetchOp]
    #: Header bytes of the stream — read when the stream is first opened,
    #: before any planning can happen, so reported as overhead rather than
    #: as a plannable op.
    header_bytes: int
    #: Planes to keep per level once the plan is applied.
    target_keep: Dict[int, int] = field(default_factory=dict)

    @property
    def op_bytes(self) -> int:
        return sum(op.length for op in self.ops)

    @property
    def predicted_bytes(self) -> int:
        """This shard's full predicted cost: planned ops plus its header.

        The per-shard version of :attr:`RetrievalPlan.predicted_bytes` —
        the unit the QoS scheduler debits from a client's byte budget and
        compares across concurrent plans to find shared shards.
        """
        return self.op_bytes + self.header_bytes

    @property
    def n_blocks(self) -> int:
        return sum(len(op.blocks) for op in self.ops)

    def ranges(self) -> List[Tuple[int, int]]:
        """The coalesced ``(offset, length)`` ranges of this plan."""
        return [(op.offset, op.length) for op in self.ops]

    def to_json(self) -> dict:
        return {
            "shard": self.shard,
            "ops": [op.to_json() for op in self.ops],
            "op_bytes": self.op_bytes,
            "blocks": self.n_blocks,
            "header_bytes": self.header_bytes,
            "predicted_bytes": self.predicted_bytes,
            "target_keep": {str(k): v for k, v in sorted(self.target_keep.items())},
        }


@dataclass
class RetrievalPlan:
    """A full retrieval plan: per-shard fetch ops plus the predicted cost."""

    shards: List[ShardPlan]

    @property
    def op_bytes(self) -> int:
        """Predicted payload bytes (anchor + plane blocks) to fetch."""
        return sum(plan.op_bytes for plan in self.shards)

    @property
    def header_bytes(self) -> int:
        return sum(plan.header_bytes for plan in self.shards)

    @property
    def predicted_bytes(self) -> int:
        """Total bytes the request will touch, headers included.

        For remote datasets this doubles as the egress estimate: fetch ops
        map 1:1 onto ranged GETs (:mod:`repro.io.remote`), so a clean run's
        network bytes equal the plan's — over-fetch only appears as
        retries, hedges or failed attempts, visible in the trace's
        ``egress_bytes`` delta.
        """
        return self.op_bytes + self.header_bytes

    def cost_by_shard(self) -> Dict[Optional[str], int]:
        """Predicted bytes keyed by shard name — the scheduler's cost map.

        Two concurrent plans sharing a key here are candidates for batching
        (one physical fetch/decode serves both through the cache tiers).
        """
        return {plan.shard: plan.predicted_bytes for plan in self.shards}

    @property
    def n_ops(self) -> int:
        return sum(len(plan.ops) for plan in self.shards)

    @property
    def n_blocks(self) -> int:
        return sum(plan.n_blocks for plan in self.shards)

    def to_json(self) -> dict:
        return {
            "shards": [plan.to_json() for plan in self.shards],
            "ops": self.n_ops,
            "blocks": self.n_blocks,
            "op_bytes": self.op_bytes,
            "header_bytes": self.header_bytes,
            "predicted_bytes": self.predicted_bytes,
        }


def coalesce_blocks(
    blocks: Sequence[Tuple[int, int, str]], shard: Optional[str] = None
) -> List[FetchOp]:
    """Merge ``(offset, size, label)`` block extents into contiguous fetch ops.

    Blocks are sorted by offset first; zero-sized blocks ride along inside
    (or at the edge of) whichever op they touch, so their labels stay
    visible in the plan without producing empty reads.
    """
    ordered = sorted(blocks, key=lambda item: item[0])
    ops: List[FetchOp] = []
    run_start = run_end = 0
    run_labels: List[str] = []
    for offset, size, label in ordered:
        if run_labels and offset <= run_end:
            run_end = max(run_end, offset + size)
            run_labels.append(label)
        else:
            if run_labels and run_end > run_start:
                ops.append(
                    FetchOp(run_start, run_end - run_start, tuple(run_labels), shard)
                )
            run_start, run_end, run_labels = offset, offset + size, [label]
    if run_labels and run_end > run_start:
        ops.append(FetchOp(run_start, run_end - run_start, tuple(run_labels), shard))
    return ops


def plan_stream_ops(
    store,
    current_keep: Optional[Dict[int, int]],
    target_keep: Dict[int, int],
    *,
    include_anchor: bool = False,
    shard: Optional[str] = None,
) -> List[FetchOp]:
    """Fetch ops that move one stream from ``current_keep`` to ``target_keep``.

    ``store`` is a :class:`repro.core.stream.CompressedStore` (anything with
    ``header``, ``anchor_extent`` and ``block_extent``).  ``current_keep``
    of ``None`` (or ``{}``) plans from scratch; per-level entries already at
    or above the target contribute nothing — the plan is the exact integer
    delta Algorithm 2 will read, deduplicated by construction.
    ``include_anchor`` adds the anchor block (a from-scratch retrieval needs
    it; refinement never re-reads it).
    """
    resident = current_keep or {}
    blocks: List[Tuple[int, int, str]] = []
    if include_anchor:
        offset, size = store.anchor_extent()
        blocks.append((offset, size, ANCHOR_BLOCK))
    # Walk levels in stream layout order (descending level, planes MSB
    # first) so adjacent block runs coalesce maximally.
    for enc in store.header.levels:
        old = max(0, int(resident.get(enc.level, 0)))
        new = int(target_keep.get(enc.level, 0))
        for plane in range(old, new):
            offset, size = store.block_extent(enc.level, plane)
            blocks.append((offset, size, f"L{enc.level}/p{plane}"))
    return coalesce_blocks(blocks, shard)
