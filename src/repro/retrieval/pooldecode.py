"""Stage 3 of the retrieval pipeline: pool decode into shared output.

The decode-side mirror of the encode slab transport
(:mod:`repro.parallel.executor`): instead of pickling every reconstructed
slab array back across the process boundary, the parent creates **one
shared-memory output segment** shaped like the result, and each worker
writes its decoded slabs directly into the segment at the slab's partition
extents.  Reassembly is therefore zero-copy — the parent never copies or
concatenates slab arrays; it returns a NumPy array *backed by the segment
itself* (the segment is unlinked immediately and released when the array is
garbage-collected).

Two entry points, one per payload kind:

* :func:`pooled_reassemble` — decode in-memory compressed blobs
  (:class:`~repro.parallel.executor.CompressedBlock`), used by
  ``BlockParallelCompressor.decompress`` / ``retrieve``;
* :func:`pooled_container_read` — decode shards straight *from a container
  file*: each worker opens its own reader and performs an ordinary
  plan-then-load retrieval, so byte selectivity (and the per-shard range
  trace the accounting reports) is identical to the serial path.

The fallback ladder matches the encode side exactly (see
:mod:`repro.parallel.poolmap`): no shared memory → pickled result arrays;
no usable pool → in-process execution; a worker exception propagates.
Every route produces bitwise-identical output.
"""

from __future__ import annotations

import weakref
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.parallel.partition import (
    batch_slabs,
    intersect_slab_roi,
    ranges_to_slices,
    reassemble,
    slab_bytes,
    slices_to_ranges,
)
from repro.parallel.poolmap import create_segment, imap_fallback, release_segment

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic builds without _posixshmem
    _shared_memory = None

__all__ = ["pooled_reassemble", "pooled_container_read", "detach_shared_array"]

#: Minimum decoded bytes a pool-decode task should carry (consecutive
#: smaller slabs are batched, mirroring the encode side's threshold).
MIN_DECODE_TASK_BYTES = 1 << 20


# ------------------------------------------------------------ segment lifetime


def _release_segment_quietly(segment) -> None:
    try:
        segment.close()
    except (BufferError, OSError):  # pragma: no cover - exported views remain
        pass


def detach_shared_array(segment, shape, dtype) -> np.ndarray:
    """An ndarray view of ``segment`` that owns the segment's lifetime.

    The segment is unlinked immediately (no name leak even on crash) and
    closed by a :func:`weakref.finalize` callback once the array — and
    every view derived from it — has been garbage-collected.  This is what
    makes the reassembly genuinely zero-copy: the workers' writes *are* the
    final array.
    """
    arr = np.ndarray(tuple(int(s) for s in shape), dtype=np.dtype(dtype), buffer=segment.buf)
    try:
        segment.unlink()
    except (OSError, FileNotFoundError):  # pragma: no cover - already gone
        pass
    weakref.finalize(arr, _release_segment_quietly, segment)
    return arr


def _check_coverage(slabs, shape, itemsize) -> None:
    out_bytes = int(np.prod(tuple(int(s) for s in shape))) * itemsize
    covered = sum(slab_bytes(slc, shape, itemsize) for slc in slabs)
    if covered != out_bytes:
        raise ConfigurationError(
            f"blocks cover {covered // max(itemsize, 1)} points but the field "
            f"has {out_bytes // max(itemsize, 1)}"
        )


# ------------------------------------------------------- blob-payload workers


def _decode_blob(payload) -> np.ndarray:
    """Worker (pickled transport): fully/partially decode one slab blob."""
    from repro.core.progressive import ProgressiveRetriever

    blob, error_bound = payload
    retriever = ProgressiveRetriever(blob)
    target = error_bound if error_bound is not None else retriever.header.error_bound
    return retriever.retrieve(error_bound=target).data


def _decode_blob_batch_shm(payload) -> int:
    """Worker: decode a batch of slab blobs into the shared output segment.

    The payload carries the compressed blobs (small) plus the segment name
    and slab extents; no decoded array ever crosses the process boundary.
    Also runs in-process on the fallback paths (attaching to a segment from
    the creating process is valid and free).
    """
    from repro.core.progressive import ProgressiveRetriever

    segment_name, shape, dtype, tasks, error_bound = payload
    segment = _shared_memory.SharedMemory(name=segment_name)
    out = None
    try:
        out = np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=segment.buf)
        for blob, ranges in tasks:
            retriever = ProgressiveRetriever(blob)
            target = (
                error_bound if error_bound is not None else retriever.header.error_bound
            )
            out[ranges_to_slices(ranges)] = retriever.retrieve(error_bound=target).data
        return len(tasks)
    finally:
        # The ndarray view must release the buffer before the segment
        # handle can close.
        del out
        segment.close()


def pooled_reassemble(
    blocks: Sequence,
    shape: Sequence[int],
    dtype=np.float64,
    *,
    workers: int = 0,
    error_bound: Optional[float] = None,
) -> np.ndarray:
    """Decode ``CompressedBlock``-likes and reassemble the field.

    ``error_bound=None`` decodes at each stream's stored (full) bound.
    With ``workers > 1`` and shared memory available, workers write their
    slabs straight into one shared output segment and the returned array is
    a zero-copy view of it; otherwise the pickled/serial path reproduces
    the classic scatter — bitwise-identical either way.
    """
    shape = tuple(int(s) for s in shape)
    dtype = np.dtype(dtype)
    slabs = [block.slices for block in blocks]
    _check_coverage(slabs, shape, dtype.itemsize)
    segment = None
    if workers and workers > 1 and len(blocks) > 1:
        segment = create_segment(int(np.prod(shape)) * dtype.itemsize)
    if segment is None:
        payloads = [(block.blob, error_bound) for block in blocks]
        pieces = list(imap_fallback(_decode_blob, payloads, workers))
        return reassemble(
            shape, [(slc, piece) for slc, piece in zip(slabs, pieces)], dtype
        )
    try:
        batches = batch_slabs(
            slabs, shape, dtype.itemsize, workers, MIN_DECODE_TASK_BYTES
        )
        payloads = []
        cursor = 0
        for batch in batches:
            tasks = []
            for slc in batch:
                tasks.append(
                    (blocks[cursor].blob, slices_to_ranges(slc, shape))
                )
                cursor += 1
            payloads.append((segment.name, shape, str(dtype), tasks, error_bound))
        for _ in imap_fallback(_decode_blob_batch_shm, payloads, workers):
            pass
    except BaseException:
        release_segment(segment)
        raise
    return detach_shared_array(segment, shape, dtype)


# -------------------------------------------------- container-payload workers


def _retrieve_container_shards(payload) -> List[Tuple[str, list, float, Optional[np.ndarray]]]:
    """Worker: plan-then-load retrieval of shards straight off the file.

    Opens its own container reader (plan-selective byte ranges, exactly
    like the serial path), decodes each shard at the target bound, and
    either writes the slab∩ROI overlap into the shared output segment
    (``segment_name`` set; returns ``None`` pieces) or returns the overlap
    arrays for the pickled fallback.  The per-shard range trace travels
    back either way — it is a few tuples — so the caller's byte accounting
    matches the synchronous path entry for entry.
    """
    from repro.io.container import BlockContainerReader, BlockSource
    from repro.core.profile import CodecProfile
    from repro.core.progressive import ProgressiveRetriever

    (path, segment_name, out_shape, dtype, roi_ranges, tasks, error_bound,
     kernel) = payload
    # The caller's runtime decode kernel travels by name so the pool path
    # honours the same knob as the serial path (bytes identical either way).
    profile = CodecProfile(kernel=kernel) if kernel is not None else None
    roi = ranges_to_slices(roi_ranges)
    segment = None
    out = None
    if segment_name is not None:
        segment = _shared_memory.SharedMemory(name=segment_name)
        out = np.ndarray(tuple(out_shape), dtype=np.dtype(dtype), buffer=segment.buf)
    results: List[Tuple[str, list, float, Optional[np.ndarray]]] = []
    try:
        with BlockContainerReader(path) as reader:
            for name, slab_ranges in tasks:
                source = BlockSource(reader, name)
                retriever = ProgressiveRetriever(source, profile=profile)
                result = retriever.retrieve(error_bound=error_bound)
                slab = ranges_to_slices(slab_ranges)
                sel_out, sel_in = intersect_slab_roi(slab, roi)
                if out is not None:
                    out[sel_out] = result.data[sel_in]
                    piece = None
                else:
                    piece = np.ascontiguousarray(result.data[sel_in])
                results.append(
                    (name, list(source.trace), float(result.error_bound), piece)
                )
        return results
    finally:
        del out
        if segment is not None:
            segment.close()


def pooled_container_read(
    path,
    shard_tasks: Sequence[Tuple[str, Sequence[Sequence[int]]]],
    roi_ranges: Sequence[Sequence[int]],
    out_shape: Sequence[int],
    dtype,
    error_bound: float,
    workers: int,
    kernel: Optional[str] = None,
    executor=None,
) -> Tuple[np.ndarray, List[Tuple[str, List[Tuple[int, int]], float]]]:
    """Pool-decode selected shards of a container file into an ROI output.

    ``shard_tasks`` is ``[(shard name, slab extents)]`` in selection order;
    ``roi_ranges`` the normalized ROI extents.  Returns the assembled array
    plus ``(name, consumed ranges, achieved bound)`` per shard, in task
    order — the same accounting triple the serial engine produces.
    ``executor`` lends a caller-owned persistent pool (see
    :func:`~repro.parallel.poolmap.imap_fallback`).
    """
    out_shape = tuple(int(s) for s in out_shape)
    dtype = np.dtype(dtype)
    segment = create_segment(int(np.prod(out_shape)) * dtype.itemsize)
    slabs = [ranges_to_slices(ranges) for _, ranges in shard_tasks]
    roi = ranges_to_slices(roi_ranges)
    # Batch by decoded overlap size so small shards amortise dispatch.
    overlaps = [intersect_slab_roi(slab, roi)[0] for slab in slabs]
    batches = batch_slabs(
        overlaps, out_shape, dtype.itemsize, workers, MIN_DECODE_TASK_BYTES
    )
    payloads = []
    cursor = 0
    segment_name = segment.name if segment is not None else None
    for batch in batches:
        tasks = [shard_tasks[cursor + i] for i in range(len(batch))]
        cursor += len(batch)
        payloads.append(
            (str(path), segment_name, out_shape, str(dtype), list(roi_ranges),
             [(name, list(ranges)) for name, ranges in tasks], float(error_bound),
             kernel)
        )
    accounting: List[Tuple[str, List[Tuple[int, int]], float]] = []
    pieces: List[Tuple[str, np.ndarray]] = []
    try:
        for results in imap_fallback(
            _retrieve_container_shards, payloads, workers, executor=executor
        ):
            for name, trace, achieved, piece in results:
                accounting.append((name, [tuple(r) for r in trace], achieved))
                if piece is not None:
                    pieces.append((name, piece))
    except BaseException:
        if segment is not None:
            release_segment(segment)
        raise
    if segment is not None:
        return detach_shared_array(segment, out_shape, dtype), accounting
    # Pickled fallback: scatter the returned overlap arrays in the parent.
    out = np.empty(out_shape, dtype=dtype)
    by_name = dict(pieces)
    for (name, slab_ranges) in shard_tasks:
        sel_out, _ = intersect_slab_roi(ranges_to_slices(slab_ranges), roi)
        out[sel_out] = by_name[name]
    return out, accounting
