"""Stage 2 of the retrieval pipeline: bounded background prefetching.

A :class:`Prefetcher` owns a small thread pool (file reads release the GIL,
so range I/O genuinely overlaps NumPy decode work); a :class:`PrefetchSource`
wraps any byte-range source and serves reads out of a cache of *primed*
ranges:

* ``prime(ranges)`` submits background reads for the planned, coalesced
  ranges of a :class:`~repro.retrieval.plan.FetchOp` list, skipping (or
  splitting around) anything already primed — a range is physically read
  **at most once**, which is what keeps the never-re-read property intact
  under speculative prefetching;
* ``read_range(offset, length)`` returns the bytes from the cache when a
  primed range covers them (blocking only if that read is still in flight)
  and falls through to a direct synchronous read otherwise.

Accounting is split in two on purpose:

* ``trace`` records the ranges **consumed** by the reader — per block,
  append-ordered, exactly what the synchronous path would have read.  The
  dataset layer reports these, so byte counts are identical with and
  without prefetching, and a speculative fetch of the next fidelity rung is
  attributed to the request that eventually *uses* it (or to none at all).
* ``bytes_fetched`` counts the physical reads, speculation included — the
  honest I/O figure.

With no prefetcher attached the source is a pure pass-through (plus the
consumed trace), so the synchronous path runs the same code.
"""

from __future__ import annotations

import threading
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

__all__ = ["Prefetcher", "PrefetchSource"]

#: Default number of range reads in flight (the CLI's ``--prefetch``).
DEFAULT_PREFETCH_DEPTH = 4


class Prefetcher:
    """A bounded pool of background range readers, shared across sources."""

    def __init__(self, depth: int = DEFAULT_PREFETCH_DEPTH) -> None:
        self.depth = max(1, int(depth))
        self._executor = ThreadPoolExecutor(
            max_workers=self.depth, thread_name_prefix="repro-prefetch"
        )
        self._closed = False

    def submit(self, fn, *args) -> Future:
        return self._executor.submit(fn, *args)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop issuing new reads; in-flight reads are abandoned to finish."""
        if not self._closed:
            self._closed = True
            self._executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "Prefetcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _Primed:
    """One primed interval: ``[start, end)`` plus its (pending) bytes."""

    __slots__ = ("start", "end", "future", "consumed", "refunded")

    def __init__(self, start: int, end: int, future: Future) -> None:
        self.start = start
        self.end = end
        self.future = future
        self.consumed = 0
        # A failed prime's charge is refunded exactly once, even though the
        # done-callback and a concurrent read_range miss both try.
        self.refunded = False

    def covers(self, offset: int, length: int) -> bool:
        return self.start <= offset and offset + length <= self.end


class PrefetchSource:
    """Byte-range source wrapper with asynchronous range priming."""

    def __init__(self, inner, prefetcher: Optional[Prefetcher] = None) -> None:
        self._inner = inner
        self._prefetcher = prefetcher
        self.size = inner.size
        #: Ranges consumed by the reader (the synchronous-path equivalent).
        self.trace: List[Tuple[int, int]] = []
        #: Physical bytes read, speculative primes included.
        self.bytes_fetched = 0
        self._primed: List[_Primed] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ prime

    def prime(self, ranges: Sequence[Tuple[int, int]]) -> int:
        """Schedule background reads of ``ranges``; returns bytes scheduled.

        Ranges (coalesced fetch-op extents) are split around anything
        already primed, so re-priming — e.g. a speculative rung followed by
        the actual request's plan — never re-reads a byte.  Without a
        prefetcher this is a no-op and reads stay synchronous.

        A prefetcher that has been closed (possibly by another request
        sharing it, mid-prime) degrades the same way: its executor refuses
        new futures with ``RuntimeError``, which ends the prime early — the
        unscheduled ranges simply fall through to direct synchronous reads
        in :meth:`read_range`, bitwise-identical.
        """
        if self._prefetcher is None or self._prefetcher.closed:
            return 0
        scheduled = 0
        submitted: List[_Primed] = []
        shut_down = False
        with self._lock:
            for offset, length in ranges:
                if shut_down:
                    break
                for start, end in self._gaps(offset, offset + length):
                    try:
                        future = self._prefetcher.submit(
                            self._inner.read_range, start, end - start
                        )
                    except RuntimeError:
                        # Executor shut down between the closed check and
                        # the submit: stop priming; nothing was charged for
                        # this range and reads stay synchronous.
                        shut_down = True
                        break
                    primed = _Primed(start, end, future)
                    self._primed.append(primed)
                    self.bytes_fetched += end - start
                    scheduled += end - start
                    submitted.append(primed)
        # Callbacks attach outside the lock: an already-finished future runs
        # its callback inline, and _refund_if_failed takes the lock itself.
        for primed in submitted:
            primed.future.add_done_callback(
                lambda _future, p=primed: self._refund_if_failed(p)
            )
        return scheduled

    def _gaps(self, start: int, end: int) -> List[Tuple[int, int]]:
        """Sub-ranges of ``[start, end)`` not covered by primed intervals."""
        gaps: List[Tuple[int, int]] = []
        cursor = start
        for interval in sorted(self._primed, key=lambda p: p.start):
            if interval.end <= cursor or interval.start >= end:
                continue
            if interval.start > cursor:
                gaps.append((cursor, interval.start))
            cursor = max(cursor, interval.end)
        if cursor < end:
            gaps.append((cursor, end))
        return gaps

    def _refund_if_failed(self, primed: _Primed) -> None:
        """Refund a prime whose read never produced bytes (once, ever).

        Runs as a future done-callback *and* from a consuming read that hit
        the failure — whichever comes first wins.  A cancelled future never
        ran; a raising future fetched nothing usable; both give back the
        prime-time ``bytes_fetched`` charge and drop the dead interval so a
        re-prime (or a later direct read) may try the range again.
        """
        future = primed.future
        if not future.cancelled() and future.exception() is None:
            return
        with self._lock:
            if primed.refunded:
                return
            primed.refunded = True
            self.bytes_fetched -= primed.end - primed.start
            try:
                self._primed.remove(primed)
            except ValueError:  # pragma: no cover - already dropped
                pass

    # ------------------------------------------------------------------ reads

    def read_range(self, offset: int, length: int) -> bytes:
        """Serve one consumed range: cache hit, in-flight wait, or direct read."""
        self.trace.append((offset, length))
        with self._lock:
            hit = next(
                (p for p in self._primed if p.covers(offset, length)), None
            )
            parts = None if hit is not None else self._tiling(offset, length)
        if hit is None and parts is not None:
            # The range straddles adjacent primed intervals (e.g. a header
            # prime split the first plan op in two): stitch it from the
            # pieces rather than re-reading bytes that are already on the
            # wire — the never-re-read property holds across splits.
            chunk = self._stitched(offset, length, parts)
            if chunk is not None:
                return chunk
        if hit is None:
            # Charge only after the read succeeds: a raising source must not
            # inflate the physical-bytes figure with bytes never fetched.
            data = self._inner.read_range(offset, length)
            with self._lock:
                self.bytes_fetched += length
            return data
        try:
            data = hit.future.result()  # blocks only while the read is in flight
        except (CancelledError, Exception):
            # A speculative prime is never fatal.  Either the prefetcher was
            # closed before the read started (shutdown cancels queued
            # futures) or the background read itself failed — e.g. a remote
            # source out of retries.  Refund the prime-time charge, drop the
            # dead interval, and degrade to a direct synchronous read (which
            # runs the source's own resilience again); only *that* read's
            # failure may propagate.
            self._refund_if_failed(hit)
            data = self._inner.read_range(offset, length)
            with self._lock:
                self.bytes_fetched += length
            return data
        start = offset - hit.start
        chunk = data[start : start + length]
        with self._lock:
            hit.consumed += length
            if hit.consumed >= hit.end - hit.start:
                # Fully consumed: drop the cached bytes (planned blocks are
                # read exactly once, so the interval can never be needed
                # again).
                try:
                    self._primed.remove(hit)
                except ValueError:  # pragma: no cover - concurrent drop
                    pass
        return chunk

    def _tiling(self, offset: int, length: int) -> Optional[List[_Primed]]:
        """Primed intervals that contiguously tile ``[offset, offset+length)``.

        Returns ``None`` unless at least two intervals are needed (a single
        cover is the fast path) and together they leave no gap.  Caller
        holds the lock.
        """
        end = offset + length
        parts = sorted(
            (p for p in self._primed if p.start < end and p.end > offset),
            key=lambda p: p.start,
        )
        if len(parts) < 2:
            return None
        cursor = offset
        for part in parts:
            if part.start > cursor:
                return None
            cursor = max(cursor, part.end)
        return parts if cursor >= end else None

    def _stitched(
        self, offset: int, length: int, parts: List[_Primed]
    ) -> Optional[bytes]:
        """Assemble one read from a tiling of primed intervals.

        Returns ``None`` when any piece's background read failed — the
        failed prime is refunded and the caller degrades to one direct
        synchronous read of the whole range.
        """
        end = offset + length
        chunks: List[bytes] = []
        for part in parts:
            try:
                data = part.future.result()
            except (CancelledError, Exception):
                self._refund_if_failed(part)
                return None
            lo = max(offset, part.start)
            hi = min(end, part.end)
            chunks.append(data[lo - part.start : hi - part.start])
        with self._lock:
            for part in parts:
                part.consumed += min(end, part.end) - max(offset, part.start)
                if part.consumed >= part.end - part.start:
                    try:
                        self._primed.remove(part)
                    except ValueError:  # pragma: no cover - concurrent drop
                        pass
        return b"".join(chunks)

    # ------------------------------------------------------------- diagnostics

    @property
    def pending_bytes(self) -> int:
        """Bytes primed but not yet consumed (cache residency)."""
        with self._lock:
            return sum(p.end - p.start - p.consumed for p in self._primed)

    @property
    def inflight(self) -> int:
        """Primed reads still on the wire (not yet resolved).

        The engine's streaming handoff uses this to decode the shard whose
        ranges have already landed while other shards are still fetching —
        zero means every primed byte of this source is ready to consume.
        """
        with self._lock:
            return sum(1 for p in self._primed if not p.future.done())

    def close(self) -> None:
        """Discard the cache and close the wrapped source (when closable)."""
        self.drop_unconsumed()
        close = getattr(self._inner, "close", None)
        if close is not None:
            close()

    def drop_unconsumed(self) -> int:
        """Discard primed-but-unconsumed intervals; returns bytes dropped.

        Used when a speculative rung turns out wrong enough that its cached
        blocks can never be consumed (the retriever surpassed them).
        """
        with self._lock:
            dropped = sum(p.end - p.start - p.consumed for p in self._primed)
            self._primed.clear()
        return dropped
