"""Long-lived retrieval serving layer with tiered caching.

Public surface:

* :class:`~repro.service.service.RetrievalService` — per-dataset sessions,
  a persistent worker pool, and a byte-budgeted slab/rung LRU over the
  :class:`~repro.retrieval.engine.RetrievalEngine` primitives;
* :class:`~repro.service.trace.RetrievalTrace` — one request's receipt
  (consumed vs physical bytes, per-tier cache behaviour, plan delta);
* :class:`~repro.service.cache.TieredCache` — the shared LRU itself.
"""

from repro.service.cache import DEFAULT_CACHE_BYTES, TieredCache
from repro.service.service import RetrievalService, ServiceResponse
from repro.service.trace import RetrievalTrace, ServiceStats

__all__ = [
    "DEFAULT_CACHE_BYTES",
    "RetrievalService",
    "RetrievalTrace",
    "ServiceResponse",
    "ServiceStats",
    "TieredCache",
]
