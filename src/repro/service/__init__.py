"""Long-lived retrieval serving layer with tiered caching.

Public surface:

* :class:`~repro.service.service.RetrievalService` — per-dataset sessions,
  a persistent worker pool, and a byte-budgeted slab/rung LRU over the
  :class:`~repro.retrieval.engine.RetrievalEngine` primitives;
* :class:`~repro.service.trace.RetrievalTrace` — one request's receipt
  (consumed vs physical bytes, per-tier cache behaviour, plan delta);
* :class:`~repro.service.cache.TieredCache` — the shared LRU itself;
* :class:`~repro.service.scheduler.RequestScheduler` — multi-tenant QoS
  in front of the service: admission window, per-client byte-budget token
  buckets (deficit-round-robin), overlapping-ROI batching, and
  load-shedding by fidelity degradation with background refinement.
"""

from repro.service.cache import DEFAULT_CACHE_BYTES, TieredCache
from repro.service.scheduler import RequestScheduler, ScheduledResponse
from repro.service.service import (
    RequestCost,
    RetrievalService,
    ServiceResponse,
    file_fingerprint,
)
from repro.service.trace import RetrievalTrace, ServiceStats

__all__ = [
    "DEFAULT_CACHE_BYTES",
    "RequestCost",
    "RequestScheduler",
    "RetrievalService",
    "RetrievalTrace",
    "ScheduledResponse",
    "ServiceResponse",
    "ServiceStats",
    "TieredCache",
    "file_fingerprint",
]
