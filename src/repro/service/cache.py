"""Byte-budgeted, tiered LRU cache for the retrieval service.

One :class:`TieredCache` holds every reusable artifact of a
:class:`~repro.service.service.RetrievalService` under a single byte
budget:

* tier ``"slab"`` — immutable decoded shard arrays at one exact plane
  selection, together with the consumed-range trace and achieved bound of
  the request that produced them.  A slab hit answers a repeated request
  with **zero physical reads** by replaying the recorded trace.
* tier ``"rung"`` — live :class:`~repro.core.progressive.ProgressiveRetriever`
  state (integer codes + reconstruction) for one shard.  A rung hit answers
  a *finer* request by refining in place — Algorithm 2 reads only the new
  plane blocks, never re-fetching from byte zero.

Entries across tiers share one LRU order and one budget: a decoded slab can
evict a cold rung and vice versa.  The budget is a hard invariant — resident
bytes never exceed it, not even transiently (eviction happens *before*
insertion), and an entry larger than the whole budget is rejected outright.
``max_resident_bytes`` records the high-water mark so tests can assert the
invariant held under concurrent pressure.

All methods are thread-safe; per-tier hit/miss/eviction counters feed the
service's aggregate ``stats()``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Hashable, Optional, Tuple

__all__ = ["CacheStats", "TieredCache"]

#: Default service cache budget when the profile leaves ``cache_bytes`` at 0.
DEFAULT_CACHE_BYTES = 256 << 20


class CacheStats:
    """Mutable per-tier counters (hits / misses / evictions / inserts).

    Every way an entry can leave the cache has its own counter —
    ``evictions`` (LRU pressure), ``invalidations`` (poisoned / stale
    entries dropped via :meth:`TieredCache.invalidate` or
    :meth:`TieredCache.purge`), ``replacements`` (an existing key re-put,
    or popped by a rejected oversize re-put) — so residency reconciles as
    an invariant::

        entries == Σ inserts − Σ evictions − Σ invalidations − Σ replacements
    """

    def __init__(self) -> None:
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}
        self.evictions: Dict[str, int] = {}
        self.inserts: Dict[str, int] = {}
        self.invalidations: Dict[str, int] = {}
        self.replacements: Dict[str, int] = {}
        self.rejected = 0

    def _bump(self, counter: Dict[str, int], tier: str) -> None:
        counter[tier] = counter.get(tier, 0) + 1

    def to_json(self) -> dict:
        return {
            "hits": dict(self.hits),
            "misses": dict(self.misses),
            "evictions": dict(self.evictions),
            "inserts": dict(self.inserts),
            "invalidations": dict(self.invalidations),
            "replacements": dict(self.replacements),
            "rejected": self.rejected,
        }


class TieredCache:
    """Thread-safe LRU over ``(tier, key)`` entries with a shared byte budget."""

    def __init__(self, budget_bytes: int) -> None:
        budget = int(budget_bytes)
        if budget <= 0:
            raise ValueError("cache budget must be a positive byte count")
        self.budget_bytes = budget
        self._lock = threading.RLock()
        #: (tier, key) -> (value, nbytes); insertion order is LRU order.
        self._entries: "OrderedDict[Tuple[str, Hashable], Tuple[object, int]]" = (
            OrderedDict()
        )
        self.resident_bytes = 0
        #: High-water mark of ``resident_bytes`` — must never pass the budget.
        self.max_resident_bytes = 0
        self.stats = CacheStats()

    def get(self, tier: str, key: Hashable, count: bool = True) -> Optional[object]:
        """The cached value, freshened to most-recently-used; None on miss.

        ``count=False`` skips the hit/miss counters — for lookups whose
        usability the caller still has to judge (a resident rung may be too
        fine for the request); the caller then reports the verdict through
        :meth:`record`.
        """
        with self._lock:
            entry = self._entries.get((tier, key))
            if entry is None:
                if count:
                    self.stats._bump(self.stats.misses, tier)
                return None
            self._entries.move_to_end((tier, key))
            if count:
                self.stats._bump(self.stats.hits, tier)
            return entry[0]

    def record(self, tier: str, hit: bool) -> None:
        """Count a hit/miss judged by the caller (pairs with ``get(count=False)``)."""
        with self._lock:
            self.stats._bump(self.stats.hits if hit else self.stats.misses, tier)

    def put(self, tier: str, key: Hashable, value: object, nbytes: int) -> bool:
        """Insert (or resize/replace) an entry, evicting LRU entries to fit.

        Returns False — and caches nothing — when ``nbytes`` alone exceeds
        the budget: an oversized artifact must never evict the entire
        working set for a single request's benefit.  Re-putting an existing
        key replaces its value and re-charges its size.
        """
        nbytes = max(0, int(nbytes))
        with self._lock:
            old = self._entries.pop((tier, key), None)
            if old is not None:
                self.resident_bytes -= old[1]
                self.stats._bump(self.stats.replacements, tier)
            if nbytes > self.budget_bytes:
                self.stats.rejected += 1
                return False
            while self.resident_bytes + nbytes > self.budget_bytes:
                evicted_key, (_, evicted_bytes) = self._entries.popitem(last=False)
                self.resident_bytes -= evicted_bytes
                self.stats._bump(self.stats.evictions, evicted_key[0])
            self._entries[(tier, key)] = (value, nbytes)
            self.resident_bytes += nbytes
            self.max_resident_bytes = max(self.max_resident_bytes, self.resident_bytes)
            self.stats._bump(self.stats.inserts, tier)
            return True

    def scan(self, tier: str, predicate: Callable[[Hashable], bool]) -> list:
        """Snapshot ``(key, value)`` pairs of one tier matching ``predicate``.

        Read-only: no LRU freshening, no hit/miss counting — the degraded
        serving path uses this to discover *any* resident artifact for a
        shard without disturbing the cache's replacement order.
        """
        with self._lock:
            return [
                (key, value)
                for (entry_tier, key), (value, _nbytes) in self._entries.items()
                if entry_tier == tier and predicate(key)
            ]

    def invalidate(self, tier: str, key: Hashable) -> bool:
        """Drop one entry (poisoned or stale); True if it was resident."""
        with self._lock:
            entry = self._entries.pop((tier, key), None)
            if entry is None:
                return False
            self.resident_bytes -= entry[1]
            self.stats._bump(self.stats.invalidations, tier)
            return True

    def purge(self, predicate: Callable[[str, Hashable], bool]) -> int:
        """Drop every entry whose ``(tier, key)`` satisfies ``predicate``.

        Used when a dataset file changes identity: all entries keyed to the
        dead session are dropped at once instead of aging out of the LRU.
        """
        with self._lock:
            doomed = [tk for tk in self._entries if predicate(*tk)]
            for tier_key in doomed:
                _, nbytes = self._entries.pop(tier_key)
                self.resident_bytes -= nbytes
                self.stats._bump(self.stats.invalidations, tier_key[0])
            return len(doomed)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def to_json(self) -> dict:
        with self._lock:
            return {
                "budget_bytes": self.budget_bytes,
                "resident_bytes": self.resident_bytes,
                "max_resident_bytes": self.max_resident_bytes,
                "entries": len(self._entries),
                **self.stats.to_json(),
            }
