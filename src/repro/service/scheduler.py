"""Byte-budget QoS scheduler in front of :class:`RetrievalService`.

The paper's core promise is that fidelity trades against latency *per
request, mid-flight* — a progressive stream can answer coarse now and
refine later, which no fixed-rate codec can.  :class:`RequestScheduler`
turns that property into a multi-tenant serving policy:

* **admission control** — at most ``max_inflight`` requests physically
  fetch/decode at once; everything else queues (or degrades, below)
  instead of convoying on the per-shard locks;
* **byte-budget token buckets** — each client refills at its configured
  bytes/second and a request is granted only when the bucket holds its
  full :attr:`~repro.service.service.RequestCost.predicted_bytes` (the
  planner's stage-1 cost, computed without payload I/O).  Buckets are
  never overdrawn; a request costlier than one second of budget is still
  servable because the bucket's burst capacity stretches to the head
  request's cost — it just waits proportionally longer;
* **deficit round-robin** — clients take turns accumulating a byte
  quantum and spend it on their queue heads, so a tenant issuing many
  small requests cannot starve one issuing few large ones (or vice
  versa);
* **overlapping-ROI batching** — a granted request whose plan shares a
  shard (same dataset, same fidelity target) with one already in flight
  becomes a *follower*: it waits for that leader to finish and then reads
  through the slab/rung tiers the leader just populated, one physical
  fetch/decode serving both;
* **load-shedding by degradation** — when a request cannot be granted
  immediately (window full or bucket short), the scheduler first tries
  :meth:`~repro.service.service.RetrievalService.get_resident`: if every
  selected shard has *some* resident fidelity, that answer is returned
  right away with ``degraded=True`` in its trace, and the queued request
  lives on as a background refine whose final answer —
  bitwise-identical to a fresh serial read at the requested bound — lands
  in :meth:`ScheduledResponse.refined`.

Traces gain ``client``, ``queue_wait`` (enqueue→grant seconds),
``degraded`` and ``budget_debited``; :meth:`RequestScheduler.stats`
aggregates per-client delivered bytes, wait times and the bucket
low-water marks the overdraw tests pin.

``clock`` and the pacer are injectable/disablable so tests drive time
explicitly (:meth:`RequestScheduler.kick` re-runs the grant loop after a
fake-clock advance).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set, Tuple, Union

from repro.errors import RetrievalError
from repro.io.remote import is_url
from repro.service.service import RequestCost, RetrievalService, ServiceResponse

__all__ = ["RequestScheduler", "ScheduledResponse"]

#: Default bound on concurrently fetching/decoding requests.
DEFAULT_MAX_INFLIGHT = 4

#: DRR byte quantum a client accrues per scheduling round.
DEFAULT_QUANTUM_BYTES = 1 << 20

#: How long a follower waits for its leader before proceeding alone.
_FOLLOWER_WAIT_S = 60.0

#: Pacer period — how often budgets refill and the grant loop re-runs
#: without an explicit submit/completion/kick event.
_PACER_PERIOD_S = 0.05


class ScheduledResponse:
    """Handle for one scheduled request: immediate answer, then the refine.

    :meth:`result` blocks for the *first* answer — the degraded resident
    serve when the scheduler load-shed, otherwise the final one.
    :meth:`refined` blocks for the final answer at the requested bound
    (identical object to :meth:`result` when nothing degraded).  A failed
    request raises the underlying error from both.
    """

    def __init__(self, client: str, cost: RequestCost) -> None:
        self.client = client
        self.cost = cost
        self._first = threading.Event()
        self._final = threading.Event()
        self._first_resp: Optional[ServiceResponse] = None
        self._final_resp: Optional[ServiceResponse] = None
        self._exc: Optional[BaseException] = None

    @property
    def degraded(self) -> bool:
        """True once a degraded (resident, coarser) answer was served first."""
        first = self._first_resp
        return first is not None and first.trace.degraded

    def result(self, timeout: Optional[float] = None) -> ServiceResponse:
        """The first available answer (possibly degraded); blocks until one."""
        if not self._first.wait(timeout):
            raise TimeoutError("no response within timeout")
        if self._first_resp is None:
            assert self._exc is not None
            raise self._exc
        return self._first_resp

    def refined(self, timeout: Optional[float] = None) -> ServiceResponse:
        """The final answer at the requested bound; blocks until served."""
        if not self._final.wait(timeout):
            raise TimeoutError("request not refined within timeout")
        if self._final_resp is None:
            assert self._exc is not None
            raise self._exc
        return self._final_resp

    # ------------------------------------------------- scheduler-side plumbing

    def _serve_first(self, response: ServiceResponse) -> None:
        if not self._first.is_set():
            self._first_resp = response
            self._first.set()

    def _serve_final(self, response: ServiceResponse) -> None:
        self._final_resp = response
        self._final.set()
        self._serve_first(response)

    def _fail(self, exc: BaseException) -> None:
        self._exc = exc
        self._final.set()
        self._first.set()


@dataclass
class _Pending:
    """One queued request plus its scheduling state."""

    client: str
    path: Union[str, Path]  # a local path, or an http(s):// URL verbatim
    error_bound: Optional[float]
    roi: object
    cost: RequestCost
    response: ScheduledResponse
    enqueued_at: float
    deadline: Optional[float] = None
    granted: bool = False
    cancelled: bool = False
    degraded_served: bool = False
    queue_wait: float = 0.0
    leader_done: Optional[threading.Event] = None


@dataclass
class _Inflight:
    """Registry entry of one physically-executing (leader) request."""

    dataset: str
    target: float
    shards: Set[str]
    done: threading.Event = field(default_factory=threading.Event)


class _Client:
    """Per-tenant queue, DRR deficit, and byte-budget token bucket."""

    def __init__(self, name: str, budget_bps: int, now: float) -> None:
        self.name = name
        self.budget_bps = max(0, int(budget_bps))
        self.queue: List[_Pending] = []
        self.deficit = 0
        # A full bucket at birth: a fresh client's first request should not
        # wait out a cold refill.
        self.tokens = float(self.budget_bps)
        self.refilled_at = now
        self.min_tokens = float(self.budget_bps)
        self.delivered_bytes = 0
        self.debited_bytes = 0
        self.granted = 0
        self.degraded = 0

    def refill(self, now: float) -> None:
        if self.budget_bps <= 0:
            return
        elapsed = max(0.0, now - self.refilled_at)
        self.refilled_at = now
        head_cost = self.queue[0].cost.predicted_bytes if self.queue else 0
        cap = float(max(self.budget_bps, head_cost))
        self.tokens = min(cap, self.tokens + elapsed * self.budget_bps)

    def affords(self, cost_bytes: int) -> bool:
        return self.budget_bps <= 0 or self.tokens >= cost_bytes

    def debit(self, cost_bytes: int) -> None:
        if self.budget_bps > 0:
            self.tokens -= cost_bytes
            self.min_tokens = min(self.min_tokens, self.tokens)
        self.debited_bytes += cost_bytes


class RequestScheduler:
    """Admission, fair-share and degradation policy over one service.

    ``client_budgets`` maps client name to bytes/second; ``budget_bps`` is
    the default for clients not listed (0 = unmetered).  ``clock`` must be
    monotonic; tests inject a fake one and call :meth:`kick` after
    advancing it (pass ``pacer=False`` to disable the real-time refill
    thread entirely).
    """

    def __init__(
        self,
        service: RetrievalService,
        *,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        budget_bps: int = 0,
        client_budgets: Optional[Dict[str, int]] = None,
        quantum_bytes: int = DEFAULT_QUANTUM_BYTES,
        clock: Callable[[], float] = time.monotonic,
        pacer: bool = True,
    ) -> None:
        self.service = service
        self.max_inflight = max(1, int(max_inflight))
        self.default_budget_bps = max(0, int(budget_bps))
        self.client_budgets = dict(client_budgets or {})
        self.quantum_bytes = max(1, int(quantum_bytes))
        self.clock = clock
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._clients: Dict[str, _Client] = {}
        self._rotation: List[str] = []
        self._rr = 0
        self._inflight: Dict[int, _Inflight] = {}
        self._inflight_count = 0
        self._follower_count = 0
        self._follower_slots = max(4, self.max_inflight)
        self._next_token = 0
        self._closed = False
        self._submitted = 0
        self._degraded_served = 0
        self._followers_total = 0
        self._queue_waits: List[float] = []
        # Leaders + followers can all block in workers at once.
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_inflight + self._follower_slots,
            thread_name_prefix="repro-sched",
        )
        self._pacer: Optional[threading.Thread] = None
        if pacer:
            self._pacer = threading.Thread(
                target=self._pace, name="repro-sched-pacer", daemon=True
            )
            self._pacer.start()

    # ----------------------------------------------------------------- submit

    def submit(
        self,
        path: Union[str, Path],
        error_bound: Optional[float] = None,
        roi=None,
        *,
        client: str = "default",
        timeout: Optional[float] = None,
    ) -> ScheduledResponse:
        """Enqueue one request; returns immediately with its handle.

        The request is costed (metadata-only planning), queued under its
        client, and the grant loop runs.  If it cannot start now and a
        degraded resident answer exists, that answer is served on the
        handle at once and the queued request becomes its background
        refine.  A resident answer already *at* the requested bound
        settles the request for free — nothing queued, nothing debited.

        ``path`` may be an ``http(s)://`` URL (served through the
        service's resilient remote stack).  ``timeout`` seconds, when
        given, become the request's whole-lifetime deadline: once crossed,
        retry ladders — the service's and any remote stack's — stop
        sleeping into further attempts, and an exhausted request degrades
        to resident fidelity (or fails) instead of hanging.
        """
        if self._closed:
            raise RetrievalError("scheduler is closed")
        cost = self.service.cost(path, error_bound, roi)
        response = ScheduledResponse(client, cost)
        pending = _Pending(
            client=client,
            # Path() would mangle "http://h/x" (collapsed slashes): URLs
            # pass through verbatim.
            path=str(path) if is_url(path) else Path(path),
            error_bound=error_bound,
            roi=roi,
            cost=cost,
            response=response,
            enqueued_at=self.clock(),
            deadline=(
                None if timeout is None else time.monotonic() + float(timeout)
            ),
        )
        with self._lock:
            self._submitted += 1
            self._client(client).queue.append(pending)
            self._pump_locked()
        if not pending.granted:
            self._try_degrade(pending)
        return pending.response

    def request(
        self,
        path: Union[str, Path],
        error_bound: Optional[float] = None,
        roi=None,
        *,
        client: str = "default",
        timeout: Optional[float] = None,
    ) -> ServiceResponse:
        """Blocking convenience: submit and wait for the *final* answer.

        ``timeout`` doubles as the request's lifetime deadline (retry
        ladders stop at it) and as the wait bound on the final answer.
        """
        return self.submit(
            path, error_bound, roi, client=client, timeout=timeout
        ).refined(timeout)

    def kick(self) -> None:
        """Refill budgets against the (possibly fake) clock and re-grant."""
        with self._lock:
            self._pump_locked()

    # ------------------------------------------------------------ degradation

    def _try_degrade(self, pending: _Pending) -> None:
        """Serve a resident coarse answer now; keep the refine queued.

        Runs outside the scheduler lock — ``get_resident`` performs no
        physical I/O but does take shard-lock tries.  Whatever happens the
        queued request stands, unless the resident answer already meets
        the bound, in which case the request settles free of charge.
        """
        resident = self.service.get_resident(
            pending.path, pending.error_bound, pending.roi
        )
        if resident is None:
            return
        trace = resident.trace
        trace.client = pending.client
        # "Satisfied" means *canonical*, not merely inside the bound: every
        # shard's resident answer must be the exact reconstruction a
        # from-scratch serve of this request produces (the planned keep,
        # bit-for-bit).  A finer resident fidelity still meets the bound
        # but is different bytes — serve it as a degraded first answer
        # and refine to the canonical bytes in the background.
        satisfied = trace.canonical
        with self._lock:
            if pending.granted or pending.response._first.is_set():
                return
            if satisfied:
                # Full fidelity straight from residency: nothing left to
                # refine, so the queued request is withdrawn undebited.
                pending.cancelled = True
                client = self._clients.get(pending.client)
                if client is not None and pending in client.queue:
                    client.queue.remove(pending)
            else:
                trace.degraded = True
                pending.degraded_served = True
                self._degraded_served += 1
                self._client(pending.client).degraded += 1
        if satisfied:
            pending.response._serve_final(resident)
        else:
            pending.response._serve_first(resident)

    def _shed_queued(self) -> None:
        """Retry load-shedding for requests still waiting in queue.

        Residency changes as requests complete (a finished serve leaves
        slabs and rungs behind), so a request that found nothing resident
        at submit time may be shed-servable now.  Candidates are chosen
        under the lock; the actual degrade attempts run outside it.
        """
        with self._lock:
            waiting = [
                pending
                for name in self._rotation
                for pending in self._clients[name].queue
                if not pending.granted
                and not pending.degraded_served
                and not pending.response._first.is_set()
            ]
        for pending in waiting:
            self._try_degrade(pending)

    # ------------------------------------------------------------- grant loop

    def _client(self, name: str) -> _Client:
        client = self._clients.get(name)
        if client is None:
            budget = self.client_budgets.get(name, self.default_budget_bps)
            client = _Client(name, budget, self.clock())
            self._clients[name] = client
            self._rotation.append(name)
        return client

    def _find_leader(self, pending: _Pending) -> Optional[_Inflight]:
        for entry in self._inflight.values():
            if (
                entry.dataset == pending.cost.dataset
                and entry.target == pending.cost.error_bound
                and entry.shards.intersection(pending.cost.shards)
            ):
                return entry
        return None

    def _pump_locked(self) -> None:
        """Deficit-round-robin grant loop; runs until no client can proceed."""
        if self._closed:
            return
        now = self.clock()
        progressed = True
        while progressed:
            progressed = False
            active = [n for n in self._rotation if self._clients[n].queue]
            if not active:
                break
            # Rotate the starting client so ties don't always favour the
            # same tenant; each client in turn accrues one quantum and
            # spends it on as many queue heads as it covers.
            order = active[self._rr % len(active):] + active[: self._rr % len(active)]
            self._rr += 1
            for name in order:
                client = self._clients[name]
                if not client.queue:
                    continue
                client.refill(now)
                client.deficit = min(
                    client.deficit + self.quantum_bytes,
                    max(
                        self.quantum_bytes,
                        client.queue[0].cost.predicted_bytes,
                    ),
                )
                while client.queue:
                    head = client.queue[0]
                    cost_bytes = head.cost.predicted_bytes
                    if cost_bytes > client.deficit or not client.affords(cost_bytes):
                        break
                    leader = self._find_leader(head)
                    if leader is not None:
                        if self._follower_count >= self._follower_slots:
                            leader = None  # fall through to window rules
                        else:
                            head.leader_done = leader.done
                    if leader is None and self._inflight_count >= self.max_inflight:
                        break
                    client.queue.pop(0)
                    client.deficit -= cost_bytes
                    client.debit(cost_bytes)
                    client.granted += 1
                    self._grant_locked(head, now, follower=leader is not None)
                    progressed = True
                if not client.queue:
                    client.deficit = 0

    def _grant_locked(self, pending: _Pending, now: float, follower: bool) -> None:
        pending.granted = True
        pending.queue_wait = max(0.0, now - pending.enqueued_at)
        self._queue_waits.append(pending.queue_wait)
        token = self._next_token
        self._next_token += 1
        if follower:
            self._follower_count += 1
            self._followers_total += 1
        else:
            self._inflight_count += 1
            self._inflight[token] = _Inflight(
                dataset=pending.cost.dataset,
                target=pending.cost.error_bound,
                shards=set(pending.cost.shards),
            )
        self._executor.submit(self._run, pending, token, follower)

    def _run(self, pending: _Pending, token: int, follower: bool) -> None:
        try:
            if pending.leader_done is not None:
                # Follower path: let the leader finish populating the
                # slab/rung tiers, then read through them — one physical
                # fetch serves every overlapping request.
                pending.leader_done.wait(_FOLLOWER_WAIT_S)
            response = self.service.get(
                pending.path,
                pending.error_bound,
                pending.roi,
                deadline=pending.deadline,
            )
            trace = response.trace
            trace.client = pending.client
            trace.queue_wait = pending.queue_wait
            trace.degraded = pending.degraded_served
            trace.budget_debited = pending.cost.predicted_bytes
        except BaseException as exc:  # propagate through the handle
            pending.response._fail(exc)
        else:
            pending.response._serve_final(response)
            with self._lock:
                client = self._clients.get(pending.client)
                if client is not None:
                    client.delivered_bytes += trace.bytes_loaded
        finally:
            with self._lock:
                if follower:
                    self._follower_count -= 1
                else:
                    entry = self._inflight.pop(token, None)
                    if entry is not None:
                        entry.done.set()
                    self._inflight_count -= 1
                self._pump_locked()
                self._cond.notify_all()
            self._shed_queued()

    # ------------------------------------------------------------------ pacer

    def _pace(self) -> None:
        while True:
            with self._cond:
                if self._closed:
                    return
                self._cond.wait(_PACER_PERIOD_S)
                if self._closed:
                    return
                self._pump_locked()
            self._shed_queued()

    # ------------------------------------------------------------------ misc

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until no request is queued or in flight; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                idle = (
                    self._inflight_count == 0
                    and self._follower_count == 0
                    and all(not c.queue for c in self._clients.values())
                )
                if idle:
                    return True
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(
                    _PACER_PERIOD_S
                    if remaining is None
                    else min(_PACER_PERIOD_S, remaining)
                )

    def stats(self) -> dict:
        """Scheduler-level aggregates plus per-client QoS accounting."""
        with self._lock:
            queued = sum(len(c.queue) for c in self._clients.values())
            waits = list(self._queue_waits)
            return {
                "submitted": self._submitted,
                "queued": queued,
                "inflight": self._inflight_count,
                "followers": self._followers_total,
                "degraded_served": self._degraded_served,
                "max_inflight": self.max_inflight,
                "queue_wait_max": max(waits, default=0.0),
                "queue_wait_mean": (sum(waits) / len(waits)) if waits else 0.0,
                "clients": {
                    name: {
                        "budget_bps": c.budget_bps,
                        "granted": c.granted,
                        "degraded": c.degraded,
                        "delivered_bytes": c.delivered_bytes,
                        "debited_bytes": c.debited_bytes,
                        "tokens": c.tokens,
                        "min_tokens": c.min_tokens,
                    }
                    for name, c in self._clients.items()
                },
            }

    def close(self, *, drain: bool = True, timeout: Optional[float] = 60.0) -> None:
        """Stop admitting; optionally drain, then fail whatever never ran."""
        with self._lock:
            if self._closed:
                return
        if drain:
            self.drain(timeout)
        with self._cond:
            self._closed = True
            doomed = [p for c in self._clients.values() for p in c.queue]
            for c in self._clients.values():
                c.queue.clear()
            self._cond.notify_all()
        for pending in doomed:
            pending.response._fail(RetrievalError("scheduler closed"))
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "RequestScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
