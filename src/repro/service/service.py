"""Long-lived retrieval service with per-dataset sessions and tiered reuse.

:class:`RetrievalService` is the daemon-style layer the ROADMAP asks for on
top of the one-shot :class:`~repro.retrieval.engine.RetrievalEngine`
pipeline.  Where a fresh :class:`~repro.io.dataset.ChunkedDataset` pays
container-open, per-shard header parse, and cold pool workers on every
request, the service keeps:

* **sessions** — one per dataset file, pinning the open container reader
  and parsing each shard's stream header exactly once.  Sessions are keyed
  by the file's ``(size, mtime_ns, tail_crc)`` fingerprint
  (:func:`file_fingerprint`), so a rewritten file — even one rewritten at
  the same size within the filesystem's mtime granularity — gets a fresh
  session and the old session's cache entries are purged, never served
  against the new bytes;
* **a persistent worker pool** — one :class:`~concurrent.futures.\
  ProcessPoolExecutor` shared by every request's pool-decode stage (lent to
  :func:`~repro.parallel.poolmap.imap_fallback`, which degrades through the
  usual ladder when it breaks);
* **a tiered byte-budgeted LRU** (:class:`~repro.service.cache.TieredCache`)
  over decoded **slabs** and resident plane **rungs**, so concurrent ROI
  requests on the same dataset reuse each other's work.  A request whose
  plane selection is already decoded is answered from the slab tier with
  zero physical reads; a coarser resident rung is *refined in place*
  (Algorithm 2 reads only the new plane blocks — never re-fetched from
  byte zero) via
  :meth:`~repro.core.progressive.ProgressiveRetriever.retrieve_rebuilt`,
  whose single reconstruction pass keeps the answer bitwise-identical to a
  fresh serial read.

Accounting stays **consumption-based**: every request's trace reports the
``bytes_loaded`` / ``ranges`` a fresh serial read of the same request
consumes — cache hits replay the recorded consumption — while the
physically-performed reads are reported separately (``physical_reads`` is
0 on a warm repeat).  Decoded answers are bitwise-identical to
:meth:`ChunkedDataset.read <repro.io.dataset.ChunkedDataset.read>` across
cold, warm, refined, evicted, and pooled paths; the test suite pins every
one of those paths to the serial oracle.

Failures degrade along the existing ladder: a faulty source
(:class:`~repro.errors.StreamFormatError`, short read, ``OSError``) costs
the poisoned tier entry its residency and the read is retried from scratch
up to ``retries`` times before propagating; checksum-verified slab entries
(``cache_verify``) are invalidated on mismatch, never served.  When even
the ladder is exhausted — e.g. a remote backend died mid-refine — the
service falls back to the load-shed path (:meth:`~RetrievalService.\
get_resident`): an already-resident coarser fidelity is returned with
``trace.degraded`` set instead of erroring, and only a request with
*nothing* resident propagates the failure (``degrade_on_failure=False``
restores strict propagation).

Sessions also open over ``http(s)://`` URLs: the container (or bare
stream) is read through the resilient remote stack of
:mod:`repro.io.remote` — retries, circuit breakers, optional mirrors and
hedged reads (``remote_options`` passes knobs to
:func:`~repro.io.remote.open_remote_source`).  Remote sessions are keyed
by a ``(size, 0, tail_crc)`` fingerprint probed over the stack, traces
carry per-request remote deltas (egress bytes, absorbed retries, hedges,
failovers, breaker states), and every answer stays bitwise-identical to
the local serial read of the same file.
"""

from __future__ import annotations

import threading
import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.optimizer import OptimizedLoader
from repro.core.profile import CodecProfile
from repro.core.progressive import ProgressiveRetriever
from repro.core.stream import CompressedStore, StreamHeader
from repro.errors import ConfigurationError, RetrievalError, StreamFormatError
from repro.io.aio import open_async_source, resolve_io_backend
from repro.io.container import FileSource, is_container, sniff_container
from repro.io.dataset import ChunkedDataset, DatasetShard
from repro.io.remote import (
    is_url,
    jittered_backoff,
    open_remote_source,
    remote_fingerprint,
)
from repro.parallel.partition import (
    SliceTuple,
    normalize_roi,
    slices_intersect,
)
from repro.parallel.poolmap import imap_fallback
from repro.retrieval.engine import assemble
from repro.retrieval.plan import plan_stream_ops
from repro.service.cache import DEFAULT_CACHE_BYTES, TieredCache
from repro.service.trace import RetrievalTrace, ServiceStats

__all__ = ["RequestCost", "RetrievalService", "ServiceResponse", "file_fingerprint"]

#: Errors that mark a *source* (or a cache entry built from one) as bad —
#: retried per the fallback ladder.  Configuration mistakes are not in the
#: tuple: they fail identically on every attempt and belong to the caller.
_RETRYABLE = (StreamFormatError, RetrievalError, OSError)

#: Tail bytes hashed into the session fingerprint.  The container footer —
#: directory extents plus the JSON manifest (shard offsets, error bound,
#: profile) — lives at the end of the file, so any rewrite that changes
#: *what the bytes mean* lands in this window even when size and mtime do
#: not move (coarse-mtime filesystems, same-size rewrites in fast tests).
_WITNESS_TAIL_BYTES = 4096


def file_fingerprint(path: Path) -> Tuple[int, int, int]:
    """Session identity of a dataset file: ``(size, mtime_ns, tail_crc)``.

    ``(st_size, st_mtime_ns)`` alone serves stale cache when a file is
    rewritten at the same size within the filesystem's mtime granularity;
    the CRC of the footer/manifest tail is the cheap content witness that
    catches it (one bounded read, no payload scan).
    """
    stat = path.stat()
    size = int(stat.st_size)
    with open(path, "rb") as handle:
        if size > _WITNESS_TAIL_BYTES:
            handle.seek(size - _WITNESS_TAIL_BYTES)
        witness = zlib.crc32(handle.read(_WITNESS_TAIL_BYTES))
    return (size, int(stat.st_mtime_ns), witness)


@dataclass
class ServiceResponse:
    """One served request: the decoded region plus its trace."""

    data: np.ndarray
    trace: RetrievalTrace


@dataclass
class RequestCost:
    """Stage-1 cost of a request, computed without touching payload bytes.

    ``predicted_bytes`` is what the planner says a from-scratch read of this
    request consumes (header + anchor + planned plane blocks, summed over
    the selected shards) — the costing primitive the scheduler's token
    buckets debit.  ``shards`` names the selection so the scheduler can
    detect overlapping in-flight requests without re-planning.
    ``planned_bound`` is the bound the canonical serve achieves (the same
    ``plan_error`` of the planned keep that :meth:`RetrievalService.get`
    reports), so a resident answer can be recognised as bitwise-canonical
    — not merely bound-satisfying — by exact comparison.
    """

    dataset: str
    roi: List[List[int]]
    error_bound: float
    shards: List[str]
    predicted_bytes: int
    per_shard_bytes: Dict[str, int]
    planned_bound: float


class _TracedSource:
    """Byte-range source wrapper keeping consumed and physical accounting.

    ``trace`` is the *consumed* view — replayed header ranges included — and
    is what the service reports; ``physical_reads`` / ``physical_bytes``
    count only actual ``read_range`` calls.  Short reads surface as
    :class:`StreamFormatError` so the retry ladder treats them like any
    other bad source.
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self.size = inner.size
        self.trace: List[Tuple[int, int]] = []
        self.physical_reads = 0
        self.physical_bytes = 0

    def read_range(self, offset: int, length: int) -> bytes:
        data = self._inner.read_range(offset, length)
        if len(data) != length:
            raise StreamFormatError(
                f"short read: wanted {length} bytes at offset {offset}, "
                f"got {len(data)}"
            )
        self.physical_reads += 1
        self.physical_bytes += length
        self.trace.append((offset, length))
        return data

    def replay(self, ranges) -> None:
        """Record already-satisfied ranges (pinned header) without I/O."""
        self.trace.extend((int(o), int(n)) for o, n in ranges)


@dataclass
class _ShardMeta:
    """Once-per-session parsed state of one shard's stream."""

    header: StreamHeader
    header_bytes: int
    header_trace: List[Tuple[int, int]]
    loader: OptimizedLoader
    extent_store: CompressedStore  # block extents for planning; never read


@dataclass
class _Rung:
    """A resident progressive retriever plus its accumulated consumed trace."""

    retriever: ProgressiveRetriever
    source: _TracedSource


@dataclass
class _SlabEntry:
    """An immutable decoded shard at one exact plane selection."""

    data: np.ndarray
    trace: List[Tuple[int, int]]
    bound: float
    crc: int


@dataclass
class _ShardServe:
    """What serving one shard produced (before request-level assembly)."""

    data: np.ndarray
    ranges: List[Tuple[int, int]]
    bound: float
    planned_bytes: int
    physical_reads: int
    physical_bytes: int
    retries: int
    tier: str  # "slab" | "rung" | "cold" | "pool"
    retry_delays: List[float] = field(default_factory=list)


def _validated_target(stored_bound: float, error_bound: Optional[float]) -> float:
    target = stored_bound if error_bound is None else float(error_bound)
    if target <= 0 or not np.isfinite(target):
        raise ConfigurationError("error_bound must be a positive finite number")
    return target


def _cold_shard_worker(payload):
    """Pool worker: fresh plan-then-load retrieval of one container shard.

    Opens its own reader (exactly like the engine's pool-decode stage), so
    the returned ``(name, consumed trace, achieved bound, data)`` matches
    the serial path entry for entry while the parent's pinned reader sees
    zero physical reads.
    """
    from repro.io.container import BlockContainerReader, BlockSource

    path, name, target, kernel = payload
    profile = CodecProfile(kernel=kernel) if kernel is not None else None
    with BlockContainerReader(path) as reader:
        source = BlockSource(reader, name)
        retriever = ProgressiveRetriever(source, profile=profile)
        result = retriever.retrieve(error_bound=target)
        return (name, list(source.trace), float(result.error_bound), result.data)


class _Session:
    """Per-file pinned state: reader, manifest/header, lazy shard metadata.

    ``path`` is a local :class:`~pathlib.Path` or an ``http(s)://`` URL;
    for a URL the caller hands in the already-built ``remote_source``
    stack, which the session owns (closed with it) and whose ``stats()``
    the service harvests per request.
    """

    def __init__(
        self,
        sid: int,
        path: Union[str, Path],
        profile: Optional[CodecProfile],
        remote_source=None,
    ) -> None:
        self.sid = sid
        self.path = path
        self.profile = profile
        self.remote_source = remote_source
        self.is_remote = remote_source is not None
        self.fingerprint = (
            remote_fingerprint(remote_source)
            if self.is_remote
            else file_fingerprint(path)
        )
        self._meta: Dict[str, _ShardMeta] = {}
        self._meta_lock = threading.Lock()
        self._shard_locks: Dict[str, threading.Lock] = {}
        container = (
            sniff_container(remote_source) if self.is_remote else is_container(path)
        )
        if container:
            self.kind = "container"
            self.dataset: Optional[ChunkedDataset] = ChunkedDataset(
                path, profile=profile, prefetch=0, workers=0, source=remote_source
            )
            self.shape = self.dataset.shape
            self.dtype = self.dataset.dtype
            self.stored_bound = self.dataset.absolute_bound
            self.shards = list(self.dataset.shards)
            self._stream_source = None
        else:
            # A bare ``.ipc`` stream: one pseudo-shard covering the domain.
            self.kind = "stream"
            self.dataset = None
            self._stream_source = (
                remote_source if self.is_remote else FileSource(path)
            )
            meta = self._build_meta("stream")
            self._meta["stream"] = meta
            self.shape = tuple(int(s) for s in meta.header.shape)
            self.dtype = np.dtype(meta.header.dtype)
            self.stored_bound = float(meta.header.error_bound)
            self.shards = [
                DatasetShard("stream", tuple(slice(0, s) for s in self.shape))
            ]

    def remote_stats(self) -> Optional[dict]:
        """Current cumulative stats of the remote stack (None when local)."""
        if not self.is_remote:
            return None
        return self.remote_source.stats()

    def set_deadline(self, deadline: Optional[float]) -> None:
        """Propagate a whole-request monotonic deadline into the stack."""
        if self.is_remote:
            setter = getattr(self.remote_source, "set_deadline", None)
            if setter is not None:
                setter(deadline)

    # ------------------------------------------------------------- selection

    def select(self, roi) -> Tuple[SliceTuple, List[DatasetShard]]:
        if self.dataset is not None:
            return self.dataset.select(roi)
        if roi is None:
            return tuple(slice(0, s) for s in self.shape), list(self.shards)
        roi_slices = normalize_roi(roi, self.shape)
        selected = [
            s for s in self.shards if slices_intersect(s.slices, roi_slices)
        ]
        return roi_slices, selected

    # --------------------------------------------------------------- plumbing

    def raw_source(self, name: str):
        """A fresh logical byte-range view of one shard over the pinned handle."""
        if self.dataset is not None:
            return self.dataset.shard_source(name)
        return self._stream_source

    def shard_lock(self, name: str) -> threading.Lock:
        with self._meta_lock:
            lock = self._shard_locks.get(name)
            if lock is None:
                lock = self._shard_locks[name] = threading.Lock()
            return lock

    def _build_meta(self, name: str) -> _ShardMeta:
        source = _TracedSource(self.raw_source(name))
        store = CompressedStore(source)  # parses the header through ``source``
        return _ShardMeta(
            header=store.header,
            header_bytes=store.header_bytes,
            header_trace=list(source.trace),
            loader=OptimizedLoader(store.header, overhead_bytes=store.overhead_bytes),
            extent_store=store,
        )

    def shard_meta(self, name: str) -> Tuple[_ShardMeta, int, int]:
        """The shard's pinned metadata, plus the physical cost of building it.

        The header is parsed on first touch only; the ``(reads, bytes)``
        pair is non-zero exactly once per shard per session and is charged
        to the request that triggered the parse.
        """
        with self._meta_lock:
            meta = self._meta.get(name)
        if meta is not None:
            return meta, 0, 0
        # Build under the shard's serve lock so concurrent first touches
        # cannot each pay a physical header parse; the loser re-checks and
        # is charged nothing.
        with self.shard_lock(name):
            with self._meta_lock:
                meta = self._meta.get(name)
            if meta is not None:
                return meta, 0, 0
            meta = self._build_meta(name)
            with self._meta_lock:
                self._meta[name] = meta
        return meta, len(meta.header_trace), sum(n for _, n in meta.header_trace)

    def close(self) -> None:
        if self.dataset is not None:
            self.dataset.close()
        if self._stream_source is not None:
            self._stream_source.close()


class RetrievalService:
    """Serve ROI-progressive requests from pinned sessions and a tiered cache.

    ``cache_bytes`` / ``cache_verify`` / ``workers`` default to the
    profile's runtime knobs (:class:`~repro.core.profile.CodecProfile`);
    like ``prefetch`` and ``workers`` everywhere else, none of them changes
    a reported byte or a decoded bit.  Transient-fault retries back off
    exponentially from ``retry_backoff`` seconds up to
    ``retry_backoff_cap``, scaled by a deterministic per-(shard, attempt)
    jitter so concurrent retriers de-synchronise identically across runs;
    ``sleep`` is injectable so tests assert the schedule without waiting
    it out.  ``source_filter`` is an adapter hook
    — ``source_filter(shard_name, source) -> source`` — wrapped around every
    cold read's byte-range source; the fault-injection tests use it to make
    sources flaky.  Requests with a filter installed stay in-process (a
    filter cannot cross the pool boundary).
    """

    def __init__(
        self,
        profile: Optional[CodecProfile] = None,
        *,
        cache_bytes: Optional[int] = None,
        cache_verify: Optional[bool] = None,
        workers: Optional[int] = None,
        retries: int = 2,
        retry_backoff: float = 0.05,
        retry_backoff_cap: float = 1.0,
        sleep: Callable[[float], None] = time.sleep,
        source_filter: Optional[Callable[[str, object], object]] = None,
        degrade_on_failure: bool = True,
        remote_options: Optional[dict] = None,
        io_backend: str = "auto",
    ) -> None:
        self.profile = profile
        if cache_bytes is None:
            cache_bytes = profile.cache_bytes if profile is not None else 0
        self.cache = TieredCache(int(cache_bytes) or DEFAULT_CACHE_BYTES)
        if cache_verify is None:
            cache_verify = profile.cache_verify if profile is not None else True
        self.cache_verify = bool(cache_verify)
        if workers is None:
            workers = profile.workers if profile is not None else 0
        self.workers = max(0, int(workers or 0))
        self.retries = max(0, int(retries))
        self.retry_backoff = max(0.0, float(retry_backoff))
        self.retry_backoff_cap = max(0.0, float(retry_backoff_cap))
        self._sleep = sleep
        self.source_filter = source_filter
        #: Exhausted retries degrade to resident fidelity (the scheduler's
        #: shed path) instead of erroring; only a request with nothing
        #: resident still propagates the failure.
        self.degrade_on_failure = bool(degrade_on_failure)
        #: Keyword arguments for the remote stack builder when a session
        #: opens over an ``http(s)://`` URL (mirrors, retry/breaker knobs,
        #: a fault-injecting ``tamper`` hook...) — forwarded to
        #: :func:`~repro.io.aio.open_async_source` or
        #: :func:`~repro.io.remote.open_remote_source` per ``io_backend``.
        self.remote_options = dict(remote_options or {})
        #: Remote I/O backend: ``auto`` (async event loop for URLs when
        #: available), ``async``, ``threads``, or ``sync``.
        self.io_backend = str(io_backend)
        #: Per-request deadline (monotonic timestamp), thread-local so
        #: concurrent requests don't share one.
        self._deadlines = threading.local()
        self.stats_agg = ServiceStats()
        self._sessions: Dict[str, _Session] = {}
        self._lock = threading.Lock()
        self._next_sid = 0
        self._executor: Optional[ProcessPoolExecutor] = None
        self._executor_failed = False
        self._closed = False

    # ------------------------------------------------------------------ serve

    def get(
        self,
        path: Union[str, Path],
        error_bound: Optional[float] = None,
        roi=None,
        *,
        deadline: Optional[float] = None,
    ) -> ServiceResponse:
        """Serve one request; bitwise-identical to a fresh serial ``read``.

        ``deadline`` (monotonic timestamp, e.g. ``time.monotonic() + 0.5``)
        bounds the retry budget: once crossed, neither the service's ladder
        nor a remote stack underneath sleeps into another attempt — the
        underlying failure propagates (or degrades, see below) instead.

        When the ladder is exhausted and ``degrade_on_failure`` is on, the
        request is answered from resident tiers at whatever fidelity is
        already decoded (``trace.degraded=True``) — the same shed path the
        scheduler uses under load — so a remote backend dying mid-refine
        costs fidelity, not availability.
        """
        session = self._session(path)
        remote_before = session.remote_stats()
        session.set_deadline(deadline)
        self._deadlines.value = deadline
        try:
            try:
                response = self._get_fresh(session, error_bound, roi)
            except ConfigurationError:
                raise
            except _RETRYABLE:
                if not self.degrade_on_failure:
                    raise
                resident = self.get_resident(path, error_bound, roi)
                if resident is None:
                    raise
                resident.trace.degraded = True
                self._annotate_remote(resident.trace, session, remote_before)
                self.stats_agg.record(resident.trace)
                return resident
        finally:
            session.set_deadline(None)
            self._deadlines.value = None
        self._annotate_remote(response.trace, session, remote_before)
        self.stats_agg.record(response.trace)
        return response

    def _get_fresh(
        self,
        session: "_Session",
        error_bound: Optional[float],
        roi,
    ) -> ServiceResponse:
        roi_slices, selected = session.select(roi)
        target = _validated_target(session.stored_bound, error_bound)
        served: Dict[str, _ShardServe] = {}
        if self._pool_eligible(session, selected):
            served.update(self._serve_pooled(session, selected, target))
        for shard in selected:
            if shard.name not in served:
                served[shard.name] = self._serve_shard(session, shard.name, target)
        pieces = [(shard.slices, served[shard.name].data) for shard in selected]
        data = assemble(pieces, roi_slices, session.dtype)
        ranges: List[Tuple[str, int, int]] = []
        tier_hits: Dict[str, int] = {}
        tier_misses: Dict[str, int] = {}
        for shard in selected:
            serve = served[shard.name]
            ranges.extend((shard.name, o, n) for o, n in serve.ranges)
            counter = tier_hits if serve.tier in ("slab", "rung") else tier_misses
            tier = serve.tier if serve.tier in ("slab", "rung") else "slab"
            counter[tier] = counter.get(tier, 0) + 1
        trace = RetrievalTrace(
            dataset=str(session.path),
            roi=[[s.start, s.stop] for s in roi_slices],
            error_bound=target,
            achieved_bound=max(
                (served[s.name].bound for s in selected), default=0.0
            ),
            shards=[s.name for s in selected],
            ranges=ranges,
            bytes_loaded=sum(n for _, _, n in ranges),
            planned_bytes=sum(served[s.name].planned_bytes for s in selected),
            physical_reads=sum(served[s.name].physical_reads for s in selected),
            physical_bytes=sum(served[s.name].physical_bytes for s in selected),
            tier_hits=tier_hits,
            tier_misses=tier_misses,
            retries=sum(served[s.name].retries for s in selected),
            retry_delays=[
                d for s in selected for d in served[s.name].retry_delays
            ],
        )
        return ServiceResponse(data=data, trace=trace)

    def _annotate_remote(
        self, trace: RetrievalTrace, session: "_Session", before: Optional[dict]
    ) -> None:
        """Fold the remote stack's per-request stat deltas into a trace.

        Counters are cumulative and monotonic, so per-trace deltas always
        sum to the stack totals — under concurrent requests on one session
        a delta may attribute a neighbour's bytes, but nothing is double-
        counted or lost.  Remote retries absorbed below the service's own
        ladder land in ``trace.retries``: the trace reports request
        flakiness regardless of which layer healed it.
        """
        if before is None or not session.is_remote:
            return
        after = session.remote_stats() or {}

        def delta(key: str) -> int:
            return int(after.get(key, 0)) - int(before.get(key, 0))

        trace.remote = True
        trace.egress_bytes = delta("egress_bytes")
        trace.retries += delta("retries")
        trace.hedges = delta("hedges")
        trace.hedge_wasted_bytes = delta("hedge_wasted_bytes")
        trace.failovers = delta("failovers")
        trace.breaker_states = dict(after.get("breaker", {}))

    def cost(
        self,
        path: Union[str, Path],
        error_bound: Optional[float] = None,
        roi=None,
    ) -> RequestCost:
        """Plan a request's byte cost without serving it (no payload I/O).

        Only metadata is touched: shard headers are parsed on first contact
        (a bounded physical read, paid once per shard per session) and the
        planner runs over the pinned extents.  The scheduler prices every
        admission with this before deciding when — and at what fidelity —
        to actually call :meth:`get`.
        """
        session = self._session(path)
        roi_slices, selected = session.select(roi)
        target = _validated_target(session.stored_bound, error_bound)
        per_shard: Dict[str, int] = {}
        planned_bounds: List[float] = []
        for shard in selected:
            meta, _, _ = session.shard_meta(shard.name)
            keep = self._plan_keep(meta, target)
            per_shard[shard.name] = self._planned_bytes(meta, keep)
            planned_bounds.append(float(meta.loader.plan_error(keep)))
        return RequestCost(
            dataset=str(session.path),
            roi=[[s.start, s.stop] for s in roi_slices],
            error_bound=target,
            shards=[s.name for s in selected],
            predicted_bytes=sum(per_shard.values()),
            per_shard_bytes=per_shard,
            planned_bound=max(planned_bounds, default=0.0),
        )

    def get_resident(
        self,
        path: Union[str, Path],
        error_bound: Optional[float] = None,
        roi=None,
    ) -> Optional[ServiceResponse]:
        """Serve the request from resident tiers only — zero physical reads.

        The load-shedding path: under pressure the scheduler answers with
        whatever fidelity is already decoded *right now* instead of queueing
        a fetch.  Per selected shard a resident artifact at exactly the
        planned fidelity wins (the canonical bytes of a from-scratch serve),
        else the finest resident one — a slab at any plane selection, or
        the live rung's current reconstruction (exact by construction: the
        service only ever runs ``retrieve`` / ``retrieve_rebuilt``);
        ``trace.canonical`` records which case served.  Returns ``None``
        when any shard has nothing resident — degradation is
        all-or-nothing, a partially-fresh answer would splice fidelities
        within one array.

        The shard lock is only *tried*: if a writer is mid-decode the rung
        is skipped (its state is live) and immutable slabs alone are
        considered, so this path never blocks behind a cold read.  The
        trace reports ``bytes_loaded=0`` / no ranges — nothing was consumed
        — with ``achieved_bound`` whatever fidelity was actually served,
        and is not recorded in the service aggregate (the scheduler records
        the *final* answer).
        """
        session = self._session(path)
        roi_slices, selected = session.select(roi)
        target = _validated_target(session.stored_bound, error_bound)
        served: Dict[str, Tuple[np.ndarray, float, bool]] = {}
        for shard in selected:
            best = self._best_resident(session, shard.name, target)
            if best is None:
                return None
            served[shard.name] = best
        pieces = [(shard.slices, served[shard.name][0]) for shard in selected]
        data = assemble(pieces, roi_slices, session.dtype)
        trace = RetrievalTrace(
            dataset=str(session.path),
            roi=[[s.start, s.stop] for s in roi_slices],
            error_bound=target,
            achieved_bound=max(
                (served[s.name][1] for s in selected), default=0.0
            ),
            shards=[s.name for s in selected],
            ranges=[],
            bytes_loaded=0,
            planned_bytes=0,
            physical_reads=0,
            physical_bytes=0,
            canonical=all(served[s.name][2] for s in selected),
        )
        return ServiceResponse(data=data, trace=trace)

    def _best_resident(
        self, session: _Session, name: str, target: float
    ) -> Optional[Tuple[np.ndarray, float, bool]]:
        """Best resident ``(data, bound, canonical)`` for one shard.

        ``canonical`` marks the reconstruction a from-scratch serve of
        ``target`` would produce bit-for-bit (resident bound equals the
        planned bound).  A canonical candidate wins over a finer one —
        it lets the caller settle the request outright instead of
        refining a bound-satisfying-but-different answer.  Returns None
        when nothing is resident.
        """
        sid = session.sid
        candidates: List[Tuple[np.ndarray, float]] = []
        lock = session.shard_lock(name)
        if lock.acquire(blocking=False):
            try:
                rung = self.cache.get("rung", (sid, name), count=False)
                if rung is not None:
                    output = rung.retriever.current_output
                    if output is not None:
                        meta, _, _ = session.shard_meta(name)
                        bound = meta.loader.plan_error(
                            rung.retriever.current_keep
                        )
                        candidates.append((output, float(bound)))
            finally:
                lock.release()
        # Slabs are immutable once inserted — safe to read lock-free even
        # while a writer holds the shard lock for a different selection.
        for _key, entry in self.cache.scan(
            "slab", lambda k: k[0] == sid and k[1] == name
        ):
            candidates.append((entry.data, float(entry.bound)))
        if not candidates:
            return None
        # A resident artifact exists, so this shard has served before and
        # its header metadata is already parsed: planning is free here.
        meta, _, _ = session.shard_meta(name)
        planned = float(meta.loader.plan_error(self._plan_keep(meta, target)))
        for data, bound in candidates:
            if bound == planned:
                return data, bound, True
        data, bound = min(candidates, key=lambda c: c[1])
        return data, bound, False

    def stats(self) -> dict:
        """Aggregate request statistics plus the cache's live counters."""
        return {
            **self.stats_agg.to_json(),
            "cache": self.cache.to_json(),
            "sessions": len(self._sessions),
        }

    # ------------------------------------------------------------- per shard

    def _backoff_delay(self, name: str, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of shard ``name``.

        The shared scheme (:func:`repro.io.remote.jittered_backoff`):
        capped exponential — ``base · 2^(attempt-1)``, clamped to
        ``retry_backoff_cap`` — scaled into ``[0.5, 1.0]`` by a jitter
        derived from a CRC of ``name:attempt``: deterministic (reproducible
        traces, assertable tests) yet spread across shards so a burst of
        failures does not retry in lockstep.
        """
        return jittered_backoff(
            name, attempt, self.retry_backoff, self.retry_backoff_cap
        )

    def _retry_permitted(self, delay: float) -> bool:
        """False when sleeping ``delay`` would cross the request deadline."""
        deadline = getattr(self._deadlines, "value", None)
        if deadline is None:
            return True
        return time.monotonic() + delay < deadline

    def _plan_keep(self, meta: _ShardMeta, target: float) -> Dict[int, int]:
        plan = meta.loader.plan_for_error_bound(target)
        return {
            enc.level: plan.keep.get(enc.level, 0) for enc in meta.header.levels
        }

    def _planned_bytes(self, meta: _ShardMeta, keep: Dict[int, int]) -> int:
        ops = plan_stream_ops(meta.extent_store, None, keep, include_anchor=True)
        return sum(op.length for op in ops) + meta.header_bytes

    def _serve_shard(self, session: _Session, name: str, target: float) -> _ShardServe:
        meta, meta_reads, meta_bytes = session.shard_meta(name)
        keep = self._plan_keep(meta, target)
        keep_sig = tuple(sorted(keep.items()))
        planned = self._planned_bytes(meta, keep)
        slab_key = (session.sid, name, keep_sig)
        rung_key = (session.sid, name)
        with session.shard_lock(name):
            entry = self.cache.get("slab", slab_key, count=False)
            if entry is not None and (
                not self.cache_verify
                or zlib.crc32(entry.data.tobytes()) == entry.crc
            ):
                self.cache.record("slab", hit=True)
                return _ShardServe(
                    data=entry.data,
                    ranges=list(entry.trace),
                    bound=entry.bound,
                    planned_bytes=planned,
                    physical_reads=meta_reads,
                    physical_bytes=meta_bytes,
                    retries=0,
                    tier="slab",
                )
            if entry is not None:
                # Poisoned entry: its bytes no longer match the checksum
                # recorded at insert.  Never served — drop and recompute.
                self.cache.invalidate("slab", slab_key)
            self.cache.record("slab", hit=False)
            retries = 0
            delays: List[float] = []
            rung = self.cache.get("rung", rung_key, count=False)
            rung_usable = rung is not None and all(
                rung.retriever.current_keep.get(level, 0) <= k
                for level, k in keep.items()
            )
            self.cache.record("rung", hit=rung_usable)
            if rung_usable:
                try:
                    serve = self._serve_from_rung(
                        session, name, rung, target, planned, meta_reads, meta_bytes
                    )
                    self._insert_slab(slab_key, serve)
                    return serve
                except _RETRYABLE:
                    # The rung's source went bad mid-refine; its partial
                    # state is unusable — drop it and rebuild from scratch.
                    self.cache.invalidate("rung", rung_key)
                    retries += 1
                    delay = self._backoff_delay(name, retries)
                    if retries > self.retries or not self._retry_permitted(delay):
                        raise
                    delays.append(delay)
                    self._sleep(delay)
            serve = self._serve_cold(
                session,
                name,
                meta,
                target,
                planned,
                retries,
                meta_reads,
                meta_bytes,
                delays,
            )
            self._insert_slab(slab_key, serve)
            return serve

    def _serve_from_rung(
        self,
        session: _Session,
        name: str,
        rung: _Rung,
        target: float,
        planned: int,
        meta_reads: int,
        meta_bytes: int,
    ) -> _ShardServe:
        """Refine a coarser resident rung in place (Algorithm-2 I/O).

        Valid only when the resident keep is component-wise ≤ the plan's, so
        the merged selection *is* the plan's and the rebuilt reconstruction
        is bitwise what a fresh read at ``target`` produces.  The consumed
        trace is the rung's accumulated one: the same multiset of ranges a
        fresh serial read at this selection reads.
        """
        before_reads = rung.source.physical_reads
        before_bytes = rung.source.physical_bytes
        result = rung.retriever.retrieve_rebuilt(error_bound=target)
        # Re-charge the rung at its new resident size (it may have grown);
        # if the budget no longer accommodates it, it simply ages out.
        self.cache.put(
            "rung", (session.sid, name), rung, rung.retriever.resident_nbytes
        )
        return _ShardServe(
            data=result.data,
            ranges=list(rung.source.trace),
            bound=result.error_bound,
            planned_bytes=planned,
            physical_reads=meta_reads + rung.source.physical_reads - before_reads,
            physical_bytes=meta_bytes + rung.source.physical_bytes - before_bytes,
            retries=0,
            tier="rung",
        )

    def _serve_cold(
        self,
        session: _Session,
        name: str,
        meta: _ShardMeta,
        target: float,
        planned: int,
        retries: int,
        meta_reads: int,
        meta_bytes: int,
        delays: Optional[List[float]] = None,
    ) -> _ShardServe:
        """From-scratch read over a fresh traced source, with the retry ladder.

        Each attempt starts clean — fresh source, fresh retriever — because
        a failure may have left partial decode state.  The pinned header is
        handed to the store pre-parsed and *replayed* into the consumed
        trace, so the report matches a serial fresh read (which parses the
        header itself) while the session parses it only once physically.
        Failed attempts back off (capped exponential, deterministic jitter)
        instead of hot-spinning against a transient fault; each slept delay
        lands in the trace's ``retry_delays``.
        """
        delays = [] if delays is None else delays
        while True:
            source = _TracedSource(self._filtered_source(session, name))
            try:
                store = CompressedStore(
                    source, parsed=(meta.header, meta.header_bytes)
                )
                source.replay(meta.header_trace)
                retriever = ProgressiveRetriever(store, profile=self.profile)
                result = retriever.retrieve(error_bound=target)
            except _RETRYABLE:
                retries += 1
                delay = self._backoff_delay(name, retries)
                # An expired (or about-to-expire) request deadline ends the
                # ladder early: propagate the real failure rather than
                # sleeping past the time the caller stops caring.
                if retries > self.retries or not self._retry_permitted(delay):
                    raise
                delays.append(delay)
                self._sleep(delay)
                continue
            self.cache.put(
                "rung",
                (session.sid, name),
                _Rung(retriever=retriever, source=source),
                retriever.resident_nbytes,
            )
            return _ShardServe(
                data=result.data,
                ranges=list(source.trace),
                bound=result.error_bound,
                planned_bytes=planned,
                physical_reads=meta_reads + source.physical_reads,
                physical_bytes=meta_bytes + source.physical_bytes,
                retries=retries,
                tier="cold",
                retry_delays=delays,
            )

    def _filtered_source(self, session: _Session, name: str):
        source = session.raw_source(name)
        if self.source_filter is not None:
            source = self.source_filter(name, source)
        return source

    def _insert_slab(self, slab_key, serve: _ShardServe) -> None:
        data = serve.data
        entry = _SlabEntry(
            data=data,
            trace=[(int(o), int(n)) for o, n in serve.ranges],
            bound=serve.bound,
            crc=zlib.crc32(data.tobytes()),
        )
        self.cache.put("slab", slab_key, entry, data.nbytes)

    # ----------------------------------------------------------- pooled path

    def _pool_eligible(self, session: _Session, selected) -> bool:
        # Remote sessions stay in-process: pool workers re-open the
        # container by local path, which a URL-backed session lacks.
        return (
            self.workers > 1
            and session.kind == "container"
            and not session.is_remote
            and self.source_filter is None
            and len(selected) > 1
        )

    def _serve_pooled(
        self, session: _Session, selected, target: float
    ) -> Dict[str, _ShardServe]:
        """Decode every cache-missing shard through the persistent pool.

        Only shards with neither a matching slab nor a usable rung go to the
        pool; each worker opens its own reader, so the parent's pinned
        reader performs zero physical reads for them.  Pool results populate
        the slab tier (not the rung tier — the retriever state lives in the
        worker) and are accounted exactly like a serial cold read.
        """
        missing: List[Tuple[str, Tuple]] = []
        for shard in selected:
            meta, _, _ = session.shard_meta(shard.name)
            keep = self._plan_keep(meta, target)
            keep_sig = tuple(sorted(keep.items()))
            with session.shard_lock(shard.name):
                slab_key = (session.sid, shard.name, keep_sig)
                if self.cache.get("slab", slab_key, count=False) is not None:
                    continue
                rung = self.cache.get("rung", (session.sid, shard.name), count=False)
                if rung is not None and all(
                    rung.retriever.current_keep.get(level, 0) <= k
                    for level, k in keep.items()
                ):
                    continue
            missing.append((shard.name, keep_sig))
        if len(missing) <= 1:
            return {}
        kernel = self.profile.kernel if self.profile is not None else None
        payloads = [
            (str(session.path), name, float(target), kernel)
            for name, _ in missing
        ]
        served: Dict[str, _ShardServe] = {}
        keep_sigs = dict(missing)
        for name, trace, bound, data in imap_fallback(
            _cold_shard_worker, payloads, self.workers, executor=self._pool()
        ):
            serve = _ShardServe(
                data=data,
                ranges=[(int(o), int(n)) for o, n in trace],
                bound=bound,
                planned_bytes=self._planned_bytes(
                    session.shard_meta(name)[0],
                    dict(keep_sigs[name]),
                ),
                physical_reads=len(trace),
                physical_bytes=sum(n for _, n in trace),
                retries=0,
                tier="pool",
            )
            with session.shard_lock(name):
                self.cache.record("slab", hit=False)
                self._insert_slab((session.sid, name, keep_sigs[name]), serve)
            served[name] = serve
        return served

    def _pool(self) -> Optional[ProcessPoolExecutor]:
        """The persistent shared executor, lazily started; None if it can't be."""
        if self._executor is not None or self._executor_failed:
            return self._executor
        with self._lock:
            if self._executor is None and not self._executor_failed:
                try:
                    self._executor = ProcessPoolExecutor(max_workers=self.workers)
                except (OSError, ValueError, RuntimeError, NotImplementedError):
                    self._executor_failed = True
        return self._executor

    # -------------------------------------------------------------- sessions

    def _session(self, path: Union[str, Path]) -> _Session:
        if self._closed:
            raise RetrievalError("service is closed")
        if is_url(path):
            return self._remote_session(str(path))
        resolved = Path(path).resolve()
        key = str(resolved)
        fingerprint = file_fingerprint(resolved)
        with self._lock:
            session = self._sessions.get(key)
            if session is not None and session.fingerprint == fingerprint:
                return session
            if session is not None:
                # The file changed identity under us: purge every cache
                # entry keyed to the dead session before the new one opens.
                dead = session.sid
                self.cache.purge(lambda tier, k: k[0] == dead)
                session.close()
            session = _Session(self._next_sid, resolved, self.profile)
            self._next_sid += 1
            self._sessions[key] = session
            return session

    def _remote_session(self, url: str) -> _Session:
        """Session keyed by URL, fingerprinted through the live stack.

        The freshness probe is one bounded ranged GET (size + tail CRC)
        over the *existing* session's stack; a changed remote object purges
        the dead session's cache entries exactly like a rewritten local
        file.  Only a missing or stale session pays a new stack build.
        """
        with self._lock:
            session = self._sessions.get(url)
            if session is not None:
                try:
                    fresh = session.fingerprint == remote_fingerprint(
                        session.remote_source
                    )
                except _RETRYABLE:
                    # The probe itself failed: freshness is unknowable right
                    # now.  Keep the session — the request's own reads run
                    # the full resilience (and degrade) machinery anyway.
                    fresh = True
                if fresh:
                    return session
                dead = session.sid
                self.cache.purge(lambda tier, k: k[0] == dead)
                session.close()
            stack = self._open_remote_stack(url)
            session = _Session(
                self._next_sid, url, self.profile, remote_source=stack
            )
            self._next_sid += 1
            self._sessions[url] = session
            return session

    def _open_remote_stack(self, url: str):
        """Build the resilient stack for one URL on the resolved backend.

        ``auto`` resolves to the multiplexed asyncio stack for ``http(s)``
        URLs; the sync facade it returns speaks the same ``read_range`` /
        ``read_tail`` / ``stats`` / ``set_deadline`` duck type, so
        fingerprinting, tracing, and deadlines are backend-oblivious.
        Backend-specific knobs in ``remote_options`` are dropped for the
        other backend rather than erroring under ``auto``.
        """
        backend = resolve_io_backend(self.io_backend, url)
        options = dict(self.remote_options)
        if backend == "async":
            options.pop("sleep", None)
            return open_async_source(url, **options)
        for key in ("connections", "window", "loop"):
            options.pop(key, None)
        return open_remote_source(url, **options)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for session in self._sessions.values():
                session.close()
            self._sessions.clear()
            if self._executor is not None:
                self._executor.shutdown()
                self._executor = None

    def __enter__(self) -> "RetrievalService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
