"""Per-request traces and service-level aggregate statistics.

A :class:`RetrievalTrace` is the serving layer's receipt for one request.
It separates the two kinds of byte accounting the repo keeps everywhere:

* **consumed** — ``bytes_loaded`` / ``ranges``: the ranges the request's
  decoding logically used, identical to what a fresh serial
  :meth:`~repro.io.dataset.ChunkedDataset.read` of the same request
  reports.  Cache hits *replay* these numbers; they never shrink.
* **physical** — ``physical_reads`` / ``physical_bytes``: what actually
  hit the file while serving this request.  A warm slab hit reports the
  full consumed trace with ``physical_reads == 0``.

``planned_bytes`` is the stage-1 estimate (header + anchor + planned plane
blocks) computed without touching payload; ``plan_delta`` is how far the
actual consumption landed from it (0 for a from-scratch plan-shaped read).

The scheduler (:mod:`repro.service.scheduler`) annotates three more
fields: ``client`` (the tenant the request was admitted under),
``queue_wait`` (seconds between enqueue and grant), ``degraded`` (the
response was served from a coarser resident rung under load, with the
requested fidelity refined in the background) and ``budget_debited``
(predicted bytes charged against the client's token bucket).  The retry
ladder records its per-attempt backoff in ``retry_delays``.

Remote datasets add a fourth group, harvested as per-request deltas from
the resilient source stack (:mod:`repro.io.remote`): ``remote`` (the
request was served over HTTP), ``egress_bytes`` (body bytes received off
the network, over-fetch and failed attempts included), ``hedges`` /
``hedge_wasted_bytes`` (duplicate tail-latency reads fired at a second
mirror, and the loser payloads' cost), ``failovers`` (reads moved to a
replica after the preferred mirror failed) and ``breaker_states`` (each
endpoint's circuit-breaker state when the request finished).  Remote
retries absorbed *below* the service's own ladder are folded into
``retries`` — the trace answers "how flaky was this request" regardless
of which layer healed it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["RetrievalTrace", "ServiceStats"]


@dataclass
class RetrievalTrace:
    """Receipt for one service request: cost, cache behaviour, plan delta."""

    dataset: str
    roi: List[List[int]]
    error_bound: float
    achieved_bound: float
    shards: List[str]
    ranges: List[Tuple[str, int, int]]
    bytes_loaded: int
    planned_bytes: int
    physical_reads: int
    physical_bytes: int
    tier_hits: Dict[str, int] = field(default_factory=dict)
    tier_misses: Dict[str, int] = field(default_factory=dict)
    retries: int = 0
    #: Backoff slept before each retry attempt, in order (empty: no retries).
    retry_delays: List[float] = field(default_factory=list)
    #: Scheduler annotations (defaults describe a direct, unscheduled get).
    client: str = ""
    queue_wait: float = 0.0
    degraded: bool = False
    budget_debited: int = 0
    #: The served bytes are the exact reconstruction a from-scratch serve
    #: of this request produces.  Always true for ``get``; ``get_resident``
    #: clears it when any shard was answered at a finer-than-planned
    #: residency (bound-satisfying, but different bytes).
    canonical: bool = True
    #: Remote-source annotations (all zero/empty for local datasets).
    remote: bool = False
    egress_bytes: int = 0
    hedges: int = 0
    hedge_wasted_bytes: int = 0
    failovers: int = 0
    breaker_states: Dict[str, str] = field(default_factory=dict)

    @property
    def plan_delta(self) -> int:
        """Consumed minus planned bytes (plan-vs-actual)."""
        return self.bytes_loaded - self.planned_bytes

    def to_json(self) -> dict:
        return {
            "dataset": self.dataset,
            "roi": [list(r) for r in self.roi],
            "error_bound": self.error_bound,
            "achieved_bound": self.achieved_bound,
            "shards": list(self.shards),
            "ranges": [[name, offset, length] for name, offset, length in self.ranges],
            "bytes_loaded": self.bytes_loaded,
            "planned_bytes": self.planned_bytes,
            "plan_delta": self.plan_delta,
            "physical_reads": self.physical_reads,
            "physical_bytes": self.physical_bytes,
            "tier_hits": dict(self.tier_hits),
            "tier_misses": dict(self.tier_misses),
            "retries": self.retries,
            "retry_delays": list(self.retry_delays),
            "client": self.client,
            "queue_wait": self.queue_wait,
            "degraded": self.degraded,
            "budget_debited": self.budget_debited,
            "canonical": self.canonical,
            "remote": self.remote,
            "egress_bytes": self.egress_bytes,
            "hedges": self.hedges,
            "hedge_wasted_bytes": self.hedge_wasted_bytes,
            "failovers": self.failovers,
            "breaker_states": dict(self.breaker_states),
        }


class ServiceStats:
    """Thread-safe running aggregate over every trace a service produced."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.bytes_loaded = 0
        self.planned_bytes = 0
        self.physical_reads = 0
        self.physical_bytes = 0
        self.retries = 0
        self.degraded = 0
        self.remote_requests = 0
        self.egress_bytes = 0
        self.hedges = 0
        self.hedge_wasted_bytes = 0
        self.failovers = 0
        self.tier_hits: Dict[str, int] = {}
        self.tier_misses: Dict[str, int] = {}

    def record(self, trace: RetrievalTrace) -> None:
        with self._lock:
            self.requests += 1
            self.bytes_loaded += trace.bytes_loaded
            self.planned_bytes += trace.planned_bytes
            self.physical_reads += trace.physical_reads
            self.physical_bytes += trace.physical_bytes
            self.retries += trace.retries
            self.degraded += int(trace.degraded)
            self.remote_requests += int(trace.remote)
            self.egress_bytes += trace.egress_bytes
            self.hedges += trace.hedges
            self.hedge_wasted_bytes += trace.hedge_wasted_bytes
            self.failovers += trace.failovers
            for tier, count in trace.tier_hits.items():
                self.tier_hits[tier] = self.tier_hits.get(tier, 0) + count
            for tier, count in trace.tier_misses.items():
                self.tier_misses[tier] = self.tier_misses.get(tier, 0) + count

    def to_json(self) -> dict:
        with self._lock:
            return {
                "requests": self.requests,
                "bytes_loaded": self.bytes_loaded,
                "planned_bytes": self.planned_bytes,
                "physical_reads": self.physical_reads,
                "physical_bytes": self.physical_bytes,
                "retries": self.retries,
                "degraded": self.degraded,
                "remote_requests": self.remote_requests,
                "egress_bytes": self.egress_bytes,
                "hedges": self.hedges,
                "hedge_wasted_bytes": self.hedge_wasted_bytes,
                "failovers": self.failovers,
                "tier_hits": dict(self.tier_hits),
                "tier_misses": dict(self.tier_misses),
            }
