"""Shared fixtures for the test suite.

The fields are intentionally small (a few thousand points) so the whole suite
runs in seconds; the benchmarks under ``benchmarks/`` use the realistic
(scaled-down Table 3) shapes instead.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Session-scoped shared RNG — **footgun, do not consume in new tests**.

    The generator is a single mutable stream shared by every session-scoped
    fixture below: any new consumer shifts the draws of every fixture (and
    test) that samples after it, silently changing data other test modules
    pinned expectations against.  It stays only because existing fixtures
    (``rough_3d``) already encode its draw order.  New tests should use the
    function-scoped :func:`local_rng` instead, which is independent per
    test.
    """
    return np.random.default_rng(20250615)


@pytest.fixture
def local_rng(request) -> np.random.Generator:
    """A per-test RNG seeded from the test's own node id.

    Every test gets an independent, reproducible stream: draws cannot shift
    when tests are added, removed, or reordered, and two tests never share
    generator state (unlike the session-scoped ``rng``).
    """
    return np.random.default_rng(zlib.crc32(request.node.nodeid.encode()))


@pytest.fixture(scope="session")
def smooth_3d() -> np.ndarray:
    """A smooth 3-D field (sums of separable sinusoids plus a ramp)."""
    z, y, x = np.meshgrid(
        np.linspace(0, 1, 24), np.linspace(0, 1, 20), np.linspace(0, 1, 18), indexing="ij"
    )
    return (
        np.sin(4 * np.pi * x) * np.cos(3 * np.pi * y)
        + 0.5 * np.sin(2 * np.pi * z)
        + 2.0 * x
        + 0.3 * y * z
    ).astype(np.float64)


@pytest.fixture(scope="session")
def rough_3d(rng) -> np.ndarray:
    """A rougher 3-D field: smooth base plus correlated noise."""
    base = np.cumsum(rng.normal(size=(20, 16, 14)), axis=0)
    base = base + np.cumsum(rng.normal(size=(20, 16, 14)), axis=1) * 0.5
    return base.astype(np.float64)


@pytest.fixture(scope="session")
def smooth_2d() -> np.ndarray:
    y, x = np.meshgrid(np.linspace(0, 1, 40), np.linspace(0, 1, 37), indexing="ij")
    return (np.sin(5 * x) + np.cos(4 * y) + x * y).astype(np.float64)


@pytest.fixture(scope="session")
def signal_1d() -> np.ndarray:
    t = np.linspace(0, 8 * np.pi, 301)
    return (np.sin(t) + 0.1 * np.sin(13 * t) + 0.01 * t**2).astype(np.float64)
