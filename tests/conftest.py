"""Shared fixtures for the test suite.

The fields are intentionally small (a few thousand points) so the whole suite
runs in seconds; the benchmarks under ``benchmarks/`` use the realistic
(scaled-down Table 3) shapes instead.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(20250615)


@pytest.fixture(scope="session")
def smooth_3d() -> np.ndarray:
    """A smooth 3-D field (sums of separable sinusoids plus a ramp)."""
    z, y, x = np.meshgrid(
        np.linspace(0, 1, 24), np.linspace(0, 1, 20), np.linspace(0, 1, 18), indexing="ij"
    )
    return (
        np.sin(4 * np.pi * x) * np.cos(3 * np.pi * y)
        + 0.5 * np.sin(2 * np.pi * z)
        + 2.0 * x
        + 0.3 * y * z
    ).astype(np.float64)


@pytest.fixture(scope="session")
def rough_3d(rng) -> np.ndarray:
    """A rougher 3-D field: smooth base plus correlated noise."""
    base = np.cumsum(rng.normal(size=(20, 16, 14)), axis=0)
    base = base + np.cumsum(rng.normal(size=(20, 16, 14)), axis=1) * 0.5
    return base.astype(np.float64)


@pytest.fixture(scope="session")
def smooth_2d() -> np.ndarray:
    y, x = np.meshgrid(np.linspace(0, 1, 40), np.linspace(0, 1, 37), indexing="ij")
    return (np.sin(5 * x) + np.cos(4 * y) + x * y).astype(np.float64)


@pytest.fixture(scope="session")
def signal_1d() -> np.ndarray:
    t = np.linspace(0, 8 * np.pi, 301)
    return (np.sin(t) + 0.1 * np.sin(13 * t) + 0.01 * t**2).astype(np.float64)
