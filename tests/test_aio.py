"""Async multiplexed range I/O: event-loop transport, prefetch bridge, CLI.

Covers the asyncio backend end to end:

* unit pieces — ``coalesce_ops``, backend resolution, the pooled
  transport's window bound and request accounting;
* the byte-identity matrix {v1, v2} × {stream, container} ×
  {sync, threads, async} over loopback HTTP, clean and under client
  faults, server latency/stall faults, and mirror failover — every
  combination must match the local serial oracle bitwise;
* the :class:`~repro.io.aio.AsyncPrefetcher` bridge — adjacent primes
  coalesce into one wire request, a past deadline refunds the prefetch
  charge, and closing a prefetcher mid-request never kills the shared
  loop thread;
* the CLI ``--io`` knob — identical outputs across backends and an
  ``inflight_max > 1`` receipt for the async path;
* rangeserver connection hygiene — a stalled connection cannot wedge
  other in-flight connections, and ``max_connections`` bounds (and
  counts) concurrently handled sockets.

Randomness: this module is deterministic (fixed seeds); never touch the
shared session ``rng`` fixture.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro import ChunkedDataset, IPComp, ProgressiveRetriever
from repro.cli import main
from repro.errors import ConfigurationError, RemoteSourceError, StreamFormatError
from repro.io import BlockContainerWriter
from repro.io.aio import (
    AsyncPrefetcher,
    EventLoopThread,
    coalesce_ops,
    open_async_source,
    resolve_io_backend,
)
from repro.io.faults import FaultInjector, FaultPlan
from repro.io.rangeserver import RangeServer
from repro.retrieval.engine import open_stream_source
from repro.retrieval.prefetch import PrefetchSource

DATA = Path(__file__).parent / "data"

#: Fault-leg stacks never sleep for real and never run out of ladder.
_PATIENT = dict(retries=8, retry_budget=10_000, backoff=0.0)


def _field(shape, seed=0) -> np.ndarray:
    rng = np.random.default_rng(424242 + seed)
    base = rng.normal(size=shape)
    for axis in range(len(shape)):
        base = np.cumsum(base, axis=axis)
    return (base + 0.1 * rng.normal(size=shape)).astype(np.float64)


@pytest.fixture(scope="module")
def served_dir(tmp_path_factory) -> Path:
    """One directory holding the {v1, v2} × {stream, container} fixtures."""
    root = tmp_path_factory.mktemp("aio-served")
    v1_blob = (DATA / "v1_stream.ipc").read_bytes()
    (root / "v1.ipc").write_bytes(v1_blob)
    v2_blob = IPComp(error_bound=1e-5, relative=True).compress(_field((20, 18), 3))
    (root / "v2.ipc").write_bytes(v2_blob)
    ChunkedDataset.write(
        root / "v2.rprc", _field((24, 14, 10), 4), error_bound=1e-5,
        relative=True, n_blocks=4, workers=0,
    )
    header_shape = np.load(DATA / "v1_expected.npy").shape
    n0 = header_shape[0]
    manifest = {
        "format": "repro-chunked-dataset",
        "version": 1,
        "shape": [2 * n0, header_shape[1]],
        "dtype": "float64",
        "error_bound": 3.292730916654546e-05,
        "method": "cubic",
        "prefix_bits": 2,
        "backend": "zlib",
        "shards": [
            {"name": "shard-0000", "slices": [[0, n0], [0, header_shape[1]]]},
            {"name": "shard-0001", "slices": [[n0, 2 * n0], [0, header_shape[1]]]},
        ],
    }
    with BlockContainerWriter(root / "v1.rprc") as writer:
        writer.add_block("shard-0000", v1_blob)
        writer.add_block("shard-0001", v1_blob)
        writer.add_block("manifest", json.dumps(manifest).encode())
    return root


@pytest.fixture(scope="module")
def server(served_dir) -> RangeServer:
    with RangeServer(served_dir) as srv:
        yield srv


def _read_stream(path_or_url, *, io_backend=None, prefetch=4, source=None):
    src = open_stream_source(
        path_or_url, prefetch=prefetch, source=source, io_backend=io_backend
    )
    try:
        retriever = ProgressiveRetriever(src)
        return retriever.retrieve(error_bound=retriever.header.error_bound)
    finally:
        close = getattr(src, "close", None)
        if close is not None:
            close()


def _read_container(path_or_url, **knobs):
    with ChunkedDataset(path_or_url, **knobs) as dataset:
        return dataset.read()


# ----------------------------------------------------------------- unit bits


def test_coalesce_ops_merges_and_splits():
    # Adjacent and overlapping ops merge; gaps and the batch cap split.
    batches = coalesce_ops([(100, 50), (0, 100), (150, 10)])
    assert [(b[0], b[1]) for b in batches] == [(0, 160)]
    assert [len(b[2]) for b in batches] == [3]
    # A gap larger than `gap` starts a new batch …
    batches = coalesce_ops([(0, 10), (20, 10)])
    assert [(b[0], b[1]) for b in batches] == [(0, 10), (20, 10)]
    # … unless gap= bridges it (the bridged bytes ride along).
    batches = coalesce_ops([(0, 10), (20, 10)], gap=16)
    assert [(b[0], b[1]) for b in batches] == [(0, 30)]
    # max_batch bounds a single merged extent.
    batches = coalesce_ops([(0, 100), (100, 100)], max_batch=150)
    assert [(b[0], b[1]) for b in batches] == [(0, 100), (100, 100)]


def test_resolve_io_backend():
    assert resolve_io_backend(None, "http://h/x") == "async"
    assert resolve_io_backend("auto", "https://h/x") == "async"
    assert resolve_io_backend("auto", "/tmp/x.rprc") == "threads"
    assert resolve_io_backend("threads", "http://h/x") == "threads"
    assert resolve_io_backend("sync", "http://h/x") == "sync"
    with pytest.raises(ConfigurationError, match="io backend"):
        resolve_io_backend("uring", "http://h/x")


def test_async_source_basic_reads(served_dir, server):
    blob = (served_dir / "v2.rprc").read_bytes()
    with open_async_source(server.url_for("v2.rprc")) as source:
        assert source.size == len(blob)
        assert source.read_range(10, 33) == blob[10:43]
        assert source.read_range(5, 0) == b""
        total, tail = source.read_tail(64)
        assert total == len(blob) and tail == blob[-64:]
        stats = source.stats()
        assert stats["io_backend"] == "async"
        assert stats["retries"] == 0
        assert stats["egress_bytes"] >= 33 + 64
        assert stats["connections_opened"] >= 1
        # Out-of-bounds reads raise (after the ladder, like the sync stack:
        # StreamFormatError is in RETRYABLE_ERRORS).
        with pytest.raises(StreamFormatError, match="past remote object end"):
            source.read_range(len(blob) - 2, 5)


def test_async_window_bounds_inflight(served_dir):
    # Under a uniform per-read latency every submitted range wants the
    # wire at once: the semaphore must cap concurrency at window=2 and
    # the latency must actually force it to the cap.
    plan = FaultPlan.always("latency", seconds=0.05)
    blob = (served_dir / "v2.rprc").read_bytes()
    with RangeServer(served_dir, plan=plan) as srv:
        source = open_async_source(
            srv.url_for("v2.rprc"), connections=2, window=2
        )
        try:
            loop = source.loop_thread
            import asyncio

            async def burst():
                return await asyncio.gather(
                    *(source.aread_range(i * 100, 100) for i in range(6))
                )

            chunks = loop.call(burst())
            assert chunks == [blob[i * 100:(i + 1) * 100] for i in range(6)]
            assert source.stats()["inflight_max"] == 2
        finally:
            source.close()


# ------------------------------------------------------- byte-identity matrix


@pytest.mark.parametrize("io_backend", ["sync", "threads", "async"])
@pytest.mark.parametrize("version", ["v1", "v2"])
def test_identity_matrix_clean(served_dir, server, version, io_backend):
    prefetch = 0 if io_backend == "sync" else 4
    stream_oracle = _read_stream(served_dir / f"{version}.ipc", prefetch=0)
    stream = _read_stream(
        server.url_for(f"{version}.ipc"),
        io_backend=io_backend, prefetch=prefetch,
    )
    assert stream.data.tobytes() == stream_oracle.data.tobytes()
    assert stream.bytes_loaded == stream_oracle.bytes_loaded

    container_oracle = _read_container(served_dir / f"{version}.rprc")
    container = _read_container(
        server.url_for(f"{version}.rprc"),
        io_backend=io_backend, prefetch=prefetch,
    )
    assert container.data.tobytes() == container_oracle.data.tobytes()
    assert container.bytes_loaded == container_oracle.bytes_loaded


@pytest.mark.parametrize("version", ["v1", "v2"])
def test_identity_async_under_client_faults(served_dir, server, version):
    # Every client-side fault kind, on a deterministic schedule, below CRC
    # verification: the retry ladder heals them all and the answer stays
    # bitwise-identical (short reads surface as stale-connection retries,
    # corruption as integrity retries).
    oracle = _read_container(served_dir / f"{version}.rprc")
    plan = (
        FaultPlan.at({2, 9}, kind="raise")
        + FaultPlan.at({4}, kind="corrupt")
        + FaultPlan.at({6}, kind="short")
        + FaultPlan.at({8}, kind="latency", seconds=0.01)
    )
    injector = FaultInjector(plan)
    stack = open_async_source(
        server.url_for(f"{version}.rprc"), tamper=injector.tamper, **_PATIENT
    )
    result = _read_container(
        server.url_for(f"{version}.rprc"),
        source=stack, io_backend="async", prefetch=4,
    )
    assert result.data.tobytes() == oracle.data.tobytes()
    assert result.bytes_loaded == oracle.bytes_loaded
    assert injector.stats()["faults_injected"] >= 4


@pytest.mark.parametrize("version", ["v1", "v2"])
def test_identity_async_under_server_faults(served_dir, version):
    # Server-side latency plus stall→500 replies: the stall costs one
    # connection (the server closes it after the error), other in-flight
    # ranges proceed, and the ladder re-reads the stalled range.
    oracle = _read_container(served_dir / f"{version}.rprc")
    # First-match-wins: the stall rule must precede the catch-all latency.
    plan = FaultPlan.at({3, 7}, kind="stall", seconds=0.02) + FaultPlan.always(
        "latency", seconds=0.005
    )
    with RangeServer(served_dir, plan=plan) as srv:
        stack = open_async_source(srv.url_for(f"{version}.rprc"), **_PATIENT)
        result = _read_container(
            srv.url_for(f"{version}.rprc"),
            source=stack, io_backend="async", prefetch=4,
        )
        stats = stack.stats()
        assert srv.faults_served >= 2
    assert result.data.tobytes() == oracle.data.tobytes()
    assert result.bytes_loaded == oracle.bytes_loaded
    assert stats["retries"] >= 1


def test_identity_async_mirror_failover(served_dir, server):
    # Kill the primary mid-session: in-flight pool connections go stale,
    # reconnects are refused, and reads fail over to the replica — the
    # stream of answers never changes.
    oracle = _read_container(served_dir / "v2.rprc")
    with RangeServer(served_dir) as primary:
        stack = open_async_source(
            primary.url_for("v2.rprc"),
            mirrors=[server.url_for("v2.rprc")],
            retries=1, backoff=0.0, breaker_threshold=1000,
        )
        first = stack.read_range(0, 64)
        primary.close()
        result = _read_container(
            primary.url_for("v2.rprc"),
            source=stack, io_backend="async", prefetch=4,
        )
        stats = stack.stats()
    blob = (served_dir / "v2.rprc").read_bytes()
    assert first == blob[:64]
    assert result.data.tobytes() == oracle.data.tobytes()
    assert result.bytes_loaded == oracle.bytes_loaded
    assert stats["failovers"] >= 1


def test_async_hedged_read_wins_race(served_dir):
    # A slow primary (uniform latency) with an instant hedge threshold: the
    # clean replica's hedge should win at least one race, and winners are
    # byte-identical to the slow path by construction.
    blob = (served_dir / "v2.rprc").read_bytes()
    slow_plan = FaultPlan.always("latency", seconds=0.08)
    with RangeServer(served_dir, plan=slow_plan) as slow, RangeServer(
        served_dir
    ) as fast:
        stack = open_async_source(
            slow.url_for("v2.rprc"),
            mirrors=[fast.url_for("v2.rprc")],
            hedge_delay=0.005, backoff=0.0,
        )
        try:
            for i in range(4):
                assert stack.read_range(i * 256, 128) == blob[i * 256:i * 256 + 128]
            stats = stack.stats()
            assert stats["hedges"] >= 1
            assert stats["hedge_wins"] >= 1
        finally:
            stack.close()


# ------------------------------------------------------------ prefetch bridge


def test_adjacent_primes_coalesce_to_one_request(served_dir, server):
    blob = (served_dir / "v2.rprc").read_bytes()
    stack = open_async_source(server.url_for("v2.rprc"))
    prefetcher = AsyncPrefetcher(4, loop=stack.loop_thread)
    source = PrefetchSource(stack, prefetcher)
    try:
        before = stack.stats()["requests"]
        # Hold the loop thread busy so both primes land in one flush.
        stack.loop_thread.call_soon(time.sleep, 0.2)
        source.prime([(0, 512), (512, 512)])
        assert source.read_range(0, 512) == blob[:512]
        assert source.read_range(512, 512) == blob[512:1024]
        assert stack.stats()["requests"] == before + 1  # one coalesced GET
        assert prefetcher.batches >= 1
        assert prefetcher.batched_ops >= 2
        assert source.bytes_fetched == 1024
    finally:
        prefetcher.close()
        source.close()


def test_deadline_cancel_refunds_prefetch_charge(served_dir, server):
    stack = open_async_source(server.url_for("v2.rprc"))
    prefetcher = AsyncPrefetcher(4, loop=stack.loop_thread)
    source = PrefetchSource(stack, prefetcher)
    try:
        stack.set_deadline(time.monotonic() - 1.0)  # already expired
        source.prime([(0, 256)])
        # The primed read fails on the dead deadline; the charge is
        # refunded and the degrade-to-direct read fails the same way.
        with pytest.raises(RemoteSourceError, match="deadline"):
            source.read_range(0, 256)
        assert source.bytes_fetched == 0
        # Lifting the deadline heals the source completely.
        stack.set_deadline(None)
        blob = (served_dir / "v2.rprc").read_bytes()
        assert source.read_range(0, 256) == blob[:256]
        assert source.bytes_fetched == 256
    finally:
        prefetcher.close()
        source.close()


def test_prefetcher_close_mid_request_spares_loop(served_dir):
    plan = FaultPlan.always("latency", seconds=0.1)
    with RangeServer(served_dir, plan=plan) as srv:
        stack = open_async_source(srv.url_for("v2.rprc"))
        loop = stack.loop_thread
        prefetcher = AsyncPrefetcher(4, loop=loop)
        source = PrefetchSource(stack, prefetcher)
        source.prime([(0, 128)])
        prefetcher.close()  # while the 100 ms read is still on the wire
        assert prefetcher.closed
        assert loop.alive  # the shared loop must survive the close
        with pytest.raises(RuntimeError, match="after shutdown"):
            prefetcher.submit(stack.read_range, 0, 16)
        # The stack (and a fresh prefetcher on the same loop) still work.
        blob = (served_dir / "v2.rprc").read_bytes()
        assert source.read_range(0, 128) == blob[:128]
        fresh = AsyncPrefetcher(4, loop=loop)
        replacement = PrefetchSource(stack, fresh)
        replacement.prime([(256, 128)])
        assert replacement.read_range(256, 128) == blob[256:384]
        fresh.close()
        source.close()


def test_async_prefetcher_falls_back_for_sync_sources(tmp_path):
    # A source without the async duck type runs through the loop's default
    # executor — same Future contract, no event-loop requirement on fn.
    path = tmp_path / "plain.bin"
    path.write_bytes(bytes(range(256)) * 4)
    from repro.io.container import FileSource

    prefetcher = AsyncPrefetcher(2)
    source = FileSource(path)
    try:
        future = prefetcher.submit(source.read_range, 3, 5)
        assert future.result(timeout=5.0) == path.read_bytes()[3:8]
        assert prefetcher.fallback_ops == 1
    finally:
        prefetcher.close()
        source.close()


def test_event_loop_thread_close_and_shared_revival():
    loop = EventLoopThread()
    import asyncio

    assert loop.call(asyncio.sleep(0, result="ok")) == "ok"
    loop.close()
    assert not loop.alive
    with pytest.raises(RuntimeError, match="not running"):
        loop.run(asyncio.sleep(0))
    shared = EventLoopThread.shared()
    assert shared.alive
    assert EventLoopThread.shared() is shared


# --------------------------------------------------------------- CLI backend


def test_cli_retrieve_io_backends_identical(served_dir, server, tmp_path):
    outputs = {}
    for backend in ("sync", "threads", "async"):
        out = tmp_path / f"{backend}.raw"
        trace = tmp_path / f"{backend}.json"
        code = main([
            "retrieve", server.url_for("v2.rprc"), "-o", str(out),
            "--error-bound", "1e-3", "--io", backend,
            "--trace-json", str(trace),
        ])
        assert code == 0
        outputs[backend] = out.read_bytes()
        receipt = json.loads(trace.read_text())
        assert receipt["io_backend"] == backend
        if backend == "async":
            assert receipt["remote"]["inflight_max"] > 1
            assert receipt["remote"]["retries"] == 0
    assert outputs["sync"] == outputs["threads"] == outputs["async"]


def test_cli_io_async_rejected_for_local_files(served_dir, tmp_path, capsys):
    code = main([
        "retrieve", str(served_dir / "v2.rprc"),
        "-o", str(tmp_path / "x.raw"), "--error-bound", "1e-3",
        "--io", "async",
    ])
    assert code != 0
    assert "--io async requires an http(s)" in capsys.readouterr().err


# ------------------------------------------------------- rangeserver hygiene


def test_rangeserver_stall_does_not_wedge_other_connections(served_dir):
    # Read #1 stalls for 0.4 s on connection A; connection B's read must
    # complete while A is still stuck (thread-per-connection isolation).
    plan = FaultPlan.at({1}, kind="stall", seconds=0.4)
    blob = (served_dir / "v2.rprc").read_bytes()
    with RangeServer(served_dir, plan=plan) as srv:
        url = srv.url_for("v2.rprc")
        stalled_done = threading.Event()

        def stalled():
            with open_async_source(url, retries=0) as src:
                try:
                    src.read_range(0, 64)  # draws the stall → 500
                except RemoteSourceError:
                    pass
            stalled_done.set()

        worker = threading.Thread(target=stalled, daemon=True)
        worker.start()
        time.sleep(0.05)  # let the stalled read hit the server first
        start = time.perf_counter()
        with open_async_source(url, retries=0) as src:
            assert src.read_range(64, 64) == blob[64:128]
        elapsed = time.perf_counter() - start
        assert elapsed < 0.35, "read waited out another connection's stall"
        assert stalled_done.wait(timeout=5.0)


def test_rangeserver_max_connections_and_counters(served_dir):
    plan = FaultPlan.always("latency", seconds=0.05)
    with RangeServer(
        served_dir, plan=plan, max_connections=2, backlog=8
    ) as srv:
        url = srv.url_for("v2.rprc")
        with open_async_source(url, connections=4, window=4) as src:
            import asyncio

            async def burst():
                return await asyncio.gather(
                    *(src.aread_range(i * 64, 64) for i in range(8))
                )

            src.loop_thread.call(burst())
        # The semaphore held concurrently *handled* sockets at two even
        # though the client opened four connections.
        assert srv.peak_connections <= 2
        assert srv.range_requests >= 8
    assert srv.open_connections == 0


def test_rangeserver_reaps_idle_connections(served_dir):
    with RangeServer(served_dir, handler_timeout=0.2) as srv:
        with socket.create_connection((srv.host, srv.port), timeout=5.0) as sock:
            # Say nothing: the handler must give up on the idle socket
            # after handler_timeout instead of pinning its thread forever.
            sock.settimeout(5.0)
            assert sock.recv(1) == b""  # server closed its end
