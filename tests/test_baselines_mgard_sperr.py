"""Tests of the MGARD / PMGARD and SPERR / SPERR-R baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import compression_ratio, max_error
from repro.baselines import (
    IPCompAdapter,
    MGARDCompressor,
    PMGARDCompressor,
    SPERRCompressor,
    SPERRResidualCompressor,
)
from repro.baselines.sperr import wavelet_forward, wavelet_inverse


# ----------------------------------------------------------------- MGARD(-P)


def test_mgard_roundtrip_respects_bound(smooth_3d):
    comp = MGARDCompressor(error_bound=1e-5, relative=True)
    restored = comp.decompress(comp.compress(smooth_3d))
    assert max_error(smooth_3d, restored) <= comp.absolute_bound(smooth_3d) * (1 + 1e-9)


def test_pmgard_roundtrip_respects_bound(smooth_3d):
    comp = PMGARDCompressor(error_bound=1e-5, relative=True)
    restored = comp.decompress(comp.compress(smooth_3d))
    assert max_error(smooth_3d, restored) <= comp.absolute_bound(smooth_3d) * (1 + 1e-9)


def test_pmgard_progressive_error_bound_requests(smooth_3d):
    comp = PMGARDCompressor(error_bound=1e-6, relative=True)
    blob = comp.compress(smooth_3d)
    eb = comp.absolute_bound(smooth_3d)
    for multiplier in (1, 8, 64, 512):
        outcome = comp.retrieve(blob, error_bound=eb * multiplier)
        assert outcome.passes == 1
        assert max_error(smooth_3d, outcome.data) <= eb * multiplier * (1 + 1e-9)


def test_pmgard_coarser_requests_load_less(smooth_3d):
    comp = PMGARDCompressor(error_bound=1e-6, relative=True)
    blob = comp.compress(smooth_3d)
    eb = comp.absolute_bound(smooth_3d)
    coarse = comp.retrieve(blob, error_bound=eb * 4096)
    fine = comp.retrieve(blob, error_bound=eb)
    assert coarse.bytes_loaded < fine.bytes_loaded


def test_pmgard_bitrate_requests(smooth_3d):
    comp = PMGARDCompressor(error_bound=1e-6, relative=True)
    blob = comp.compress(smooth_3d)
    outcome = comp.retrieve(blob, bitrate=3.0)
    assert outcome.bytes_loaded * 8 / smooth_3d.size <= 3.0 * (1 + 1e-9)


def test_pmgard_ratio_trails_ipcomp():
    """§4.2 / §6.2.1: the transform model needs finer quantization → lower CR.

    Checked on the turbulence-like Density stand-in (on purely analytic,
    ultra-smooth fields the hierarchical basis can occasionally win; the
    paper's datasets are of the former kind).
    """
    from repro.datasets import load_dataset

    field = load_dataset("density", shape=(24, 28, 28))
    ip = IPCompAdapter(error_bound=1e-5, relative=True)
    pm = PMGARDCompressor(error_bound=1e-5, relative=True)
    assert compression_ratio(field, ip.compress(field)) > compression_ratio(
        field, pm.compress(field)
    )


# --------------------------------------------------------------------- SPERR


def test_wavelet_transform_roundtrip(smooth_3d):
    approx, plan = wavelet_forward(smooth_3d, levels=3)
    rebuilt = wavelet_inverse(approx, plan)
    assert np.allclose(rebuilt, smooth_3d, atol=1e-9)


def test_wavelet_roundtrip_odd_sizes(rng):
    data = rng.normal(size=(13, 11, 9))
    approx, plan = wavelet_forward(data, levels=2)
    assert np.allclose(wavelet_inverse(approx, plan), data, atol=1e-9)


def test_wavelet_concentrates_energy(smooth_3d):
    approx, plan = wavelet_forward(smooth_3d, levels=2)
    detail_energy = sum(
        float((d**2).sum()) for rec in plan for d in rec["details"].values()
    )
    total_energy = float((smooth_3d**2).sum())
    assert detail_energy < 0.5 * total_energy


def test_sperr_roundtrip_respects_bound(smooth_3d):
    comp = SPERRCompressor(error_bound=1e-5, relative=True)
    restored = comp.decompress(comp.compress(smooth_3d))
    assert max_error(smooth_3d, restored) <= comp.absolute_bound(smooth_3d) * (1 + 1e-9)


def test_sperr_roundtrip_rough_field(rough_3d):
    comp = SPERRCompressor(error_bound=1e-3, relative=True)
    restored = comp.decompress(comp.compress(rough_3d))
    assert max_error(rough_3d, restored) <= comp.absolute_bound(rough_3d) * (1 + 1e-9)


def test_sperr_r_progressive(smooth_3d):
    comp = SPERRResidualCompressor(error_bound=1e-6, relative=True, rungs=3)
    blob = comp.compress(smooth_3d)
    eb = comp.absolute_bound(smooth_3d)
    outcome = comp.retrieve(blob, error_bound=eb * 16)
    assert max_error(smooth_3d, outcome.data) <= eb * 16 * (1 + 1e-9)
    assert outcome.passes >= 1
