"""Cross-cutting tests over the whole baseline registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import compression_ratio, max_error
from repro.baselines import COMPRESSORS, compressor_names, make_compressor
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def field():
    rng = np.random.default_rng(77)
    base = np.cumsum(np.cumsum(rng.normal(size=(24, 22, 20)), axis=0), axis=1)
    return base + 0.5 * np.sin(np.linspace(0, 20, base.size)).reshape(base.shape)


def test_registry_contains_all_paper_baselines():
    names = set(compressor_names())
    assert {"ipcomp", "sz3", "sz3-m", "sz3-r", "zfp", "zfp-r", "pmgard", "sperr-r"} <= names


def test_unknown_name_rejected():
    with pytest.raises(ConfigurationError):
        make_compressor("lz4-but-lossy")


@pytest.mark.parametrize("name", sorted(COMPRESSORS))
def test_every_compressor_roundtrips_within_bound(field, name):
    comp = make_compressor(name, error_bound=1e-4, relative=True)
    blob = comp.compress(field)
    restored = comp.decompress(blob)
    assert restored.shape == field.shape
    assert max_error(field, restored) <= comp.absolute_bound(field) * (1 + 1e-9)


@pytest.mark.parametrize("name", sorted(COMPRESSORS))
def test_every_compressor_actually_compresses_smooth_data(smooth_3d, name):
    comp = make_compressor(name, error_bound=1e-4, relative=True)
    assert compression_ratio(smooth_3d, comp.compress(smooth_3d)) > 1.0


@pytest.mark.parametrize(
    "name", [n for n, cls in sorted(COMPRESSORS.items()) if cls.progressive]
)
def test_every_progressive_compressor_honours_retrieval_bounds(field, name):
    comp = make_compressor(name, error_bound=1e-5, relative=True)
    blob = comp.compress(field)
    eb = comp.absolute_bound(field)
    target = eb * 64
    outcome = comp.retrieve(blob, error_bound=target)
    assert max_error(field, outcome.data) <= target * (1 + 1e-9)
    assert 0 < outcome.bytes_loaded <= len(blob)


def test_ipcomp_has_best_or_near_best_ratio(field):
    """Headline Figure 5 property on a smooth field: IPComp leads the
    progressive compressors (small tolerance for the SZ3 tie)."""
    ratios = {}
    for name in ("ipcomp", "sz3-m", "sz3-r", "zfp-r", "pmgard"):
        comp = make_compressor(name, error_bound=1e-5, relative=True)
        ratios[name] = compression_ratio(field, comp.compress(field))
    best_other = max(v for k, v in ratios.items() if k != "ipcomp")
    assert ratios["ipcomp"] >= best_other * 0.9
