"""Tests of the generic residual ladder and the SZ3-R specialisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import compression_ratio, max_error
from repro.baselines import SZ3Compressor, SZ3ResidualCompressor
from repro.baselines.residual import ResidualProgressiveCompressor, default_bound_ladder
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def field():
    rng = np.random.default_rng(42)
    base = np.cumsum(np.cumsum(rng.normal(size=(26, 24, 20)), axis=0), axis=1)
    return base + 3.0


@pytest.fixture(scope="module")
def ladder_blob(field):
    comp = SZ3ResidualCompressor(error_bound=1e-5, relative=True, rungs=4, factor=4.0)
    return comp, comp.compress(field)


def test_default_bound_ladder_schedule():
    ladder = default_bound_ladder(1e-6, rungs=5, factor=4.0)
    assert ladder[-1] == pytest.approx(1e-6)
    assert ladder[0] == pytest.approx(256e-6)
    assert all(a / b == pytest.approx(4.0) for a, b in zip(ladder, ladder[1:]))
    with pytest.raises(ConfigurationError):
        default_bound_ladder(1e-6, rungs=0)
    with pytest.raises(ConfigurationError):
        default_bound_ladder(1e-6, factor=1.0)


def test_full_decompression_reaches_target_bound(field, ladder_blob):
    comp, blob = ladder_blob
    restored = comp.decompress(blob)
    assert max_error(field, restored) <= comp.absolute_bound(field) * (1 + 1e-9)


def test_each_rung_bound_is_honoured(field, ladder_blob):
    comp, blob = ladder_blob
    for rung_bound in comp.bound_ladder(field):
        outcome = comp.retrieve(blob, error_bound=rung_bound)
        assert max_error(field, outcome.data) <= rung_bound * (1 + 1e-9)


def test_finer_requests_need_more_passes(field, ladder_blob):
    """The operational-overhead drawback of residual ladders (Fig. 8/9)."""
    comp, blob = ladder_blob
    bounds = comp.bound_ladder(field)
    coarse = comp.retrieve(blob, error_bound=bounds[0])
    fine = comp.retrieve(blob, error_bound=bounds[-1])
    assert coarse.passes == 1
    assert fine.passes == len(bounds)
    assert fine.bytes_loaded > coarse.bytes_loaded


def test_retrieval_is_staircase_between_rungs(field, ladder_blob):
    """Requests between two rungs fall back to the tighter rung (staircase)."""
    comp, blob = ladder_blob
    bounds = comp.bound_ladder(field)
    between = np.sqrt(bounds[0] * bounds[1])  # strictly between rung 0 and 1
    outcome = comp.retrieve(blob, error_bound=between)
    assert outcome.passes == 2
    assert outcome.achieved_bound == pytest.approx(bounds[1])


def test_bitrate_mode_respects_budget(field, ladder_blob):
    comp, blob = ladder_blob
    sizes = comp.rung_sizes(blob)
    budget_bits = (sizes[0] + sizes[1]) * 8 / field.size + 1e-9
    outcome = comp.retrieve(blob, bitrate=budget_bits)
    assert outcome.passes == 2
    assert outcome.bytes_loaded <= sizes[0] + sizes[1]


def test_rung_sizes_match_sections(field, ladder_blob):
    comp, blob = ladder_blob
    sizes = comp.rung_sizes(blob)
    assert len(sizes) == 4
    assert all(size > 0 for size in sizes)


def test_residual_ladder_ratio_trails_ipcomp(field):
    """Figure 5's ordering: the residual ladder's compression ratio trails
    IPComp's on turbulence-like data (the price of residual progressiveness)."""
    from repro.baselines import IPCompAdapter

    ladder = SZ3ResidualCompressor(error_bound=1e-5, relative=True, rungs=5)
    ipcomp = IPCompAdapter(error_bound=1e-5, relative=True)
    assert compression_ratio(field, ipcomp.compress(field)) > compression_ratio(
        field, ladder.compress(field)
    )


def test_explicit_bounds_ladder(field):
    bounds = [1e-2, 1e-3, 1e-4]
    comp = ResidualProgressiveCompressor(
        base_factory=lambda b: SZ3Compressor(error_bound=b, relative=False),
        error_bound=1e-4,
        relative=False,
        bounds=bounds,
    )
    blob = comp.compress(field)
    outcome = comp.retrieve(blob, error_bound=1e-3)
    assert outcome.passes == 2
    assert max_error(field, outcome.data) <= 1e-3 * (1 + 1e-9)


def test_request_validation(field, ladder_blob):
    comp, blob = ladder_blob
    with pytest.raises(ConfigurationError):
        comp.retrieve(blob, error_bound=1e-3, bitrate=1.0)
    with pytest.raises(ConfigurationError):
        comp.retrieve(blob)
