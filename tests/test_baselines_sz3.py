"""Tests of the SZ3 baseline and its multi-fidelity variant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import compression_ratio, max_error
from repro.baselines import SZ3Compressor, SZ3MultiFidelityCompressor, unpack_sections
from repro.errors import ConfigurationError


@pytest.mark.parametrize("method", ["linear", "cubic"])
def test_roundtrip_respects_bound(smooth_3d, method):
    comp = SZ3Compressor(error_bound=1e-5, relative=True, method=method)
    blob = comp.compress(smooth_3d)
    restored = comp.decompress(blob)
    assert max_error(smooth_3d, restored) <= comp.absolute_bound(smooth_3d) * (1 + 1e-12)
    assert restored.shape == smooth_3d.shape
    assert restored.dtype == smooth_3d.dtype


def test_absolute_bound_mode(smooth_2d):
    comp = SZ3Compressor(error_bound=5e-4, relative=False)
    restored = comp.decompress(comp.compress(smooth_2d))
    assert max_error(smooth_2d, restored) <= 5e-4 * (1 + 1e-12)


def test_outlier_path_handles_spiky_data(rng):
    """A field with huge local spikes exercises the unpredictable-data path."""
    data = rng.normal(size=(24, 24)).astype(np.float64)
    data[5, 5] = 1e7
    data[17, 3] = -1e7
    comp = SZ3Compressor(error_bound=1e-7, relative=False)
    restored = comp.decompress(comp.compress(data))
    assert max_error(data, restored) <= 1e-7 * (1 + 1e-9)


def test_smooth_compresses_better_than_rough(smooth_3d, rough_3d):
    comp = SZ3Compressor(error_bound=1e-5, relative=True)
    cr_smooth = compression_ratio(smooth_3d, comp.compress(smooth_3d))
    cr_rough = compression_ratio(rough_3d, comp.compress(rough_3d))
    assert cr_smooth > cr_rough


def test_looser_bound_higher_ratio(smooth_3d):
    tight = SZ3Compressor(error_bound=1e-8, relative=True)
    loose = SZ3Compressor(error_bound=1e-3, relative=True)
    assert compression_ratio(smooth_3d, loose.compress(smooth_3d)) > compression_ratio(
        smooth_3d, tight.compress(smooth_3d)
    )


def test_invalid_bound_rejected():
    with pytest.raises(ConfigurationError):
        SZ3Compressor(error_bound=0.0)


# ---------------------------------------------------------------------- SZ3-M


def test_sz3m_stores_independent_copies(smooth_3d):
    single = SZ3Compressor(error_bound=1e-5, relative=True)
    multi = SZ3MultiFidelityCompressor(error_bound=1e-5, relative=True, rungs=4)
    blob_single = single.compress(smooth_3d)
    blob_multi = multi.compress(smooth_3d)
    # Storing several fidelity copies must cost noticeably more than one.
    assert len(blob_multi) > len(blob_single) * 1.5


def test_sz3m_full_decompression_uses_finest_copy(smooth_3d):
    multi = SZ3MultiFidelityCompressor(error_bound=1e-5, relative=True, rungs=3)
    blob = multi.compress(smooth_3d)
    restored = multi.decompress(blob)
    assert max_error(smooth_3d, restored) <= multi.absolute_bound(smooth_3d) * (1 + 1e-12)


def test_sz3m_retrieval_by_error_bound(smooth_3d):
    multi = SZ3MultiFidelityCompressor(error_bound=1e-6, relative=True, rungs=4)
    blob = multi.compress(smooth_3d)
    eb = multi.absolute_bound(smooth_3d)
    outcome = multi.retrieve(blob, error_bound=eb * 16)
    assert outcome.passes == 1
    assert max_error(smooth_3d, outcome.data) <= eb * 16 * (1 + 1e-9)
    # Coarser copies are smaller than the finest one.
    fine = multi.retrieve(blob, error_bound=eb)
    assert outcome.bytes_loaded < fine.bytes_loaded


def test_sz3m_retrieval_by_bitrate(smooth_3d):
    multi = SZ3MultiFidelityCompressor(error_bound=1e-6, relative=True, rungs=4)
    blob = multi.compress(smooth_3d)
    # Budget sized to admit the coarsest copy but not the whole bundle.
    sizes = [len(section) for section in unpack_sections(blob)[1]]
    budget_bits = (min(sizes) * 8 / smooth_3d.size) * 1.05
    outcome = multi.retrieve(blob, bitrate=budget_bits)
    assert outcome.passes == 1
    assert outcome.bytes_loaded * 8 / smooth_3d.size <= budget_bits + 1e-9


def test_sz3m_request_validation(smooth_3d):
    multi = SZ3MultiFidelityCompressor(error_bound=1e-6, relative=True, rungs=2)
    blob = multi.compress(smooth_3d)
    with pytest.raises(ConfigurationError):
        multi.retrieve(blob)
