"""Tests of the ZFP-like block transform compressor and its residual variant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import compression_ratio, max_error
from repro.baselines import ZFPCompressor, ZFPResidualCompressor
from repro.baselines.zfp import (
    BLOCK,
    _from_blocks,
    _pad_to_blocks,
    _to_blocks,
    forward_transform,
    inverse_transform,
)


def test_block_partitioning_roundtrip(rng):
    data = rng.normal(size=(12, 8, 16))
    padded, original_shape = _pad_to_blocks(data)
    assert all(s % BLOCK == 0 for s in padded.shape)
    blocks = _to_blocks(padded)
    assert blocks.shape == (np.prod([s // BLOCK for s in padded.shape]), BLOCK, BLOCK, BLOCK)
    assert np.array_equal(_from_blocks(blocks, padded.shape), padded)


def test_padding_replicates_edges(rng):
    data = rng.normal(size=(5, 6))
    padded, _ = _pad_to_blocks(data)
    assert padded.shape == (8, 8)
    assert np.array_equal(padded[5:, :6], np.broadcast_to(data[4, :], (3, 6)))


def test_lifting_transform_is_exactly_invertible(rng):
    blocks = rng.integers(-(2**30), 2**30, size=(50, 4, 4, 4)).astype(np.int64)
    coefficients = forward_transform(blocks)
    assert np.array_equal(inverse_transform(coefficients), blocks)


def test_lifting_transform_decorrelates_constant_blocks():
    blocks = np.full((3, 4, 4, 4), 1000, dtype=np.int64)
    coefficients = forward_transform(blocks)
    # Everything except the DC coefficient collapses to (near) zero.
    nonzero = np.count_nonzero(coefficients.reshape(3, -1), axis=1)
    assert np.all(nonzero <= 1)


@pytest.mark.parametrize("eb", [1e-3, 1e-5, 1e-7])
def test_roundtrip_respects_bound(smooth_3d, eb):
    comp = ZFPCompressor(error_bound=eb, relative=True)
    blob = comp.compress(smooth_3d)
    restored = comp.decompress(blob)
    assert max_error(smooth_3d, restored) <= comp.absolute_bound(smooth_3d) * (1 + 1e-12)
    assert restored.shape == smooth_3d.shape


def test_roundtrip_2d(smooth_2d):
    comp = ZFPCompressor(error_bound=1e-5, relative=True)
    restored = comp.decompress(comp.compress(smooth_2d))
    assert max_error(smooth_2d, restored) <= comp.absolute_bound(smooth_2d) * (1 + 1e-12)


def test_roundtrip_rough_field(rough_3d):
    comp = ZFPCompressor(error_bound=1e-4, relative=True)
    restored = comp.decompress(comp.compress(rough_3d))
    assert max_error(rough_3d, restored) <= comp.absolute_bound(rough_3d) * (1 + 1e-12)


def test_looser_bound_higher_ratio(smooth_3d):
    tight = ZFPCompressor(error_bound=1e-8, relative=True)
    loose = ZFPCompressor(error_bound=1e-3, relative=True)
    assert compression_ratio(smooth_3d, loose.compress(smooth_3d)) > compression_ratio(
        smooth_3d, tight.compress(smooth_3d)
    )


def test_non_multiple_of_four_shapes(rng):
    data = np.cumsum(rng.normal(size=(13, 9, 7)), axis=0)
    comp = ZFPCompressor(error_bound=1e-4, relative=True)
    restored = comp.decompress(comp.compress(data))
    assert restored.shape == data.shape
    assert max_error(data, restored) <= comp.absolute_bound(data) * (1 + 1e-12)


def test_zfp_r_progressive_retrieval(smooth_3d):
    comp = ZFPResidualCompressor(error_bound=1e-6, relative=True, rungs=3)
    blob = comp.compress(smooth_3d)
    eb = comp.absolute_bound(smooth_3d)
    coarse = comp.retrieve(blob, error_bound=eb * 16)
    fine = comp.retrieve(blob, error_bound=eb)
    assert max_error(smooth_3d, coarse.data) <= eb * 16 * (1 + 1e-9)
    assert max_error(smooth_3d, fine.data) <= eb * (1 + 1e-9)
    assert fine.passes > coarse.passes
