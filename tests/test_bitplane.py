"""Unit tests of bitplane extraction and predictive XOR coding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bitplane import (
    assemble_bitplanes,
    extract_bitplanes,
    pack_plane,
    predictive_decode,
    predictive_encode,
    unpack_plane,
)
from repro.errors import ConfigurationError


def _codes(rng, n=500, width=12):
    return rng.integers(0, 1 << width, size=n).astype(np.uint64)


def test_extract_assemble_roundtrip(rng):
    codes = _codes(rng)
    planes = extract_bitplanes(codes, 16)
    assert planes.shape == (16, codes.size)
    assert np.array_equal(assemble_bitplanes(planes, 16), codes)


def test_plane_zero_is_most_significant(rng):
    codes = np.array([1 << 15, 0, 1], dtype=np.uint64)
    planes = extract_bitplanes(codes, 16)
    assert planes[0, 0] == 1 and planes[0, 1] == 0 and planes[0, 2] == 0
    assert planes[15, 2] == 1  # least significant plane holds the LSB


def test_partial_assembly_zeroes_missing_low_planes(rng):
    codes = _codes(rng, width=10)
    planes = extract_bitplanes(codes, 10)
    partial = assemble_bitplanes(planes[:4], 10)
    # Keeping the top 4 of 10 planes means the low 6 bits are zero.
    assert np.array_equal(partial, codes & ~np.uint64((1 << 6) - 1))


def test_too_many_planes_rejected(rng):
    planes = extract_bitplanes(_codes(rng), 12)
    with pytest.raises(ConfigurationError):
        assemble_bitplanes(planes, 10)


@pytest.mark.parametrize("prefix_bits", [0, 1, 2, 3])
def test_predictive_roundtrip(rng, prefix_bits):
    planes = extract_bitplanes(_codes(rng), 14)
    encoded = predictive_encode(planes, prefix_bits)
    assert np.array_equal(predictive_decode(encoded, prefix_bits), planes)


def test_prefix_zero_is_identity(rng):
    planes = extract_bitplanes(_codes(rng), 8)
    assert np.array_equal(predictive_encode(planes, 0), planes)


def test_predictive_decode_only_needs_prefix_planes(rng):
    """Decoding a prefix of the planes must not depend on the unloaded ones."""
    planes = extract_bitplanes(_codes(rng), 12)
    encoded = predictive_encode(planes, 2)
    partial = predictive_decode(encoded[:5], 2)
    assert np.array_equal(partial, planes[:5])


def test_invalid_prefix_bits_rejected(rng):
    planes = extract_bitplanes(_codes(rng), 8)
    with pytest.raises(ConfigurationError):
        predictive_encode(planes, 4)
    with pytest.raises(ConfigurationError):
        predictive_decode(planes, -1)


def test_invalid_nbits_rejected():
    with pytest.raises(ConfigurationError):
        extract_bitplanes(np.zeros(4, dtype=np.uint64), 0)
    with pytest.raises(ConfigurationError):
        extract_bitplanes(np.zeros(4, dtype=np.uint64), 65)


def test_pack_unpack_roundtrip(rng):
    plane = (rng.random(1000) > 0.7).astype(np.uint8)
    packed = pack_plane(plane)
    assert len(packed) == 125
    assert np.array_equal(unpack_plane(packed, 1000), plane)


def test_pack_plane_partial_byte(rng):
    plane = np.array([1, 0, 1], dtype=np.uint8)
    assert np.array_equal(unpack_plane(pack_plane(plane), 3), plane)


def test_predictive_coding_lowers_entropy_on_correlated_planes():
    """Correlated consecutive planes (sign-extension-like) should XOR to mostly 0."""
    from repro.coders.entropy import bit_entropy

    n = 4000
    rng = np.random.default_rng(5)
    # Build codes where the high planes are strongly correlated (all-ones runs).
    magnitudes = rng.integers(0, 4, size=n).astype(np.uint64)
    codes = (np.uint64(0b111100) | magnitudes).astype(np.uint64)
    planes = extract_bitplanes(codes, 6)
    raw_entropy = np.mean([bit_entropy(p) for p in planes])
    encoded = predictive_encode(planes, 2)
    coded_entropy = np.mean([bit_entropy(p) for p in encoded])
    assert coded_entropy <= raw_entropy + 1e-12
