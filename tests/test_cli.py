"""Tests of the ``ipcomp`` command line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import load_dataset, load_raw, save_raw


@pytest.fixture
def raw_field(tmp_path):
    field = load_dataset("density", shape=(16, 18, 20))
    path = save_raw(tmp_path / "density.d64", field)
    return field, path


def test_sampled_negotiation_and_fused_kernel_flags(tmp_path, raw_field):
    """`--negotiation sampled|full` + `--negotiation-sample` + `--kernel fused`."""
    field, raw_path = raw_field
    sampled = tmp_path / "sampled.ipc"
    full = tmp_path / "full.ipc"
    common = ["compress", str(raw_path), "--shape", "16x18x20", "--eb", "1e-5",
              "--coders", "zlib,huffman,rle,raw", "--kernel", "fused"]
    assert main(common + ["-o", str(sampled), "--negotiation", "sampled",
                          "--negotiation-sample", "256"]) == 0
    assert main(common + ["-o", str(full), "--negotiation", "full"]) == 0
    restored = tmp_path / "restored.d64"
    assert main(["decompress", str(sampled), "-o", str(restored)]) == 0
    eb = 1e-5 * (field.max() - field.min())
    assert np.abs(load_raw(restored, field.shape) - field).max() <= eb * (1 + 1e-9)
    # "full" must spell the default policy: byte-identical to "smallest".
    smallest = tmp_path / "smallest.ipc"
    assert main(common + ["-o", str(smallest), "--negotiation", "smallest"]) == 0
    assert full.read_bytes() == smallest.read_bytes()


def test_compress_decompress_cycle(tmp_path, raw_field, capsys):
    field, raw_path = raw_field
    compressed = tmp_path / "density.ipc"
    restored_path = tmp_path / "restored.d64"

    assert main(
        ["compress", str(raw_path), "-o", str(compressed), "--shape", "16x18x20", "--eb", "1e-5"]
    ) == 0
    assert compressed.exists()
    out = capsys.readouterr().out
    assert "CR" in out

    assert main(["decompress", str(compressed), "-o", str(restored_path)]) == 0
    restored = load_raw(restored_path, (16, 18, 20))
    eb = 1e-5 * (field.max() - field.min())
    assert np.abs(field - restored).max() <= eb * (1 + 1e-9)


def test_retrieve_error_bound_mode(tmp_path, raw_field, capsys):
    field, raw_path = raw_field
    compressed = tmp_path / "density.ipc"
    partial_path = tmp_path / "partial.d64"
    main(["compress", str(raw_path), "-o", str(compressed), "--shape", "16x18x20", "--eb", "1e-6"])
    eb = 1e-6 * (field.max() - field.min())
    assert main(
        ["retrieve", str(compressed), "-o", str(partial_path), "--error-bound", str(eb * 64)]
    ) == 0
    partial = load_raw(partial_path, (16, 18, 20))
    assert np.abs(field - partial).max() <= eb * 64 * (1 + 1e-9)
    assert "guaranteed error" in capsys.readouterr().out


def test_retrieve_bitrate_mode(tmp_path, raw_field):
    field, raw_path = raw_field
    compressed = tmp_path / "density.ipc"
    partial_path = tmp_path / "partial.d64"
    main(["compress", str(raw_path), "-o", str(compressed), "--shape", "16x18x20", "--eb", "1e-6"])
    assert main(
        ["retrieve", str(compressed), "-o", str(partial_path), "--bitrate", "6.0"]
    ) == 0
    assert partial_path.exists()


def test_info_prints_header_json(tmp_path, raw_field, capsys):
    _, raw_path = raw_field
    compressed = tmp_path / "density.ipc"
    main(["compress", str(raw_path), "-o", str(compressed), "--shape", "16x18x20"])
    capsys.readouterr()  # drop the compress-command output
    assert main(["info", str(compressed)]) == 0
    header = json.loads(capsys.readouterr().out)
    assert header["shape"] == [16, 18, 20]
    assert header["levels"]
    # v2 inspection output: version, codec names, per-plane codec + sizes.
    assert header["version"] == 2
    assert header["codecs"]
    assert header["anchor_coder"] in header["codecs"]
    for level in header["levels"]:
        assert len(level["plane_codecs"]) == len(level["plane_sizes"])
        assert set(level["plane_codecs"]) <= set(header["codecs"])


def test_info_on_container_includes_shard_headers(tmp_path, raw_field, capsys):
    _, raw_path = raw_field
    container = tmp_path / "density.rprc"
    main(["compress", str(raw_path), "-o", str(container), "--shape", "16x18x20",
          "--blocks", "2", "--workers", "0"])
    capsys.readouterr()
    assert main(["info", str(container)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["format"] == "repro-chunked-dataset"
    assert report["version"] == 2
    assert "profile" in report
    assert set(report["shard_headers"]) == {"shard-0000", "shard-0001"}
    for summary in report["shard_headers"].values():
        assert summary["version"] == 2
        assert summary["levels"]


def test_profile_file_configures_compression(tmp_path, raw_field, capsys):
    field, raw_path = raw_field
    profile_path = tmp_path / "profile.json"
    profile_path.write_text(json.dumps({
        "error_bound": 1e-4,
        "relative": True,
        "plane_coders": ["zlib", "raw"],
        "negotiation": "smallest",
    }))
    compressed = tmp_path / "density.ipc"
    assert main(["compress", str(raw_path), "-o", str(compressed),
                 "--shape", "16x18x20", "--profile", str(profile_path)]) == 0
    capsys.readouterr()
    assert main(["info", str(compressed)]) == 0
    header = json.loads(capsys.readouterr().out)
    assert set(header["codecs"]) <= {"zlib", "raw"}
    eb = 1e-4 * (field.max() - field.min())
    assert header["error_bound"] == pytest.approx(eb, rel=1e-6)

    # Flags override profile-file fields.
    tighter = tmp_path / "tighter.ipc"
    assert main(["compress", str(raw_path), "-o", str(tighter), "--shape", "16x18x20",
                 "--profile", str(profile_path), "--eb", "1e-6"]) == 0
    capsys.readouterr()
    assert main(["info", str(tighter)]) == 0
    header = json.loads(capsys.readouterr().out)
    assert header["error_bound"] == pytest.approx(1e-6 * (field.max() - field.min()), rel=1e-6)


def test_negotiation_flags(tmp_path, raw_field, capsys):
    _, raw_path = raw_field
    negotiated = tmp_path / "neg.ipc"
    fixed = tmp_path / "fix.ipc"
    assert main(["compress", str(raw_path), "-o", str(negotiated), "--shape", "16x18x20",
                 "--eb", "1e-5", "--coders", "huffman,zlib,rle,raw"]) == 0
    assert main(["compress", str(raw_path), "-o", str(fixed), "--shape", "16x18x20",
                 "--eb", "1e-5", "--coders", "huffman", "--negotiation", "fixed"]) == 0
    capsys.readouterr()
    assert negotiated.stat().st_size <= fixed.stat().st_size


def test_bad_profile_file_errors(tmp_path, raw_field, capsys):
    _, raw_path = raw_field
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    code = main(["compress", str(raw_path), "-o", str(tmp_path / "x.ipc"),
                 "--shape", "16x18x20", "--profile", str(bad)])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_datasets_listing(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "Density" in out and "CH4" in out


def test_demo_command(capsys):
    assert main(["demo", "--dataset", "speedx", "--shape", "12x16x16", "--eb", "1e-5"]) == 0
    out = capsys.readouterr().out
    assert "psnr" in out and "compression_ratio" in out


def test_kernel_flag_produces_identical_streams(tmp_path, raw_field):
    _, raw_path = raw_field
    blobs = {}
    for kernel in ("reference", "vectorized"):
        compressed = tmp_path / f"density.{kernel}.ipc"
        assert main(
            ["compress", str(raw_path), "-o", str(compressed),
             "--shape", "16x18x20", "--eb", "1e-4", "--kernel", kernel]
        ) == 0
        blobs[kernel] = compressed.read_bytes()
    assert blobs["reference"] == blobs["vectorized"]

    restored_path = tmp_path / "restored.d64"
    assert main(
        ["decompress", str(tmp_path / "density.reference.ipc"),
         "-o", str(restored_path), "--kernel", "reference"]
    ) == 0
    assert restored_path.exists()


def test_compress_blocks_writes_container_and_roi_retrieve(tmp_path, raw_field, capsys):
    field, raw_path = raw_field
    container = tmp_path / "density.rprc"
    assert main(
        ["compress", str(raw_path), "-o", str(container), "--shape", "16x18x20",
         "--eb", "1e-5", "--blocks", "4", "--workers", "0"]
    ) == 0
    assert "shards" in capsys.readouterr().out

    # info prints the dataset manifest for containers.
    assert main(["info", str(container)]) == 0
    manifest = json.loads(capsys.readouterr().out)
    assert manifest["format"] == "repro-chunked-dataset"
    assert manifest["shape"] == [16, 18, 20]
    eb = manifest["error_bound"]

    # ROI retrieval touches a strict subset of the shards.
    roi_path = tmp_path / "roi.d64"
    assert main(
        ["retrieve", str(container), "-o", str(roi_path),
         "--roi", "0:4,:,:", "--error-bound", str(eb * 16)]
    ) == 0
    out = capsys.readouterr().out
    assert "1/4 shards" in out
    roi_data = load_raw(roi_path, (4, 18, 20))
    assert np.abs(field[:4] - roi_data).max() <= eb * 16 * (1 + 1e-9)

    # Full decompression of a container reassembles within the bound.
    restored_path = tmp_path / "restored.d64"
    assert main(["decompress", str(container), "-o", str(restored_path)]) == 0
    restored = load_raw(restored_path, (16, 18, 20))
    assert np.abs(field - restored).max() <= eb * (1 + 1e-9)


def test_roi_on_plain_stream_rejected(tmp_path, raw_field, capsys):
    _, raw_path = raw_field
    compressed = tmp_path / "density.ipc"
    main(["compress", str(raw_path), "-o", str(compressed), "--shape", "16x18x20"])
    code = main(
        ["retrieve", str(compressed), "-o", str(tmp_path / "x.d64"),
         "--roi", "0:4,:,:", "--error-bound", "1e-3"]
    )
    assert code == 2
    assert "--roi requires" in capsys.readouterr().err


def test_bitrate_on_container_rejected(tmp_path, raw_field, capsys):
    _, raw_path = raw_field
    container = tmp_path / "density.rprc"
    main(["compress", str(raw_path), "-o", str(container), "--shape", "16x18x20",
          "--blocks", "2", "--workers", "0"])
    code = main(
        ["retrieve", str(container), "-o", str(tmp_path / "x.d64"), "--bitrate", "2.0"]
    )
    assert code == 2
    assert "error bound" in capsys.readouterr().err


def test_error_path_returns_nonzero(tmp_path, capsys):
    missing = tmp_path / "missing.d64"
    out_path = tmp_path / "out.ipc"
    code = main(["compress", str(missing), "-o", str(out_path), "--shape", "4x4x4"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_retrieve_prefetch_and_workers_flags(tmp_path, raw_field, capsys):
    """--prefetch/--no-prefetch/--workers: identical output and accounting."""
    _, raw_path = raw_field
    container = tmp_path / "density.rprc"
    main(["compress", str(raw_path), "-o", str(container), "--shape", "16x18x20",
          "--blocks", "4", "--workers", "0", "--eb", "1e-5"])
    capsys.readouterr()
    variants = {
        "sync": ["--no-prefetch"],
        "prefetch": ["--prefetch", "8"],
        "pool": ["--workers", "2", "--no-prefetch"],
    }
    outputs, reports = {}, {}
    for label, extra in variants.items():
        out = tmp_path / f"{label}.d64"
        assert main(
            ["retrieve", str(container), "-o", str(out),
             "--roi", "0:8,:,:", "--error-bound", "1e-3"] + extra
        ) == 0
        outputs[label] = out.read_bytes()
        reports[label] = capsys.readouterr().out
    assert outputs["sync"] == outputs["prefetch"] == outputs["pool"]
    # The printed byte accounting is identical across execution paths.
    assert len({r.split("(")[0] for r in reports.values()}) == 1
    # Single streams accept the prefetch flags too.
    stream = tmp_path / "density.ipc"
    main(["compress", str(raw_path), "-o", str(stream), "--shape", "16x18x20",
          "--eb", "1e-5"])
    a, b = tmp_path / "a.d64", tmp_path / "b.d64"
    assert main(["retrieve", str(stream), "-o", str(a),
                 "--error-bound", "1e-3", "--prefetch", "4"]) == 0
    assert main(["retrieve", str(stream), "-o", str(b),
                 "--error-bound", "1e-3", "--no-prefetch"]) == 0
    assert a.read_bytes() == b.read_bytes()


def test_retrieve_profile_file_runtime_knobs(tmp_path, raw_field, capsys):
    """A --profile file's prefetch/workers knobs drive retrieval (flags win)."""
    _, raw_path = raw_field
    container = tmp_path / "density.rprc"
    main(["compress", str(raw_path), "-o", str(container), "--shape", "16x18x20",
          "--blocks", "3", "--workers", "0", "--eb", "1e-5"])
    profile_path = tmp_path / "runtime.json"
    profile_path.write_text('{"prefetch": 2, "workers": 2}')
    capsys.readouterr()
    a, b = tmp_path / "a.d64", tmp_path / "b.d64"
    assert main(["retrieve", str(container), "-o", str(a),
                 "--error-bound", "1e-3", "--profile", str(profile_path)]) == 0
    assert main(["retrieve", str(container), "-o", str(b),
                 "--error-bound", "1e-3", "--profile", str(profile_path),
                 "--no-prefetch", "--workers", "0"]) == 0
    assert a.read_bytes() == b.read_bytes()


def test_info_stream_error_bound_prints_plan(tmp_path, raw_field, capsys):
    """`info STREAM --error-bound` prints the single-stream retrieval plan."""
    _, raw_path = raw_field
    stream = tmp_path / "density.ipc"
    main(["compress", str(raw_path), "-o", str(stream), "--shape", "16x18x20",
          "--eb", "1e-5"])
    capsys.readouterr()
    assert main(["info", str(stream), "--error-bound", "1e-3"]) == 0
    report = json.loads(capsys.readouterr().out)
    plan = report["retrieval_plan"]
    assert plan["ops"] >= 1 and plan["predicted_bytes"] > 0
    # The plan predicts the bytes a retrieve at the same target reports.
    out = tmp_path / "p.d64"
    assert main(["retrieve", str(stream), "-o", str(out),
                 "--error-bound", "1e-3", "--no-prefetch"]) == 0
    assert f"retrieved {plan['predicted_bytes']} B" in capsys.readouterr().out


def test_info_roi_prints_retrieval_plan(tmp_path, raw_field, capsys):
    _, raw_path = raw_field
    container = tmp_path / "density.rprc"
    main(["compress", str(raw_path), "-o", str(container), "--shape", "16x18x20",
          "--blocks", "4", "--workers", "0", "--eb", "1e-5"])
    capsys.readouterr()
    assert main(["info", str(container), "--roi", "0:8,:,:",
                 "--error-bound", "1e-3"]) == 0
    report = json.loads(capsys.readouterr().out)
    plan = report["retrieval_plan"]
    assert plan["ops"] >= 1
    assert plan["predicted_bytes"] == plan["op_bytes"] + plan["header_bytes"]
    shard_names = {entry["shard"] for entry in plan["shards"]}
    assert shard_names <= {f"shard-{i:04d}" for i in range(4)}
    for entry in plan["shards"]:
        for op in entry["ops"]:
            assert op["length"] > 0 and op["blocks"]
    # The plan predicts the bytes a retrieve of the same region reports.
    out = tmp_path / "roi.d64"
    assert main(["retrieve", str(container), "-o", str(out),
                 "--roi", "0:8,:,:", "--error-bound", "1e-3",
                 "--no-prefetch"]) == 0
    printed = capsys.readouterr().out
    assert f"retrieved {plan['predicted_bytes']} B" in printed
    # --roi on a plain stream is rejected for info as well.
    stream = tmp_path / "density.ipc"
    main(["compress", str(raw_path), "-o", str(stream), "--shape", "16x18x20"])
    capsys.readouterr()
    assert main(["info", str(stream), "--roi", "0:4,:,:"]) == 2
    assert "--roi requires" in capsys.readouterr().err
