"""Tests of the backend registry, the DEFLATE wrapper, and the entropy helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coders import available_backends, get_backend, register_backend
from repro.coders.entropy import bit_entropy, byte_entropy, shannon_entropy
from repro.coders.zlib_backend import ZlibCoder
from repro.errors import ConfigurationError


def test_default_backends_registered():
    names = available_backends()
    for expected in ("zlib", "huffman", "rle", "lz77", "raw"):
        assert expected in names


@pytest.mark.parametrize("name", ["zlib", "huffman", "rle", "lz77", "raw"])
def test_every_backend_roundtrips(name):
    backend = get_backend(name)
    data = b"progressive compression " * 64 + bytes(range(256))
    assert backend.decode(backend.encode(data)) == data


def test_unknown_backend_rejected():
    with pytest.raises(ConfigurationError):
        get_backend("zstd-but-not-really")


def test_register_custom_backend():
    class Reverser:
        name = "reverse"

        def encode(self, data: bytes) -> bytes:
            return data[::-1]

        def decode(self, data: bytes) -> bytes:
            return data[::-1]

    register_backend("reverse", Reverser, replace=True)
    backend = get_backend("reverse")
    assert backend.decode(backend.encode(b"abc")) == b"abc"


def test_duplicate_register_rejected():
    """Silently replacing a registered coder could corrupt negotiated streams."""
    with pytest.raises(ConfigurationError, match="already registered"):
        register_backend("zlib", ZlibCoder)
    # The original registration survives the failed attempt.
    assert get_backend("zlib").decode(get_backend("zlib").encode(b"abc")) == b"abc"


def test_register_replace_opt_in():
    register_backend("zlib", ZlibCoder, replace=True)
    assert "zlib" in available_backends()


def test_register_empty_name_rejected():
    with pytest.raises(ConfigurationError):
        register_backend("", ZlibCoder)


def test_zlib_level_validation():
    with pytest.raises(ValueError):
        ZlibCoder(level=11)


def test_zlib_compresses_redundant_data():
    coder = ZlibCoder()
    data = b"\x00" * 4096
    assert len(coder.encode(data)) < 64


def test_shannon_entropy_uniform():
    symbols = np.arange(256)
    assert shannon_entropy(symbols) == pytest.approx(8.0)


def test_shannon_entropy_constant_is_zero():
    assert shannon_entropy(np.zeros(100, dtype=int)) == 0.0


def test_bit_entropy_bounds():
    assert bit_entropy(np.array([0, 1, 0, 1])) == pytest.approx(1.0)
    assert bit_entropy(np.zeros(10, dtype=np.uint8)) == 0.0
    fair = bit_entropy(np.array([0, 0, 0, 1]))
    assert 0.0 < fair < 1.0


def test_byte_entropy_empty():
    assert byte_entropy(b"") == 0.0
