"""Unit tests of the bit-granular reader/writer."""

from __future__ import annotations

import pytest

from repro.coders.bitio import BitReader, BitWriter
from repro.errors import StreamFormatError


def test_roundtrip_single_bits():
    writer = BitWriter()
    bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1]
    for bit in bits:
        writer.write_bit(bit)
    reader = BitReader(writer.getvalue())
    assert [reader.read_bit() for _ in range(len(bits))] == bits


def test_roundtrip_multibit_values():
    writer = BitWriter()
    values = [(0, 1), (5, 3), (255, 8), (1023, 10), (0b1011, 4)]
    for value, width in values:
        writer.write_bits(value, width)
    reader = BitReader(writer.getvalue())
    for value, width in values:
        assert reader.read_bits(width) == value


def test_unary_roundtrip():
    writer = BitWriter()
    for value in [0, 1, 5, 13, 2]:
        writer.write_unary(value)
    reader = BitReader(writer.getvalue())
    assert [reader.read_unary() for _ in range(5)] == [0, 1, 5, 13, 2]


def test_len_counts_bits():
    writer = BitWriter()
    writer.write_bits(0b101, 3)
    writer.write_bit(1)
    assert len(writer) == 4


def test_partial_byte_is_zero_padded():
    writer = BitWriter()
    writer.write_bits(0b1, 1)
    data = writer.getvalue()
    assert len(data) == 1
    assert data[0] == 0b1


def test_reading_past_end_raises():
    reader = BitReader(b"\x01")
    reader.read_bits(8)
    with pytest.raises(StreamFormatError):
        reader.read_bit()


def test_bits_remaining():
    reader = BitReader(b"\xff\x00")
    assert reader.bits_remaining == 16
    reader.read_bits(5)
    assert reader.bits_remaining == 11


def test_negative_count_rejected():
    with pytest.raises(ValueError):
        BitWriter().write_bits(3, -1)
