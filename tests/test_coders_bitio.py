"""Unit tests of the bit-granular reader/writer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coders.bitio import BitReader, BitWriter
from repro.errors import StreamFormatError


def test_roundtrip_single_bits():
    writer = BitWriter()
    bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1]
    for bit in bits:
        writer.write_bit(bit)
    reader = BitReader(writer.getvalue())
    assert [reader.read_bit() for _ in range(len(bits))] == bits


def test_roundtrip_multibit_values():
    writer = BitWriter()
    values = [(0, 1), (5, 3), (255, 8), (1023, 10), (0b1011, 4)]
    for value, width in values:
        writer.write_bits(value, width)
    reader = BitReader(writer.getvalue())
    for value, width in values:
        assert reader.read_bits(width) == value


def test_unary_roundtrip():
    writer = BitWriter()
    for value in [0, 1, 5, 13, 2]:
        writer.write_unary(value)
    reader = BitReader(writer.getvalue())
    assert [reader.read_unary() for _ in range(5)] == [0, 1, 5, 13, 2]


def test_len_counts_bits():
    writer = BitWriter()
    writer.write_bits(0b101, 3)
    writer.write_bit(1)
    assert len(writer) == 4


def test_partial_byte_is_zero_padded():
    writer = BitWriter()
    writer.write_bits(0b1, 1)
    data = writer.getvalue()
    assert len(data) == 1
    assert data[0] == 0b1


def test_reading_past_end_raises():
    reader = BitReader(b"\x01")
    reader.read_bits(8)
    with pytest.raises(StreamFormatError):
        reader.read_bit()


def test_bits_remaining():
    reader = BitReader(b"\xff\x00")
    assert reader.bits_remaining == 16
    reader.read_bits(5)
    assert reader.bits_remaining == 11


def test_negative_count_rejected():
    with pytest.raises(ValueError):
        BitWriter().write_bits(3, -1)


@pytest.mark.parametrize("count", [0, 3, 8, 37, 256])
def test_write_bit_array_matches_bitwise_path(count):
    rng = np.random.default_rng(count)
    bits = (rng.random(count) > 0.5).astype(np.uint8)
    bulk = BitWriter()
    bulk.write_bit_array(bits)
    slow = BitWriter()
    for bit in bits.tolist():
        slow.write_bit(bit)
    assert bulk.getvalue() == slow.getvalue()
    assert len(bulk) == len(slow) == count


def test_write_bit_array_on_misaligned_writer():
    bits = np.array([1, 0, 1, 1, 0, 1, 0, 0, 1, 1], dtype=np.uint8)
    writer = BitWriter()
    writer.write_bits(0b101, 3)  # leave the accumulator misaligned
    writer.write_bit_array(bits)
    reader = BitReader(writer.getvalue())
    assert reader.read_bits(3) == 0b101
    assert np.array_equal(reader.read_bit_array(bits.size), bits)


def test_read_bit_array_from_any_offset():
    rng = np.random.default_rng(9)
    bits = (rng.random(64) > 0.3).astype(np.uint8)
    writer = BitWriter()
    writer.write_bit_array(bits)
    reader = BitReader(writer.getvalue())
    assert reader.read_bit() == bits[0]
    assert np.array_equal(reader.read_bit_array(40), bits[1:41])
    assert np.array_equal(reader.read_bit_array(23), bits[41:])


def test_read_bit_array_past_end_raises():
    reader = BitReader(b"\x01")
    with pytest.raises(StreamFormatError):
        reader.read_bit_array(9)
    with pytest.raises(ValueError):
        reader.read_bit_array(-1)
