"""Unit tests of the bit-granular reader/writer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coders.bitio import BitReader, BitWriter
from repro.errors import StreamFormatError


def test_roundtrip_single_bits():
    writer = BitWriter()
    bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1]
    for bit in bits:
        writer.write_bit(bit)
    reader = BitReader(writer.getvalue())
    assert [reader.read_bit() for _ in range(len(bits))] == bits


def test_roundtrip_multibit_values():
    writer = BitWriter()
    values = [(0, 1), (5, 3), (255, 8), (1023, 10), (0b1011, 4)]
    for value, width in values:
        writer.write_bits(value, width)
    reader = BitReader(writer.getvalue())
    for value, width in values:
        assert reader.read_bits(width) == value


def test_unary_roundtrip():
    writer = BitWriter()
    for value in [0, 1, 5, 13, 2]:
        writer.write_unary(value)
    reader = BitReader(writer.getvalue())
    assert [reader.read_unary() for _ in range(5)] == [0, 1, 5, 13, 2]


def test_len_counts_bits():
    writer = BitWriter()
    writer.write_bits(0b101, 3)
    writer.write_bit(1)
    assert len(writer) == 4


def test_partial_byte_is_zero_padded():
    writer = BitWriter()
    writer.write_bits(0b1, 1)
    data = writer.getvalue()
    assert len(data) == 1
    assert data[0] == 0b1


def test_reading_past_end_raises():
    reader = BitReader(b"\x01")
    reader.read_bits(8)
    with pytest.raises(StreamFormatError):
        reader.read_bit()


def test_bits_remaining():
    reader = BitReader(b"\xff\x00")
    assert reader.bits_remaining == 16
    reader.read_bits(5)
    assert reader.bits_remaining == 11


def test_negative_count_rejected():
    with pytest.raises(ValueError):
        BitWriter().write_bits(3, -1)


@pytest.mark.parametrize("count", [0, 3, 8, 37, 256])
def test_write_bit_array_matches_bitwise_path(count):
    rng = np.random.default_rng(count)
    bits = (rng.random(count) > 0.5).astype(np.uint8)
    bulk = BitWriter()
    bulk.write_bit_array(bits)
    slow = BitWriter()
    for bit in bits.tolist():
        slow.write_bit(bit)
    assert bulk.getvalue() == slow.getvalue()
    assert len(bulk) == len(slow) == count


def test_write_bit_array_on_misaligned_writer():
    bits = np.array([1, 0, 1, 1, 0, 1, 0, 0, 1, 1], dtype=np.uint8)
    writer = BitWriter()
    writer.write_bits(0b101, 3)  # leave the accumulator misaligned
    writer.write_bit_array(bits)
    reader = BitReader(writer.getvalue())
    assert reader.read_bits(3) == 0b101
    assert np.array_equal(reader.read_bit_array(bits.size), bits)


def test_read_bit_array_from_any_offset():
    rng = np.random.default_rng(9)
    bits = (rng.random(64) > 0.3).astype(np.uint8)
    writer = BitWriter()
    writer.write_bit_array(bits)
    reader = BitReader(writer.getvalue())
    assert reader.read_bit() == bits[0]
    assert np.array_equal(reader.read_bit_array(40), bits[1:41])
    assert np.array_equal(reader.read_bit_array(23), bits[41:])


def test_read_bit_array_past_end_raises():
    reader = BitReader(b"\x01")
    with pytest.raises(StreamFormatError):
        reader.read_bit_array(9)
    with pytest.raises(ValueError):
        reader.read_bit_array(-1)


# --------------------------------------------- differential: bulk vs. per-bit
#
# The multi-bit writer/reader paths were rewritten from per-bit Python loops
# to np.packbits/np.unpackbits bulk passes.  These tests replay randomized
# operation sequences against a literal copy of the old loop implementation
# and require byte-for-byte identical streams and identical read-backs.


class _LoopWriter:
    """The pre-bulk BitWriter hot paths, bit by bit (differential oracle)."""

    def __init__(self) -> None:
        self.inner = BitWriter()

    def write_bit(self, bit: int) -> None:
        self.inner.write_bit(bit)

    def write_bits(self, value: int, count: int) -> None:
        for i in range(count):
            self.inner.write_bit((value >> i) & 1)

    def write_unary(self, value: int) -> None:
        for _ in range(value):
            self.inner.write_bit(0)
        self.inner.write_bit(1)

    def write_bit_array(self, bits) -> None:
        for bit in np.asarray(bits).ravel().tolist():
            self.inner.write_bit(1 if bit else 0)

    def getvalue(self) -> bytes:
        return self.inner.getvalue()


class _LoopReader:
    """The pre-bulk BitReader hot paths, bit by bit (differential oracle)."""

    def __init__(self, data: bytes) -> None:
        self.inner = BitReader(data)

    def read_bit(self) -> int:
        return self.inner.read_bit()

    def read_bits(self, count: int) -> int:
        value = 0
        for i in range(count):
            value |= self.inner.read_bit() << i
        return value

    def read_unary(self) -> int:
        count = 0
        while self.inner.read_bit() == 0:
            count += 1
        return count


def _random_ops(rng, n_ops: int):
    """A randomized, alignment-stressing sequence of writer operations."""
    ops = []
    for _ in range(n_ops):
        kind = rng.integers(0, 4)
        if kind == 0:
            ops.append(("bit", int(rng.integers(0, 2))))
        elif kind == 1:
            count = int(rng.integers(0, 80))  # crosses the 16-bit fast path
            value = int(rng.integers(0, 1 << 62)) if count else 0
            ops.append(("bits", value, count))
        elif kind == 2:
            ops.append(("unary", int(rng.integers(0, 70))))
        else:
            size = int(rng.integers(0, 120))
            ops.append(("array", (rng.random(size) > 0.4).astype(np.uint8)))
    return ops


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_writer_bulk_paths_match_per_bit_oracle(seed):
    rng = np.random.default_rng(721000 + seed)  # local rng: conftest's is session-shared
    ops = _random_ops(rng, 60)
    bulk, loop = BitWriter(), _LoopWriter()
    for op in ops:
        if op[0] == "bit":
            bulk.write_bit(op[1]), loop.write_bit(op[1])
        elif op[0] == "bits":
            bulk.write_bits(op[1], op[2]), loop.write_bits(op[1], op[2])
        elif op[0] == "unary":
            bulk.write_unary(op[1]), loop.write_unary(op[1])
        else:
            bulk.write_bit_array(op[1]), loop.write_bit_array(op[1])
    assert bulk.getvalue() == loop.getvalue()
    assert len(bulk) == len(loop.inner)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_reader_bulk_paths_match_per_bit_oracle(seed):
    rng = np.random.default_rng(722000 + seed)
    ops = _random_ops(rng, 60)
    writer = BitWriter()
    schedule = []  # (kind, arg) read operations mirroring the writes
    for op in ops:
        if op[0] == "bit":
            writer.write_bit(op[1])
            schedule.append(("bit", None))
        elif op[0] == "bits":
            writer.write_bits(op[1], op[2])
            schedule.append(("bits", op[2]))
        elif op[0] == "unary":
            writer.write_unary(op[1])
            schedule.append(("unary", None))
        else:
            writer.write_bit_array(op[1])
            schedule.append(("bits_run", op[1].size))
    data = writer.getvalue()
    bulk, loop = BitReader(data), _LoopReader(data)
    for kind, arg in schedule:
        if kind == "bit":
            assert bulk.read_bit() == loop.read_bit()
        elif kind == "bits":
            assert bulk.read_bits(arg) == loop.read_bits(arg)
        elif kind == "unary":
            assert bulk.read_unary() == loop.read_unary()
        else:
            expect = [loop.read_bit() for _ in range(arg)]
            assert bulk.read_bit_array(arg).tolist() == expect


def test_long_unary_and_wide_fields_roundtrip():
    writer = BitWriter()
    writer.write_bit(1)  # misalign everything that follows
    writer.write_unary(10_000)
    writer.write_bits((1 << 200) - 3, 201)
    writer.write_unary(0)
    reader = BitReader(writer.getvalue())
    assert reader.read_bit() == 1
    assert reader.read_unary() == 10_000
    assert reader.read_bits(201) == (1 << 200) - 3
    assert reader.read_unary() == 0


def test_read_unary_exhaustion_matches_per_bit_error():
    # All zeros, no terminator: both paths must raise StreamFormatError.
    with pytest.raises(StreamFormatError):
        BitReader(b"\x00\x00").read_unary()
