"""Unit tests of the canonical Huffman coder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coders.huffman import (
    HuffmanCoder,
    decode_symbols,
    encode_symbols,
    estimate_code_lengths,
)
from repro.errors import StreamFormatError


def test_symbol_roundtrip_small():
    symbols = np.array([0, 0, 1, -1, 2, 0, 0, 5, -7, 0], dtype=np.int64)
    assert np.array_equal(decode_symbols(encode_symbols(symbols)), symbols)


def test_symbol_roundtrip_random():
    rng = np.random.default_rng(1)
    symbols = rng.integers(-200, 200, size=5000)
    assert np.array_equal(decode_symbols(encode_symbols(symbols)), symbols)


def test_skewed_distribution_compresses():
    rng = np.random.default_rng(2)
    # Mostly zeros: Huffman should beat the 8-byte raw representation easily.
    symbols = (rng.random(20000) > 0.97).astype(np.int64) * rng.integers(1, 4, 20000)
    encoded = encode_symbols(symbols)
    assert len(encoded) < symbols.nbytes / 4
    assert np.array_equal(decode_symbols(encoded), symbols)


def test_single_symbol_alphabet():
    symbols = np.full(100, 42, dtype=np.int64)
    assert np.array_equal(decode_symbols(encode_symbols(symbols)), symbols)


def test_empty_input():
    symbols = np.zeros(0, dtype=np.int64)
    assert decode_symbols(encode_symbols(symbols)).size == 0


def test_negative_and_large_symbols():
    symbols = np.array([-(2**40), 2**40, 0, -1, 1], dtype=np.int64)
    assert np.array_equal(decode_symbols(encode_symbols(symbols)), symbols)


def test_code_lengths_follow_frequencies():
    lengths = estimate_code_lengths({0: 1000, 1: 10, 2: 10, 3: 1})
    assert lengths[0] <= lengths[1]
    assert lengths[1] <= lengths[3]


def test_code_lengths_single_symbol():
    assert estimate_code_lengths({7: 99}) == {7: 1}


def test_byte_backend_roundtrip():
    coder = HuffmanCoder()
    data = bytes([1, 2, 3, 1, 1, 1, 0, 0, 255] * 100)
    assert coder.decode(coder.encode(data)) == data


def test_bad_magic_rejected():
    with pytest.raises(StreamFormatError):
        decode_symbols(b"NOPE" + b"\x00" * 32)
