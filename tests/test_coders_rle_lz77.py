"""Unit tests of the RLE and LZ77 lossless backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coders.lz77 import LZ77Coder
from repro.coders.rle import RLECoder
from repro.errors import StreamFormatError


@pytest.fixture(params=[RLECoder, LZ77Coder], ids=["rle", "lz77"])
def coder(request):
    return request.param()


def test_empty_roundtrip(coder):
    assert coder.decode(coder.encode(b"")) == b""


def test_constant_run_roundtrip_and_ratio(coder):
    data = b"\x00" * 10000
    encoded = coder.encode(data)
    assert coder.decode(encoded) == data
    assert len(encoded) < len(data) / 20


def test_random_bytes_roundtrip(coder):
    rng = np.random.default_rng(3)
    data = rng.integers(0, 256, size=4096, dtype=np.uint8).tobytes()
    assert coder.decode(coder.encode(data)) == data


def test_repetitive_pattern_roundtrip(coder):
    data = b"abcabcabcabd" * 500 + b"tail"
    assert coder.decode(coder.encode(data)) == data


def test_lz77_exploits_repeats():
    data = b"scientific-data-" * 1000
    encoded = LZ77Coder().encode(data)
    assert len(encoded) < len(data) / 10


def test_rle_alternating_worst_case_is_lossless():
    data = bytes(range(256)) * 8
    coder = RLECoder()
    assert coder.decode(coder.encode(data)) == data


def test_lz77_truncated_stream_rejected():
    data = LZ77Coder().encode(b"hello hello hello hello")
    with pytest.raises(StreamFormatError):
        LZ77Coder().decode(data[:-3] + b"\x01\xff")


def test_rle_truncated_stream_rejected():
    with pytest.raises(StreamFormatError):
        RLECoder().decode(b"\x85")
