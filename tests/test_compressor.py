"""Tests of the public IPComp façade."""

from __future__ import annotations

import numpy as np
import pytest

from repro import IPComp, IPCompConfig
from repro.errors import ConfigurationError


def test_roundtrip_2d(smooth_2d):
    comp = IPComp(error_bound=1e-6, relative=True)
    blob = comp.compress(smooth_2d)
    restored = comp.decompress(blob)
    assert np.abs(smooth_2d - restored).max() <= comp.absolute_bound(smooth_2d) * (1 + 1e-12)


def test_roundtrip_1d(signal_1d):
    comp = IPComp(error_bound=1e-7, relative=True)
    restored = comp.decompress(comp.compress(signal_1d))
    assert np.abs(signal_1d - restored).max() <= comp.absolute_bound(signal_1d) * (1 + 1e-12)


def test_roundtrip_3d_rough(rough_3d):
    comp = IPComp(error_bound=1e-4, relative=True)
    restored = comp.decompress(comp.compress(rough_3d))
    assert np.abs(rough_3d - restored).max() <= comp.absolute_bound(rough_3d) * (1 + 1e-12)


def test_absolute_bound_mode(smooth_3d):
    comp = IPComp(error_bound=1e-3, relative=False)
    assert comp.absolute_bound(smooth_3d) == 1e-3
    restored = comp.decompress(comp.compress(smooth_3d))
    assert np.abs(smooth_3d - restored).max() <= 1e-3 * (1 + 1e-12)


def test_float32_input_roundtrip(smooth_3d):
    data = smooth_3d.astype(np.float32)
    comp = IPComp(error_bound=1e-4, relative=True)
    restored = comp.decompress(comp.compress(data))
    assert restored.dtype == np.float32
    assert np.abs(data.astype(np.float64) - restored.astype(np.float64)).max() <= (
        comp.absolute_bound(data) * (1 + 1e-6) + 1e-6
    )


def test_smooth_data_compresses_better_than_rough(smooth_3d, rough_3d):
    comp = IPComp(error_bound=1e-5, relative=True)
    cr_smooth = IPComp.compression_ratio(smooth_3d, comp.compress(smooth_3d))
    cr_rough = IPComp.compression_ratio(rough_3d, comp.compress(rough_3d))
    assert cr_smooth > cr_rough


def test_looser_bounds_give_higher_ratio(smooth_3d):
    ratios = []
    for eb in (1e-8, 1e-6, 1e-4, 1e-2):
        comp = IPComp(error_bound=eb, relative=True)
        ratios.append(IPComp.compression_ratio(smooth_3d, comp.compress(smooth_3d)))
    assert ratios == sorted(ratios)


def test_bitrate_and_ratio_are_consistent(smooth_3d):
    comp = IPComp(error_bound=1e-6, relative=True)
    blob = comp.compress(smooth_3d)
    cr = IPComp.compression_ratio(smooth_3d, blob)
    br = IPComp.bitrate(smooth_3d, blob)
    assert cr * br == pytest.approx(64.0)  # 64-bit doubles


def test_one_shot_retrieve(smooth_3d):
    comp = IPComp(error_bound=1e-6, relative=True)
    blob = comp.compress(smooth_3d)
    eb = comp.absolute_bound(smooth_3d)
    result = comp.retrieve(blob, error_bound=eb * 100)
    assert np.abs(smooth_3d - result.data).max() <= eb * 100 * (1 + 1e-12)


def test_constant_field_compresses_extremely_well():
    data = np.full((40, 40, 40), 3.14159)
    comp = IPComp(error_bound=1e-6, relative=True)
    blob = comp.compress(data)
    assert IPComp.compression_ratio(data, blob) > 50
    assert np.abs(comp.decompress(blob) - data).max() <= comp.absolute_bound(data)


def test_invalid_inputs_rejected(smooth_3d):
    comp = IPComp(error_bound=1e-6)
    with pytest.raises(ConfigurationError):
        comp.compress(np.zeros(0))
    with pytest.raises(ConfigurationError):
        comp.compress(np.arange(10))  # integer dtype
    bad = smooth_3d.copy()
    bad[0, 0, 0] = np.nan
    with pytest.raises(ConfigurationError):
        comp.compress(bad)


def test_invalid_configurations_rejected():
    with pytest.raises(ConfigurationError):
        IPComp(error_bound=-1.0)
    with pytest.raises(ConfigurationError):
        IPComp(error_bound=1e-6, method="quadratic")
    with pytest.raises(ConfigurationError):
        IPComp(error_bound=1e-6, prefix_bits=9)
    with pytest.raises(ConfigurationError):
        IPCompConfig(error_bound=float("inf"))


@pytest.mark.parametrize("backend", ["zlib", "rle", "lz77", "raw"])
def test_alternate_lossless_backends(smooth_2d, backend):
    comp = IPComp(error_bound=1e-5, relative=True, backend=backend)
    restored = comp.decompress(comp.compress(smooth_2d))
    assert np.abs(smooth_2d - restored).max() <= comp.absolute_bound(smooth_2d) * (1 + 1e-12)


@pytest.mark.parametrize("prefix_bits", [0, 1, 2, 3])
def test_all_prefix_settings(smooth_2d, prefix_bits):
    comp = IPComp(error_bound=1e-5, relative=True, prefix_bits=prefix_bits)
    restored = comp.decompress(comp.compress(smooth_2d))
    assert np.abs(smooth_2d - restored).max() <= comp.absolute_bound(smooth_2d) * (1 + 1e-12)
