"""Tests of the synthetic dataset generators and the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    DATASETS,
    dataset_names,
    dataset_table,
    load_dataset,
    load_raw,
    save_raw,
)
from repro.datasets.synthetic import (
    combustion_mass_fraction,
    seismic_wavefield,
    turbulence_field,
    weather_wind_speed,
)
from repro.errors import ConfigurationError


def test_registry_lists_the_six_paper_datasets():
    assert set(dataset_names()) == {
        "density",
        "pressure",
        "velocityx",
        "wave",
        "speedx",
        "ch4",
    }
    for spec in DATASETS.values():
        assert spec.precision == 64
        assert len(spec.paper_shape) == 3


@pytest.mark.parametrize("name", ["density", "pressure", "velocityx", "wave", "speedx", "ch4"])
def test_every_dataset_generates_finite_doubles(name):
    field = load_dataset(name, shape=(16, 18, 20))
    assert field.shape == (16, 18, 20)
    assert field.dtype == np.float64
    assert np.isfinite(field).all()
    assert field.std() > 0


def test_generation_is_deterministic():
    a = load_dataset("density", shape=(12, 12, 12))
    b = load_dataset("density", shape=(12, 12, 12))
    assert np.array_equal(a, b)


def test_different_seeds_differ():
    a = load_dataset("wave", shape=(12, 12, 12), seed=1)
    b = load_dataset("wave", shape=(12, 12, 12), seed=2)
    assert not np.array_equal(a, b)


def test_case_insensitive_names():
    a = load_dataset("CH4", shape=(10, 10, 10))
    b = load_dataset("ch4", shape=(10, 10, 10))
    assert np.array_equal(a, b)


def test_unknown_dataset_rejected():
    with pytest.raises(ConfigurationError):
        load_dataset("entropy-soup")


def test_density_and_pressure_are_positive():
    assert load_dataset("density", shape=(10, 12, 14)).min() > 0
    assert load_dataset("pressure", shape=(10, 12, 14)).min() > 0


def test_velocity_is_roughly_zero_mean():
    field = load_dataset("velocityx", shape=(24, 24, 24))
    assert abs(field.mean()) < 0.5 * field.std()


def test_ch4_is_bounded_and_sparse():
    field = load_dataset("ch4", shape=(32, 32, 32))
    assert field.min() >= 0.0 and field.max() <= 1.0
    assert np.mean(field < 0.05) > 0.4  # mostly near-zero background


def test_weather_field_has_vertical_shear():
    field = weather_wind_speed((24, 20, 20))
    column_means = field.mean(axis=(1, 2))
    assert column_means[-1] > column_means[0]


def test_wave_field_oscillates():
    field = seismic_wavefield((24, 24, 16), n_sources=4)
    assert field.min() < 0 < field.max()


def test_turbulence_kind_validation():
    with pytest.raises(ConfigurationError):
        turbulence_field((8, 8, 8), kind="vorticity")


def test_invalid_shapes_rejected():
    with pytest.raises(ConfigurationError):
        combustion_mass_fraction(())
    with pytest.raises(ConfigurationError):
        turbulence_field((0, 4, 4))


def test_smoothness_ordering_matches_domains():
    """Pressure (steeper spectrum) should be smoother than VelocityX."""
    pressure = load_dataset("pressure", shape=(32, 32, 32))
    velocity = load_dataset("velocityx", shape=(32, 32, 32))

    def roughness(field):
        return float(np.abs(np.diff(field, axis=0)).mean() / field.std())

    assert roughness(pressure) < roughness(velocity)


def test_dataset_table_formatting():
    table = dataset_table()
    assert "Density" in table and "CH4" in table
    assert "256x384x384" in table


def test_raw_io_roundtrip(tmp_path):
    field = load_dataset("speedx", shape=(8, 10, 12))
    path = save_raw(tmp_path / "speedx.d64", field)
    restored = load_raw(path, (8, 10, 12))
    assert np.array_equal(restored, field)


def test_raw_io_float32(tmp_path):
    field = load_dataset("density", shape=(6, 6, 6)).astype(np.float32)
    path = save_raw(tmp_path / "density.f32", field)
    restored = load_raw(path, (6, 6, 6))
    assert restored.dtype == np.float32
    assert np.array_equal(restored, field)


def test_raw_io_size_mismatch(tmp_path):
    field = load_dataset("density", shape=(6, 6, 6))
    path = save_raw(tmp_path / "density.d64", field)
    with pytest.raises(ConfigurationError):
        load_raw(path, (6, 6, 7))


def test_raw_io_unknown_suffix(tmp_path):
    field = load_dataset("density", shape=(4, 4, 4))
    path = save_raw(tmp_path / "field.bin", field)
    with pytest.raises(ConfigurationError):
        load_raw(path, (4, 4, 4))
    assert load_raw(path, (4, 4, 4), dtype=np.float64).shape == (4, 4, 4)


def test_paper_shape_flag_conflicts():
    with pytest.raises(ConfigurationError):
        load_dataset("density", shape=(8, 8, 8), paper_shape=True)
