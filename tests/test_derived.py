"""Tests of the derived quantities (curl / Laplacian) used by Figure 11."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.derived import (
    curl,
    curl_magnitude,
    divergence,
    gradient,
    gradient_magnitude,
    laplacian,
)
from repro.errors import ConfigurationError


def _grid3(n=24):
    axes = [np.linspace(0, 2 * np.pi, n) for _ in range(3)]
    return np.meshgrid(*axes, indexing="ij"), axes[0][1] - axes[0][0]


def test_gradient_of_linear_ramp_is_constant():
    (z, y, x), h = _grid3()
    field = 3.0 * x + 2.0 * y - z
    gz, gy, gx = gradient(field, h)
    assert np.allclose(gx, 3.0, atol=1e-6)
    assert np.allclose(gy, 2.0, atol=1e-6)
    assert np.allclose(gz, -1.0, atol=1e-6)


def test_gradient_magnitude_of_ramp():
    (z, y, x), h = _grid3()
    field = 3.0 * x + 4.0 * y
    assert np.allclose(gradient_magnitude(field, h), 5.0, atol=1e-6)


def test_laplacian_of_harmonic_function_is_zero():
    (z, y, x), h = _grid3()
    field = x**2 - y**2  # harmonic: Laplacian = 0
    interior = laplacian(field, h)[2:-2, 2:-2, 2:-2]
    assert np.abs(interior).max() < 1e-6


def test_laplacian_of_quadratic():
    (z, y, x), h = _grid3()
    field = x**2 + y**2 + z**2
    interior = laplacian(field, h)[2:-2, 2:-2, 2:-2]
    assert np.allclose(interior, 6.0, atol=1e-6)


def test_curl_of_gradient_field_is_zero():
    (z, y, x), h = _grid3()
    potential = np.sin(x) * np.cos(y) + z**2
    vx, vy, vz = np.gradient(potential, h)
    cx, cy, cz = curl((vx, vy, vz), h)
    interior = np.sqrt(cx**2 + cy**2 + cz**2)[3:-3, 3:-3, 3:-3]
    assert interior.max() < 5e-2


def test_curl_of_rigid_rotation():
    """v = (−y, x, 0) has curl (0, 0, 2).

    The curl convention maps component ``i`` to array axis ``i`` (axis 0 = x,
    axis 1 = y, axis 2 = z), so the coordinates are built the same way here.
    """
    n = 24
    coords = np.linspace(0, 2 * np.pi, n)
    x, y, z = np.meshgrid(coords, coords, coords, indexing="ij")
    h = coords[1] - coords[0]
    vx, vy, vz = -y, x, np.zeros_like(x)
    cx, cy, cz = curl((vx, vy, vz), h)
    interior = (slice(2, -2),) * 3
    assert np.allclose(cx[interior], 0.0, atol=1e-6)
    assert np.allclose(cy[interior], 0.0, atol=1e-6)
    assert np.allclose(cz[interior], 2.0, atol=1e-6)
    assert np.allclose(curl_magnitude((vx, vy, vz), h)[interior], 2.0, atol=1e-6)


def test_divergence_of_radial_field():
    (z, y, x), h = _grid3()
    div = divergence((z, y, x), h)  # identity field → divergence 3
    assert np.allclose(div[2:-2, 2:-2, 2:-2], 3.0, atol=1e-6)


def test_divergence_needs_matching_components():
    with pytest.raises(ConfigurationError):
        divergence((np.zeros((4, 4)),))


def test_curl_requires_three_3d_components():
    with pytest.raises(ConfigurationError):
        curl((np.zeros((4, 4)), np.zeros((4, 4)), np.zeros((4, 4))))
    with pytest.raises(ConfigurationError):
        curl((np.zeros((4, 4, 4)), np.zeros((4, 4, 4))))


def test_gradient_1d():
    t = np.linspace(0, 1, 50)
    (g,) = gradient(t**2, t[1] - t[0])
    assert np.allclose(g[1:-1], 2 * t[1:-1], atol=1e-3)


def test_derived_quantities_are_error_sensitive(rng):
    """Laplacian amplifies noise much more than the raw field (Fig. 11's point)."""
    (z, y, x), h = _grid3(32)
    field = np.sin(x) * np.sin(y) * np.sin(z)
    noisy = field + rng.normal(scale=1e-3, size=field.shape)
    raw_rel = np.abs(noisy - field).max() / np.abs(field).max()
    lap_rel = np.abs(laplacian(noisy, h) - laplacian(field, h)).max() / np.abs(
        laplacian(field, h)
    ).max()
    assert lap_rel > raw_rel
