"""Tests of the Table 2 prefix-coding entropy study."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import prefix_coding_entropy, prefix_entropy_table
from repro.datasets import load_dataset


@pytest.fixture(scope="module")
def field():
    return load_dataset("density", shape=(24, 28, 28))


def test_entropy_values_are_probabilities_per_bit(field):
    table = prefix_entropy_table(field, error_bound=1e-5)
    assert set(table) == {0, 1, 2, 3}
    for value in table.values():
        assert 0.0 <= value <= 1.0


def test_prefix_prediction_reduces_entropy(field):
    """Table 2: 1–3 prefix bits all lower the entropy vs. the raw planes."""
    table = prefix_entropy_table(field, error_bound=1e-5)
    for prefix in (1, 2, 3):
        assert table[prefix] <= table[0] + 1e-9


def test_two_bit_prefix_is_at_least_as_good_as_one(field):
    table = prefix_entropy_table(field, error_bound=1e-5)
    assert table[2] <= table[1] + 5e-3


def test_entropy_single_call_matches_table(field):
    table = prefix_entropy_table(field, prefixes=(0, 2), error_bound=1e-4)
    single = prefix_coding_entropy(field, 2, error_bound=1e-4)
    assert single == pytest.approx(table[2])


def test_rougher_bounds_change_entropy(field):
    tight = prefix_coding_entropy(field, 2, error_bound=1e-7)
    loose = prefix_coding_entropy(field, 2, error_bound=1e-3)
    assert tight != pytest.approx(loose)
