"""Fused-kernel byte identity and sampled-negotiation behaviour.

The fused pipeline and the sampled negotiation policy are both pure
performance features: neither may change a single stream byte (fused) or may
produce anything but a valid, self-describing stream (sampled).  These tests
pin that contract:

* a full kernel × negotiation **byte-identity matrix** over synthetic fields
  (``fused`` ≡ ``vectorized`` ≡ ``reference`` under each policy);
* sampled streams decode correctly, are deterministic, and their
  header-recorded per-plane coders agree with a full re-negotiation on at
  least 90 % of synthetic planes;
* the kernel pipeline hooks (`encode_planes` / `decode_planes`) agree across
  kernels at the API level, including the edge shapes the stream layer never
  exercises.

Every test uses a module-local rng: the conftest ``rng`` fixture is
session-scoped and shared, so drawing from it here would shift downstream
fixtures' draws.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compressor import IPComp
from repro.core.kernels import available_kernels, get_kernel
from repro.core.kernels_compiled import numba_available
from repro.core.predictive_coder import negotiate_encode
from repro.core.profile import (
    DEFAULT_NEGOTIATION_SAMPLE,
    CodecProfile,
    NEGOTIATION_POLICIES,
)
from repro.core.progressive import ProgressiveRetriever
from repro.errors import ConfigurationError

KERNELS = ("reference", "vectorized", "fused")
#: The optional JIT backend joins every identity matrix when its dependency
#: is importable; without numba it is absent here and covered instead by the
#: always-on pure-Python sweep tests in ``test_kernels_compiled.py``.
ALL_KERNELS = KERNELS + (("compiled",) if numba_available() else ())
COMPILED_PARAM = pytest.param(
    "compiled",
    marks=pytest.mark.skipif(
        not numba_available(), reason="numba not installed (the [compiled] extra)"
    ),
)
WIDE_CODERS = ("zlib", "huffman", "rle", "raw")


def _local_rng(offset: int = 0) -> np.random.Generator:
    return np.random.default_rng(20260726 + offset)


def _field(rng: np.random.Generator, shape) -> np.ndarray:
    grids = np.meshgrid(*(np.linspace(0, 1, s) for s in shape), indexing="ij")
    smooth = sum(np.sin((3 + i) * g) for i, g in enumerate(grids))
    return (smooth + 0.05 * rng.normal(size=shape)).astype(np.float64)


# ------------------------------------------------------------ identity matrix


def test_fused_kernel_is_registered():
    assert "fused" in available_kernels()
    assert get_kernel("fused").name == "fused"


@pytest.mark.parametrize("shape", [(257,), (31, 37), (14, 18, 22)])
@pytest.mark.parametrize("negotiation", ["smallest", "sampled", "fixed"])
def test_kernel_negotiation_stream_identity_matrix(shape, negotiation):
    """Every kernel must emit byte-identical streams under every policy."""
    # Stable per-cell seed (str hashing is PYTHONHASHSEED-salted, so
    # hash() here would make any failure unreproducible across runs).
    rng = _local_rng(
        100 * len(shape) + NEGOTIATION_POLICIES.index(negotiation)
    )
    field = _field(rng, shape)
    streams = {}
    for kernel in ALL_KERNELS:
        profile = CodecProfile(
            error_bound=1e-4,
            relative=True,
            kernel=kernel,
            plane_coders=WIDE_CODERS,
            negotiation=negotiation,
            negotiation_sample=512,
        )
        streams[kernel] = IPComp(profile=profile).compress(field)
    assert len(set(streams.values())) == 1, sorted(streams)


@pytest.mark.parametrize("kernel", [*KERNELS, COMPILED_PARAM, "auto"])
def test_any_kernel_decodes_any_stream(kernel):
    """Kernels are a runtime choice on the decode side too."""
    rng = _local_rng(3)
    field = _field(rng, (12, 16, 20))
    blob = IPComp(error_bound=1e-5, relative=True).compress(field)
    eb = CodecProfile(error_bound=1e-5, relative=True).absolute_bound(field)
    retriever = ProgressiveRetriever(blob, profile=CodecProfile(kernel=kernel))
    out = retriever.retrieve(error_bound=retriever.header.error_bound).data
    assert np.abs(out - field).max() <= eb * (1 + 1e-9)


def test_encode_planes_hook_parity_across_kernels():
    rng = _local_rng(5)
    kernels = [get_kernel(name) for name in ALL_KERNELS]
    for n in (0, 1, 7, 64, 65, 1000):
        for spread in (1, 900, 2**40):
            codes = rng.integers(-spread, spread + 1, size=n, dtype=np.int64)
            for prefix_bits in range(4):
                outs = [k.encode_planes(codes, prefix_bits) for k in kernels]
                for other in outs[1:]:
                    assert other == outs[0], (n, spread, prefix_bits)
                nbits, blocks = outs[0]
                for keep in {0, 1, nbits // 2, nbits}:
                    decoded = [
                        k.decode_planes(blocks[:keep], n, nbits, prefix_bits)
                        for k in kernels
                    ]
                    for other in decoded[1:]:
                        assert np.array_equal(decoded[0], other)
                    if keep == nbits:
                        assert np.array_equal(decoded[0], codes)


def test_fused_arena_reuse_does_not_leak_between_levels():
    """Back-to-back levels of different sizes must not corrupt each other."""
    fused = get_kernel("fused")
    vectorized = get_kernel("vectorized")
    rng = _local_rng(8)
    previous = None
    for n in (4096, 17, 900, 4096, 1):
        codes = rng.integers(-(2**20), 2**20, size=n, dtype=np.int64)
        assert fused.encode_planes(codes, 2) == vectorized.encode_planes(codes, 2)
        if previous is not None:
            # Re-encoding the previous level still matches (scratch reuse
            # cannot have retained stale content in the observable output).
            assert fused.encode_planes(previous, 2) == vectorized.encode_planes(
                previous, 2
            )
        previous = codes


# -------------------------------------------------------- sampled negotiation


def test_sampled_policy_is_valid_and_full_is_an_alias():
    assert "sampled" in NEGOTIATION_POLICIES
    assert CodecProfile(negotiation="full").negotiation == "smallest"
    assert CodecProfile(negotiation="sampled").negotiation_sample == (
        DEFAULT_NEGOTIATION_SAMPLE
    )
    with pytest.raises(ConfigurationError):
        CodecProfile(negotiation="sampled", negotiation_sample=0)
    with pytest.raises(ConfigurationError):
        CodecProfile(negotiation_sample="64k")


def test_sampled_profile_json_roundtrip():
    profile = CodecProfile(
        plane_coders=WIDE_CODERS, negotiation="sampled", negotiation_sample=2048
    )
    assert CodecProfile.from_json(profile.to_json()) == profile


def test_negotiate_encode_sampled_semantics():
    rng = _local_rng(11)
    # Compressible payload much larger than the sample: zlib must win on
    # the prefix and the returned blob must be the *full* encode.
    payload = (rng.integers(0, 4, size=65536, dtype=np.uint8) // 3).tobytes()
    name, blob = negotiate_encode(
        payload, ("zlib", "raw"), policy="sampled", sample=1024
    )
    assert name == "zlib"
    from repro.coders.backend import get_backend

    assert blob == get_backend("zlib").encode(payload)
    # Payload within the sample: identical to full negotiation.
    short = payload[:512]
    assert negotiate_encode(short, WIDE_CODERS, policy="sampled", sample=1024) == (
        negotiate_encode(short, WIDE_CODERS, policy="smallest")
    )


def test_sampled_stream_decodes_and_is_deterministic():
    rng = _local_rng(13)
    field = _field(rng, (20, 24, 28))
    profile = CodecProfile(
        error_bound=1e-5,
        relative=True,
        plane_coders=WIDE_CODERS,
        negotiation="sampled",
        negotiation_sample=512,
    )
    comp = IPComp(profile=profile)
    blob = comp.compress(field)
    assert blob == comp.compress(field)  # deterministic prefix → same bytes
    eb = profile.absolute_bound(field)
    # Decode needs no knowledge of the negotiation policy (header-driven).
    retriever = ProgressiveRetriever(blob)
    out = retriever.retrieve(error_bound=retriever.header.error_bound).data
    assert np.abs(out - field).max() <= eb * (1 + 1e-9)


def test_sampled_winner_matches_full_negotiation_on_most_planes():
    """Header-recorded coders agree with a full re-negotiation ≥ 90 %.

    Synthetic packed planes spanning the regimes the codec actually
    produces: all-zero top planes, sparse mid planes, dense noise bottom
    planes, and run-structured planes.
    """
    rng = _local_rng(17)
    planes = []
    for i in range(40):
        kind = i % 4
        nbytes = int(rng.integers(3000, 20000))
        if kind == 0:
            raw = np.zeros(nbytes, dtype=np.uint8)
        elif kind == 1:
            raw = (rng.random(nbytes * 8) < 0.03).astype(np.uint8)
            raw = np.packbits(raw, bitorder="little")
        elif kind == 2:
            raw = rng.integers(0, 256, size=nbytes, dtype=np.uint8)
        else:
            runs = np.repeat(
                rng.integers(0, 256, size=max(1, nbytes // 64), dtype=np.uint8), 64
            )[:nbytes]
            raw = runs
        planes.append(raw.tobytes())
    agree = 0
    for payload in planes:
        full_name, _ = negotiate_encode(payload, WIDE_CODERS, policy="smallest")
        sampled_name, sampled_blob = negotiate_encode(
            payload, WIDE_CODERS, policy="sampled", sample=4096
        )
        agree += full_name == sampled_name
        # Whatever the pick, the blob must be that coder's real encoding.
        from repro.coders.backend import get_backend

        assert get_backend(sampled_name).decode(sampled_blob) == payload
    assert agree >= 0.9 * len(planes), f"only {agree}/{len(planes)} planes agree"


def test_sampled_stream_header_coders_match_full_stream_mostly():
    """End-to-end variant: per-plane coder tables of the two policies."""
    rng = _local_rng(19)
    field = _field(rng, (24, 28, 32))
    base = dict(
        error_bound=1e-6, relative=True, plane_coders=WIDE_CODERS,
        negotiation_sample=1024,
    )
    blob_full = IPComp(
        profile=CodecProfile(negotiation="smallest", **base)
    ).compress(field)
    blob_sampled = IPComp(
        profile=CodecProfile(negotiation="sampled", **base)
    ).compress(field)
    header_full = ProgressiveRetriever(blob_full).header
    header_sampled = ProgressiveRetriever(blob_sampled).header
    total = agree = 0
    for enc_full, enc_sampled in zip(header_full.levels, header_sampled.levels):
        assert enc_full.level == enc_sampled.level
        for a, b in zip(enc_full.plane_coders, enc_sampled.plane_coders):
            total += 1
            agree += a == b
    assert total > 0
    assert agree >= 0.9 * total, f"only {agree}/{total} plane coders agree"
    # The size penalty of prefix-based winners is bounded.
    assert len(blob_sampled) <= len(blob_full) * 1.05


# --------------------------------------------------------- executor utilities


def test_batch_slabs_merges_small_and_respects_workers():
    from repro.parallel.executor import MIN_TASK_BYTES
    from repro.parallel.partition import batch_slabs, block_slices

    shape = (64, 8, 8)
    slabs = block_slices(shape, 16)  # 16 slabs × 2 KiB
    batches = batch_slabs(slabs, shape, 8, 4, MIN_TASK_BYTES)
    # Tiny slabs collapse into ≥ 1, ≤ workers-sized batch count while
    # preserving order and covering every slab exactly once.
    flat = [slc for batch in batches for slc in batch]
    assert flat == list(slabs)
    assert 1 <= len(batches) <= 16
    big_batches = batch_slabs(slabs, (4096, 64, 64), 8, 4, MIN_TASK_BYTES)
    assert len(big_batches) >= 4  # large field keeps every worker busy


def test_compress_into_streaming_and_keep_blobs(tmp_path):
    from repro.io import BlockContainerReader, BlockContainerWriter
    from repro.parallel.executor import BlockParallelCompressor

    rng = _local_rng(23)
    field = _field(rng, (16, 18, 20))
    comp = BlockParallelCompressor(
        error_bound=1e-4, relative=True, n_blocks=3, workers=0
    )

    order = []

    class RecordingWriter:
        def __init__(self, inner):
            self.inner = inner

        def add_block(self, name, payload, metadata=None):
            order.append(name)
            self.inner.add_block(name, payload, metadata)

    path = tmp_path / "streamed.rprc"
    with BlockContainerWriter(path) as writer:
        light = comp.compress_into(RecordingWriter(writer), field, keep_blobs=False)
    assert order == ["shard-0000", "shard-0001", "shard-0002"]
    assert all(block.blob == b"" for block in light)  # extents only
    assert [b.slices for b in light] == [b.slices for b in comp.compress(field)]
    with BlockContainerReader(path) as reader:
        stored = [reader.read_block(n) for n in order]
    assert stored == [b.blob for b in comp.compress(field)]


def test_compress_falls_back_without_shared_memory(monkeypatch, smooth_3d):
    from repro.parallel import executor as executor_module

    monkeypatch.setattr(executor_module, "_shared_memory", None)
    comp = executor_module.BlockParallelCompressor(
        error_bound=1e-5, relative=True, n_blocks=2, workers=2
    )
    serial = executor_module.BlockParallelCompressor(
        error_bound=1e-5, relative=True, n_blocks=2, workers=0
    )
    assert [b.blob for b in comp.compress(smooth_3d)] == [
        b.blob for b in serial.compress(smooth_3d)
    ]
