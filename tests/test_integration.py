"""Integration tests crossing module boundaries (workflow-level scenarios)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import IPComp, ProgressiveRetriever
from repro.analysis import max_error, psnr, summarize
from repro.analysis.derived import laplacian
from repro.baselines import make_compressor
from repro.datasets import load_dataset
from repro.io import BlockContainerReader, BlockContainerWriter
from repro.parallel import BlockParallelCompressor


@pytest.fixture(scope="module")
def density():
    return load_dataset("density", shape=(32, 36, 36))


def test_scientist_workflow_coarse_to_fine(density):
    """The paper's motivating workflow: explore coarsely, refine the region of
    interest to full fidelity, never decompress twice."""
    comp = IPComp(error_bound=1e-6, relative=True)
    blob = comp.compress(density)
    eb = comp.absolute_bound(density)

    retriever = ProgressiveRetriever(blob)
    quicklook = retriever.retrieve(error_bound=eb * 4096)
    assert max_error(density, quicklook.data) <= eb * 4096 * (1 + 1e-9)

    # The coarse pass is enough to locate the maximum-density region.
    coarse_peak = np.unravel_index(np.argmax(quicklook.data), density.shape)
    true_peak = np.unravel_index(np.argmax(density), density.shape)
    assert np.linalg.norm(np.subtract(coarse_peak, true_peak)) <= 4.0

    refined = retriever.retrieve(error_bound=eb)
    assert max_error(density, refined.data) <= eb * (1 + 1e-12)
    assert retriever.cumulative_bytes <= len(blob) * 1.02


def test_bitrate_budgeted_campaign(density):
    """Fixed-rate mode: with a larger I/O budget the fidelity must improve."""
    comp = IPComp(error_bound=1e-7, relative=True)
    blob = comp.compress(density)
    psnrs = []
    for bitrate in (0.5, 1.0, 2.0, 4.0):
        result = ProgressiveRetriever(blob).retrieve(bitrate=bitrate)
        psnrs.append(psnr(density, result.data))
    assert psnrs == sorted(psnrs)
    assert psnrs[-1] - psnrs[0] > 10.0


def test_post_analysis_needs_more_precision_than_visual(density):
    """Figure 11's observation: derivative quantities need finer retrievals."""
    comp = IPComp(error_bound=1e-7, relative=True)
    blob = comp.compress(density)
    eb = comp.absolute_bound(density)
    coarse = ProgressiveRetriever(blob).retrieve(error_bound=eb * 2048).data
    fine = ProgressiveRetriever(blob).retrieve(error_bound=eb * 8).data

    def relative_error(a, b):
        scale = np.abs(a).max()
        return np.abs(a - b).max() / scale

    raw_coarse = relative_error(density, coarse)
    lap_coarse = relative_error(laplacian(density), laplacian(coarse))
    lap_fine = relative_error(laplacian(density), laplacian(fine))
    assert lap_coarse > raw_coarse          # derivatives amplify the loss
    assert lap_fine < lap_coarse            # refining fixes the analysis


def test_progressive_beats_residual_on_retrieval_volume(density):
    """Figure 6's qualitative claim on a mid-fidelity request."""
    ipcomp = make_compressor("ipcomp", error_bound=1e-6, relative=True)
    sz3r = make_compressor("sz3-r", error_bound=1e-6, relative=True, rungs=5)
    blob_ip = ipcomp.compress(density)
    blob_rz = sz3r.compress(density)
    eb = ipcomp.absolute_bound(density)
    # Compare at the tightest retrieval fidelity, where the residual ladder
    # has to load and decompress every rung.
    target = eb
    out_ip = ipcomp.retrieve(blob_ip, error_bound=target)
    out_rz = sz3r.retrieve(blob_rz, error_bound=target)
    assert max_error(density, out_ip.data) <= target * (1 + 1e-9)
    assert max_error(density, out_rz.data) <= target * (1 + 1e-9)
    assert out_ip.passes == 1 and out_rz.passes > 1
    assert out_ip.bytes_loaded < out_rz.bytes_loaded


def test_parallel_blocks_to_container_and_back(density, tmp_path):
    """HPC-style pipeline: decompose, compress per block in parallel, archive
    in a block container, then read back only what a coarse analysis needs."""
    compressor = BlockParallelCompressor(
        error_bound=1e-6, relative=True, n_blocks=4, workers=0
    )
    blocks = compressor.compress(density)
    path = tmp_path / "density_blocks.rprc"
    with BlockContainerWriter(path) as writer:
        for index, block in enumerate(blocks):
            writer.add_block(
                f"block{index}",
                block.blob,
                {"start": int(block.slices[0].start), "stop": int(block.slices[0].stop)},
            )
    with BlockContainerReader(path) as reader:
        assert len(reader.block_names()) == 4
        # Load only the first slab for a region-of-interest analysis.
        meta = reader.metadata("block0")
        blob = reader.read_block("block0")
        slab = ProgressiveRetriever(blob).retrieve(bitrate=4.0).data
        assert slab.shape[0] == meta["stop"] - meta["start"]
        assert reader.bytes_read < path.stat().st_size / 2


def test_summarize_reports_are_consistent(density):
    comp = IPComp(error_bound=1e-5, relative=True)
    blob = comp.compress(density)
    restored = comp.decompress(blob)
    report = summarize(density, restored, blob)
    assert report["max_error"] <= comp.absolute_bound(density) * (1 + 1e-12)
    assert report["compression_ratio"] > 1.0
    assert report["psnr"] > 40.0
