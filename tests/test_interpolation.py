"""Unit tests of the multi-level interpolation predictor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.interpolation import InterpolationPredictor, STENCIL_NORMS
from repro.core.quantizer import LinearQuantizer
from repro.errors import ConfigurationError


SHAPES = [(17,), (64,), (100,), (33, 20), (16, 16, 16), (13, 7, 5), (1, 9), (4, 4, 4, 4)]


@pytest.mark.parametrize("shape", SHAPES)
def test_levels_cover_every_point_exactly_once(shape):
    predictor = InterpolationPredictor(shape)
    assert predictor.total_points() == int(np.prod(shape))


@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("method", ["linear", "cubic"])
def test_decompose_respects_error_bound(shape, method, rng):
    predictor = InterpolationPredictor(shape, method)
    data = np.cumsum(rng.normal(size=shape), axis=0)
    quantizer = LinearQuantizer(1e-3)
    _, _, reconstruction = predictor.decompose(data, quantizer)
    assert np.abs(data - reconstruction).max() <= 1e-3 + 1e-12


@pytest.mark.parametrize("method", ["linear", "cubic"])
def test_reconstruct_matches_decompose_output(smooth_3d, method):
    predictor = InterpolationPredictor(smooth_3d.shape, method)
    quantizer = LinearQuantizer(1e-4)
    anchors, level_codes, reconstruction = predictor.decompose(smooth_3d, quantizer)
    rebuilt = predictor.reconstruct(
        quantizer.dequantize(anchors),
        {level: quantizer.dequantize(codes) for level, codes in level_codes.items()},
    )
    assert np.allclose(rebuilt, reconstruction, atol=1e-12)


def test_reconstruct_is_linear(smooth_3d):
    """Algorithm 2 relies on reconstruction being linear in its inputs."""
    predictor = InterpolationPredictor(smooth_3d.shape)
    quantizer = LinearQuantizer(1e-4)
    anchors, codes, _ = predictor.decompose(smooth_3d, quantizer)
    diffs_full = {l: quantizer.dequantize(c) for l, c in codes.items()}
    diffs_half = {l: 0.5 * d for l, d in diffs_full.items()}
    anchors_dq = quantizer.dequantize(anchors)

    full = predictor.reconstruct(anchors_dq, diffs_full)
    half = predictor.reconstruct(0.5 * anchors_dq, diffs_half)
    assert np.allclose(full * 0.5, half, atol=1e-10)

    zero = predictor.reconstruct(np.zeros_like(anchors_dq), {})
    assert np.allclose(zero, 0.0)


def test_cubic_predicts_smooth_data_better_than_linear(smooth_3d):
    quantizer = LinearQuantizer(1e-6)
    magnitudes = {}
    for method in ("linear", "cubic"):
        predictor = InterpolationPredictor(smooth_3d.shape, method)
        _, codes, _ = predictor.decompose(smooth_3d, quantizer)
        finest = np.abs(codes[1]).mean()
        magnitudes[method] = finest
    assert magnitudes["cubic"] <= magnitudes["linear"]


def test_transform_is_exactly_invertible(smooth_3d):
    predictor = InterpolationPredictor(smooth_3d.shape, "linear")
    anchors, coeffs = predictor.transform(smooth_3d)
    rebuilt = predictor.reconstruct(anchors, coeffs)
    assert np.allclose(rebuilt, smooth_3d, atol=1e-9)


def test_transform_coefficient_counts_match_level_sizes(smooth_2d):
    predictor = InterpolationPredictor(smooth_2d.shape)
    _, coeffs = predictor.transform(smooth_2d)
    sizes = predictor.level_sizes()
    for level, values in coeffs.items():
        assert values.size == sizes[level]


def test_level_sizes_sum_to_total(smooth_2d):
    predictor = InterpolationPredictor(smooth_2d.shape)
    assert predictor.anchor_count + sum(predictor.level_sizes().values()) == smooth_2d.size


def test_missing_level_diffs_treated_as_zero(smooth_2d):
    predictor = InterpolationPredictor(smooth_2d.shape)
    quantizer = LinearQuantizer(1e-3)
    anchors, codes, _ = predictor.decompose(smooth_2d, quantizer)
    partial = predictor.reconstruct(
        quantizer.dequantize(anchors),
        {predictor.num_levels: quantizer.dequantize(codes[predictor.num_levels])},
    )
    assert partial.shape == smooth_2d.shape
    assert np.isfinite(partial).all()


def test_wrong_shape_rejected(smooth_2d):
    predictor = InterpolationPredictor((8, 8))
    with pytest.raises(ConfigurationError):
        predictor.decompose(smooth_2d, LinearQuantizer(1e-3))


def test_wrong_diff_count_rejected(smooth_2d):
    predictor = InterpolationPredictor(smooth_2d.shape)
    with pytest.raises(ConfigurationError):
        predictor.reconstruct(
            np.zeros(predictor.anchor_count), {1: np.zeros(3)}
        )


def test_invalid_configuration_rejected():
    with pytest.raises(ConfigurationError):
        InterpolationPredictor((0, 4))
    with pytest.raises(ConfigurationError):
        InterpolationPredictor((8, 8), method="quintic")


def test_stencil_norms_match_paper():
    assert STENCIL_NORMS["linear"] == 1.0
    assert STENCIL_NORMS["cubic"] == 1.25
    assert InterpolationPredictor((16,), "cubic").stencil_norm == 1.25


def test_describe_reports_every_level():
    predictor = InterpolationPredictor((32, 32))
    summary = predictor.describe()
    assert set(summary) == set(range(1, predictor.num_levels + 1))
    assert all("points" in info for info in summary.values())
