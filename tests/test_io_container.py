"""Tests of the block container file format, including corruption handling.

Every malformed container — truncated footer, bad magic, duplicate or
overlapping directory entries, extents past end-of-file — must surface as
:class:`~repro.errors.StreamFormatError`, never as a bare ``struct`` or
``json`` exception.
"""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest

from repro import IPComp, ProgressiveRetriever
from repro.errors import StreamFormatError
from repro.io import BlockContainerReader, BlockContainerWriter, is_container
from repro.io.container import MAGIC


def _container_with_footer(path, payload: bytes, footer_obj) -> None:
    """Write a container with a hand-crafted (possibly malicious) footer."""
    footer = json.dumps(footer_obj, separators=(",", ":")).encode()
    path.write_bytes(payload + footer + struct.pack("<Q", len(footer)) + MAGIC)


def test_roundtrip_named_blocks(tmp_path):
    path = tmp_path / "store.rprc"
    with BlockContainerWriter(path) as writer:
        writer.add_block("alpha", b"first block", {"kind": "test"})
        writer.add_block("beta", b"\x00" * 1000)
    with BlockContainerReader(path) as reader:
        assert set(reader.block_names()) == {"alpha", "beta"}
        assert reader.read_block("alpha") == b"first block"
        assert reader.read_block("beta") == b"\x00" * 1000
        assert reader.metadata("alpha") == {"kind": "test"}
        assert reader.block_size("beta") == 1000


def test_bytes_read_accounting(tmp_path):
    path = tmp_path / "store.rprc"
    with BlockContainerWriter(path) as writer:
        writer.add_block("a", b"x" * 100)
        writer.add_block("b", b"y" * 900)
    with BlockContainerReader(path) as reader:
        reader.read_block("a")
        assert reader.bytes_read == 100


def test_duplicate_names_rejected(tmp_path):
    writer = BlockContainerWriter(tmp_path / "store.rprc")
    writer.add_block("a", b"1")
    with pytest.raises(StreamFormatError):
        writer.add_block("a", b"2")
    writer.close()


def test_missing_block_rejected(tmp_path):
    path = tmp_path / "store.rprc"
    with BlockContainerWriter(path) as writer:
        writer.add_block("a", b"1")
    with BlockContainerReader(path) as reader:
        with pytest.raises(StreamFormatError):
            reader.read_block("nope")


def test_not_a_container_rejected(tmp_path):
    path = tmp_path / "bogus.bin"
    path.write_bytes(b"clearly not a container file")
    with pytest.raises(StreamFormatError):
        BlockContainerReader(path)


def test_write_after_close_rejected(tmp_path):
    writer = BlockContainerWriter(tmp_path / "store.rprc")
    writer.close()
    with pytest.raises(StreamFormatError):
        writer.add_block("late", b"data")


def test_range_reads_within_a_block(tmp_path):
    path = tmp_path / "store.rprc"
    with BlockContainerWriter(path) as writer:
        writer.add_block("head", b"0123456789")
        writer.add_block("tail", bytes(range(50)))
    with BlockContainerReader(path) as reader:
        assert reader.read_range("tail", 0, 5) == bytes(range(5))
        assert reader.read_range("tail", 10, 4) == bytes(range(10, 14))
        assert reader.read_range("head", 9, 1) == b"9"
        assert reader.read_range("head", 3, 0) == b""
        assert reader.bytes_read == 5 + 4 + 1


def test_range_read_past_block_end_rejected(tmp_path):
    path = tmp_path / "store.rprc"
    with BlockContainerWriter(path) as writer:
        writer.add_block("a", b"0123456789")
    with BlockContainerReader(path) as reader:
        with pytest.raises(StreamFormatError):
            reader.read_range("a", 8, 4)
        with pytest.raises(StreamFormatError):
            reader.read_range("a", -1, 2)
        with pytest.raises(StreamFormatError):
            reader.read_range("a", 0, -3)
        with pytest.raises(StreamFormatError):
            reader.read_range("nope", 0, 1)


def test_read_after_close_rejected(tmp_path):
    path = tmp_path / "store.rprc"
    with BlockContainerWriter(path) as writer:
        writer.add_block("a", b"payload")
    reader = BlockContainerReader(path)
    reader.close()
    with pytest.raises(StreamFormatError):
        reader.read_block("a")


def test_truncated_footer_rejected(tmp_path):
    """A footer length word larger than the file must not crash the parser."""
    path = tmp_path / "trunc.rprc"
    path.write_bytes(b"xx" + struct.pack("<Q", 1 << 40) + MAGIC)
    with pytest.raises(StreamFormatError):
        BlockContainerReader(path)


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "magic.rprc"
    footer = json.dumps({"blocks": []}).encode()
    path.write_bytes(footer + struct.pack("<Q", len(footer)) + b"NOPE")
    with pytest.raises(StreamFormatError):
        BlockContainerReader(path)


def test_garbage_footer_json_rejected(tmp_path):
    path = tmp_path / "garbage.rprc"
    footer = b"\xffnot json at all"
    path.write_bytes(footer + struct.pack("<Q", len(footer)) + MAGIC)
    with pytest.raises(StreamFormatError):
        BlockContainerReader(path)


def test_footer_without_blocks_key_rejected(tmp_path):
    _container_with_footer(tmp_path / "nokey.rprc", b"", {"not-blocks": []})
    with pytest.raises(StreamFormatError):
        BlockContainerReader(tmp_path / "nokey.rprc")


def test_duplicate_footer_names_rejected(tmp_path):
    entries = [
        {"name": "a", "offset": 0, "size": 4, "metadata": {}},
        {"name": "a", "offset": 4, "size": 4, "metadata": {}},
    ]
    _container_with_footer(tmp_path / "dup.rprc", b"01234567", {"blocks": entries})
    with pytest.raises(StreamFormatError, match="duplicate"):
        BlockContainerReader(tmp_path / "dup.rprc")


def test_overlapping_extents_rejected(tmp_path):
    entries = [
        {"name": "a", "offset": 0, "size": 6, "metadata": {}},
        {"name": "b", "offset": 4, "size": 4, "metadata": {}},
    ]
    _container_with_footer(tmp_path / "overlap.rprc", b"01234567", {"blocks": entries})
    with pytest.raises(StreamFormatError, match="overlap"):
        BlockContainerReader(tmp_path / "overlap.rprc")


def test_extent_past_eof_rejected(tmp_path):
    """A directory entry pointing past the payload region must be refused."""
    entries = [{"name": "a", "offset": 0, "size": 999, "metadata": {}}]
    _container_with_footer(tmp_path / "eof.rprc", b"0123", {"blocks": entries})
    with pytest.raises(StreamFormatError):
        BlockContainerReader(tmp_path / "eof.rprc")
    entries = [{"name": "a", "offset": -2, "size": 2, "metadata": {}}]
    _container_with_footer(tmp_path / "neg.rprc", b"0123", {"blocks": entries})
    with pytest.raises(StreamFormatError):
        BlockContainerReader(tmp_path / "neg.rprc")


def test_footer_entry_without_metadata_tolerated(tmp_path):
    """Missing metadata defaults to {}; a non-object metadata is refused."""
    entries = [{"name": "a", "offset": 0, "size": 4}]
    _container_with_footer(tmp_path / "nometa.rprc", b"0123", {"blocks": entries})
    with BlockContainerReader(tmp_path / "nometa.rprc") as reader:
        assert reader.metadata("a") == {}
        assert reader.read_block("a") == b"0123"
    entries = [{"name": "a", "offset": 0, "size": 4, "metadata": "oops"}]
    _container_with_footer(tmp_path / "badmeta.rprc", b"0123", {"blocks": entries})
    with pytest.raises(StreamFormatError):
        BlockContainerReader(tmp_path / "badmeta.rprc")


def test_malformed_directory_entry_rejected(tmp_path):
    _container_with_footer(
        tmp_path / "entry.rprc", b"0123", {"blocks": [{"offset": 0, "size": 4}]}
    )
    with pytest.raises(StreamFormatError):
        BlockContainerReader(tmp_path / "entry.rprc")
    _container_with_footer(
        tmp_path / "types.rprc",
        b"0123",
        {"blocks": [{"name": "a", "offset": "zero", "size": 4, "metadata": {}}]},
    )
    with pytest.raises(StreamFormatError):
        BlockContainerReader(tmp_path / "types.rprc")


def test_is_container_sniff(tmp_path):
    path = tmp_path / "store.rprc"
    with BlockContainerWriter(path) as writer:
        writer.add_block("a", b"data")
    assert is_container(path)
    other = tmp_path / "other.bin"
    other.write_bytes(b"tiny")
    assert not is_container(other)
    assert not is_container(tmp_path / "does-not-exist")


def test_block_source_serves_compressed_store(tmp_path, smooth_3d):
    """A retriever over a BlockSource reads only planned ranges off disk."""
    blob = IPComp(error_bound=1e-5, relative=True).compress(smooth_3d)
    path = tmp_path / "field.rprc"
    with BlockContainerWriter(path) as writer:
        writer.add_block("stream", blob)
    with BlockContainerReader(path) as reader:
        source = reader.source("stream")
        assert source.size == len(blob)
        retriever = ProgressiveRetriever(source)
        eb = retriever.header.error_bound
        result = retriever.retrieve(error_bound=eb * 256)
        assert result.data.shape == smooth_3d.shape
        # Partial retrieval must leave most of the stream untouched...
        assert 0 < reader.bytes_read < len(blob)
        # ...and refinement to full precision touches only the remainder,
        # never re-reading a range.
        ranges = list(source.trace)
        retriever.retrieve(error_bound=eb)
        new_ranges = source.trace[len(ranges):]
        assert new_ranges and not set(ranges) & set(new_ranges)
        assert reader.bytes_read <= len(blob)


def test_partial_read_of_compressed_stream_saves_io(tmp_path, smooth_3d):
    """End-to-end: store an IPComp stream per level-group and read selectively."""
    comp = IPComp(error_bound=1e-6, relative=True)
    blob = comp.compress(smooth_3d)
    path = tmp_path / "field.rprc"
    with BlockContainerWriter(path) as writer:
        writer.add_block("ipcomp-stream", blob, {"shape": list(smooth_3d.shape)})
        writer.add_block("provenance", b"synthetic smooth field")
    with BlockContainerReader(path) as reader:
        restored_blob = reader.read_block("ipcomp-stream")
        assert reader.bytes_read == len(blob)
    result = ProgressiveRetriever(restored_blob).retrieve(bitrate=2.0)
    assert result.data.shape == smooth_3d.shape
