"""Tests of the block container file format."""

from __future__ import annotations

import numpy as np
import pytest

from repro import IPComp, ProgressiveRetriever
from repro.errors import StreamFormatError
from repro.io import BlockContainerReader, BlockContainerWriter


def test_roundtrip_named_blocks(tmp_path):
    path = tmp_path / "store.rprc"
    with BlockContainerWriter(path) as writer:
        writer.add_block("alpha", b"first block", {"kind": "test"})
        writer.add_block("beta", b"\x00" * 1000)
    with BlockContainerReader(path) as reader:
        assert set(reader.block_names()) == {"alpha", "beta"}
        assert reader.read_block("alpha") == b"first block"
        assert reader.read_block("beta") == b"\x00" * 1000
        assert reader.metadata("alpha") == {"kind": "test"}
        assert reader.block_size("beta") == 1000


def test_bytes_read_accounting(tmp_path):
    path = tmp_path / "store.rprc"
    with BlockContainerWriter(path) as writer:
        writer.add_block("a", b"x" * 100)
        writer.add_block("b", b"y" * 900)
    with BlockContainerReader(path) as reader:
        reader.read_block("a")
        assert reader.bytes_read == 100


def test_duplicate_names_rejected(tmp_path):
    writer = BlockContainerWriter(tmp_path / "store.rprc")
    writer.add_block("a", b"1")
    with pytest.raises(StreamFormatError):
        writer.add_block("a", b"2")
    writer.close()


def test_missing_block_rejected(tmp_path):
    path = tmp_path / "store.rprc"
    with BlockContainerWriter(path) as writer:
        writer.add_block("a", b"1")
    with BlockContainerReader(path) as reader:
        with pytest.raises(StreamFormatError):
            reader.read_block("nope")


def test_not_a_container_rejected(tmp_path):
    path = tmp_path / "bogus.bin"
    path.write_bytes(b"clearly not a container file")
    with pytest.raises(StreamFormatError):
        BlockContainerReader(path)


def test_write_after_close_rejected(tmp_path):
    writer = BlockContainerWriter(tmp_path / "store.rprc")
    writer.close()
    with pytest.raises(StreamFormatError):
        writer.add_block("late", b"data")


def test_partial_read_of_compressed_stream_saves_io(tmp_path, smooth_3d):
    """End-to-end: store an IPComp stream per level-group and read selectively."""
    comp = IPComp(error_bound=1e-6, relative=True)
    blob = comp.compress(smooth_3d)
    path = tmp_path / "field.rprc"
    with BlockContainerWriter(path) as writer:
        writer.add_block("ipcomp-stream", blob, {"shape": list(smooth_3d.shape)})
        writer.add_block("provenance", b"synthetic smooth field")
    with BlockContainerReader(path) as reader:
        restored_blob = reader.read_block("ipcomp-stream")
        assert reader.bytes_read == len(blob)
    result = ProgressiveRetriever(restored_blob).retrieve(bitrate=2.0)
    assert result.data.shape == smooth_3d.shape
